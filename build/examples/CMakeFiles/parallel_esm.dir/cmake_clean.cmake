file(REMOVE_RECURSE
  "CMakeFiles/parallel_esm.dir/parallel_esm.cpp.o"
  "CMakeFiles/parallel_esm.dir/parallel_esm.cpp.o.d"
  "parallel_esm"
  "parallel_esm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_esm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
