# Empty dependencies file for parallel_esm.
# This may be replaced when dependencies are built.
