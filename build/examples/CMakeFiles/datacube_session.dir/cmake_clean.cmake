file(REMOVE_RECURSE
  "CMakeFiles/datacube_session.dir/datacube_session.cpp.o"
  "CMakeFiles/datacube_session.dir/datacube_session.cpp.o.d"
  "datacube_session"
  "datacube_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
