# Empty compiler generated dependencies file for datacube_session.
# This may be replaced when dependencies are built.
