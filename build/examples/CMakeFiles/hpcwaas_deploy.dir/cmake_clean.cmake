file(REMOVE_RECURSE
  "CMakeFiles/hpcwaas_deploy.dir/hpcwaas_deploy.cpp.o"
  "CMakeFiles/hpcwaas_deploy.dir/hpcwaas_deploy.cpp.o.d"
  "hpcwaas_deploy"
  "hpcwaas_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcwaas_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
