# Empty dependencies file for hpcwaas_deploy.
# This may be replaced when dependencies are built.
