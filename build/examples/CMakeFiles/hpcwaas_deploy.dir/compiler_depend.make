# Empty compiler generated dependencies file for hpcwaas_deploy.
# This may be replaced when dependencies are built.
