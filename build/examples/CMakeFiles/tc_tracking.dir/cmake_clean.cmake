file(REMOVE_RECURSE
  "CMakeFiles/tc_tracking.dir/tc_tracking.cpp.o"
  "CMakeFiles/tc_tracking.dir/tc_tracking.cpp.o.d"
  "tc_tracking"
  "tc_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
