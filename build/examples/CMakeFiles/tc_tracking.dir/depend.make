# Empty dependencies file for tc_tracking.
# This may be replaced when dependencies are built.
