# Empty compiler generated dependencies file for extreme_events.
# This may be replaced when dependencies are built.
