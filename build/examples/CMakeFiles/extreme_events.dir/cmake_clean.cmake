file(REMOVE_RECURSE
  "CMakeFiles/extreme_events.dir/extreme_events.cpp.o"
  "CMakeFiles/extreme_events.dir/extreme_events.cpp.o.d"
  "extreme_events"
  "extreme_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extreme_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
