file(REMOVE_RECURSE
  "CMakeFiles/test_datacube.dir/test_datacube.cpp.o"
  "CMakeFiles/test_datacube.dir/test_datacube.cpp.o.d"
  "test_datacube"
  "test_datacube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datacube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
