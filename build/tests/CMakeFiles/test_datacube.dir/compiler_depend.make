# Empty compiler generated dependencies file for test_datacube.
# This may be replaced when dependencies are built.
