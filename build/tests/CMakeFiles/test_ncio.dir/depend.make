# Empty dependencies file for test_ncio.
# This may be replaced when dependencies are built.
