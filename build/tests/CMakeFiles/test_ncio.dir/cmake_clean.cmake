file(REMOVE_RECURSE
  "CMakeFiles/test_ncio.dir/test_ncio.cpp.o"
  "CMakeFiles/test_ncio.dir/test_ncio.cpp.o.d"
  "test_ncio"
  "test_ncio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ncio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
