# Empty compiler generated dependencies file for test_taskrt_failures.
# This may be replaced when dependencies are built.
