file(REMOVE_RECURSE
  "CMakeFiles/test_taskrt_failures.dir/test_taskrt_failures.cpp.o"
  "CMakeFiles/test_taskrt_failures.dir/test_taskrt_failures.cpp.o.d"
  "test_taskrt_failures"
  "test_taskrt_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskrt_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
