file(REMOVE_RECURSE
  "CMakeFiles/test_hpcwaas.dir/test_hpcwaas.cpp.o"
  "CMakeFiles/test_hpcwaas.dir/test_hpcwaas.cpp.o.d"
  "test_hpcwaas"
  "test_hpcwaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcwaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
