# Empty compiler generated dependencies file for test_hpcwaas.
# This may be replaced when dependencies are built.
