# Empty compiler generated dependencies file for test_esm.
# This may be replaced when dependencies are built.
