file(REMOVE_RECURSE
  "CMakeFiles/test_esm.dir/test_esm.cpp.o"
  "CMakeFiles/test_esm.dir/test_esm.cpp.o.d"
  "test_esm"
  "test_esm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
