
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_esm.cpp" "tests/CMakeFiles/test_esm.dir/test_esm.cpp.o" "gcc" "tests/CMakeFiles/test_esm.dir/test_esm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/climate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/DependInfo.cmake"
  "/root/repo/build/src/extremes/CMakeFiles/climate_extremes.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/climate_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/esm/CMakeFiles/climate_esm.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/CMakeFiles/climate_datacube.dir/DependInfo.cmake"
  "/root/repo/build/src/taskrt/CMakeFiles/climate_taskrt.dir/DependInfo.cmake"
  "/root/repo/build/src/ncio/CMakeFiles/climate_ncio.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/climate_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
