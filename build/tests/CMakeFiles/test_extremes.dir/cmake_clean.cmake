file(REMOVE_RECURSE
  "CMakeFiles/test_extremes.dir/test_extremes.cpp.o"
  "CMakeFiles/test_extremes.dir/test_extremes.cpp.o.d"
  "test_extremes"
  "test_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
