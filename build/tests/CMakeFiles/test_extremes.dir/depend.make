# Empty dependencies file for test_extremes.
# This may be replaced when dependencies are built.
