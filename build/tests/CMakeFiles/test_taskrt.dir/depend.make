# Empty dependencies file for test_taskrt.
# This may be replaced when dependencies are built.
