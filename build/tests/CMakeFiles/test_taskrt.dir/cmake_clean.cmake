file(REMOVE_RECURSE
  "CMakeFiles/test_taskrt.dir/test_taskrt.cpp.o"
  "CMakeFiles/test_taskrt.dir/test_taskrt.cpp.o.d"
  "test_taskrt"
  "test_taskrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
