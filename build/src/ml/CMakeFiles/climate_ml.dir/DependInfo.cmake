
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/layers.cpp" "src/ml/CMakeFiles/climate_ml.dir/layers.cpp.o" "gcc" "src/ml/CMakeFiles/climate_ml.dir/layers.cpp.o.d"
  "/root/repo/src/ml/network.cpp" "src/ml/CMakeFiles/climate_ml.dir/network.cpp.o" "gcc" "src/ml/CMakeFiles/climate_ml.dir/network.cpp.o.d"
  "/root/repo/src/ml/tc_pipeline.cpp" "src/ml/CMakeFiles/climate_ml.dir/tc_pipeline.cpp.o" "gcc" "src/ml/CMakeFiles/climate_ml.dir/tc_pipeline.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "src/ml/CMakeFiles/climate_ml.dir/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/climate_ml.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
