file(REMOVE_RECURSE
  "CMakeFiles/climate_ml.dir/layers.cpp.o"
  "CMakeFiles/climate_ml.dir/layers.cpp.o.d"
  "CMakeFiles/climate_ml.dir/network.cpp.o"
  "CMakeFiles/climate_ml.dir/network.cpp.o.d"
  "CMakeFiles/climate_ml.dir/tc_pipeline.cpp.o"
  "CMakeFiles/climate_ml.dir/tc_pipeline.cpp.o.d"
  "CMakeFiles/climate_ml.dir/tensor.cpp.o"
  "CMakeFiles/climate_ml.dir/tensor.cpp.o.d"
  "libclimate_ml.a"
  "libclimate_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
