file(REMOVE_RECURSE
  "libclimate_ml.a"
)
