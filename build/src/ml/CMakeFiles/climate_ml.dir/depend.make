# Empty dependencies file for climate_ml.
# This may be replaced when dependencies are built.
