file(REMOVE_RECURSE
  "libclimate_msg.a"
)
