file(REMOVE_RECURSE
  "CMakeFiles/climate_msg.dir/communicator.cpp.o"
  "CMakeFiles/climate_msg.dir/communicator.cpp.o.d"
  "libclimate_msg.a"
  "libclimate_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
