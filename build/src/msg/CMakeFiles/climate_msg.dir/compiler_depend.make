# Empty compiler generated dependencies file for climate_msg.
# This may be replaced when dependencies are built.
