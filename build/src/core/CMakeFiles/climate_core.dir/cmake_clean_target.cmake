file(REMOVE_RECURSE
  "libclimate_core.a"
)
