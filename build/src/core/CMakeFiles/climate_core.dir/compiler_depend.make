# Empty compiler generated dependencies file for climate_core.
# This may be replaced when dependencies are built.
