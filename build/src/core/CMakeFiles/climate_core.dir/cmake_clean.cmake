file(REMOVE_RECURSE
  "CMakeFiles/climate_core.dir/workflow.cpp.o"
  "CMakeFiles/climate_core.dir/workflow.cpp.o.d"
  "libclimate_core.a"
  "libclimate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
