file(REMOVE_RECURSE
  "libclimate_datacube.a"
)
