file(REMOVE_RECURSE
  "CMakeFiles/climate_datacube.dir/client.cpp.o"
  "CMakeFiles/climate_datacube.dir/client.cpp.o.d"
  "CMakeFiles/climate_datacube.dir/cube.cpp.o"
  "CMakeFiles/climate_datacube.dir/cube.cpp.o.d"
  "CMakeFiles/climate_datacube.dir/expression.cpp.o"
  "CMakeFiles/climate_datacube.dir/expression.cpp.o.d"
  "CMakeFiles/climate_datacube.dir/server.cpp.o"
  "CMakeFiles/climate_datacube.dir/server.cpp.o.d"
  "libclimate_datacube.a"
  "libclimate_datacube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_datacube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
