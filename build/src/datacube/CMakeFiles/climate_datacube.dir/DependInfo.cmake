
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/client.cpp" "src/datacube/CMakeFiles/climate_datacube.dir/client.cpp.o" "gcc" "src/datacube/CMakeFiles/climate_datacube.dir/client.cpp.o.d"
  "/root/repo/src/datacube/cube.cpp" "src/datacube/CMakeFiles/climate_datacube.dir/cube.cpp.o" "gcc" "src/datacube/CMakeFiles/climate_datacube.dir/cube.cpp.o.d"
  "/root/repo/src/datacube/expression.cpp" "src/datacube/CMakeFiles/climate_datacube.dir/expression.cpp.o" "gcc" "src/datacube/CMakeFiles/climate_datacube.dir/expression.cpp.o.d"
  "/root/repo/src/datacube/server.cpp" "src/datacube/CMakeFiles/climate_datacube.dir/server.cpp.o" "gcc" "src/datacube/CMakeFiles/climate_datacube.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ncio/CMakeFiles/climate_ncio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
