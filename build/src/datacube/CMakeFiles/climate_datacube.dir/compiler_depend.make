# Empty compiler generated dependencies file for climate_datacube.
# This may be replaced when dependencies are built.
