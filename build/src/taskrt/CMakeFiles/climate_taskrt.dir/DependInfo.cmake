
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskrt/checkpoint.cpp" "src/taskrt/CMakeFiles/climate_taskrt.dir/checkpoint.cpp.o" "gcc" "src/taskrt/CMakeFiles/climate_taskrt.dir/checkpoint.cpp.o.d"
  "/root/repo/src/taskrt/runtime.cpp" "src/taskrt/CMakeFiles/climate_taskrt.dir/runtime.cpp.o" "gcc" "src/taskrt/CMakeFiles/climate_taskrt.dir/runtime.cpp.o.d"
  "/root/repo/src/taskrt/stream.cpp" "src/taskrt/CMakeFiles/climate_taskrt.dir/stream.cpp.o" "gcc" "src/taskrt/CMakeFiles/climate_taskrt.dir/stream.cpp.o.d"
  "/root/repo/src/taskrt/trace.cpp" "src/taskrt/CMakeFiles/climate_taskrt.dir/trace.cpp.o" "gcc" "src/taskrt/CMakeFiles/climate_taskrt.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
