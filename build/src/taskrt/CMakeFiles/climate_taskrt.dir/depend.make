# Empty dependencies file for climate_taskrt.
# This may be replaced when dependencies are built.
