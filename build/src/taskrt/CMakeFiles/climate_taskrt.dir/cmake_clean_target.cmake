file(REMOVE_RECURSE
  "libclimate_taskrt.a"
)
