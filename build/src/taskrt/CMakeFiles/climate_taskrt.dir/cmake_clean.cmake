file(REMOVE_RECURSE
  "CMakeFiles/climate_taskrt.dir/checkpoint.cpp.o"
  "CMakeFiles/climate_taskrt.dir/checkpoint.cpp.o.d"
  "CMakeFiles/climate_taskrt.dir/runtime.cpp.o"
  "CMakeFiles/climate_taskrt.dir/runtime.cpp.o.d"
  "CMakeFiles/climate_taskrt.dir/stream.cpp.o"
  "CMakeFiles/climate_taskrt.dir/stream.cpp.o.d"
  "CMakeFiles/climate_taskrt.dir/trace.cpp.o"
  "CMakeFiles/climate_taskrt.dir/trace.cpp.o.d"
  "libclimate_taskrt.a"
  "libclimate_taskrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_taskrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
