file(REMOVE_RECURSE
  "libclimate_ncio.a"
)
