file(REMOVE_RECURSE
  "CMakeFiles/climate_ncio.dir/ncfile.cpp.o"
  "CMakeFiles/climate_ncio.dir/ncfile.cpp.o.d"
  "libclimate_ncio.a"
  "libclimate_ncio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_ncio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
