# Empty dependencies file for climate_ncio.
# This may be replaced when dependencies are built.
