# Empty compiler generated dependencies file for climate_common.
# This may be replaced when dependencies are built.
