file(REMOVE_RECURSE
  "libclimate_common.a"
)
