file(REMOVE_RECURSE
  "CMakeFiles/climate_common.dir/grid.cpp.o"
  "CMakeFiles/climate_common.dir/grid.cpp.o.d"
  "CMakeFiles/climate_common.dir/image.cpp.o"
  "CMakeFiles/climate_common.dir/image.cpp.o.d"
  "CMakeFiles/climate_common.dir/json.cpp.o"
  "CMakeFiles/climate_common.dir/json.cpp.o.d"
  "CMakeFiles/climate_common.dir/log.cpp.o"
  "CMakeFiles/climate_common.dir/log.cpp.o.d"
  "CMakeFiles/climate_common.dir/stats.cpp.o"
  "CMakeFiles/climate_common.dir/stats.cpp.o.d"
  "CMakeFiles/climate_common.dir/strings.cpp.o"
  "CMakeFiles/climate_common.dir/strings.cpp.o.d"
  "CMakeFiles/climate_common.dir/thread_pool.cpp.o"
  "CMakeFiles/climate_common.dir/thread_pool.cpp.o.d"
  "libclimate_common.a"
  "libclimate_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
