# Empty compiler generated dependencies file for climate_extremes.
# This may be replaced when dependencies are built.
