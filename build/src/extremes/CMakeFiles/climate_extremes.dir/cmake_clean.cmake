file(REMOVE_RECURSE
  "CMakeFiles/climate_extremes.dir/heatwaves.cpp.o"
  "CMakeFiles/climate_extremes.dir/heatwaves.cpp.o.d"
  "CMakeFiles/climate_extremes.dir/skill.cpp.o"
  "CMakeFiles/climate_extremes.dir/skill.cpp.o.d"
  "CMakeFiles/climate_extremes.dir/tc_tracker.cpp.o"
  "CMakeFiles/climate_extremes.dir/tc_tracker.cpp.o.d"
  "libclimate_extremes.a"
  "libclimate_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
