file(REMOVE_RECURSE
  "libclimate_extremes.a"
)
