file(REMOVE_RECURSE
  "libclimate_hpcwaas.a"
)
