# Empty dependencies file for climate_hpcwaas.
# This may be replaced when dependencies are built.
