file(REMOVE_RECURSE
  "CMakeFiles/climate_hpcwaas.dir/batch.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/batch.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/containers.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/containers.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/dls.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/dls.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/orchestrator.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/orchestrator.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/service.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/service.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/tosca.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/tosca.cpp.o.d"
  "CMakeFiles/climate_hpcwaas.dir/yaml.cpp.o"
  "CMakeFiles/climate_hpcwaas.dir/yaml.cpp.o.d"
  "libclimate_hpcwaas.a"
  "libclimate_hpcwaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_hpcwaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
