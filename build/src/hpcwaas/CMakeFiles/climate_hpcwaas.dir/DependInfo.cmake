
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpcwaas/batch.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/batch.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/batch.cpp.o.d"
  "/root/repo/src/hpcwaas/containers.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/containers.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/containers.cpp.o.d"
  "/root/repo/src/hpcwaas/dls.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/dls.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/dls.cpp.o.d"
  "/root/repo/src/hpcwaas/orchestrator.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/orchestrator.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/orchestrator.cpp.o.d"
  "/root/repo/src/hpcwaas/service.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/service.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/service.cpp.o.d"
  "/root/repo/src/hpcwaas/tosca.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/tosca.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/tosca.cpp.o.d"
  "/root/repo/src/hpcwaas/yaml.cpp" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/yaml.cpp.o" "gcc" "src/hpcwaas/CMakeFiles/climate_hpcwaas.dir/yaml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
