
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esm/climatology.cpp" "src/esm/CMakeFiles/climate_esm.dir/climatology.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/climatology.cpp.o.d"
  "/root/repo/src/esm/cyclones.cpp" "src/esm/CMakeFiles/climate_esm.dir/cyclones.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/cyclones.cpp.o.d"
  "/root/repo/src/esm/diagnostics.cpp" "src/esm/CMakeFiles/climate_esm.dir/diagnostics.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/diagnostics.cpp.o.d"
  "/root/repo/src/esm/ensemble.cpp" "src/esm/CMakeFiles/climate_esm.dir/ensemble.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/ensemble.cpp.o.d"
  "/root/repo/src/esm/events.cpp" "src/esm/CMakeFiles/climate_esm.dir/events.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/events.cpp.o.d"
  "/root/repo/src/esm/forcing.cpp" "src/esm/CMakeFiles/climate_esm.dir/forcing.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/forcing.cpp.o.d"
  "/root/repo/src/esm/model.cpp" "src/esm/CMakeFiles/climate_esm.dir/model.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/model.cpp.o.d"
  "/root/repo/src/esm/parallel.cpp" "src/esm/CMakeFiles/climate_esm.dir/parallel.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/parallel.cpp.o.d"
  "/root/repo/src/esm/writer.cpp" "src/esm/CMakeFiles/climate_esm.dir/writer.cpp.o" "gcc" "src/esm/CMakeFiles/climate_esm.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/climate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ncio/CMakeFiles/climate_ncio.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/climate_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
