# Empty dependencies file for climate_esm.
# This may be replaced when dependencies are built.
