file(REMOVE_RECURSE
  "CMakeFiles/climate_esm.dir/climatology.cpp.o"
  "CMakeFiles/climate_esm.dir/climatology.cpp.o.d"
  "CMakeFiles/climate_esm.dir/cyclones.cpp.o"
  "CMakeFiles/climate_esm.dir/cyclones.cpp.o.d"
  "CMakeFiles/climate_esm.dir/diagnostics.cpp.o"
  "CMakeFiles/climate_esm.dir/diagnostics.cpp.o.d"
  "CMakeFiles/climate_esm.dir/ensemble.cpp.o"
  "CMakeFiles/climate_esm.dir/ensemble.cpp.o.d"
  "CMakeFiles/climate_esm.dir/events.cpp.o"
  "CMakeFiles/climate_esm.dir/events.cpp.o.d"
  "CMakeFiles/climate_esm.dir/forcing.cpp.o"
  "CMakeFiles/climate_esm.dir/forcing.cpp.o.d"
  "CMakeFiles/climate_esm.dir/model.cpp.o"
  "CMakeFiles/climate_esm.dir/model.cpp.o.d"
  "CMakeFiles/climate_esm.dir/parallel.cpp.o"
  "CMakeFiles/climate_esm.dir/parallel.cpp.o.d"
  "CMakeFiles/climate_esm.dir/writer.cpp.o"
  "CMakeFiles/climate_esm.dir/writer.cpp.o.d"
  "libclimate_esm.a"
  "libclimate_esm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_esm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
