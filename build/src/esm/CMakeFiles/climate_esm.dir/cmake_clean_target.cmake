file(REMOVE_RECURSE
  "libclimate_esm.a"
)
