file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hpcwaas.dir/bench_fig1_hpcwaas.cpp.o"
  "CMakeFiles/bench_fig1_hpcwaas.dir/bench_fig1_hpcwaas.cpp.o.d"
  "bench_fig1_hpcwaas"
  "bench_fig1_hpcwaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hpcwaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
