# Empty compiler generated dependencies file for bench_e2_concurrency.
# This may be replaced when dependencies are built.
