file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_concurrency.dir/bench_e2_concurrency.cpp.o"
  "CMakeFiles/bench_e2_concurrency.dir/bench_e2_concurrency.cpp.o.d"
  "bench_e2_concurrency"
  "bench_e2_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
