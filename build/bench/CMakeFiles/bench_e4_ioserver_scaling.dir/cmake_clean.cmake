file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ioserver_scaling.dir/bench_e4_ioserver_scaling.cpp.o"
  "CMakeFiles/bench_e4_ioserver_scaling.dir/bench_e4_ioserver_scaling.cpp.o.d"
  "bench_e4_ioserver_scaling"
  "bench_e4_ioserver_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ioserver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
