# Empty dependencies file for bench_e4_ioserver_scaling.
# This may be replaced when dependencies are built.
