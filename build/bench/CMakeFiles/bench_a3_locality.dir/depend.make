# Empty dependencies file for bench_a3_locality.
# This may be replaced when dependencies are built.
