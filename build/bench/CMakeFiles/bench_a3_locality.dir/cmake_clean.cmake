file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_locality.dir/bench_a3_locality.cpp.o"
  "CMakeFiles/bench_a3_locality.dir/bench_a3_locality.cpp.o.d"
  "bench_a3_locality"
  "bench_a3_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
