file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_tc_detection.dir/bench_e5_tc_detection.cpp.o"
  "CMakeFiles/bench_e5_tc_detection.dir/bench_e5_tc_detection.cpp.o.d"
  "bench_e5_tc_detection"
  "bench_e5_tc_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tc_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
