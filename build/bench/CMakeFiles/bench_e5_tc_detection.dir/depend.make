# Empty dependencies file for bench_e5_tc_detection.
# This may be replaced when dependencies are built.
