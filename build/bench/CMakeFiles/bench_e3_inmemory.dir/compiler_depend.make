# Empty compiler generated dependencies file for bench_e3_inmemory.
# This may be replaced when dependencies are built.
