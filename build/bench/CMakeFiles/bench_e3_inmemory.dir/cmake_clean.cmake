file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_inmemory.dir/bench_e3_inmemory.cpp.o"
  "CMakeFiles/bench_e3_inmemory.dir/bench_e3_inmemory.cpp.o.d"
  "bench_e3_inmemory"
  "bench_e3_inmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
