# Empty compiler generated dependencies file for bench_a2_containers.
# This may be replaced when dependencies are built.
