file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_containers.dir/bench_a2_containers.cpp.o"
  "CMakeFiles/bench_a2_containers.dir/bench_a2_containers.cpp.o.d"
  "bench_a2_containers"
  "bench_a2_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
