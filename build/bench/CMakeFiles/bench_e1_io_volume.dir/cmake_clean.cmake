file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_io_volume.dir/bench_e1_io_volume.cpp.o"
  "CMakeFiles/bench_e1_io_volume.dir/bench_e1_io_volume.cpp.o.d"
  "bench_e1_io_volume"
  "bench_e1_io_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_io_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
