# Empty dependencies file for bench_e1_io_volume.
# This may be replaced when dependencies are built.
