# Empty compiler generated dependencies file for bench_fig4_heatwave_map.
# This may be replaced when dependencies are built.
