file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_heatwave_map.dir/bench_fig4_heatwave_map.cpp.o"
  "CMakeFiles/bench_fig4_heatwave_map.dir/bench_fig4_heatwave_map.cpp.o.d"
  "bench_fig4_heatwave_map"
  "bench_fig4_heatwave_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_heatwave_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
