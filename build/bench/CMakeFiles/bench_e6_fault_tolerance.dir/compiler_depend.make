# Empty compiler generated dependencies file for bench_e6_fault_tolerance.
# This may be replaced when dependencies are built.
