file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_fault_tolerance.dir/bench_e6_fault_tolerance.cpp.o"
  "CMakeFiles/bench_e6_fault_tolerance.dir/bench_e6_fault_tolerance.cpp.o.d"
  "bench_e6_fault_tolerance"
  "bench_e6_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
