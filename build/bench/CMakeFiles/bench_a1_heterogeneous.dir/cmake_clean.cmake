file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_heterogeneous.dir/bench_a1_heterogeneous.cpp.o"
  "CMakeFiles/bench_a1_heterogeneous.dir/bench_a1_heterogeneous.cpp.o.d"
  "bench_a1_heterogeneous"
  "bench_a1_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
