# Empty dependencies file for bench_a1_heterogeneous.
# This may be replaced when dependencies are built.
