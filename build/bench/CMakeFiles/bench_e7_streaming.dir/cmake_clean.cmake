file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_streaming.dir/bench_e7_streaming.cpp.o"
  "CMakeFiles/bench_e7_streaming.dir/bench_e7_streaming.cpp.o.d"
  "bench_e7_streaming"
  "bench_e7_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
