# Empty dependencies file for bench_e7_streaming.
# This may be replaced when dependencies are built.
