# Empty dependencies file for bench_a4_warming_trend.
# This may be replaced when dependencies are built.
