file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_warming_trend.dir/bench_a4_warming_trend.cpp.o"
  "CMakeFiles/bench_a4_warming_trend.dir/bench_a4_warming_trend.cpp.o.d"
  "bench_a4_warming_trend"
  "bench_a4_warming_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_warming_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
