// E3 — in-memory reuse in the datacube framework (paper section 5.3):
// "since Ophidia can store the datasets in memory between different
// operators' execution, the baseline values with the long-term historical
// averages can be loaded only once and used throughout the workflows for
// the computation of the indices, reducing the number of read operations
// from storage".
//
// Reproduced: the three heat-wave indices over N years computed with
//  (a) the baseline cube imported once and kept in memory, vs
//  (b) the baseline re-imported from its NetCDF file before every index.
// Rows report disk reads, bytes read from storage, and wall time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "datacube/client.hpp"
#include "esm/climatology.hpp"
#include "extremes/heatwaves.hpp"
#include "obs/prof/profile.hpp"
#include "obs/span.hpp"

namespace {

using climate::common::LatLonGrid;
namespace dc = climate::datacube;

struct Setup {
  std::string baseline_path;
  std::vector<std::string> year_paths;
  LatLonGrid grid{48, 72};
  int days = 120;
};

Setup prepare_files(int years) {
  Setup setup;
  const std::string dir = "/tmp/bench_e3";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  setup.baseline_path = dir + "/baseline.nc";

  dc::Server staging(2);
  climate::extremes::Baseline baseline =
      climate::extremes::Baseline::analytic(setup.grid, setup.days, 4);
  std::vector<dc::DimInfo> dims = {{"lat", setup.grid.nlat(), setup.grid.lats()},
                                   {"lon", setup.grid.nlon(), setup.grid.lons()}};
  dc::DimInfo day_dim{"day", static_cast<std::size_t>(setup.days), {}};
  auto baseline_pid = staging.create_cube("baseline_tasmax", dims, day_dim,
                                          baseline.tasmax_rows_by_day(), "");
  (void)staging.exportnc(*baseline_pid, setup.baseline_path);

  climate::common::Rng rng(5);
  for (int y = 0; y < years; ++y) {
    std::vector<float> rows(setup.grid.size() * static_cast<std::size_t>(setup.days));
    for (std::size_t c = 0; c < setup.grid.size(); ++c) {
      for (int d = 0; d < setup.days; ++d) {
        const std::size_t i = c / setup.grid.nlon();
        rows[c * static_cast<std::size_t>(setup.days) + static_cast<std::size_t>(d)] =
            baseline.tasmax(i, c % setup.grid.nlon(), d) + static_cast<float>(rng.normal(1, 3));
      }
    }
    auto pid = staging.create_cube("tasmax", dims, day_dim, rows, "");
    const std::string path = dir + "/year" + std::to_string(y) + ".nc";
    (void)staging.exportnc(*pid, path);
    setup.year_paths.push_back(path);
  }
  return setup;
}

/// Runs the three indices for every year; `reload_baseline` re-imports the
/// baseline before each index computation instead of reusing the cube.
dc::ServerStats run_pipeline(const Setup& setup, bool reload_baseline, double* wall_ms) {
  dc::Server server(2);
  dc::Client client(server);
  const auto t0 = std::chrono::steady_clock::now();

  dc::Cube resident_baseline;
  if (!reload_baseline) {
    resident_baseline = *client.importnc(setup.baseline_path, "baseline_tasmax");
  }
  for (const std::string& year_path : setup.year_paths) {
    dc::Cube temp = *client.importnc(year_path, "tasmax");
    for (int index = 0; index < 3; ++index) {
      dc::Cube baseline = reload_baseline
                              ? *client.importnc(setup.baseline_path, "baseline_tasmax")
                              : resident_baseline;
      dc::Cube diff = *temp.intercube(baseline, "sub");
      dc::Cube mask = *diff.apply("oph_predicate(measure, '>=5', 1, 0)");
      dc::Cube duration = *mask.apply("wave_duration(measure, 6)");
      dc::Cube result;
      switch (index) {
        case 0: result = *duration.reduce("max"); break;
        case 1: {
          dc::Cube positive = *duration.apply("predicate(x, '>0', 1, 0)");
          result = *positive.reduce("sum");
          (void)positive.del();
          break;
        }
        default: result = *duration.reduce("sum"); break;
      }
      benchmark::DoNotOptimize(result.values());
      for (dc::Cube* cube : {&diff, &mask, &duration, &result}) (void)cube->del();
      if (reload_baseline) (void)baseline.del();
    }
    (void)temp.del();
  }
  *wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  return server.stats();
}

void print_comparison() {
  climate::obs::SpanCollector::global().clear();
  std::printf("=== E3: baseline kept in memory vs reloaded per index ===\n");
  std::printf("three indices per year, 48x72 grid, 120-day years\n\n");
  std::printf("%6s %22s %12s %14s %10s\n", "years", "strategy", "disk reads", "bytes read",
              "wall [ms]");
  for (int years : {1, 3, 6}) {
    const Setup setup = prepare_files(years);
    double reuse_ms = 0, reload_ms = 0;
    const dc::ServerStats reuse = run_pipeline(setup, false, &reuse_ms);
    const dc::ServerStats reload = run_pipeline(setup, true, &reload_ms);
    std::printf("%6d %22s %12llu %14s %10.1f\n", years, "in-memory reuse",
                static_cast<unsigned long long>(reuse.disk_reads),
                climate::common::human_bytes(static_cast<double>(reuse.disk_bytes_read)).c_str(),
                reuse_ms);
    std::printf("%6s %22s %12llu %14s %10.1f\n", "", "reload per index",
                static_cast<unsigned long long>(reload.disk_reads),
                climate::common::human_bytes(static_cast<double>(reload.disk_bytes_read)).c_str(),
                reload_ms);
  }
  std::printf("\npaper shape: reuse needs 1 baseline read total (1 + years reads overall)\n"
              "while reloading pays 3 baseline reads per year (4 x years reads overall);\n"
              "the gap in reads and bytes grows linearly with the number of years.\n\n");

  // Where the pipeline time itself went (no task runtime here, so the
  // attribution comes from the recorded datacube spans).
  const auto profile =
      climate::obs::prof::profile_spans(climate::obs::SpanCollector::global().snapshot());
  std::printf("%s\n", profile.text_report().c_str());
}

void BM_ImportBaseline(benchmark::State& state) {
  const Setup setup = prepare_files(1);
  dc::Server server(2);
  dc::Client client(server);
  for (auto _ : state) {
    auto cube = client.importnc(setup.baseline_path, "baseline_tasmax");
    if (cube.ok()) (void)cube->del();
  }
}
BENCHMARK(BM_ImportBaseline);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
