// E8 — concurrent multi-session datacube serving: operator throughput as the
// number of client sessions grows (1 -> 16) against one shared front-end.
//
// The paper's workflow service is multi-tenant: several workflow executions
// (and interactive PyOphidia sessions) hit the same Ophidia instance at
// once. This bench drives the redesigned serving path — sharded catalog,
// striped stats, bounded round-robin admission — with a mixed
// importnc/reduce/intercube workload per session.
//
// Regime: latency-bound fragment access (the same simulated storage
// round-trip per fragment as bench_e4's distributed-deployment regime, via
// Server::set_fragment_latency_ns). Each session's cubes carry only a couple
// of fragments, so one session leaves most of the 16-wide I/O-server pool
// idle waiting on storage; concurrent sessions interleave their fragment
// round-trips and aggregate throughput scales until the pool saturates.
// Acceptance: throughput monotone from 1 to 8 sessions with >= 3x at 8.
//
// Results land in BENCH_e8.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "datacube/client.hpp"
#include "obs/obs.hpp"

namespace {

namespace dc = climate::datacube;
using climate::common::Json;

constexpr std::size_t kRows = 32;
constexpr std::size_t kDays = 16;
constexpr std::size_t kFragments = 2;       // few fragments: one session underuses the pool
constexpr std::size_t kIoServers = 16;      // shared I/O-server pool
constexpr std::uint64_t kStorageRttNs = 500000;  // 0.5 ms per fragment access
constexpr std::size_t kIterations = 24;     // per session; 3 operators each

/// Writes the CDF-lite input file every session imports from.
std::string write_input_file() {
  const std::string dir = "/tmp/bench_e8";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/input.nc";
  dc::Server staging(2);
  std::vector<float> dense(kRows * kDays);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<float>((i * 2654435761u) % 1000) * 0.01f;
  }
  auto pid = staging.create_cube("tasmax", {{"cell", kRows, {}}}, {"day", kDays, {}}, dense, "");
  if (!pid.ok() || !staging.exportnc(*pid, path).ok()) {
    std::fprintf(stderr, "failed to stage %s\n", path.c_str());
    std::exit(1);
  }
  return path;
}

struct RunResult {
  double wall_ms = 0;
  double ops_per_s = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t catalog_contention = 0;
};

/// One configuration: `sessions` concurrent clients, each running the mixed
/// workload (importnc + reduce + intercube per iteration) against a shared
/// server.
RunResult run_sessions(const std::string& input, std::size_t sessions) {
  dc::Server server(kIoServers);
  server.set_fragment_latency_ns(kStorageRttNs);
  dc::AdmissionOptions admission;
  admission.max_inflight = kIoServers;  // operator overlap bounded by the pool width
  admission.max_queued_per_session = 64;
  server.set_admission(admission);

  // Shared immutable baseline cube for the intercube step.
  dc::Client staging(server, "staging");
  dc::ImportOptions import_options;
  import_options.nfragments = kFragments;
  auto baseline = staging.importnc(input, "tasmax", import_options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline import failed: %s\n", baseline.status().to_string().c_str());
    std::exit(1);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      dc::Client client(server, "session-" + std::to_string(s));
      dc::Cube base = client.bind(baseline->handle());
      for (std::size_t i = 0; i < kIterations; ++i) {
        auto imported = client.importnc(input, "tasmax", import_options);
        if (!imported.ok()) continue;  // UNAVAILABLE under overload: drop and move on
        auto reduced = imported->reduce("max", 4);
        auto anomaly = imported->intercube(base, "sub", "anomaly");
        if (reduced.ok()) (void)reduced->del();
        if (anomaly.ok()) (void)anomaly->del();
        (void)imported->del();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  RunResult result;
  result.wall_ms = wall_ms;
  const auto snap = server.admission_snapshot();
  result.admitted = snap.admitted;
  result.rejected = snap.rejected;
  result.catalog_contention = server.catalog_contention();
  // Completed operators (mixed import/reduce/intercube), not submissions.
  const dc::ServerStats stats = server.stats();
  const std::uint64_t ops = stats.operators_executed + stats.disk_reads;
  result.ops_per_s = static_cast<double>(ops) * 1000.0 / wall_ms;
  return result;
}

}  // namespace

int main() {
  std::printf("=== E8: datacube operator throughput vs concurrent sessions ===\n");
  std::printf("host has %u hardware core(s); regime: latency-bound fragment access\n"
              "(%.1f ms simulated storage RTT/fragment, %zu-wide I/O-server pool,\n"
              "%zu fragments per cube, %zu iterations x 3 operators per session)\n\n",
              std::thread::hardware_concurrency(), kStorageRttNs / 1e6, kIoServers, kFragments,
              kIterations);
  const std::string input = write_input_file();

  const std::vector<std::size_t> session_counts = {1, 2, 4, 8, 16};
  std::vector<RunResult> results;
  std::printf("%10s %12s %12s %9s %10s %10s %12s\n", "sessions", "wall [ms]", "ops/s", "speedup",
              "admitted", "rejected", "shard cont.");
  double base_ops = 0;
  for (std::size_t sessions : session_counts) {
    RunResult result = run_sessions(input, sessions);
    if (sessions == 1) base_ops = result.ops_per_s;
    results.push_back(result);
    std::printf("%10zu %12.1f %12.1f %8.2fx %10llu %10llu %12llu\n", sessions, result.wall_ms,
                result.ops_per_s, result.ops_per_s / base_ops,
                static_cast<unsigned long long>(result.admitted),
                static_cast<unsigned long long>(result.rejected),
                static_cast<unsigned long long>(result.catalog_contention));
  }

  // Acceptance: monotone 1 -> 8 sessions, >= 3x at 8 sessions.
  bool monotone = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (session_counts[i] <= 8 && results[i].ops_per_s < results[i - 1].ops_per_s) {
      monotone = false;
    }
  }
  double speedup_at_8 = 0;
  for (std::size_t i = 0; i < session_counts.size(); ++i) {
    if (session_counts[i] == 8) speedup_at_8 = results[i].ops_per_s / base_ops;
  }
  const bool pass = monotone && speedup_at_8 >= 3.0;
  std::printf("\nacceptance: monotone throughput 1->8 sessions (%s), speedup at 8 = %.2fx "
              "(gate >= 3x) -> %s\n",
              monotone ? "yes" : "NO", speedup_at_8, pass ? "PASS" : "FAIL");
  std::printf("paper shape: one session leaves the I/O-server pool idle between storage\n"
              "round-trips; concurrent sessions interleave on the shared pool until it\n"
              "saturates (the plateau past 8 sessions), which is the multi-tenant serving\n"
              "regime the workflow service exposes.\n\n");

  Json::Object doc;
  doc["workload"] = "mixed importnc+reduce+intercube per session";
  doc["regime"] = "latency-bound fragment access";
  doc["storage_rtt_ms"] = kStorageRttNs / 1e6;
  doc["io_servers"] = kIoServers;
  doc["fragments_per_cube"] = kFragments;
  doc["iterations_per_session"] = kIterations;
  Json sessions_json = Json::array();
  Json ops_json = Json::array();
  Json speedup_json = Json::array();
  Json wall_json = Json::array();
  Json rejected_json = Json::array();
  for (std::size_t i = 0; i < session_counts.size(); ++i) {
    sessions_json.push_back(session_counts[i]);
    ops_json.push_back(results[i].ops_per_s);
    speedup_json.push_back(results[i].ops_per_s / base_ops);
    wall_json.push_back(results[i].wall_ms);
    rejected_json.push_back(results[i].rejected);
  }
  doc["sessions"] = std::move(sessions_json);
  doc["ops_per_s"] = std::move(ops_json);
  doc["speedup"] = std::move(speedup_json);
  doc["wall_ms"] = std::move(wall_json);
  doc["rejected"] = std::move(rejected_json);
  doc["speedup_at_8"] = speedup_at_8;
  doc["monotone_1_to_8"] = monotone;
  doc["pass"] = pass;
  const std::string json_path = "BENCH_e8.json";
  climate::obs::write_text_file(json_path, Json(std::move(doc)).dump_pretty() + "\n");
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}
