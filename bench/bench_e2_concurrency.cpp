// E2 — the integration claim (paper sections 5.1/6): running simulation and
// analysis in one workflow "can help in reducing the overall execution time
// as different tasks of the workflow can be executed concurrently ... as the
// model starts to produce its output, the data processing ... can seamlessly
// be executed on different HPC nodes".
//
// Reproduced by running the identical case study twice per configuration:
//  - integrated/streaming: analysis tasks fire per year while later years
//    still simulate;
//  - staged baseline: simulate everything, then analyse.
// Rows report makespan, speedup and the measured overlap fraction between
// simulation and analysis task execution.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/workflow.hpp"
#include "obs/obs.hpp"
#include "obs/prof/profile.hpp"
#include "taskrt/stream.hpp"
#include "taskrt/trace.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig concurrency_config(const std::string& dir, bool streaming, std::size_t workers) {
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 3;
  config.years = 3;
  config.output_dir = dir;
  config.workers = workers;
  config.streaming = streaming;
  config.run_ml_tc = false;
  // Analysis tasks model heavier post-processing (I/O-bound sleep), so the
  // overlap benefit is visible even on few cores.
  config.extra_task_cost_ms = 120.0;
  return config;
}

void print_comparison() {
  std::printf("=== E2: integrated (streaming) vs staged execution ===\n");
  std::printf("3 simulated years, 48x72 grid, 16-day years, analysis tasks +120 ms each\n\n");
  std::printf("%8s %14s %14s %9s %18s\n", "workers", "staged [ms]", "streaming [ms]", "speedup",
              "sim/analysis ovl");

  for (std::size_t workers : {1u, 2u, 4u}) {
    const std::string base = "/tmp/bench_e2_w" + std::to_string(workers);
    std::filesystem::remove_all(base);

    auto staged = ExtremeEventsWorkflow(concurrency_config(base + "/staged", false, workers)).run();
    auto streaming =
        ExtremeEventsWorkflow(concurrency_config(base + "/streaming", true, workers)).run();
    if (!staged.ok() || !streaming.ok()) {
      std::printf("run failed\n");
      return;
    }
    // Overlap of analysis task families with the simulation tasks.
    double overlap = 0.0;
    int families = 0;
    for (const char* family : {"load_tmax", "load_tmin", "heat_duration", "cold_duration",
                               "tc_deterministic_tracking"}) {
      overlap += streaming->trace.overlap_fraction(family, "esm_simulation");
      ++families;
    }
    overlap /= families;
    // Mean worker utilization over the makespan.
    double utilization = 0.0;
    for (const auto& [node, busy] : streaming->trace.node_utilization()) utilization += busy;
    utilization /= static_cast<double>(workers);
    std::printf("%8zu %14.0f %14.0f %8.2fx %17.0f%% (util %.0f%%)\n", workers,
                staged->makespan_ms, streaming->makespan_ms,
                staged->makespan_ms / streaming->makespan_ms, 100.0 * overlap,
                100.0 * utilization);
    if (workers == 4) {
      // Attribution report of the widest streaming run: which task functions
      // hold the critical path once analysis overlaps the simulation.
      std::printf("\n%s\n", streaming->profile().text_report().c_str());
    }
  }
  std::printf("\npaper shape: the integrated workflow wins because per-year analysis\n"
              "overlaps the continuing simulation; the advantage grows with workers\n"
              "(more concurrent analysis lanes) and the results are identical either\n"
              "way (asserted in tests/test_workflow.cpp).\n\n");
}

// Runs one ML-enabled streaming configuration with a clean span buffer and
// writes the merged Chrome trace (cross-layer spans + the taskrt node
// tracks) for Perfetto, plus the Prometheus snapshot of the run's metrics.
void emit_merged_trace() {
  namespace obs = climate::obs;
  const std::string base = "/tmp/bench_e2_trace";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  const std::string weights = base + "/tc_weights.bin";
  WorkflowConfig config = concurrency_config(base + "/run", true, 4);
  auto loss = climate::core::pretrain_tc_localizer(config.esm, weights, 16, /*epochs=*/4,
                                                   /*train_days=*/20);
  if (!loss.ok()) {
    std::printf("trace run: pretraining failed: %s\n", loss.status().to_string().c_str());
    return;
  }
  config.run_ml_tc = true;
  config.tc_weights_path = weights;

  obs::SpanCollector::global().clear();
  obs::MetricsRegistry::global().reset();
  auto results = ExtremeEventsWorkflow(config).run();
  if (!results.ok()) {
    std::printf("trace run failed: %s\n", results.status().to_string().c_str());
    return;
  }

  const std::string trace_path = "/tmp/bench_e2_trace.perfetto.json";
  const std::string prom_path = "/tmp/bench_e2_metrics.prom";
  obs::write_text_file(
      trace_path,
      obs::chrome_trace_json(obs::SpanCollector::global().snapshot(),
                             climate::taskrt::to_obs_track_events(results->trace),
                             obs::prof::to_flow_events(results->trace)));
  obs::write_text_file(prom_path, obs::prometheus_text(obs::MetricsRegistry::global().snapshot()));
  std::printf("merged Perfetto trace (spans + node tracks + dep flows): %s\n", trace_path.c_str());
  std::printf("Prometheus metrics snapshot:                             %s\n", prom_path.c_str());
  std::printf("run report (also at %s/run/run_report.txt):\n\n%s\n", base.c_str(),
              results->profile().text_report().c_str());
}

void BM_StreamingDetectionLoop(benchmark::State& state) {
  // Cost of the year-completion bookkeeping itself: publish/consume events.
  for (auto _ : state) {
    climate::taskrt::DataStream stream;
    for (int i = 0; i < 1000; ++i) stream.publish(std::any(i));
    stream.close();
    int consumed = 0;
    while (stream.next().has_value()) ++consumed;
    benchmark::DoNotOptimize(consumed);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StreamingDetectionLoop);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  emit_merged_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
