// E9 — chaos engineering for the end-to-end workflow: the E2 case study runs
// under the standard fault plan (one node crash + 5% task-body faults + flaky
// datacube fragment ops) with every recovery mechanism armed — task retries,
// node-failure lineage replay, service-layer client retry — plus the HPCWaaS
// deployment path under injected DLS transfer faults.
//
// Gates (exit code 1 on violation, results in BENCH_e9.json):
//   1. the chaos run completes successfully;
//   2. its output artifacts (index NetCDF files, year maps, final map) are
//      byte-identical to the fault-free run's;
//   3. chaos makespan <= 2.5x the fault-free makespan;
//   4. the deployment under flaky DLS succeeds with retried steps recorded.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/workflow.hpp"
#include "esm/forcing.hpp"
#include "hpcwaas/dls.hpp"
#include "hpcwaas/orchestrator.hpp"
#include "hpcwaas/tosca.hpp"
#include "obs/obs.hpp"

namespace {

namespace fs = std::filesystem;
using climate::common::Json;
using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;
using climate::core::WorkflowResults;

// The standard chaos plan of the README quick-start: a seeded node crash on
// node1's fourth task pickup, a 5% Bernoulli task-body fault on every task
// family, a 2% fragment-operation fault inside the datacube server, and two
// DLS transfer faults for the deployment leg.
constexpr const char* kStandardPlan = R"({
  "seed": 42,
  "rules": [
    {"kind": "node_crash", "target": "node1", "at": 3},
    {"kind": "task_error", "rate": 0.05},
    {"kind": "fragment_error", "rate": 0.02},
    {"kind": "dls_error", "rate": 1.0, "max": 2}
  ]
})";

WorkflowConfig e2_config(const std::string& dir) {
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 3;
  config.years = 3;
  config.output_dir = dir;
  config.workers = 4;
  config.streaming = true;
  config.run_ml_tc = false;
  config.extra_task_cost_ms = 120.0;
  return config;
}

/// Digests of every run artifact keyed by file basename (output dirs differ
/// between the two runs, contents must not).
std::map<std::string, std::string> artifact_digests(const WorkflowResults& results) {
  std::map<std::string, std::string> digests;
  auto add = [&digests](const std::string& path) {
    if (path.empty()) return;
    auto digest = climate::hpcwaas::file_digest(path);
    digests[fs::path(path).filename().string()] = digest.ok() ? *digest : "unreadable";
  };
  for (const auto& year : results.years) {
    for (const std::string& file : year.exported_files) add(file);
    add(year.map_file);
  }
  add(results.final_map_file);
  return digests;
}

/// Deployment leg: the case-study topology deployed while the DLS injects
/// two transfer faults; the orchestrator's retry discipline absorbs them.
bool deploy_under_flaky_dls(const std::shared_ptr<climate::common::fault::Injector>& faults,
                            int* dls_attempts) {
  namespace hw = climate::hpcwaas;
  hw::ContainerImageService images;
  hw::DataLogisticsService dls;
  hw::DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  hw::DataStep step;
  step.kind = hw::DataStep::Kind::kGenerate;
  step.destination = "/tmp/bench_e9/forcing_staged.nc";
  step.generator = [](const std::string& path) {
    return climate::esm::ForcingTable::from_scenario(climate::esm::Scenario::kSsp585, 2015, 4)
        .save(path);
  };
  pipeline.steps.push_back(std::move(step));
  dls.register_pipeline(pipeline);
  dls.set_fault_injector(faults);

  hw::Orchestrator orchestrator(images, dls);
  orchestrator.set_fault_injector(faults);
  auto topology = hw::parse_topology(climate::core::case_study_topology_yaml());
  if (!topology.ok()) {
    std::printf("topology parse failed: %s\n", topology.status().to_string().c_str());
    return false;
  }
  const hw::Deployment deployment = orchestrator.deploy(*topology);
  for (const hw::DeploymentStep& s : deployment.steps) {
    if (s.kind == hw::NodeKind::kDataPipeline) *dls_attempts = s.attempts;
  }
  if (!deployment.ok()) {
    std::printf("deployment failed: %s\n", deployment.steps.back().status.to_string().c_str());
  }
  return deployment.ok();
}

}  // namespace

int main() {
  std::printf("=== E9: end-to-end workflow under the standard chaos plan ===\n");
  std::printf("E2 configuration (3 years, 48x72, 16-day years, 4 workers, streaming,\n"
              "analysis +120 ms/task) — fault-free baseline vs chaos run with task\n"
              "retries, node-failure recovery and service retry armed\n\n");
  const std::string base = "/tmp/bench_e9";
  fs::remove_all(base);
  fs::create_directories(base);

  // Fault-free baseline.
  auto clean = ExtremeEventsWorkflow(e2_config(base + "/clean")).run();
  if (!clean.ok()) {
    std::printf("fault-free run failed: %s\n", clean.status().to_string().c_str());
    return 1;
  }

  // Chaos run: same seed and grid, standard plan, recovery armed.
  auto plan = climate::common::fault::Plan::parse(kStandardPlan);
  if (!plan.ok()) {
    std::printf("bad plan: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  auto faults = std::make_shared<climate::common::fault::Injector>(*plan);
  WorkflowConfig chaos_config = e2_config(base + "/chaos");
  chaos_config.faults = faults;
  chaos_config.task_retries = 4;
  auto chaos = ExtremeEventsWorkflow(chaos_config).run();
  const bool chaos_ok = chaos.ok();
  if (!chaos_ok) {
    std::printf("chaos run failed: %s\n", chaos.status().to_string().c_str());
  }

  // Deployment leg under the remaining dls_error budget of the same plan.
  int dls_attempts = 0;
  const bool deploy_ok = deploy_under_flaky_dls(faults, &dls_attempts);

  // Gate 2: byte-identical artifacts.
  bool identical = false;
  std::size_t artifact_count = 0;
  if (chaos_ok) {
    const auto clean_digests = artifact_digests(*clean);
    const auto chaos_digests = artifact_digests(*chaos);
    identical = !clean_digests.empty() && clean_digests == chaos_digests;
    artifact_count = clean_digests.size();
    if (!identical) {
      for (const auto& [name, digest] : clean_digests) {
        const auto it = chaos_digests.find(name);
        if (it == chaos_digests.end()) {
          std::printf("  missing artifact under chaos: %s\n", name.c_str());
        } else if (it->second != digest) {
          std::printf("  artifact differs: %s (%s vs %s)\n", name.c_str(), digest.c_str(),
                      it->second.c_str());
        }
      }
    }
  }

  // Gate 3: bounded makespan overhead.
  const double ratio = chaos_ok ? chaos->makespan_ms / clean->makespan_ms : 0.0;
  const bool bounded = chaos_ok && ratio <= 2.5;

  std::printf("%-34s %10.0f ms\n", "fault-free makespan", clean->makespan_ms);
  if (chaos_ok) {
    std::printf("%-34s %10.0f ms  (%.2fx, gate <= 2.5x)\n", "chaos makespan", chaos->makespan_ms,
                ratio);
    const auto& recovery = chaos->recovery;
    std::printf("%-34s %10llu\n", "faults injected (all layers)",
                static_cast<unsigned long long>(faults->injected_count()));
    std::printf("%-34s %10llu\n", "task retries consumed",
                static_cast<unsigned long long>(chaos->runtime_stats.retries));
    std::printf("%-34s %10llu\n", "node failures",
                static_cast<unsigned long long>(recovery.node_failures));
    std::printf("%-34s %10llu\n", "in-flight tasks rescheduled",
                static_cast<unsigned long long>(recovery.tasks_rescheduled));
    std::printf("%-34s %10llu\n", "data versions lost",
                static_cast<unsigned long long>(recovery.data_versions_lost));
    std::printf("%-34s %10llu\n", "tasks replayed (lineage)",
                static_cast<unsigned long long>(recovery.tasks_replayed));
    std::printf("%-34s %10zu identical\n", "artifacts compared", artifact_count);
  }
  std::printf("%-34s %10d attempts (injected DLS faults absorbed)\n",
              "deployment data pipeline", dls_attempts);

  const bool pass = chaos_ok && identical && bounded && deploy_ok && dls_attempts >= 2;
  std::printf("\nacceptance: chaos run ok (%s), byte-identical artifacts (%s), makespan\n"
              "%.2fx <= 2.5x (%s), deployment under flaky DLS ok (%s) -> %s\n",
              chaos_ok ? "yes" : "NO", identical ? "yes" : "NO", ratio, bounded ? "yes" : "NO",
              deploy_ok ? "yes" : "NO", pass ? "PASS" : "FAIL");
  std::printf("paper shape: transient task faults, a lost node and flaky services are\n"
              "absorbed inside the workflow — the run degrades in time, never in output.\n\n");

  Json::Object doc;
  auto plan_json = Json::parse(kStandardPlan);
  doc["plan"] = plan_json.ok() ? *plan_json : Json();
  doc["clean_makespan_ms"] = clean->makespan_ms;
  doc["chaos_makespan_ms"] = chaos_ok ? chaos->makespan_ms : -1.0;
  doc["makespan_ratio"] = ratio;
  doc["artifacts_compared"] = static_cast<std::int64_t>(artifact_count);
  doc["artifacts_identical"] = identical;
  doc["faults_injected"] = static_cast<std::int64_t>(faults->injected_count());
  if (chaos_ok) {
    doc["task_retries"] = static_cast<std::int64_t>(chaos->runtime_stats.retries);
    doc["node_failures"] = static_cast<std::int64_t>(chaos->recovery.node_failures);
    doc["tasks_rescheduled"] = static_cast<std::int64_t>(chaos->recovery.tasks_rescheduled);
    doc["data_versions_lost"] = static_cast<std::int64_t>(chaos->recovery.data_versions_lost);
    doc["tasks_replayed"] = static_cast<std::int64_t>(chaos->recovery.tasks_replayed);
    if (chaos->summary.contains("recovery")) doc["recovery"] = chaos->summary["recovery"];
  }
  doc["dls_step_attempts"] = static_cast<std::int64_t>(dls_attempts);
  doc["deploy_ok"] = deploy_ok;
  doc["pass"] = pass;
  const std::string json_path = "BENCH_e9.json";
  climate::obs::write_text_file(json_path, Json(std::move(doc)).dump_pretty() + "\n");
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}
