// A2 — container impact (paper future work, section 7: "the use of software
// containers for enabling fully portable workflows ... and the assessment
// of their impact on the climate simulation and processing performance").
//
// Runs the identical case study bare-metal and with simulated per-task
// container instantiation costs, reporting makespan inflation as a function
// of the start-up cost — plus the deployment-side numbers (image build and
// layer-cache behaviour) already exercised by the container service.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/workflow.hpp"
#include "hpcwaas/containers.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig container_config(const std::string& dir, double startup_ms) {
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 9;
  config.years = 2;
  config.output_dir = dir;
  config.workers = 3;
  config.run_ml_tc = false;
  config.container_startup_ms = startup_ms;
  return config;
}

void print_impact() {
  std::printf("=== A2: containerized vs bare-metal task execution ===\n");
  std::printf("2 years x 16 days, 48x72 grid, 3 workers\n\n");
  std::printf("%22s %14s %12s %10s\n", "container startup", "makespan [ms]", "tasks", "overhead");
  const std::string base = "/tmp/bench_a2";
  std::filesystem::remove_all(base);

  double baseline_ms = 0;
  for (double startup : {0.0, 5.0, 25.0, 100.0}) {
    WorkflowConfig config =
        container_config(base + "/s" + std::to_string(static_cast<int>(startup)), startup);
    auto results = ExtremeEventsWorkflow(config).run();
    if (!results.ok()) {
      std::printf("run failed: %s\n", results.status().to_string().c_str());
      return;
    }
    if (startup == 0.0) baseline_ms = results->makespan_ms;
    std::printf("%18.0f ms %14.0f %12zu %9.1f%%\n", startup, results->makespan_ms,
                results->trace.tasks().size(),
                100.0 * (results->makespan_ms - baseline_ms) / baseline_ms);
  }

  std::printf("\npaper shape: container start-up adds a per-task cost that matters for\n"
              "short analysis tasks but amortizes over the long simulation tasks; the\n"
              "deployment side is already containerized (image build cold/warm numbers\n"
              "in bench_fig1_hpcwaas).\n\n");
}

void BM_LayerCacheLookup(benchmark::State& state) {
  climate::hpcwaas::ContainerImageService images;
  climate::hpcwaas::ImageSpec spec;
  spec.name = "big-env";
  for (int i = 0; i < 24; ++i) spec.packages.push_back("pkg" + std::to_string(i));
  (void)images.build(spec);
  for (auto _ : state) {
    auto manifest = images.build(spec);  // all-warm rebuild
    benchmark::DoNotOptimize(manifest);
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_LayerCacheLookup);

}  // namespace

int main(int argc, char** argv) {
  print_impact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
