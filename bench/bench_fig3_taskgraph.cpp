// FIG2/FIG3 — the case-study workflow's runtime task graph.
//
// Reproduces Figure 3: builds and executes the climate-extremes workflow at
// reduced scale, prints the per-function task counts (the "circles per
// colour") and the dependency-edge count for 1 and 2 simulated years, and
// writes the Graphviz rendering. The paper's single-year graph has one task
// per function family (#1..#17) with the ESM/baseline tasks not repeated
// across years — verified in the printed counts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/workflow.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig graph_config(const std::string& dir, int years) {
  WorkflowConfig config;
  config.esm.nlat = 64;
  config.esm.nlon = 128;
  config.esm.days_per_year = 12;
  config.esm.seed = 5;
  config.years = years;
  config.output_dir = dir;
  config.workers = 4;
  config.run_ml_tc = true;
  config.tc_chunk_days = 6;
  return config;
}

void print_graphs() {
  std::printf("=== FIG3: runtime task graph of the extreme-events workflow ===\n");
  const std::string base = "/tmp/bench_fig3";
  std::filesystem::remove_all(base);

  // Pre-train once so the ML branch (#15/#16/#17) appears in the graph.
  const std::string weights = base + "/weights.bin";
  std::filesystem::create_directories(base);
  {
    WorkflowConfig config = graph_config(base, 1);
    auto loss = climate::core::pretrain_tc_localizer(config.esm, weights, 16, 4, 12);
    if (!loss.ok()) {
      std::printf("pretraining failed: %s\n", loss.status().to_string().c_str());
      return;
    }
  }

  for (int years : {1, 2}) {
    WorkflowConfig config = graph_config(base + "/y" + std::to_string(years), years);
    config.tc_weights_path = weights;
    auto results = ExtremeEventsWorkflow(config).run();
    if (!results.ok()) {
      std::printf("workflow failed: %s\n", results.status().to_string().c_str());
      return;
    }
    const auto counts = results->trace.counts_by_name();
    std::printf("\n--- %d simulated year(s): %zu tasks, %zu dependency edges ---\n", years,
                results->trace.tasks().size(), results->trace.edge_count());
    std::printf("%-28s %8s\n", "task function (colour)", "count");
    for (const auto& [name, count] : counts) {
      std::printf("%-28s %8zu\n", name.c_str(), count);
    }
    const std::string dot_path = base + "/workflow_" + std::to_string(years) + "y.dot";
    std::ofstream(dot_path) << results->trace.to_dot();
    std::printf("graph written to %s\n", dot_path.c_str());

    if (years == 2) {
      std::printf("\npaper claim: \"in case of multiple years, the number of tasks would be\n"
                  "repeated with the exception of the first four ones related to ESM run and\n"
                  "preliminary data loading\". Reproduced: per-year families double while\n"
                  "load_forcing and the two baseline loaders stay at 1 (the ESM task repeats\n"
                  "per year because each year is one iterative simulation segment).\n");
      std::printf("  load_forcing: %zu, load_baseline_heat: %zu, load_baseline_cold: %zu\n",
                  counts.at("load_forcing"), counts.at("load_baseline_heat"),
                  counts.at("load_baseline_cold"));
      std::printf("  heat_index_max: %zu, load_tmax: %zu, year_ready: %zu\n",
                  counts.at("heat_index_max"), counts.at("load_tmax"), counts.at("year_ready"));
    }
  }
  std::printf("\n");
}

void BM_GraphConstruction(benchmark::State& state) {
  // Scheduling overhead: submit a chain of N trivial tasks and drain it.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    climate::taskrt::RuntimeOptions options;
    options.workers = 2;
    climate::taskrt::Runtime rt(options);
    climate::taskrt::DataHandle data = rt.create_data(std::any(0));
    for (int i = 0; i < n; ++i) {
      rt.submit("noop", {climate::taskrt::InOut(data)},
                [](climate::taskrt::TaskContext& ctx) { ctx.set_out(0, ctx.in(0)); });
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphConstruction)->Arg(64)->Arg(256)->Arg(1024);

void BM_DotExport(benchmark::State& state) {
  climate::taskrt::RuntimeOptions options;
  options.workers = 2;
  climate::taskrt::Runtime rt(options);
  climate::taskrt::DataHandle data = rt.create_data(std::any(0));
  for (int i = 0; i < 200; ++i) {
    rt.submit("noop", {climate::taskrt::InOut(data)},
              [](climate::taskrt::TaskContext& ctx) { ctx.set_out(0, ctx.in(0)); });
  }
  rt.wait_all();
  const climate::taskrt::Trace trace = rt.trace();
  for (auto _ : state) {
    const std::string dot = trace.to_dot();
    benchmark::DoNotOptimize(dot);
  }
}
BENCHMARK(BM_DotExport);

}  // namespace

int main(int argc, char** argv) {
  print_graphs();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
