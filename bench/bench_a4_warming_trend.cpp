// A4 — the case study's scientific motivation (paper section 5.1, citing
// IPCC AR6: "an increase in their intensities and frequencies" of extremes
// under climate change). The whole point of running the workflow on future
// projections is that the indices respond to the scenario.
//
// Runs the same year (same weather noise) under increasing GHG forcing and
// reports the heat/cold-wave indices computed against the fixed reference
// baseline: heat-wave metrics must rise with warming and cold-wave metrics
// must fall.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "esm/climatology.hpp"
#include "esm/model.hpp"
#include "extremes/heatwaves.hpp"

namespace {

struct YearIndices {
  double heat_mean_count = 0;
  double heat_mean_freq = 0;
  double cold_mean_count = 0;
  double warming_c = 0;
};

YearIndices run_year(climate::esm::Scenario scenario, int start_year) {
  climate::esm::EsmConfig config;
  config.nlat = 48;
  config.nlon = 72;
  config.days_per_year = 120;
  config.seed = 31;  // identical weather noise across scenarios
  config.scenario = scenario;
  config.start_year = start_year;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(scenario, 2015, 100);

  climate::esm::EsmModel model(config, forcing);
  const climate::common::LatLonGrid grid(config.nlat, config.nlon);
  std::vector<climate::common::Field> tasmax_days, tasmin_days;
  for (int d = 0; d < config.days_per_year; ++d) {
    climate::esm::DailyFields day = model.run_day();
    tasmax_days.push_back(std::move(day.tasmax));
    tasmin_days.push_back(std::move(day.tasmin));
  }
  // Fixed reference baseline (pre-industrial-ish: zero GHG offset), the
  // "historical averages" all scenarios are compared against.
  const climate::extremes::Baseline baseline = climate::extremes::Baseline::analytic(
      grid, config.days_per_year, config.steps_per_day, 0.0);
  const auto heat = climate::extremes::compute_wave_indices(tasmax_days, baseline, true);
  const auto cold = climate::extremes::compute_wave_indices(tasmin_days, baseline, false);

  YearIndices out;
  out.heat_mean_count = heat.count.mean();
  out.heat_mean_freq = heat.frequency.mean();
  out.cold_mean_count = cold.count.mean();
  out.warming_c = forcing.warming_c(start_year, config.climate_sensitivity_c);
  return out;
}

void print_trend() {
  std::printf("=== A4: extreme indices respond to the GHG scenario (IPCC motivation) ===\n");
  std::printf("same weather noise, 48x72 grid, 120-day year, fixed reference baseline\n\n");
  std::printf("%-22s %10s %12s %12s %12s\n", "scenario @ year", "warming", "heat count",
              "heat freq", "cold count");

  struct Case {
    const char* label;
    climate::esm::Scenario scenario;
    int year;
  };
  const Case cases[] = {
      {"historical @ 2015", climate::esm::Scenario::kHistorical, 2015},
      {"ssp245 @ 2050", climate::esm::Scenario::kSsp245, 2050},
      {"ssp585 @ 2050", climate::esm::Scenario::kSsp585, 2050},
      {"ssp585 @ 2090", climate::esm::Scenario::kSsp585, 2090},
  };
  double previous_heat = -1;
  bool heat_monotone = true;
  for (const Case& c : cases) {
    const YearIndices idx = run_year(c.scenario, c.year);
    std::printf("%-22s %8.2f C %12.3f %12.3f %12.3f\n", c.label, idx.warming_c,
                idx.heat_mean_count, idx.heat_mean_freq, idx.cold_mean_count);
    if (idx.heat_mean_count < previous_heat) heat_monotone = false;
    previous_heat = idx.heat_mean_count;
  }
  std::printf("\npaper shape: IPCC AR6 (the case study's motivation) reports increasing\n"
              "intensity/frequency of heat extremes and decreasing cold extremes under\n"
              "warming. Reproduced: heat-wave count/frequency rise monotonically%s with\n"
              "the scenario's warming while cold-wave counts collapse.\n\n",
              heat_monotone ? "" : " (non-monotone on this draw)");
}

void BM_YearOfIndices(benchmark::State& state) {
  for (auto _ : state) {
    const YearIndices idx = run_year(climate::esm::Scenario::kSsp585, 2050);
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_YearOfIndices)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_trend();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
