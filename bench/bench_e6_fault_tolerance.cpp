// E6 — fault tolerance and task-level checkpointing (paper section 4.2.1):
// per-task failure policies and "a checkpointing mechanism at task level
// ... which enables to recover a failed execution from the last
// checkpointed task".
//
// Rows report (a) the overhead checkpointing adds to a clean run, (b) the
// recovery time of a rerun that restores analysis tasks from checkpoints,
// and (c) retry-policy behaviour under injected transient failures.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "core/workflow.hpp"
#include "taskrt/runtime.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig ft_config(const std::string& dir, const std::string& checkpoint_dir) {
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 20;
  config.esm.seed = 13;
  config.years = 2;
  config.output_dir = dir;
  config.workers = 3;
  config.run_ml_tc = false;
  config.checkpoint_dir = checkpoint_dir;
  return config;
}

void print_recovery() {
  std::printf("=== E6: checkpointing overhead and recovery ===\n");
  const std::string base = "/tmp/bench_e6";
  std::filesystem::remove_all(base);

  // Clean run without checkpointing.
  auto plain = ExtremeEventsWorkflow(ft_config(base + "/plain", "")).run();
  // Clean run with checkpointing enabled (pays serialization + writes).
  auto cold = ExtremeEventsWorkflow(ft_config(base + "/ckpt", base + "/store")).run();
  // Rerun with the populated store: analysis tasks restore.
  auto warm = ExtremeEventsWorkflow(ft_config(base + "/ckpt2", base + "/store")).run();
  if (!plain.ok() || !cold.ok() || !warm.ok()) {
    std::printf("run failed\n");
    return;
  }

  std::printf("\n%-36s %12s %16s %14s\n", "run", "makespan", "tasks executed", "from ckpt");
  std::printf("%-36s %9.0f ms %16llu %14llu\n", "no checkpointing", plain->makespan_ms,
              static_cast<unsigned long long>(plain->runtime_stats.tasks_executed),
              static_cast<unsigned long long>(plain->runtime_stats.tasks_from_checkpoint));
  std::printf("%-36s %9.0f ms %16llu %14llu\n", "checkpointing on (cold store)",
              cold->makespan_ms,
              static_cast<unsigned long long>(cold->runtime_stats.tasks_executed),
              static_cast<unsigned long long>(cold->runtime_stats.tasks_from_checkpoint));
  std::printf("%-36s %9.0f ms %16llu %14llu\n", "recovery rerun (warm store)",
              warm->makespan_ms,
              static_cast<unsigned long long>(warm->runtime_stats.tasks_executed),
              static_cast<unsigned long long>(warm->runtime_stats.tasks_from_checkpoint));
  std::printf("\ncheckpoint overhead on a clean run: %+.0f%%; recovery skipped %llu analysis\n"
              "tasks and avoided their recomputation entirely.\n",
              100.0 * (cold->makespan_ms - plain->makespan_ms) / plain->makespan_ms,
              static_cast<unsigned long long>(warm->runtime_stats.tasks_from_checkpoint));

  // Retry-policy behaviour under injected transient failures.
  std::printf("\n--- retry policy under injected transient failures ---\n");
  std::printf("%16s %12s %12s %10s\n", "failure rate", "tasks", "retries", "outcome");
  for (double rate : {0.0, 0.2, 0.4}) {
    climate::taskrt::RuntimeOptions options;
    options.workers = 2;
    climate::taskrt::Runtime rt(options);
    climate::common::Rng rng(77);
    std::atomic<int> injected{0};
    climate::taskrt::TaskOptions topts;
    topts.on_failure = climate::taskrt::FailurePolicy::kRetry;
    topts.max_retries = 8;
    std::vector<climate::taskrt::DataHandle> outs;
    std::mutex rng_mutex;
    for (int i = 0; i < 40; ++i) {
      climate::taskrt::DataHandle out = rt.create_data();
      outs.push_back(out);
      rt.submit("flaky", topts, {climate::taskrt::Out(out)},
                [&, i](climate::taskrt::TaskContext& ctx) {
                  bool fail;
                  {
                    std::lock_guard<std::mutex> lock(rng_mutex);
                    fail = rng.bernoulli(rate);
                  }
                  if (fail) {
                    injected.fetch_add(1);
                    throw std::runtime_error("transient fault");
                  }
                  ctx.set_out(0, std::any(i));
                });
    }
    bool ok = true;
    try {
      rt.wait_all();
    } catch (const climate::taskrt::WorkflowError&) {
      ok = false;
    }
    const auto stats = rt.stats();
    std::printf("%15.0f%% %12llu %12llu %10s\n", rate * 100,
                static_cast<unsigned long long>(stats.tasks_submitted),
                static_cast<unsigned long long>(stats.retries), ok ? "success" : "failed");
  }
  std::printf("\npaper shape: transient failures are absorbed by per-task retry without\n"
              "failing the workflow, and restart cost after a crash is bounded by the\n"
              "work since the last checkpointed task.\n\n");
}

void BM_CheckpointSaveLoad(benchmark::State& state) {
  const std::string dir = "/tmp/bench_e6_store";
  std::filesystem::remove_all(dir);
  climate::taskrt::CheckpointStore store(dir);
  const std::vector<std::string> outputs = {std::string(1 << 16, 'x')};
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 16);
    (void)store.save(key, outputs);
    auto loaded = store.load(key);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16) * 2);
}
BENCHMARK(BM_CheckpointSaveLoad);

}  // namespace

int main(int argc, char** argv) {
  print_recovery();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
