// E5 — TC localization pipeline (paper section 5.4): the pre-trained CNN
// detects TC presence and regresses the eye position from (psl, wind,
// vorticity, temperature) patches; a deterministic tracking scheme
// validates the results.
//
// Rows report detection skill (POD, FAR, mean centre error) for both
// methods against the simulator's injected ground truth, plus CNN inference
// throughput (patches/s and simulated-years/hour).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/workflow.hpp"
#include "esm/model.hpp"
#include "extremes/skill.hpp"
#include "extremes/tc_tracker.hpp"
#include "ml/tc_pipeline.hpp"

namespace {

climate::esm::EsmConfig season_config() {
  climate::esm::EsmConfig config;
  config.nlat = 64;
  config.nlon = 96;
  config.days_per_year = 365;
  config.tc_spawn_per_day = 0.7;
  config.seed = 11;
  return config;
}

const std::string kWeights = "/tmp/bench_e5.weights";

void ensure_weights() {
  if (std::filesystem::exists(kWeights)) return;
  std::printf("(pre-training the CNN on an independent historical run...)\n");
  auto loss = climate::core::pretrain_tc_localizer(season_config(), kWeights, 16, 8, 45);
  if (!loss.ok()) std::printf("pretraining failed: %s\n", loss.status().to_string().c_str());
}

void print_skill() {
  std::printf("=== E5: TC detection skill and inference throughput ===\n");
  ensure_weights();

  climate::esm::EsmConfig config = season_config();
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);
  const climate::common::LatLonGrid& grid = model.grid();

  climate::ml::TcLocalizer localizer(16, config.seed);
  if (!localizer.load(kWeights).ok()) {
    std::printf("cannot load weights; skipping\n");
    return;
  }

  const int days = 60;
  std::vector<std::vector<climate::extremes::TcCandidate>> per_step;
  std::vector<climate::extremes::DetectionFix> ml_fixes;
  // All detections with their confidences, for the threshold sweep.
  struct ScoredFix {
    climate::extremes::DetectionFix fix;
    float confidence;
  };
  std::vector<ScoredFix> scored_fixes;
  std::size_t patches_inferred = 0;
  double infer_ms = 0;
  for (int day = 0; day < days; ++day) {
    const climate::esm::DailyFields fields = model.run_day();
    for (int s = 0; s < config.steps_per_day; ++s) {
      const auto su = static_cast<std::size_t>(s);
      const int step = day * config.steps_per_day + s;
      per_step.push_back(climate::extremes::detect_candidates(
          fields.psl[su], fields.wspd[su], fields.vort850[su], grid, step));
      const auto t0 = std::chrono::steady_clock::now();
      auto patches = climate::ml::make_patches(fields.psl[su], fields.wspd[su],
                                               fields.vort850[su], fields.tas, 16);
      const auto outputs = localizer.infer(patches);
      infer_ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                      .count();
      patches_inferred += patches.size();
      for (std::size_t i = 0; i < patches.size(); ++i) {
        const double row = patches[i].row0 + outputs[i].row_frac * 16.0;
        const double col = patches[i].col0 + outputs[i].col_frac * 16.0;
        const climate::extremes::DetectionFix fix = {
            step, -90.0 + (row + 0.5) * 180.0 / grid.nlat(),
            (col + 0.5) * 360.0 / grid.nlon()};
        if (outputs[i].presence >= 0.5f) ml_fixes.push_back(fix);
        if (outputs[i].presence >= 0.2f) scored_fixes.push_back({fix, outputs[i].presence});
      }
    }
  }
  const auto tracks = climate::extremes::link_tracks(per_step, config.steps_per_day);
  std::vector<climate::extremes::DetectionFix> track_fixes;
  for (const auto& track : tracks) {
    for (const auto& fix : track.fixes) track_fixes.push_back({fix.step, fix.lat, fix.lon});
  }
  const auto ml_skill = climate::extremes::score_detections(ml_fixes, model.events().cyclones);
  const auto tracker_skill =
      climate::extremes::score_detections(track_fixes, model.events().cyclones);

  std::printf("\n%d days, %zu ground-truth cyclones, %zu truth fixes\n", days,
              model.events().cyclones.size(),
              climate::extremes::truth_fixes(model.events().cyclones).size());
  std::printf("%-24s %8s %8s %14s %10s\n", "method", "POD", "FAR", "centre err", "fixes");
  std::printf("%-24s %8.2f %8.2f %11.0f km %10zu\n", "deterministic tracker", tracker_skill.pod(),
              tracker_skill.far(), tracker_skill.mean_center_error_km, track_fixes.size());
  std::printf("%-24s %8.2f %8.2f %11.0f km %10zu\n", "CNN localizer", ml_skill.pod(),
              ml_skill.far(), ml_skill.mean_center_error_km, ml_fixes.size());

  // Tunable recall: the presence-threshold sweep.
  std::printf("\nCNN presence-threshold sweep (the recall/precision dial):\n");
  std::printf("%12s %8s %8s %10s\n", "threshold", "POD", "FAR", "fixes");
  for (float threshold : {0.3f, 0.5f, 0.7f, 0.9f}) {
    std::vector<climate::extremes::DetectionFix> kept;
    for (const ScoredFix& sf : scored_fixes) {
      if (sf.confidence >= threshold) kept.push_back(sf.fix);
    }
    const auto sweep = climate::extremes::score_detections(kept, model.events().cyclones);
    std::printf("%12.1f %8.2f %8.2f %10zu\n", static_cast<double>(threshold), sweep.pod(),
                sweep.far(), kept.size());
  }

  const double patches_per_s = patches_inferred / (infer_ms / 1000.0);
  const double steps_per_year = 365.0 * config.steps_per_day;
  const double patches_per_step = 24.0;  // 4x6 patches at 64x96/16
  std::printf("\nCNN inference throughput: %.0f patches/s (~%.1f simulated years/hour)\n",
              patches_per_s, patches_per_s * 3600.0 / (steps_per_year * patches_per_step));
  std::printf("\npaper shape: both detectors localize the injected cyclones; the\n"
              "deterministic scheme validates the ML detections (the workflow's\n"
              "validate_store counts agreement), and the CNN adds tunable recall via\n"
              "its presence threshold.\n\n");
}

void BM_CnnInference(benchmark::State& state) {
  ensure_weights();
  climate::ml::TcLocalizer localizer(16, 1);
  (void)localizer.load(kWeights);
  climate::common::LatLonGrid grid(64, 96);
  climate::common::Field psl(grid, 1010.0f), wspd(grid, 8.0f), vort(grid, 0.5f),
      tas(grid, 22.0f);
  auto patches = climate::ml::make_patches(psl, wspd, vort, tas, 16);
  for (auto _ : state) {
    auto outputs = localizer.infer(patches);
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(patches.size()));
}
BENCHMARK(BM_CnnInference);

void BM_DeterministicDetection(benchmark::State& state) {
  climate::common::LatLonGrid grid(64, 96);
  climate::common::Field psl(grid, 1010.0f), wspd(grid, 8.0f), vort(grid, 0.5f);
  for (auto _ : state) {
    auto candidates = climate::extremes::detect_candidates(psl, wspd, vort, grid, 0);
    benchmark::DoNotOptimize(candidates);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_DeterministicDetection);

}  // namespace

int main(int argc, char** argv) {
  print_skill();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
