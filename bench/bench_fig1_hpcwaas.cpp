// FIG1 — HPCWaaS methodology walkthrough (paper Figure 1).
//
// Reproduces the develop -> deploy -> execute lifecycle and times each
// stage: TOSCA parsing, container image creation (cold vs warm cache), the
// deployment-time data pipeline, workflow registration, and the end-user
// invocation through the Execution API. The paper reports no absolute
// numbers for Figure 1; the reproduced shape is the lifecycle itself plus
// the expected cold/warm image-build asymmetry.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/workflow.hpp"
#include "esm/forcing.hpp"
#include "hpcwaas/service.hpp"
#include "hpcwaas/yaml.hpp"

namespace {

using climate::common::Json;
namespace hw = climate::hpcwaas;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void print_walkthrough() {
  std::printf("=== FIG1: HPCWaaS develop->deploy->execute lifecycle ===\n");
  const std::string dir = "/tmp/bench_fig1";
  std::filesystem::create_directories(dir);

  // Stage 1: the developer's topology is parsed and validated.
  auto t0 = std::chrono::steady_clock::now();
  auto topology = hw::parse_topology(climate::core::case_study_topology_yaml());
  const double parse_ms = ms_since(t0);
  if (!topology.ok()) {
    std::printf("topology parse failed: %s\n", topology.status().to_string().c_str());
    return;
  }
  std::printf("%-34s %10.3f ms   (%zu nodes, %zu inputs)\n", "parse+validate TOSCA topology",
              parse_ms, topology->nodes.size(), topology->inputs.size());

  hw::HpcWaasService service;
  hw::DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  pipeline.steps.push_back({hw::DataStep::Kind::kGenerate, "", dir + "/forcing.nc",
                            [](const std::string& path) {
                              return climate::esm::ForcingTable::from_scenario(
                                         climate::esm::Scenario::kSsp585, 2015, 40)
                                  .save(path);
                            },
                            ""});
  service.dls().register_pipeline(pipeline);

  // Stage 2: deployment (cold image cache).
  t0 = std::chrono::steady_clock::now();
  auto workflow_id = service.deploy_workflow(climate::core::case_study_topology_yaml(),
                                             [](const Json&) {
                                               Json out = Json::object();
                                               out["ok"] = true;
                                               return out;
                                             });
  const double cold_deploy_ms = ms_since(t0);
  if (!workflow_id.ok()) {
    std::printf("deployment failed: %s\n", workflow_id.status().to_string().c_str());
    return;
  }
  double cold_simulated_build = 0;
  std::size_t layers = 0;
  for (const auto& entry : service.workflows()) {
    for (const std::string& id : entry.deployment.image_ids) {
      auto manifest = service.images().get(id);
      if (manifest.ok()) {
        cold_simulated_build += manifest->build_ms;
        layers += manifest->layers.size();
      }
    }
  }
  std::printf("%-34s %10.3f ms   (3 images, %zu layers, %.0f ms simulated compile)\n",
              "deploy (cold image cache)", cold_deploy_ms, layers, cold_simulated_build);

  // Stage 2b: re-deployment (warm cache): every layer hits.
  t0 = std::chrono::steady_clock::now();
  auto second = service.deploy_workflow(climate::core::case_study_topology_yaml(),
                                        [](const Json&) { return Json(); });
  const double warm_deploy_ms = ms_since(t0);
  double warm_simulated_build = 0;
  std::size_t cache_hits = 0;
  if (second.ok()) {
    for (const auto& entry : service.workflows()) {
      if (entry.id != *second) continue;
      for (const std::string& id : entry.deployment.image_ids) {
        auto manifest = service.images().get(id);
        if (manifest.ok()) {
          warm_simulated_build += manifest->build_ms;
          cache_hits += manifest->cache_hits;
        }
      }
    }
  }
  std::printf("%-34s %10.3f ms   (%zu layer cache hits, %.0f ms simulated compile)\n",
              "re-deploy (warm image cache)", warm_deploy_ms, cache_hits, warm_simulated_build);

  // Stage 3: invocation through the Execution API.
  t0 = std::chrono::steady_clock::now();
  Json params = Json::object();
  auto exec = service.invoke(*workflow_id, params);
  const double invoke_ms = ms_since(t0);
  if (exec.ok()) {
    (void)service.wait(*exec);
    auto record = service.execution(*exec);
    std::printf("%-34s %10.3f ms   (state %s)\n", "invoke via Execution API", invoke_ms,
                record.ok() ? hw::execution_state_name(record->state) : "?");
    auto job = service.batch().info(record->job);
    if (job.ok()) {
      std::printf("%-34s %10.3f ms\n", "batch queue wait",
                  static_cast<double>(job->queue_wait_ns()) / 1e6);
    }
  }

  std::printf("\npaper claim: the developer deploys once from the TOSCA description; the\n"
              "end user then runs the workflow as a simple REST invocation. Reproduced:\n"
              "warm re-deployment pays zero simulated compile time (%.0f -> %.0f ms) and\n"
              "invocation overhead is negligible next to workflow execution.\n\n",
              cold_simulated_build, warm_simulated_build);
}

void BM_TopologyParse(benchmark::State& state) {
  const std::string yaml = climate::core::case_study_topology_yaml();
  for (auto _ : state) {
    auto topology = hw::parse_topology(yaml);
    benchmark::DoNotOptimize(topology);
  }
}
BENCHMARK(BM_TopologyParse);

void BM_ImageBuildWarm(benchmark::State& state) {
  hw::ContainerImageService images;
  hw::ImageSpec spec;
  spec.name = "env";
  spec.packages = {"pycompss", "pyophidia", "tensorflow", "numpy"};
  (void)images.build(spec);  // prime the cache
  for (auto _ : state) {
    auto manifest = images.build(spec);
    benchmark::DoNotOptimize(manifest);
  }
}
BENCHMARK(BM_ImageBuildWarm);

void BM_RestDispatch(benchmark::State& state) {
  hw::HpcWaasService service;
  for (auto _ : state) {
    auto response = service.handle("GET", "/workflows", Json());
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_RestDispatch);

}  // namespace

int main(int argc, char** argv) {
  print_walkthrough();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
