// A3 — locality-aware scheduling ablation (paper section 3: integration
// "can allow for better optimization in terms of data movement and access.
// Data could be, in fact, kept in memory and moved to other nodes as the
// workflow progresses").
//
// A pipeline of per-partition task chains moves large intermediates between
// stages. With locality-aware placement each chain stays on the node that
// holds its data; with round-robin placement every stage hop re-replicates
// the intermediate. Rows report replica transfers, bytes moved and wall
// time for both policies under a simulated interconnect cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "taskrt/runtime.hpp"

namespace {

using climate::taskrt::DataHandle;
using climate::taskrt::In;
using climate::taskrt::Out;
using climate::taskrt::Runtime;
using climate::taskrt::RuntimeOptions;
using climate::taskrt::TaskContext;

struct RunStats {
  double wall_ms = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
};

RunStats run_pipeline(bool locality_aware) {
  constexpr std::size_t kPartitions = 8;
  constexpr std::size_t kStages = 6;
  constexpr std::size_t kBytes = 4 << 20;  // 4 MB intermediates

  RuntimeOptions options;
  options.workers = 4;
  options.locality_aware = locality_aware;
  options.transfer_ns_per_byte = 2.0;  // ~500 MB/s interconnect
  Runtime rt(options);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < kPartitions; ++p) {
    DataHandle data = rt.create_data(std::any(std::vector<float>(kBytes / 4, 1.0f)), kBytes);
    for (std::size_t stage = 0; stage < kStages; ++stage) {
      DataHandle next = rt.create_data();
      rt.submit("stage", {In(data), Out(next)}, [](TaskContext& ctx) {
        auto values = ctx.in_as<std::vector<float>>(0);
        for (float& v : values) v *= 1.0001f;
        const std::size_t bytes = values.size() * sizeof(float);
        ctx.set_out(1, std::any(std::move(values)), bytes);
      });
      data = next;
    }
  }
  rt.wait_all();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  stats.transfers = rt.stats().transfers;
  stats.bytes = rt.stats().bytes_transferred;
  return stats;
}

void print_comparison() {
  std::printf("=== A3: locality-aware vs round-robin task placement ===\n");
  std::printf("8 partition chains x 6 stages, 4 MB intermediates, 4 nodes, "
              "simulated 500 MB/s interconnect\n\n");
  std::printf("%16s %12s %14s %12s\n", "policy", "transfers", "bytes moved", "wall [ms]");
  const RunStats locality = run_pipeline(true);
  const RunStats round_robin = run_pipeline(false);
  std::printf("%16s %12llu %11.1f MB %12.0f\n", "locality-aware",
              static_cast<unsigned long long>(locality.transfers),
              static_cast<double>(locality.bytes) / (1024 * 1024), locality.wall_ms);
  std::printf("%16s %12llu %11.1f MB %12.0f\n", "round-robin",
              static_cast<unsigned long long>(round_robin.transfers),
              static_cast<double>(round_robin.bytes) / (1024 * 1024), round_robin.wall_ms);
  std::printf("\npaper shape: keeping data where it was produced eliminates most\n"
              "inter-node replica traffic (%.1fx fewer bytes moved here), which is the\n"
              "data-movement optimization the paper attributes to single-WMS\n"
              "integration.\n\n",
              static_cast<double>(round_robin.bytes) / std::max<std::uint64_t>(1, locality.bytes));
}

void BM_PipelineLocality(benchmark::State& state) {
  for (auto _ : state) {
    const RunStats stats = run_pipeline(state.range(0) != 0);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PipelineLocality)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
