// FIG4 — the Heat Wave Number indicator map for one year of simulation data
// (paper Figure 4), regenerated via the Listing-1 datacube pipeline inside
// the end-to-end workflow. Prints the map (ASCII) plus the summary rows a
// reader checks the figure against (value range, spatial coverage), and
// writes the PGM artifact.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "common/image.hpp"
#include "core/workflow.hpp"
#include "extremes/heatwaves.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

void print_map() {
  std::printf("=== FIG4: Heat Wave Number map for one simulated year ===\n");
  const std::string dir = "/tmp/bench_fig4";
  std::filesystem::remove_all(dir);

  WorkflowConfig config;
  config.esm.nlat = 64;
  config.esm.nlon = 96;
  config.esm.days_per_year = 120;  // a third of a year keeps the bench quick
  config.esm.seed = 17;
  config.years = 1;
  config.output_dir = dir;
  config.workers = 2;
  config.run_ml_tc = false;
  config.run_deterministic_tc = false;

  auto results = ExtremeEventsWorkflow(config).run();
  if (!results.ok()) {
    std::printf("workflow failed: %s\n", results.status().to_string().c_str());
    return;
  }
  const climate::common::Field& count = results->years[0].heat.count;
  const climate::common::Field& duration = results->years[0].heat.duration_max;

  std::printf("\nheat wave number, year %d (%zux%zu grid, %d days):\n%s\n",
              results->years[0].year, count.nlat(), count.nlon(), config.esm.days_per_year,
              climate::common::ascii_map(count, 72).c_str());

  std::size_t cells_with_wave = 0;
  for (float v : count.data()) cells_with_wave += v > 0 ? 1 : 0;
  const double coverage = 100.0 * static_cast<double>(cells_with_wave) /
                          static_cast<double>(count.size());
  std::printf("%-38s %8.2f\n", "mean waves per grid point", count.mean());
  std::printf("%-38s %8.0f\n", "maximum waves at one point", static_cast<double>(count.max()));
  std::printf("%-38s %7.1f%%\n", "area with at least one wave", coverage);
  std::printf("%-38s %8.0f\n", "longest wave anywhere [days]",
              static_cast<double>(duration.max()));
  std::printf("%-38s %8zu\n", "injected heat-wave events (truth)",
              results->truth.heat_wave_count());
  std::printf("\npaper shape: Figure 4 shows a map with small integer counts (0..~5) in\n"
              "localized patches over the globe. Reproduced: localized patches at the\n"
              "seeded blocking events, small integer counts, most of the map at zero.\n");
  std::printf("PGM artifact: %s\n\n", results->years[0].map_file.c_str());
}

void BM_WaveIndicesReference(benchmark::State& state) {
  // Cost of the reference (non-datacube) index computation per year.
  const std::size_t nlat = 64, nlon = 96;
  const int days = static_cast<int>(state.range(0));
  climate::common::LatLonGrid grid(nlat, nlon);
  climate::extremes::Baseline baseline = climate::extremes::Baseline::analytic(grid, days, 4);
  climate::common::Rng rng(3);
  std::vector<climate::common::Field> series;
  for (int d = 0; d < days; ++d) {
    climate::common::Field field(grid);
    for (std::size_t i = 0; i < grid.nlat(); ++i) {
      for (std::size_t j = 0; j < grid.nlon(); ++j) {
        field.at(i, j) = baseline.tasmax(i, j, d) + static_cast<float>(rng.normal(2.0, 3.0));
      }
    }
    series.push_back(std::move(field));
  }
  for (auto _ : state) {
    auto indices = climate::extremes::compute_wave_indices(series, baseline, true);
    benchmark::DoNotOptimize(indices);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(grid.size()) * days);
}
BENCHMARK(BM_WaveIndicesReference)->Arg(120)->Arg(365);

}  // namespace

int main(int argc, char** argv) {
  print_map();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
