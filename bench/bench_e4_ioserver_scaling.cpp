// E4 — scaling the datacube I/O servers (paper section 4.2.2): "the number
// of Ophidia computing components can be scaled up, also dynamically, over
// multiple nodes of the infrastructure to address more intensive data
// analytics workloads".
//
// Two regimes are reported:
//  - compute-bound in-memory operators (reduce/apply over a year-size cube):
//    scaling tracks the physical core count of the host;
//  - latency-bound fragment processing (each fragment access pays a
//    simulated storage round-trip): more I/O servers hide latency even on a
//    single core, which is the regime the original distributed deployment
//    targets.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/thread_pool.hpp"
#include "datacube/server.hpp"
#include "obs/obs.hpp"
#include "obs/prof/profile.hpp"

namespace {

namespace dc = climate::datacube;

std::string make_year_cube(dc::Server& server) {
  // 48x72 grid x 365 days ~ 1.26M elements.
  const std::size_t rows = 48 * 72;
  const std::size_t days = 365;
  std::vector<float> dense(rows * days);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<float>((i * 2654435761u) % 1000) * 0.01f;
  }
  return *server.create_cube("tasmax", {{"cell", rows, {}}}, {"day", days, {}}, dense, "");
}

// Writes the Perfetto trace of the in-memory operator pipeline (the datacube
// spans recorded during print_scaling) plus the Prometheus metric snapshot.
void emit_trace_artifacts() {
  namespace obs = climate::obs;
  const std::string trace_path = "/tmp/bench_e4_trace.perfetto.json";
  const std::string prom_path = "/tmp/bench_e4_metrics.prom";
  const auto spans = obs::SpanCollector::global().snapshot();
  obs::write_text_file(trace_path, obs::chrome_trace_json(spans));
  obs::write_text_file(prom_path, obs::prometheus_text(obs::MetricsRegistry::global().snapshot()));
  std::printf("Perfetto trace of the operator pipeline: %s\n", trace_path.c_str());
  std::printf("Prometheus metrics snapshot:             %s\n\n", prom_path.c_str());
  // Span-level attribution of the pipeline (which operators dominated).
  std::printf("%s\n", obs::prof::profile_spans(spans).text_report().c_str());
}

void print_scaling() {
  climate::obs::SpanCollector::global().clear();
  climate::obs::MetricsRegistry::global().reset();
  std::printf("=== E4: datacube throughput vs number of I/O servers ===\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host has %u hardware core(s)\n\n", cores);

  std::printf("--- in-memory operator pipeline (reduce max + apply predicate + reduce sum) ---\n");
  std::printf("%12s %12s %14s %9s\n", "io servers", "wall [ms]", "Melems/s", "speedup");
  double base_ms = 0;
  for (std::size_t servers : {1u, 2u, 4u, 8u}) {
    dc::Server server(servers);
    const std::string pid = make_year_cube(server);
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < 3; ++round) {
      auto reduced = server.reduce(pid, dc::ReduceOp::kMax);
      auto mask = server.apply(pid, "predicate(x, '>5', 1, 0)");
      auto total = server.reduce(*mask, dc::ReduceOp::kSum);
      (void)server.delete_cube(*reduced);
      (void)server.delete_cube(*mask);
      (void)server.delete_cube(*total);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (servers == 1) base_ms = ms;
    const double elems = 3.0 * 3.0 * 48 * 72 * 365;  // rounds x operators x cube
    std::printf("%12zu %12.1f %14.1f %8.2fx\n", servers, ms, elems / ms / 1e3, base_ms / ms);
  }

  std::printf("\n--- latency-bound fragment access (0.5 ms simulated storage RTT/fragment) ---\n");
  std::printf("%12s %12s %9s\n", "io servers", "wall [ms]", "speedup");
  const std::size_t fragments = 64;
  double latency_base = 0;
  for (std::size_t servers : {1u, 2u, 4u, 8u}) {
    climate::common::ThreadPool pool(servers);
    const auto t0 = std::chrono::steady_clock::now();
    pool.parallel_for(fragments, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    });
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (servers == 1) latency_base = ms;
    std::printf("%12zu %12.1f %8.2fx\n", servers, ms, latency_base / ms);
  }
  std::printf("\npaper shape: adding I/O servers increases analytics throughput. On this\n"
              "host the compute-bound regime is capped by the physical core count, while\n"
              "the latency-bound regime shows the architectural near-linear scaling the\n"
              "distributed deployment exploits.\n\n");
}

void BM_ReduceByServers(benchmark::State& state) {
  dc::Server server(static_cast<std::size_t>(state.range(0)));
  const std::string pid = make_year_cube(server);
  for (auto _ : state) {
    auto reduced = server.reduce(pid, dc::ReduceOp::kMax);
    if (reduced.ok()) (void)server.delete_cube(*reduced);
  }
  state.SetItemsProcessed(state.iterations() * 48 * 72 * 365);
}
BENCHMARK(BM_ReduceByServers)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  emit_trace_artifacts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
