// E7 — streaming year detection (paper section 5.2): "a streaming interface
// available in PyCOMPSs has been leveraged to monitor the file production
// progress and detect when a (full) new year of data is available", so
// analysis starts as soon as each year completes instead of after the whole
// simulation.
//
// Rows report, per simulated year, the lag between the simulation task that
// produced the year and the start of that year's first analysis task — for
// the streaming workflow and for the staged baseline (where every year
// waits for the full simulation).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/workflow.hpp"
#include "taskrt/stream.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;
using climate::taskrt::TaskTrace;

WorkflowConfig stream_config(const std::string& dir, bool streaming) {
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 29;
  config.years = 3;
  config.output_dir = dir;
  config.workers = 3;
  config.streaming = streaming;
  config.run_ml_tc = false;
  return config;
}

/// Per-year lag from the end of year y's simulation task to the start of
/// its year_ready task.
std::vector<double> year_ready_lags_ms(const climate::taskrt::Trace& trace) {
  std::vector<const TaskTrace*> sims;
  std::vector<const TaskTrace*> readies;
  for (const TaskTrace& task : trace.tasks()) {
    if (task.name == "esm_simulation") sims.push_back(&task);
    if (task.name == "year_ready") readies.push_back(&task);
  }
  // Both are submitted in year order.
  std::vector<double> lags;
  for (std::size_t y = 0; y < std::min(sims.size(), readies.size()); ++y) {
    lags.push_back(static_cast<double>(readies[y]->start_ns - sims[y]->end_ns) / 1e6);
  }
  return lags;
}

void print_lags() {
  std::printf("=== E7: analysis start lag after each simulated year ===\n");
  std::printf("3 years x 16 days, 48x72 grid\n\n");
  const std::string base = "/tmp/bench_e7";
  std::filesystem::remove_all(base);

  auto streaming = ExtremeEventsWorkflow(stream_config(base + "/streaming", true)).run();
  auto staged = ExtremeEventsWorkflow(stream_config(base + "/staged", false)).run();
  if (!streaming.ok() || !staged.ok()) {
    std::printf("run failed\n");
    return;
  }
  const auto streaming_lags = year_ready_lags_ms(streaming->trace);
  const auto staged_lags = year_ready_lags_ms(staged->trace);
  std::printf("%6s %26s %26s\n", "year", "streaming lag [ms]", "staged lag [ms]");
  for (std::size_t y = 0; y < streaming_lags.size(); ++y) {
    std::printf("%6zu %26.1f %26.1f\n", y,
                streaming_lags[y], y < staged_lags.size() ? staged_lags[y] : -1.0);
  }
  std::printf("\nmakespan: streaming %.0f ms vs staged %.0f ms\n", streaming->makespan_ms,
              staged->makespan_ms);
  std::printf("\npaper shape: with streaming, every year's analysis starts within the\n"
              "watcher's polling latency of the year completing (milliseconds), while\n"
              "staged execution delays early years by the remaining simulation time —\n"
              "the lag shrinks towards the last year and the streaming advantage is\n"
              "largest for the first year.\n\n");
}

void BM_WatcherPollRound(benchmark::State& state) {
  // Cost of one polling round over a directory with N files.
  const std::string dir = "/tmp/bench_e7_poll";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (int i = 0; i < state.range(0); ++i) {
    std::ofstream(dir + "/f" + std::to_string(i) + ".nc") << "x";
  }
  for (auto _ : state) {
    std::size_t seen = 0;
    {
      climate::taskrt::DirectoryWatcher watcher(
          dir, ".nc", [&](const std::string&) { ++seen; }, std::chrono::hours(1));
      watcher.stop();
    }
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WatcherPollRound)->Arg(100)->Arg(365);

}  // namespace

int main(int argc, char** argv) {
  print_lags();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
