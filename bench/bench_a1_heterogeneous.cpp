// A1 — heterogeneous execution (paper future work, section 7: "the
// different parts of the workflow could be run on different infrastructures
// according to their requirements, using, for instance, large HPC systems
// for the ESM simulation, data-oriented/Cloud systems for Big Data
// processing and GPU-partitions for the ML-based models").
//
// Runs the case study on (a) a homogeneous pool and (b) a heterogeneous
// deployment with "hpc"/"data"/"gpu" node classes and per-family
// constraints, then reports where every task family actually ran and the
// makespan of both setups.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "core/workflow.hpp"

namespace {

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig hetero_config(const std::string& dir, bool heterogeneous) {
  WorkflowConfig config;
  config.esm.nlat = 64;
  config.esm.nlon = 128;
  config.esm.days_per_year = 12;
  config.esm.seed = 5;
  config.years = 2;
  config.output_dir = dir;
  config.workers = 5;  // homogeneous pool size == hpc+data+gpu below
  config.heterogeneous = heterogeneous;
  config.hpc_nodes = 2;
  config.data_nodes = 2;
  config.gpu_nodes = 1;
  config.run_ml_tc = true;
  config.tc_chunk_days = 6;
  return config;
}

void print_placement() {
  std::printf("=== A1: heterogeneous deployment (future work of section 7) ===\n");
  const std::string base = "/tmp/bench_a1";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  const std::string weights = base + "/weights.bin";
  {
    WorkflowConfig config = hetero_config(base, false);
    auto loss = climate::core::pretrain_tc_localizer(config.esm, weights, 16, 4, 12);
    if (!loss.ok()) {
      std::printf("pretraining failed: %s\n", loss.status().to_string().c_str());
      return;
    }
  }

  for (bool heterogeneous : {false, true}) {
    WorkflowConfig config = hetero_config(
        base + (heterogeneous ? "/hetero" : "/homog"), heterogeneous);
    config.tc_weights_path = weights;
    auto results = ExtremeEventsWorkflow(config).run();
    if (!results.ok()) {
      std::printf("workflow failed: %s\n", results.status().to_string().c_str());
      return;
    }
    std::printf("\n--- %s (makespan %.0f ms) ---\n",
                heterogeneous ? "heterogeneous: 2x hpc, 2x data, 1x gpu"
                              : "homogeneous: 5 identical nodes",
                results->makespan_ms);
    // Node-class occupancy per task family.
    std::map<std::string, std::map<int, int>> placement;
    for (const auto& task : results->trace.tasks()) {
      if (task.node >= 0) ++placement[task.name][task.node];
    }
    auto node_class = [&](int node) {
      if (!heterogeneous) return "any";
      if (node < 2) return "hpc";
      if (node < 4) return "data";
      return "gpu";
    };
    for (const char* family : {"esm_simulation", "load_tmax", "heat_duration",
                               "tc_preprocess", "tc_inference", "validate_store"}) {
      auto it = placement.find(family);
      if (it == placement.end()) continue;
      std::printf("%-26s ->", family);
      for (const auto& [node, count] : it->second) {
        std::printf(" node%d(%s) x%d", node, node_class(node), count);
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper shape: with per-family constraints, the simulation runs only on\n"
              "the hpc class, the analytics on the data class, and CNN inference on\n"
              "the gpu node — the placement the HPCWaaS stack would realize across\n"
              "geographically distributed infrastructures.\n\n");
}

void BM_ConstraintScheduling(benchmark::State& state) {
  // Overhead of constraint matching at dispatch time.
  for (auto _ : state) {
    climate::taskrt::RuntimeOptions options;
    for (int n = 0; n < 4; ++n) {
      climate::taskrt::NodeSpec spec;
      spec.name = "n" + std::to_string(n);
      spec.cores = 1;
      spec.tags = {n % 2 ? "data" : "hpc"};
      options.nodes.push_back(std::move(spec));
    }
    climate::taskrt::Runtime rt(options);
    climate::taskrt::TaskOptions data_task;
    data_task.constraints = {"data"};
    for (int i = 0; i < 64; ++i) {
      climate::taskrt::DataHandle out = rt.create_data();
      rt.submit("constrained", data_task, {climate::taskrt::Out(out)},
                [](climate::taskrt::TaskContext& ctx) { ctx.set_out(0, std::any(1)); });
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ConstraintScheduling);

}  // namespace

int main(int argc, char** argv) {
  print_placement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
