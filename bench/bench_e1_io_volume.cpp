// E1 — output data volume (paper section 5.2): "daily NetCDF files of size
// 271 MB with dimensions of 768 (latitudes) x 1152 (longitudes) x 4
// (6-hourly timesteps) including around 20 single precision floating point
// variables" and "nearly 100 GB" per year.
//
// Reproduced two ways:
//  - analytically: the exact on-disk size of a CDF-lite daily file at paper
//    resolution, for the paper's all-6-hourly layout (20 vars x 4 steps)
//    and for this model's mixed layout (6 six-hourly + 14 daily vars);
//  - measured: real files written at scaled resolution, with write
//    throughput, extrapolated to paper resolution.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/strings.hpp"
#include "esm/model.hpp"
#include "esm/writer.hpp"

namespace {

using climate::common::human_bytes;

double paper_file_bytes(std::size_t nlat, std::size_t nlon, int steps, int six_hourly_vars,
                        int daily_vars) {
  const double cells = static_cast<double>(nlat * nlon);
  return cells * steps * 4.0 * six_hourly_vars + cells * 4.0 * daily_vars;
}

void print_volumes() {
  std::printf("=== E1: daily output volume (section 5.2) ===\n");
  std::printf("paper: 768x1152x4, ~20 float32 variables, 271 MB/day, ~100 GB/year\n\n");

  const double all_6h = paper_file_bytes(768, 1152, 4, 20, 0);
  const double ours = paper_file_bytes(768, 1152, 4, 6, 14);
  std::printf("%-52s %12s\n", "layout at paper resolution", "bytes/day");
  std::printf("%-52s %12s  (paper reports 271 MB; %.1f%% of it)\n",
              "20 vars, all 6-hourly (paper layout)", human_bytes(all_6h).c_str(),
              100.0 * all_6h / (271.0 * 1024 * 1024));
  std::printf("%-52s %12s\n", "this model: 6 six-hourly + 14 daily vars",
              human_bytes(ours).c_str());
  std::printf("%-52s %12s\n", "paper-layout volume per 365-day year",
              human_bytes(all_6h * 365).c_str());
  std::printf("(paper: ~100 GB/year; 271 MB x 365 = %s)\n\n",
              human_bytes(271.0 * 1024 * 1024 * 365).c_str());

  // Measured at scaled resolution.
  const std::string dir = "/tmp/bench_e1";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  climate::esm::EsmConfig config;
  config.nlat = 96;
  config.nlon = 144;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);

  const int days = 10;
  std::uint64_t total_bytes = 0;
  double write_ms = 0;
  for (int d = 0; d < days; ++d) {
    const climate::esm::DailyFields day = model.run_day();
    const std::string path = climate::esm::daily_filename(dir, day.year, day.day_of_year);
    const auto t0 = std::chrono::steady_clock::now();
    auto bytes = climate::esm::write_daily_file(path, day, model.grid());
    write_ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
    if (bytes.ok()) total_bytes += *bytes;
  }
  const double per_day = static_cast<double>(total_bytes) / days;
  const double scale = (768.0 * 1152.0) / (96.0 * 144.0);
  std::printf("measured at %zux%zu over %d days:\n", config.nlat, config.nlon, days);
  std::printf("%-52s %12s\n", "bytes per daily file (measured)", human_bytes(per_day).c_str());
  std::printf("%-52s %12s\n", "extrapolated to 768x1152", human_bytes(per_day * scale).c_str());
  std::printf("%-52s %9.1f MB/s\n", "write throughput",
              static_cast<double>(total_bytes) / (1024.0 * 1024.0) / (write_ms / 1000.0));
  std::printf("\nshape check: the extrapolated per-day size matches the analytic layout\n"
              "size, and the paper's 271 MB/day is reproduced within ~5%% when every\n"
              "variable carries the 6-hourly time axis.\n\n");
}

void BM_WriteDailyFile(benchmark::State& state) {
  const std::string dir = "/tmp/bench_e1_bm";
  std::filesystem::create_directories(dir);
  climate::esm::EsmConfig config;
  config.nlat = static_cast<std::size_t>(state.range(0));
  config.nlon = config.nlat * 3 / 2;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);
  const climate::esm::DailyFields day = model.run_day();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto written = climate::esm::write_daily_file(dir + "/bm.nc", day, model.grid());
    if (written.ok()) bytes += *written;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriteDailyFile)->Arg(48)->Arg(96);

void BM_ReadDailyVariable(benchmark::State& state) {
  const std::string dir = "/tmp/bench_e1_bm";
  std::filesystem::create_directories(dir);
  climate::esm::EsmConfig config;
  config.nlat = 96;
  config.nlon = 144;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);
  const climate::esm::DailyFields day = model.run_day();
  (void)climate::esm::write_daily_file(dir + "/bm_read.nc", day, model.grid());
  std::int64_t bytes = 0;
  for (auto _ : state) {
    auto field = climate::esm::read_daily_field(dir + "/bm_read.nc", "tasmax");
    if (field.ok()) bytes += static_cast<std::int64_t>(field->size() * sizeof(float));
    benchmark::DoNotOptimize(field);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_ReadDailyVariable);

}  // namespace

int main(int argc, char** argv) {
  print_volumes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
