// Observability overhead (ISSUE 1 acceptance): the instrumented E2 workload
// must run within 5% of its un-instrumented makespan. ISSUE 3 adds the
// flight-recorder gate: running the attribution profiler (analyze + render
// both run reports) on top must also stay within 5% of the profiler-off
// runs; both numbers land in BENCH_obs.json.
//
// One binary measures all sides using the runtime kill-switch
// (obs::set_enabled): the "off" runs still pay the single relaxed atomic
// load per OBS_* site, which upper-bounds the true compiled-out cost
// (rebuild with -DCLIMATE_OBS=OFF for the macro-expansion-to-nothing
// number). Micro-benchmarks below price the individual primitives.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/json.hpp"
#include "core/workflow.hpp"
#include "obs/obs.hpp"
#include "obs/prof/profile.hpp"

namespace {

namespace obs = climate::obs;
using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig e2_config(const std::string& dir, std::size_t workers) {
  // The bench_e2 streaming configuration (the workload the acceptance
  // criterion names), without the artificial +120 ms analysis padding so the
  // measurement is dominated by real task work, not sleeps.
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 3;
  config.years = 3;
  config.output_dir = dir;
  config.workers = workers;
  config.streaming = true;
  config.run_ml_tc = false;
  return config;
}

double run_once(const std::string& dir, bool with_profiler = false) {
  std::filesystem::remove_all(dir);
  auto results = ExtremeEventsWorkflow(e2_config(dir, 4)).run();
  if (!results.ok()) {
    std::printf("run failed: %s\n", results.status().to_string().c_str());
    return -1.0;
  }
  double ms = results->makespan_ms;
  if (with_profiler) {
    // The flight recorder is post-hoc: its cost is the analysis plus
    // rendering both report artifacts, charged on top of the makespan.
    const auto t0 = std::chrono::steady_clock::now();
    const climate::obs::prof::Analysis analysis = results->profile();
    benchmark::DoNotOptimize(analysis.text_report());
    benchmark::DoNotOptimize(analysis.json_report().dump());
    ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  }
  return ms;
}

void print_overhead() {
  std::printf("=== obs overhead on the E2 workload (streaming, 4 workers) ===\n");
  constexpr int kRounds = 3;
  const std::string base = "/tmp/bench_obs_overhead";

  // Interleave the three configurations so thermal/cache drift hits every
  // side equally: obs off, obs on, obs on + attribution profiler.
  std::vector<double> on_ms, off_ms, prof_ms;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(true);
    const double on = run_once(base + "/on");
    const double prof = run_once(base + "/prof", /*with_profiler=*/true);
    obs::set_enabled(false);
    const double off = run_once(base + "/off");
    obs::set_enabled(true);
    if (on < 0 || off < 0 || prof < 0) return;
    on_ms.push_back(on);
    off_ms.push_back(off);
    prof_ms.push_back(prof);
  }
  obs::SpanCollector::global().clear();
  obs::MetricsRegistry::global().reset();

  double on_total = 0, off_total = 0, prof_total = 0;
  std::printf("%8s %16s %16s %18s\n", "round", "enabled [ms]", "disabled [ms]", "profiler [ms]");
  for (int round = 0; round < kRounds; ++round) {
    std::printf("%8d %16.1f %16.1f %18.1f\n", round, on_ms[round], off_ms[round], prof_ms[round]);
    on_total += on_ms[round];
    off_total += off_ms[round];
    prof_total += prof_ms[round];
  }
  const double obs_overhead = 100.0 * (on_total - off_total) / off_total;
  // Profiler gate: analysis + reports vs the same instrumented runs without
  // them (profiler-off), i.e. the marginal cost of the flight recorder.
  const double prof_overhead = 100.0 * (prof_total - on_total) / on_total;
  std::printf("\nmean makespan: enabled %.1f ms, disabled %.1f ms -> obs overhead %+.2f%%\n",
              on_total / kRounds, off_total / kRounds, obs_overhead);
  std::printf("profiler on top (analyze + text/JSON reports): %.1f ms -> profiler overhead %+.2f%%\n",
              prof_total / kRounds, prof_overhead);
  const bool pass = prof_overhead < 5.0;
  std::printf("acceptance: obs <5%% vs disabled, profiler <5%% vs profiler-off -> %s\n",
              pass ? "PASS" : "FAIL");

  climate::common::Json::Object doc;
  doc["workload"] = "e2_streaming_4_workers";
  doc["rounds"] = kRounds;
  doc["mean_disabled_ms"] = off_total / kRounds;
  doc["mean_enabled_ms"] = on_total / kRounds;
  doc["mean_profiler_ms"] = prof_total / kRounds;
  doc["obs_overhead_pct"] = obs_overhead;
  doc["profiler_overhead_pct"] = prof_overhead;
  doc["profiler_gate_pct"] = 5.0;
  doc["pass"] = pass;
  const std::string json_path = "BENCH_obs.json";
  obs::write_text_file(json_path, climate::common::Json(std::move(doc)).dump_pretty() + "\n");
  std::printf("wrote %s\n\n", json_path.c_str());
}

void BM_CounterAdd(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    OBS_COUNTER_ADD("bench.counter", 1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    OBS_COUNTER_ADD("bench.counter_off", 1);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::set_enabled(true);
  std::int64_t v = 0;
  for (auto _ : state) {
    OBS_HISTOGRAM_OBSERVE("bench.hist", static_cast<double>(v++ % 100000));
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanRoundtrip(benchmark::State& state) {
  obs::set_enabled(true);
  obs::SpanCollector::global().clear();
  for (auto _ : state) {
    obs::Span span("bench", "roundtrip");
    benchmark::DoNotOptimize(span.id());
  }
  obs::SpanCollector::global().clear();
}
BENCHMARK(BM_SpanRoundtrip);

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench", "disabled");
    benchmark::DoNotOptimize(span.id());
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_SpanDisabled);

void BM_DynamicNameHistogram(benchmark::State& state) {
  // The dynamic-name helper pays one registry map lookup per call; used by
  // per-function task histograms.
  obs::set_enabled(true);
  for (auto _ : state) {
    obs::observe_histogram("bench.dynamic_hist", 42.0);
  }
}
BENCHMARK(BM_DynamicNameHistogram);

}  // namespace

int main(int argc, char** argv) {
  print_overhead();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
