// Observability overhead (ISSUE 1 acceptance): the instrumented E2 workload
// must run within 5% of its un-instrumented makespan.
//
// One binary measures both sides using the runtime kill-switch
// (obs::set_enabled): the "off" runs still pay the single relaxed atomic
// load per OBS_* site, which upper-bounds the true compiled-out cost
// (rebuild with -DCLIMATE_OBS=OFF for the macro-expansion-to-nothing
// number). Micro-benchmarks below price the individual primitives.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/workflow.hpp"
#include "obs/obs.hpp"

namespace {

namespace obs = climate::obs;
using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

WorkflowConfig e2_config(const std::string& dir, std::size_t workers) {
  // The bench_e2 streaming configuration (the workload the acceptance
  // criterion names), without the artificial +120 ms analysis padding so the
  // measurement is dominated by real task work, not sleeps.
  WorkflowConfig config;
  config.esm.nlat = 48;
  config.esm.nlon = 72;
  config.esm.days_per_year = 16;
  config.esm.seed = 3;
  config.years = 3;
  config.output_dir = dir;
  config.workers = workers;
  config.streaming = true;
  config.run_ml_tc = false;
  return config;
}

double run_once(const std::string& dir) {
  std::filesystem::remove_all(dir);
  auto results = ExtremeEventsWorkflow(e2_config(dir, 4)).run();
  if (!results.ok()) {
    std::printf("run failed: %s\n", results.status().to_string().c_str());
    return -1.0;
  }
  return results->makespan_ms;
}

void print_overhead() {
  std::printf("=== obs overhead on the E2 workload (streaming, 4 workers) ===\n");
  constexpr int kRounds = 3;
  const std::string base = "/tmp/bench_obs_overhead";

  // Interleave on/off rounds so thermal/cache drift hits both sides equally.
  std::vector<double> on_ms, off_ms;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(true);
    const double on = run_once(base + "/on");
    obs::set_enabled(false);
    const double off = run_once(base + "/off");
    obs::set_enabled(true);
    if (on < 0 || off < 0) return;
    on_ms.push_back(on);
    off_ms.push_back(off);
  }
  obs::SpanCollector::global().clear();
  obs::MetricsRegistry::global().reset();

  double on_total = 0, off_total = 0;
  std::printf("%8s %16s %16s\n", "round", "enabled [ms]", "disabled [ms]");
  for (int round = 0; round < kRounds; ++round) {
    std::printf("%8d %16.1f %16.1f\n", round, on_ms[round], off_ms[round]);
    on_total += on_ms[round];
    off_total += off_ms[round];
  }
  const double overhead = 100.0 * (on_total - off_total) / off_total;
  std::printf("\nmean makespan: enabled %.1f ms, disabled %.1f ms -> overhead %+.2f%%\n",
              on_total / kRounds, off_total / kRounds, overhead);
  std::printf("acceptance: <5%% (compiled-out via -DCLIMATE_OBS=OFF is lower still)\n\n");
}

void BM_CounterAdd(benchmark::State& state) {
  obs::set_enabled(true);
  for (auto _ : state) {
    OBS_COUNTER_ADD("bench.counter", 1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    OBS_COUNTER_ADD("bench.counter_off", 1);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::set_enabled(true);
  std::int64_t v = 0;
  for (auto _ : state) {
    OBS_HISTOGRAM_OBSERVE("bench.hist", static_cast<double>(v++ % 100000));
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanRoundtrip(benchmark::State& state) {
  obs::set_enabled(true);
  obs::SpanCollector::global().clear();
  for (auto _ : state) {
    obs::Span span("bench", "roundtrip");
    benchmark::DoNotOptimize(span.id());
  }
  obs::SpanCollector::global().clear();
}
BENCHMARK(BM_SpanRoundtrip);

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench", "disabled");
    benchmark::DoNotOptimize(span.id());
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_SpanDisabled);

void BM_DynamicNameHistogram(benchmark::State& state) {
  // The dynamic-name helper pays one registry map lookup per call; used by
  // per-function task histograms.
  obs::set_enabled(true);
  for (auto _ : state) {
    obs::observe_histogram("bench.dynamic_hist", 42.0);
  }
}
BENCHMARK(BM_DynamicNameHistogram);

}  // namespace

int main(int argc, char** argv) {
  print_overhead();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
