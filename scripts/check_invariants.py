#!/usr/bin/env python3
"""Repo-invariant checker for the project lint gate (scripts/lint.sh).

Pure-stdlib static checks over the source tree; no compiler needed, so the
gate runs even where clang tooling is unavailable. Enforced invariants:

  1. any-cast containment: `std::any_cast` may appear only under src/taskrt/.
     Everything else goes through the checked taskrt::any_ref/any_as helpers
     (or the TaskContext/Runtime accessors built on them), which turn silent
     bad_any_cast into errors naming the expected and held types.

  2. Layering: each src/<layer>/ may include only from its declared lower
     layers (see LAYER_DEPS). Catches, e.g., esm/ reaching into hpcwaas/.

  3. Log tag hygiene: LOG_* macro calls use a string-literal component tag or
     a named kFooTag constant (log routing keys on it; an arbitrary computed
     tag breaks aggregation).

Exit code 0 when clean, 1 with one "file:line: message" per violation.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Allowed direct #include targets per layer (the measured architecture of the
# tree; core is the composition root). Adding an edge here is an explicit,
# reviewed decision.
LAYER_DEPS = {
    "common": set(),
    "msg": set(),
    "ncio": {"common"},
    "obs": {"common"},
    # The attribution profiler is a nested layer (library climate_prof) that
    # sits above both obs and taskrt; plain obs/ must not include taskrt/.
    "obs/prof": {"common", "obs", "taskrt"},
    "taskrt": {"common", "obs"},
    "datacube": {"common", "ncio", "obs"},
    "esm": {"common", "msg", "ncio", "obs"},
    "ml": {"common", "obs"},
    "extremes": {"common", "datacube", "esm"},
    # hpcwaas builds per-deployment run reports via the profiler (pseudo
    # task traces over the topology's depends_on edges).
    "hpcwaas": {"common", "obs", "obs/prof", "taskrt"},
    "core": {"common", "datacube", "esm", "extremes", "ml", "ncio", "obs", "obs/prof",
             "taskrt"},
}

SOURCE_GLOBS = ("src/**/*.hpp", "src/**/*.cpp", "tests/**/*.cpp", "bench/**/*.cpp",
                "examples/**/*.cpp")

INCLUDE_RE = re.compile(r'^\s*#include\s+"([a-z0-9_]+(?:/[a-z0-9_]+)*)\.[a-z]+"')
ANY_CAST_RE = re.compile(r"\bstd::any_cast\b")
LOG_TAG_RE = re.compile(r"\bLOG_(?:TRACE|DEBUG|INFO|WARN|ERROR)\s*\(\s*([^)\s][^),]*)\)")
TAG_CONSTANT_RE = re.compile(r"^k\w*Tag$")
# The macro definitions themselves forward a `component` parameter.
LOG_TAG_EXEMPT = {pathlib.Path("src/common/log.hpp")}


def iter_sources():
    for pattern in SOURCE_GLOBS:
        yield from sorted(REPO_ROOT.glob(pattern))


def layer_of(path: pathlib.Path):
    rel = path.relative_to(REPO_ROOT)
    if rel.parts[0] == "src" and len(rel.parts) > 2:
        nested = "/".join(rel.parts[1:3])
        if len(rel.parts) > 3 and nested in LAYER_DEPS:
            return nested
        return rel.parts[1]
    return None


def include_layer(target: str):
    """Layer of an include path, honouring nested layers ("obs/prof/x.hpp"
    belongs to obs/prof, not obs)."""
    parts = target.split("/")
    if len(parts) >= 3 and "/".join(parts[:2]) in LAYER_DEPS:
        return "/".join(parts[:2])
    return parts[0]


def check_file(path: pathlib.Path, violations: list):
    rel = path.relative_to(REPO_ROOT)
    layer = layer_of(path)
    in_taskrt = layer == "taskrt"
    allowed = LAYER_DEPS.get(layer) if layer is not None else None

    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("//"):
            continue

        if not in_taskrt and ANY_CAST_RE.search(line):
            violations.append(
                f"{rel}:{lineno}: naked std::any_cast outside src/taskrt/ "
                f"(use taskrt::any_ref/any_as or a typed accessor)")

        if allowed is not None:
            match = INCLUDE_RE.match(line)
            if match:
                target = include_layer(match.group(1))
                if target != layer and target in LAYER_DEPS and target not in allowed:
                    violations.append(
                        f"{rel}:{lineno}: layer violation: {layer}/ must not include "
                        f"{target}/ (allowed: {', '.join(sorted(allowed)) or 'nothing'})")

        if rel not in LOG_TAG_EXEMPT:
            for tag in LOG_TAG_RE.findall(line):
                tag = tag.strip()
                if not tag.startswith('"') and not TAG_CONSTANT_RE.match(tag):
                    violations.append(
                        f"{rel}:{lineno}: LOG_* component tag must be a string literal or a "
                        f"kFooTag constant, got '{tag}'")


def main() -> int:
    violations: list = []
    checked = 0
    for path in iter_sources():
        check_file(path, violations)
        checked += 1
    if violations:
        for violation in violations:
            print(violation)
        print(f"check_invariants: {len(violations)} violation(s) in {checked} files",
              file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
