#!/usr/bin/env bash
# Project lint gate (the static half of scripts/check.sh --full):
#
#   1. check_invariants.py — repo invariants (any-cast containment, layer
#      includes, log-tag hygiene). Always runs; pure python3.
#   2. clang-format --dry-run against .clang-format. Advisory unless
#      LINT_FORMAT=strict (formatting drift should not block a container
#      that carries a different clang-format version).
#   3. clang-tidy over src/ using compile_commands.json and .clang-tidy.
#
# Tools that are not installed are skipped with a notice (the invariant
# checker is the portable floor); the script still exits 0 so the gate is
# meaningful on minimal containers and strict where the tools exist.
#
# Usage:
#   scripts/lint.sh [build-dir]        # default build dir: build/
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

echo "== invariants (scripts/check_invariants.py)"
python3 "${REPO_ROOT}/scripts/check_invariants.py"

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format (dry run)"
  mapfile -t SOURCES < <(cd "${REPO_ROOT}" \
    && find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)
  if [[ "${LINT_FORMAT:-}" == "strict" ]]; then
    (cd "${REPO_ROOT}" && clang-format --dry-run --Werror "${SOURCES[@]}")
  elif ! (cd "${REPO_ROOT}" && clang-format --dry-run --Werror "${SOURCES[@]}" 2>/dev/null); then
    echo "-- formatting drift detected (advisory; LINT_FORMAT=strict to enforce)"
  fi
else
  echo "-- clang-format not installed; skipping format check"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "-- exporting compile_commands.json (${BUILD_DIR})"
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
  fi
  echo "== clang-tidy (.clang-tidy, ${BUILD_DIR}/compile_commands.json)"
  mapfile -t TIDY_SOURCES < <(cd "${REPO_ROOT}" && find src -name '*.cpp' | sort)
  (cd "${REPO_ROOT}" && clang-tidy -p "${BUILD_DIR}" --quiet "${TIDY_SOURCES[@]}")
else
  echo "-- clang-tidy not installed; skipping tidy pass"
fi

echo "== OK (lint)"
