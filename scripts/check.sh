#!/usr/bin/env bash
# Sanitizer check: configure a dedicated build tree with the chosen sanitizer,
# build, and run ctest. The thread-sanitizer run is the gate for the lock-free
# observability paths and the concurrent datacube serving paths: test_obs,
# test_taskrt, test_datacube and test_common must come back clean. The
# address run also enables UBSan (the two compose; TSan does not).
#
# Usage:
#   scripts/check.sh [thread|address|undefined|none|--full] [ctest-regex]
#
#   scripts/check.sh                  # TSan, full suite
#   scripts/check.sh thread 'obs|taskrt'   # TSan, just the concurrency gate
#   scripts/check.sh address          # ASan+UBSan, full suite
#   scripts/check.sh undefined        # UBSan only, full suite
#   scripts/check.sh none             # plain build + tests
#   scripts/check.sh --full           # the CI gate: TSan, ASan+UBSan, lint.sh
set -euo pipefail

SANITIZER="${1:-thread}"
FILTER="${2:-}"

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if [[ "${SANITIZER}" == "--full" ]]; then
  # The full gate runs each stage through this script so every stage gets the
  # same dedicated build tree and fatal sanitizer options.
  "${BASH_SOURCE[0]}" thread
  "${BASH_SOURCE[0]}" address
  "${REPO_ROOT}/scripts/lint.sh"
  echo "== OK (full gate: thread, address+undefined, lint)"
  exit 0
fi

case "${SANITIZER}" in
  thread|address|undefined)
    BUILD_DIR="${REPO_ROOT}/build-${SANITIZER}"
    CMAKE_SANITIZE="${SANITIZER}"
    ;;
  none)
    BUILD_DIR="${REPO_ROOT}/build-check"
    CMAKE_SANITIZE=""
    ;;
  *)
    echo "usage: $0 [thread|address|undefined|none|--full] [ctest-regex]" >&2
    exit 2
    ;;
esac

echo "== configure (${BUILD_DIR}, CLIMATE_SANITIZE='${CMAKE_SANITIZE}')"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCLIMATE_SANITIZE="${CMAKE_SANITIZE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== test"
CTEST_ARGS=(--test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)")
if [[ -n "${FILTER}" ]]; then
  CTEST_ARGS+=(-R "${FILTER}")
fi
# Make sanitizer findings fatal and loud.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
ctest "${CTEST_ARGS[@]}"

if [[ "${SANITIZER}" == "thread" && -z "${FILTER}" ]]; then
  echo "== TSan gate: re-running the concurrency suites explicitly"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R '^(test_obs|test_taskrt|test_datacube|test_common)$'
  echo "== TSan chaos gate: fault injection + node-failure recovery under TSan"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L chaos
fi

if [[ "${SANITIZER}" == "address" && -z "${FILTER}" ]]; then
  echo "== verifier gate: re-running the verify suite with CLIMATE_VERIFY=1"
  CLIMATE_VERIFY=1 ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R '^(test_taskrt|test_taskrt_verify)$'
fi

echo "== OK (${SANITIZER})"
