// HPCWaaS walkthrough (paper Figure 1): the developer deploys the workflow
// from its TOSCA description (container images built, data pipelines run,
// workflow registered); the end user then runs it "as a simple REST
// invocation" and polls for the result.
//
//   ./hpcwaas_deploy [output_dir]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/workflow.hpp"
#include "esm/forcing.hpp"
#include "hpcwaas/service.hpp"

using climate::common::Json;
using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp/hpcwaas_example";
  std::filesystem::create_directories(out_dir);

  // The "Zeus" cluster: a few batch nodes.
  std::vector<climate::hpcwaas::BatchNodeSpec> cluster = {
      {"zeus-n001", 4, 64.0}, {"zeus-n002", 4, 64.0}, {"zeus-n003", 4, 64.0}};
  climate::hpcwaas::HpcWaasService service(cluster);

  // Deployment-time data pipeline: stage in the GHG forcing file.
  climate::hpcwaas::DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  pipeline.steps.push_back({climate::hpcwaas::DataStep::Kind::kGenerate, "",
                            out_dir + "/staged/forcing.nc",
                            [](const std::string& path) {
                              auto table = climate::esm::ForcingTable::from_scenario(
                                  climate::esm::Scenario::kSsp585, 2015, 40);
                              return table.save(path);
                            },
                            ""});
  pipeline.steps.push_back({climate::hpcwaas::DataStep::Kind::kVerify,
                            out_dir + "/staged/forcing.nc", "", nullptr, ""});
  service.dls().register_pipeline(pipeline);

  // ---- developer interface: deploy from the TOSCA topology ----------------
  std::printf("deploying the case-study topology...\n");
  auto workflow_id = service.deploy_workflow(
      climate::core::case_study_topology_yaml(), [out_dir](const Json& params) {
        WorkflowConfig config;
        config.esm.nlat = 32;
        config.esm.nlon = 48;
        config.esm.days_per_year = 20;
        config.years = static_cast<int>(params.get_number("years", 1));
        config.output_dir = out_dir + "/run";
        config.workers = 3;
        config.run_ml_tc = false;
        auto results = ExtremeEventsWorkflow(config).run();
        if (!results.ok()) throw std::runtime_error(results.status().to_string());
        Json out = Json::object();
        out["years"] = results->years.size();
        out["makespan_ms"] = results->makespan_ms;
        out["heat_wave_mean_count"] = results->years[0].heat.count.mean();
        out["final_map"] = results->final_map_file;
        return out;
      });
  if (!workflow_id.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n", workflow_id.status().to_string().c_str());
    return 1;
  }
  std::printf("deployed workflow id: %s\n", workflow_id->c_str());

  // Show what the orchestrator did.
  for (const auto& entry : service.workflows()) {
    std::printf("deployment %s (%s): %zu steps\n", entry.deployment.id.c_str(),
                entry.name.c_str(), entry.deployment.steps.size());
    for (const auto& step : entry.deployment.steps) {
      std::printf("  [%-13s] %-26s %s\n", climate::hpcwaas::node_kind_name(step.kind),
                  step.node.c_str(), step.detail.c_str());
    }
  }

  // ---- end-user interface: REST invocation + polling ----------------------
  std::printf("\ninvoking via the Execution API...\n");
  Json params = Json::object();
  params["years"] = 1;
  auto response = service.handle("POST", "/workflows/" + *workflow_id + "/executions", params);
  if (!response.ok()) {
    std::fprintf(stderr, "invocation failed: %s\n", response.status().to_string().c_str());
    return 1;
  }
  const std::string exec_id = response->get_string("execution_id");
  std::printf("execution id: %s\n", exec_id.c_str());

  // Poll like a remote client would.
  while (true) {
    auto status = service.handle("GET", "/executions/" + exec_id, Json());
    if (!status.ok()) break;
    const std::string state = status->get_string("state");
    std::printf("  state: %s\n", state.c_str());
    if (state == "succeeded" || state == "failed") {
      std::printf("\nfinal response:\n%s\n", status->dump_pretty().c_str());
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  // Batch-system accounting (the LSF-like substrate underneath).
  std::printf("\nbatch jobs:\n");
  for (const auto& job : service.batch().jobs()) {
    std::printf("  job %llu '%s' on %s: %s (queue wait %.2f ms)\n",
                static_cast<unsigned long long>(job.id), job.spec.name.c_str(), job.node.c_str(),
                climate::hpcwaas::job_state_name(job.state),
                static_cast<double>(job.queue_wait_ns()) / 1e6);
  }
  return 0;
}
