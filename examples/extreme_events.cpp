// The paper's case study end to end, at laptop scale: pre-train the TC
// localizer on "historical" data, then run the full extreme-events workflow
// (ESM simulation -> streaming year detection -> heat/cold-wave datacube
// pipelines -> ML + deterministic TC detection -> validation, maps) and
// print a report.
//
//   ./extreme_events [output_dir] [years] [days_per_year]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/image.hpp"
#include "core/workflow.hpp"

using climate::core::ExtremeEventsWorkflow;
using climate::core::WorkflowConfig;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp/extreme_events_example";
  const int years = argc > 2 ? std::atoi(argv[2]) : 1;
  const int days = argc > 3 ? std::atoi(argv[3]) : 60;
  std::filesystem::create_directories(out_dir);

  WorkflowConfig config;
  config.esm.nlat = 64;
  config.esm.nlon = 96;
  config.esm.days_per_year = days;
  config.esm.tc_spawn_per_day = 0.6;
  config.years = years;
  config.output_dir = out_dir;
  config.workers = 4;
  config.io_servers = 2;
  config.tc_chunk_days = std::max(1, days / 4);

  // Pre-train the CNN "on historical data" (section 5.4) if not cached.
  const std::string weights = out_dir + "/tc_localizer.weights";
  if (!std::filesystem::exists(weights)) {
    std::printf("pre-training TC localizer on a historical run...\n");
    auto loss = climate::core::pretrain_tc_localizer(config.esm, weights, 16, 8, 40);
    if (!loss.ok()) {
      std::fprintf(stderr, "pretraining failed: %s\n", loss.status().to_string().c_str());
      return 1;
    }
    std::printf("  final training loss: %.4f\n", static_cast<double>(*loss));
  }
  config.tc_weights_path = weights;

  std::printf("running the end-to-end workflow (%d year(s) x %d days, %zux%zu grid)...\n", years,
              days, config.esm.nlat, config.esm.nlon);
  ExtremeEventsWorkflow workflow(config);
  auto results = workflow.run();
  if (!results.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n", results.status().to_string().c_str());
    return 1;
  }

  std::printf("\n=== run report ===\n");
  std::printf("makespan:            %.1f ms\n", results->makespan_ms);
  std::printf("tasks executed:      %llu\n",
              static_cast<unsigned long long>(results->runtime_stats.tasks_completed));
  std::printf("daily output volume: %.1f MB\n",
              static_cast<double>(results->bytes_written) / (1024.0 * 1024.0));
  std::printf("datacube operators:  %llu\n",
              static_cast<unsigned long long>(results->datacube_stats.operators_executed));
  std::printf("injected truth:      %zu heat waves, %zu cold waves, %zu cyclones\n",
              results->truth.heat_wave_count(), results->truth.cold_wave_count(),
              results->truth.cyclones.size());

  for (const auto& year : results->years) {
    std::printf("\n--- year %d ---\n", year.year);
    std::printf("heat waves:  mean count %.2f, max duration %.0f days\n", year.heat.count.mean(),
                static_cast<double>(year.heat.duration_max.max()));
    std::printf("cold waves:  mean count %.2f, max duration %.0f days\n", year.cold.count.mean(),
                static_cast<double>(year.cold.duration_max.max()));
    std::printf("TC detection: %zu ML fixes (POD %.2f, FAR %.2f), %zu deterministic tracks "
                "(POD %.2f, FAR %.2f)\n",
                year.ml_fixes.size(), year.ml_skill.pod(), year.ml_skill.far(),
                year.tracks.size(), year.tracker_skill.pod(), year.tracker_skill.far());
    std::printf("heat wave number map (Figure 4 style):\n%s",
                climate::common::ascii_map(year.heat.count, 64).c_str());
  }

  // Flight-recorder attribution: critical path, per-function shares, node
  // utilization. The same report lands in <out_dir>/run_report.{txt,json}.
  const climate::obs::prof::Analysis profile = results->profile();
  std::printf("\n%s", profile.text_report().c_str());

  std::printf("\ntask graph written to %s/workflow.dot (critical path highlighted)\n",
              out_dir.c_str());
  FILE* dot = std::fopen((out_dir + "/workflow.dot").c_str(), "w");
  if (dot) {
    std::fputs(profile.to_dot().c_str(), dot);
    std::fclose(dot);
  }
  std::printf("run report in %s/run_report.txt and %s/run_report.json\n", out_dir.c_str(),
              out_dir.c_str());
  std::printf("index NetCDF files in %s/indices, maps in %s/maps\n", out_dir.c_str(),
              out_dir.c_str());
  return 0;
}
