// Quickstart: the smallest useful program against the public API.
//
// Builds a tiny task-based workflow (PyCOMPSs-style directionality), runs a
// datacube reduction on its output, and prints the resulting task graph —
// the three core ingredients of the paper's stack in ~80 lines.
//
//   ./quickstart
#include <cmath>
#include <cstdio>

#include "datacube/client.hpp"
#include "taskrt/runtime.hpp"

using climate::datacube::Client;
using climate::datacube::Server;
using climate::taskrt::DataHandle;
using climate::taskrt::In;
using climate::taskrt::Out;
using climate::taskrt::Runtime;
using climate::taskrt::TaskContext;

int main() {
  // 1. A task runtime with two worker "nodes".
  climate::taskrt::RuntimeOptions options;
  options.workers = 2;
  Runtime rt(options);

  // 2. An in-process datacube framework with two I/O servers.
  Server dc_server(2);
  Client dc(dc_server);

  // Task A: produce a year of fake daily temperatures for 4 cells.
  DataHandle series_h = rt.create_data();
  rt.submit("simulate", {Out(series_h)}, [](TaskContext& ctx) {
    std::vector<float> series(4 * 365);
    for (std::size_t cell = 0; cell < 4; ++cell) {
      for (std::size_t day = 0; day < 365; ++day) {
        series[cell * 365 + day] =
            15.0f + 10.0f * static_cast<float>(cell) +
            8.0f * static_cast<float>(std::sin(2 * 3.14159 * day / 365.0));
      }
    }
    ctx.set_out(0, std::any(series), series.size() * sizeof(float));
  });

  // Task B: load the series into a datacube and reduce to per-cell maxima.
  DataHandle maxima_h = rt.create_data();
  rt.submit("analyse", {In(series_h), Out(maxima_h)}, [&dc](TaskContext& ctx) {
    const auto& series = ctx.in_as<std::vector<float>>(0);
    auto cube = dc.create_cube("tas", {{"cell", 4, {}}}, {"day", 365, {}}, series, "quickstart");
    if (!cube.ok()) throw std::runtime_error(cube.status().to_string());
    auto maxima = cube->reduce("max", 0, "yearly maxima");
    if (!maxima.ok()) throw std::runtime_error(maxima.status().to_string());
    ctx.set_out(1, std::any(*maxima->values()));
  });

  // Synchronize the result back to the "master" (main program).
  const auto maxima = rt.sync_as<std::vector<float>>(maxima_h);
  std::printf("yearly maximum temperature per cell:\n");
  for (std::size_t cell = 0; cell < maxima.size(); ++cell) {
    std::printf("  cell %zu: %.2f degC\n", cell, static_cast<double>(maxima[cell]));
  }

  // The runtime recorded the dependency graph it executed.
  rt.wait_all();
  std::printf("\ntask graph (DOT):\n%s", rt.trace().to_dot().c_str());
  return 0;
}
