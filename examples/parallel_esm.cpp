// Domain-decomposed simulation walkthrough: runs CMCC-CM3-lite over the
// message-passing layer with latitude-band ranks (the "MPI" execution of
// paper section 3), verifies it reproduces the serial model bit-for-bit,
// prints the online diagnostics computed during the run (section 3's
// in-simulation indicators), and reports the coupler's conservation
// accounting.
//
//   ./parallel_esm [ranks] [days]
#include <cstdio>
#include <cstdlib>

#include "esm/diagnostics.hpp"
#include "esm/model.hpp"
#include "esm/parallel.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int days = argc > 2 ? std::atoi(argv[2]) : 10;

  climate::esm::EsmConfig config;
  config.nlat = 48;
  config.nlon = 72;
  config.days_per_year = 365;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);

  // Serial reference run with diagnostics.
  std::printf("serial reference run (%d days, %zux%zu grid)...\n", days, config.nlat,
              config.nlon);
  climate::esm::EsmModel serial(config, forcing);
  climate::esm::DiagnosticsRecorder diagnostics;
  std::vector<climate::esm::DailyFields> serial_days;
  for (int d = 0; d < days; ++d) {
    serial_days.push_back(serial.run_day());
    diagnostics.record(serial_days.back(), serial.grid());
  }

  std::printf("\nonline diagnostics (computed during the simulation):\n");
  std::printf("%5s %12s %12s %12s %12s %10s\n", "day", "mean tas", "mean pr", "min psl",
              "max wind", "ice area");
  for (const auto& row : diagnostics.rows()) {
    std::printf("%5d %9.2f dC %7.2f mm/d %8.1f hPa %8.1f m/s %9.3f\n", row.day_of_run,
                row.global_mean_tas_c, row.global_mean_pr_mmday, row.min_psl_hpa,
                row.max_wspd_ms, row.ice_area_fraction);
  }

  // Parallel run over `ranks` latitude bands.
  std::printf("\ndecomposed run over %d ranks (halo exchange per day, gather to rank 0)...\n",
              ranks);
  climate::esm::ParallelEsmDriver driver(config, forcing, ranks);
  std::size_t mismatches = 0;
  int day_index = 0;
  driver.run(days, [&](const climate::esm::DailyFields& day) {
    const climate::esm::DailyFields& reference = serial_days[static_cast<std::size_t>(day_index)];
    for (std::size_t c = 0; c < reference.tas.size(); ++c) {
      if (reference.tas[c] != day.tas[c] || reference.tasmax[c] != day.tasmax[c]) ++mismatches;
    }
    ++day_index;
  });
  std::printf("bit-for-bit comparison against the serial run: %zu mismatching cells %s\n",
              mismatches, mismatches == 0 ? "(exact reproduction)" : "(UNEXPECTED)");

  const auto& coupler = driver.coupler();
  std::printf("\ncoupler conservation accounting (summed over ranks):\n");
  std::printf("  heat:       sent %.3f, received %.3f (difference %.1e)\n",
              coupler.heat_sent_atm, coupler.heat_received_ocean,
              coupler.heat_sent_atm - coupler.heat_received_ocean);
  std::printf("  momentum:   sent %.3f, received %.3f\n", coupler.momentum_sent_atm,
              coupler.momentum_received_ocean);
  std::printf("  freshwater: sent %.3f, received %.3f\n", coupler.freshwater_sent_atm,
              coupler.freshwater_received_ocean);
  std::printf("\ninjected events so far: %zu thermal, %zu cyclones\n",
              driver.events().thermal_events.size(), driver.events().cyclones.size());
  return mismatches == 0 ? 0 : 1;
}
