// Interactive-style datacube session (the PyOphidia usage of section 4.2.2):
// import model output from NetCDF-like files, run the Listing-1 operator
// pipeline by hand, inspect schemas, export results.
//
//   ./datacube_session [work_dir]
#include <cstdio>
#include <filesystem>

#include "datacube/client.hpp"
#include "esm/model.hpp"
#include "esm/writer.hpp"

using climate::datacube::Client;
using climate::datacube::Cube;
using climate::datacube::Server;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/datacube_session";
  std::filesystem::create_directories(dir);

  // Produce a few days of model output to have real files to import.
  climate::esm::EsmConfig config;
  config.nlat = 32;
  config.nlon = 48;
  config.days_per_year = 10;
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);
  std::vector<std::string> files;
  for (int d = 0; d < 10; ++d) {
    const climate::esm::DailyFields day = model.run_day();
    const std::string path = climate::esm::daily_filename(dir, day.year, day.day_of_year);
    auto bytes = climate::esm::write_daily_file(path, day, model.grid());
    if (!bytes.ok()) {
      std::fprintf(stderr, "write failed: %s\n", bytes.status().to_string().c_str());
      return 1;
    }
    files.push_back(path);
  }
  std::printf("wrote %zu daily files under %s\n", files.size(), dir.c_str());

  // Connect to the framework (2 I/O servers) under a named session and
  // import one file's psl.
  Server server(2);
  Client client(server, "interactive");
  auto psl = client.importnc(files[0], "psl");
  if (!psl.ok()) {
    std::fprintf(stderr, "importnc failed: %s\n", psl.status().to_string().c_str());
    return 1;
  }
  auto schema = psl->schema();
  std::printf("\nimported cube %s\n  measure: %s\n  explicit dims:", psl->pid().c_str(),
              schema->measure.c_str());
  for (const auto& dim : schema->explicit_dims) {
    std::printf(" %s[%zu]", dim.name.c_str(), dim.size);
  }
  std::printf("\n  implicit dim: %s[%zu]\n  fragments: %zu over %zu I/O servers\n",
              schema->implicit_dim.name.c_str(), schema->implicit_dim.size,
              schema->fragment_count, server.io_servers());

  // Daily pressure statistics via reductions.
  auto daily_min = psl->reduce("min", 0, "daily minimum pressure");
  auto daily_avg = psl->reduce("avg", 0, "daily mean pressure");
  if (daily_min.ok() && daily_avg.ok()) {
    const auto mins = *daily_min->values();
    float global_min = mins[0];
    for (float v : mins) global_min = std::min(global_min, v);
    std::printf("\nglobal minimum 6-hourly psl of day 0: %.1f hPa\n",
                static_cast<double>(global_min));
  }

  // Listing-1 style pipeline on a synthetic duration cube.
  std::printf("\nrunning the Listing-1 pipeline...\n");
  std::vector<float> mask_series(6 * 30, 0.0f);
  for (int k = 4; k < 12; ++k) mask_series[static_cast<std::size_t>(k)] = 1.0f;        // 8-day wave
  for (int k = 40; k < 47; ++k) mask_series[static_cast<std::size_t>(k)] = 1.0f;       // 7-day wave
  auto mask_cube = client.create_cube("exceed", {{"cell", 6, {}}}, {"day", 30, {}}, mask_series);
  auto duration = mask_cube->apply("wave_duration(measure, 6)", "duration cube");
  auto max_cube = duration->reduce("max", 0, "Max Duration cube");
  auto number_mask = duration->apply("oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
  auto count_cube = number_mask->reduce("sum", 0, "Number of durations cube");
  std::printf("  cell 0: longest wave %.0f days, %.0f wave(s)\n",
              static_cast<double>((*max_cube->values())[0]),
              static_cast<double>((*count_cube->values())[0]));
  std::printf("  cell 1: longest wave %.0f days, %.0f wave(s)\n",
              static_cast<double>((*max_cube->values())[1]),
              static_cast<double>((*count_cube->values())[1]));

  // exportnc2 like the paper's snippet.
  if (count_cube->exportnc2(dir, "wave_count").ok()) {
    std::printf("  exported %s/wave_count.nc\n", dir.c_str());
  }

  // Catalog housekeeping: typed handles carry the schema snapshot, so the
  // listing needs no further server round-trips.
  auto handles = client.cubes();
  std::printf("\ncubes in catalog: %zu, resident bytes: %zu\n",
              handles.ok() ? handles->size() : 0, server.resident_bytes());
  if (handles.ok()) {
    for (const auto& handle : *handles) {
      std::printf("  %s  %s (%zu elements)\n", handle.pid.c_str(), handle.schema.measure.c_str(),
                  handle.schema.element_count);
    }
  }
  const auto stats = server.stats();
  std::printf("framework stats: %llu operators, %llu disk reads, %llu disk writes\n",
              static_cast<unsigned long long>(stats.operators_executed),
              static_cast<unsigned long long>(stats.disk_reads),
              static_cast<unsigned long long>(stats.disk_writes));
  return 0;
}
