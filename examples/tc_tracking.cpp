// Tropical-cyclone detection walkthrough (paper section 5.4): run the
// coupled model for a season, then find cyclones two ways — the
// deterministic tracking scheme and the pre-trained CNN — and score both
// against the injected ground truth.
//
//   ./tc_tracking [days]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/workflow.hpp"
#include "esm/model.hpp"
#include "extremes/skill.hpp"
#include "extremes/tc_tracker.hpp"
#include "ml/tc_pipeline.hpp"

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 90;

  climate::esm::EsmConfig config;
  config.nlat = 64;
  config.nlon = 96;
  config.days_per_year = 365;
  config.tc_spawn_per_day = 0.7;
  config.seed = 11;

  // Pre-train the CNN on an independent historical run.
  const std::string weights = "/tmp/tc_tracking_example.weights";
  if (!std::filesystem::exists(weights)) {
    std::printf("pre-training the CNN localizer...\n");
    auto loss = climate::core::pretrain_tc_localizer(config, weights, 16, 8, 50);
    if (!loss.ok()) {
      std::fprintf(stderr, "pretraining failed: %s\n", loss.status().to_string().c_str());
      return 1;
    }
  }
  climate::ml::TcLocalizer localizer(16, config.seed);
  if (!localizer.load(weights).ok()) {
    std::fprintf(stderr, "cannot load weights\n");
    return 1;
  }

  std::printf("simulating %d days and detecting cyclones...\n", days);
  climate::esm::ForcingTable forcing =
      climate::esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  climate::esm::EsmModel model(config, forcing);
  const climate::common::LatLonGrid& grid = model.grid();

  std::vector<std::vector<climate::extremes::TcCandidate>> per_step;
  std::vector<climate::extremes::DetectionFix> ml_fixes;
  for (int day = 0; day < days; ++day) {
    const climate::esm::DailyFields fields = model.run_day();
    for (int s = 0; s < config.steps_per_day; ++s) {
      const int step = day * config.steps_per_day + s;
      const auto su = static_cast<std::size_t>(s);
      // Deterministic scheme.
      per_step.push_back(climate::extremes::detect_candidates(
          fields.psl[su], fields.wspd[su], fields.vort850[su], grid, step));
      // CNN pipeline (regrid -> tile -> infer -> geo-reference).
      for (const auto& det : localizer.detect(fields.psl[su], fields.wspd[su], fields.vort850[su],
                                              fields.tas, grid, 0.5)) {
        ml_fixes.push_back({step, det.lat, det.lon});
      }
    }
  }
  const auto tracks = climate::extremes::link_tracks(per_step, config.steps_per_day);

  std::printf("\ninjected ground truth: %zu cyclones\n", model.events().cyclones.size());
  std::printf("deterministic tracker: %zu tracks\n", tracks.size());
  for (const auto& track : tracks) {
    const auto& first = track.fixes.front();
    std::printf("  track %d: %d six-hourly fixes, genesis (%.1f, %.1f), min psl %.0f hPa, "
                "max wind %.0f m/s\n",
                track.id, track.duration_steps(), first.lat, first.lon, track.min_psl(),
                track.max_wind());
  }

  std::vector<climate::extremes::DetectionFix> track_fixes;
  for (const auto& track : tracks) {
    for (const auto& fix : track.fixes) track_fixes.push_back({fix.step, fix.lat, fix.lon});
  }
  const auto tracker_skill =
      climate::extremes::score_detections(track_fixes, model.events().cyclones);
  const auto ml_skill = climate::extremes::score_detections(ml_fixes, model.events().cyclones);

  std::printf("\nskill vs injected truth (match radius 500 km):\n");
  std::printf("  %-22s %8s %8s %12s\n", "method", "POD", "FAR", "centre err");
  std::printf("  %-22s %8.2f %8.2f %9.0f km\n", "deterministic", tracker_skill.pod(),
              tracker_skill.far(), tracker_skill.mean_center_error_km);
  std::printf("  %-22s %8.2f %8.2f %9.0f km\n", "CNN localizer", ml_skill.pod(), ml_skill.far(),
              ml_skill.mean_center_error_km);
  return 0;
}
