// Unit tests for the task runtime: dependency inference, execution order,
// sync semantics, locality/transfers, constraints, graph export.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "taskrt/runtime.hpp"

namespace climate::taskrt {
namespace {

TEST(Runtime, SingleTaskProducesValue) {
  Runtime rt;
  DataHandle out = rt.create_data();
  rt.submit("produce", {Out(out)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(42)); });
  EXPECT_EQ(rt.sync_as<int>(out), 42);
}

TEST(Runtime, TrueDependencyChain) {
  Runtime rt;
  DataHandle a = rt.create_data(std::any(1));
  DataHandle b = rt.create_data();
  DataHandle c = rt.create_data();
  rt.submit("double", {In(a), Out(b)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(2 * ctx.in_as<int>(0))); });
  rt.submit("addone", {In(b), Out(c)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(1 + ctx.in_as<int>(0))); });
  EXPECT_EQ(rt.sync_as<int>(c), 3);
}

TEST(Runtime, IndependentTasksRunConcurrently) {
  RuntimeOptions options;
  options.workers = 4;
  Runtime rt(options);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<DataHandle> outs;
  for (int i = 0; i < 4; ++i) {
    DataHandle h = rt.create_data();
    outs.push_back(h);
    rt.submit("spin", {Out(h)}, [&](TaskContext& ctx) {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      ctx.simulate_compute(std::chrono::milliseconds(30));
      concurrent.fetch_sub(1);
      ctx.set_out(0, std::any(1));
    });
  }
  rt.wait_all();
  EXPECT_GE(peak.load(), 2);  // at least two ran in parallel
}

TEST(Runtime, InOutSerializesWriters) {
  Runtime rt;
  DataHandle counter = rt.create_data(std::any(0));
  for (int i = 0; i < 20; ++i) {
    rt.submit("inc", {InOut(counter)},
              [](TaskContext& ctx) { ctx.set_out(0, std::any(ctx.in_as<int>(0) + 1)); });
  }
  EXPECT_EQ(rt.sync_as<int>(counter), 20);
}

TEST(Runtime, AntiDependencyWriterWaitsForReaders) {
  // reader(v1) must observe the value before writer creates v2.
  Runtime rt;
  DataHandle data = rt.create_data(std::any(std::string("first")));
  DataHandle observed = rt.create_data();
  rt.submit("reader", {In(data), Out(observed)}, [](TaskContext& ctx) {
    ctx.simulate_compute(std::chrono::milliseconds(20));
    ctx.set_out(1, std::any(ctx.in_as<std::string>(0)));
  });
  rt.submit("writer", {Out(data)},
            [](TaskContext& ctx) { ctx.set_out(0, std::any(std::string("second"))); });
  EXPECT_EQ(rt.sync_as<std::string>(observed), "first");
  EXPECT_EQ(rt.sync_as<std::string>(data), "second");
}

TEST(Runtime, SyncLatestVersionAtCallTime) {
  Runtime rt;
  DataHandle data = rt.create_data(std::any(0));
  rt.submit("w1", {Out(data)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(1)); });
  EXPECT_EQ(rt.sync_as<int>(data), 1);
  rt.submit("w2", {Out(data)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(2)); });
  EXPECT_EQ(rt.sync_as<int>(data), 2);
}

TEST(Runtime, ReadOfNeverWrittenDataThrows) {
  Runtime rt;
  DataHandle empty = rt.create_data();
  EXPECT_THROW(rt.submit("read", {In(empty)}, [](TaskContext&) {}), std::logic_error);
}

TEST(Runtime, UnknownHandleThrows) {
  Runtime rt;
  EXPECT_THROW(rt.submit("x", {In(DataHandle{999})}, [](TaskContext&) {}), std::logic_error);
  EXPECT_THROW(rt.sync(DataHandle{999}), std::logic_error);
}

TEST(Runtime, OutParamNotSetYieldsEmptyAny) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;  // deliberate misuse; not a verifier test
  Runtime rt(options);
  DataHandle out = rt.create_data();
  rt.submit("lazy", {Out(out)}, [](TaskContext&) {});
  const std::any value = rt.sync(out);
  EXPECT_FALSE(value.has_value());
}

TEST(Runtime, InOutUnsetKeepsPreviousValue) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;  // deliberate misuse; not a verifier test
  Runtime rt(options);
  DataHandle data = rt.create_data(std::any(7));
  rt.submit("noop", {InOut(data)}, [](TaskContext&) {});
  EXPECT_EQ(rt.sync_as<int>(data), 7);
}

TEST(Runtime, ContextAccessorsValidateDirections) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;  // deliberate misuse; not a verifier test
  Runtime rt(options);
  DataHandle in_h = rt.create_data(std::any(1));
  DataHandle out_h = rt.create_data();
  std::atomic<bool> in_on_out_threw{false};
  std::atomic<bool> out_on_in_threw{false};
  rt.submit("check", {In(in_h), Out(out_h)}, [&](TaskContext& ctx) {
    try {
      (void)ctx.in(1);
    } catch (const std::logic_error&) {
      in_on_out_threw.store(true);
    }
    try {
      ctx.set_out(0, std::any(5));
    } catch (const std::logic_error&) {
      out_on_in_threw.store(true);
    }
    ctx.set_out(1, std::any(2));
  });
  rt.wait_all();
  EXPECT_TRUE(in_on_out_threw.load());
  EXPECT_TRUE(out_on_in_threw.load());
}

TEST(Runtime, TransfersAreCounted) {
  RuntimeOptions options;
  options.workers = 2;
  Runtime rt(options);
  DataHandle big = rt.create_data(std::any(std::vector<int>(1000, 1)), 4000);
  DataHandle out1 = rt.create_data();
  rt.submit("consume", {In(big), Out(out1)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(static_cast<int>(ctx.in_as<std::vector<int>>(0).size())));
  });
  rt.wait_all();
  const RuntimeStats stats = rt.stats();
  EXPECT_GE(stats.transfers, 1u);  // master -> worker replica
  EXPECT_GE(stats.bytes_transferred, 4000u);
}

TEST(Runtime, ConstraintsRouteToTaggedNodes) {
  RuntimeOptions options;
  NodeSpec cpu;
  cpu.name = "cpu0";
  cpu.cores = 1;
  NodeSpec gpu;
  gpu.name = "gpu0";
  gpu.cores = 1;
  gpu.tags = {"gpu"};
  options.nodes = {cpu, gpu};
  Runtime rt(options);

  TaskOptions needs_gpu;
  needs_gpu.constraints = {"gpu"};
  std::atomic<int> gpu_node{-1};
  DataHandle out = rt.create_data();
  rt.submit("gpu_task", needs_gpu, {Out(out)}, [&](TaskContext& ctx) {
    gpu_node.store(ctx.node());
    ctx.set_out(0, std::any(1));
  });
  rt.wait_all();
  EXPECT_EQ(gpu_node.load(), 1);  // index of the tagged node
}

TEST(Runtime, UnsatisfiableConstraintFailsWorkflow) {
  Runtime rt;
  TaskOptions needs_fpga;
  needs_fpga.constraints = {"fpga"};
  DataHandle out = rt.create_data();
  rt.submit("fpga_task", needs_fpga, {Out(out)}, [](TaskContext& ctx) {
    ctx.set_out(0, std::any(1));
  });
  EXPECT_THROW(rt.wait_all(), WorkflowError);
}

TEST(Runtime, StatsCountSubmittedAndCompleted) {
  Runtime rt;
  DataHandle a = rt.create_data(std::any(1));
  DataHandle b = rt.create_data();
  rt.submit("t1", {In(a), Out(b)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(ctx.in_as<int>(0))); });
  rt.submit("t2", {In(b)}, [](TaskContext&) {});
  rt.wait_all();
  const RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.tasks_submitted, 2u);
  EXPECT_EQ(stats.tasks_completed, 2u);
  EXPECT_EQ(stats.tasks_failed, 0u);
}

TEST(Runtime, TraceRecordsGraphStructure) {
  Runtime rt;
  DataHandle a = rt.create_data(std::any(1));
  DataHandle b = rt.create_data();
  DataHandle c = rt.create_data();
  rt.submit("stage1", {In(a), Out(b)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(2)); });
  rt.submit("stage2", {In(b), Out(c)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(3)); });
  rt.submit("stage2", {In(b)}, [](TaskContext&) {});
  rt.wait_all();
  const Trace trace = rt.trace();
  const auto counts = trace.counts_by_name();
  EXPECT_EQ(counts.at("stage1"), 1u);
  EXPECT_EQ(counts.at("stage2"), 2u);
  EXPECT_EQ(trace.edge_count(), 2u);  // both stage2 tasks depend on stage1
  EXPECT_GT(trace.makespan_ns(), 0);

  const std::string dot = trace.to_dot();
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t3"), std::string::npos);

  const std::string gantt = trace.to_gantt_csv();
  EXPECT_NE(gantt.find("id,name,node,start_us,end_us"), std::string::npos);
}

TEST(Runtime, ManyTasksDiamondGraph) {
  // Fan out to N tasks, then fan in; the join must observe all results.
  RuntimeOptions options;
  options.workers = 4;
  Runtime rt(options);
  DataHandle root = rt.create_data(std::any(1));
  std::vector<DataHandle> mids;
  constexpr int kN = 32;
  for (int i = 0; i < kN; ++i) {
    DataHandle mid = rt.create_data();
    mids.push_back(mid);
    rt.submit("fan", {In(root), Out(mid)},
              [i](TaskContext& ctx) { ctx.set_out(1, std::any(i)); });
  }
  std::vector<Param> params;
  for (DataHandle mid : mids) params.push_back(In(mid));
  DataHandle total_h = rt.create_data();
  params.push_back(Out(total_h));
  rt.submit("join", params, [](TaskContext& ctx) {
    int total = 0;
    for (int i = 0; i < kN; ++i) total += ctx.in_as<int>(static_cast<std::size_t>(i));
    ctx.set_out(kN, std::any(total));
  });
  EXPECT_EQ(rt.sync_as<int>(total_h), kN * (kN - 1) / 2);
}

TEST(Trace, OverlapFractionComputed) {
  std::vector<TaskTrace> tasks(2);
  tasks[0].id = 1;
  tasks[0].name = "a";
  tasks[0].start_ns = 0;
  tasks[0].end_ns = 100;
  tasks[1].id = 2;
  tasks[1].name = "b";
  tasks[1].start_ns = 50;
  tasks[1].end_ns = 150;
  Trace trace(std::move(tasks));
  EXPECT_NEAR(trace.overlap_fraction("a", "b"), 0.5, 1e-9);
  EXPECT_NEAR(trace.overlap_fraction("b", "a"), 0.5, 1e-9);
  EXPECT_NEAR(trace.overlap_fraction("a", "missing"), 0.0, 1e-9);
}

}  // namespace
}  // namespace climate::taskrt

namespace climate::taskrt {
namespace {

TEST(Runtime, ReleaseDataFreesAndGuards) {
  Runtime rt;
  DataHandle big = rt.create_data(std::any(std::vector<int>(1000, 7)), 4000);
  DataHandle out = rt.create_data();
  rt.submit("consume", {In(big), Out(out)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(static_cast<int>(ctx.in_as<std::vector<int>>(0)[0])));
  });
  EXPECT_EQ(rt.sync_as<int>(out), 7);
  rt.wait_all();
  EXPECT_EQ(rt.release_data(big), 4000u);
  // Released data cannot be read again.
  EXPECT_THROW(rt.submit("late", {In(big)}, [](TaskContext&) {}), std::logic_error);
  EXPECT_THROW(rt.release_data(DataHandle{9999}), std::logic_error);
}

TEST(Runtime, ReleaseDataRefusesWhileActive) {
  Runtime rt;
  DataHandle data = rt.create_data(std::any(1));
  DataHandle out = rt.create_data();
  std::atomic<bool> release{false};
  rt.submit("slow", {In(data), Out(out)}, [&](TaskContext& ctx) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ctx.set_out(1, std::any(2));
  });
  EXPECT_THROW(rt.release_data(data), std::logic_error);
  release.store(true);
  rt.wait_all();
  EXPECT_GT(rt.release_data(data), 0u);
}

TEST(Runtime, RoundRobinPlacementSpreadsTasks) {
  RuntimeOptions options;
  options.workers = 3;
  options.locality_aware = false;
  Runtime rt(options);
  std::mutex mutex;
  std::set<int> nodes_used;
  std::vector<DataHandle> outs;
  for (int i = 0; i < 9; ++i) {
    DataHandle out = rt.create_data();
    outs.push_back(out);
    rt.submit("spread", {Out(out)}, [&](TaskContext& ctx) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        nodes_used.insert(ctx.node());
      }
      ctx.simulate_compute(std::chrono::milliseconds(5));
      ctx.set_out(0, std::any(1));
    });
  }
  rt.wait_all();
  EXPECT_EQ(nodes_used.size(), 3u);  // all nodes received work
}

TEST(Runtime, ContainerStartupDelaysTasks) {
  // Identical workload, with and without the simulated container cost.
  auto run_with = [](double startup_ms) {
    RuntimeOptions options;
    options.workers = 1;
    options.container_startup_ms = startup_ms;
    Runtime rt(options);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 10; ++i) {
      DataHandle out = rt.create_data();
      rt.submit("quick", {Out(out)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(1)); });
    }
    rt.wait_all();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double bare = run_with(0.0);
  const double containerized = run_with(10.0);
  EXPECT_GT(containerized, bare + 50.0);  // 10 tasks x 10 ms, minus slack
}

}  // namespace
}  // namespace climate::taskrt

namespace climate::taskrt {
namespace {

TEST(Trace, NodeUtilizationAndBusyByName) {
  std::vector<TaskTrace> tasks(3);
  tasks[0] = {.id = 1, .name = "sim", .state = TaskState::kCompleted, .node = 0,
              .start_ns = 0, .end_ns = 100};
  tasks[1] = {.id = 2, .name = "sim", .state = TaskState::kCompleted, .node = 1,
              .start_ns = 0, .end_ns = 50};
  tasks[2] = {.id = 3, .name = "post", .state = TaskState::kCompleted, .node = 1,
              .start_ns = 50, .end_ns = 100};
  Trace trace(std::move(tasks));
  const auto utilization = trace.node_utilization();
  EXPECT_NEAR(utilization.at(0), 1.0, 1e-9);
  EXPECT_NEAR(utilization.at(1), 1.0, 1e-9);  // 50 + 50 over span 100
  const auto busy = trace.busy_ns_by_name();
  EXPECT_EQ(busy.at("sim"), 150);
  EXPECT_EQ(busy.at("post"), 50);
}

TEST(Runtime, MultiCoreNodeRunsTasksConcurrently) {
  RuntimeOptions options;
  NodeSpec fat;
  fat.name = "fat0";
  fat.cores = 3;
  options.nodes = {fat};
  Runtime rt(options);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 3; ++i) {
    DataHandle out = rt.create_data();
    rt.submit("spin", {Out(out)}, [&](TaskContext& ctx) {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      ctx.simulate_compute(std::chrono::milliseconds(30));
      concurrent.fetch_sub(1);
      ctx.set_out(0, std::any(1));
    });
  }
  rt.wait_all();
  EXPECT_GE(peak.load(), 2);  // one node, several cores
}

}  // namespace
}  // namespace climate::taskrt

// Exporter-focused tests for taskrt::Trace (ISSUE 1 satellite): DOT
// well-formedness and stable colour assignment, Gantt CSV row shape,
// overlap_fraction edge cases, and the obs track-event adapter.
#include <algorithm>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "taskrt/trace.hpp"

namespace climate::taskrt {
namespace {

std::vector<TaskTrace> two_family_tasks() {
  std::vector<TaskTrace> tasks(3);
  tasks[0].id = 1;
  tasks[0].name = "simulate";
  tasks[0].node = 0;
  tasks[0].start_ns = 0;
  tasks[0].end_ns = 1000;
  tasks[1].id = 2;
  tasks[1].name = "analyse";
  tasks[1].node = 1;
  tasks[1].start_ns = 500;
  tasks[1].end_ns = 1500;
  tasks[1].deps = {1};
  tasks[2].id = 3;
  tasks[2].name = "simulate";
  tasks[2].node = 0;
  tasks[2].start_ns = 1000;
  tasks[2].end_ns = 2000;
  return tasks;
}

TEST(TraceExport, DotIsWellFormed) {
  const Trace trace(two_family_tasks());
  const std::string dot = trace.to_dot();
  EXPECT_EQ(dot.rfind("digraph workflow {", 0), 0u);  // starts the graph
  EXPECT_EQ(dot.find('{'), dot.rfind('{'));           // a single block
  EXPECT_NE(dot.find("}\n"), std::string::npos);
  // One node statement per task, one edge per dependency.
  EXPECT_NE(dot.find("t1 ["), std::string::npos);
  EXPECT_NE(dot.find("t2 ["), std::string::npos);
  EXPECT_NE(dot.find("t3 ["), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2;"), std::string::npos);
}

TEST(TraceExport, DotColoursAreStablePerName) {
  const Trace trace(two_family_tasks());
  const std::string dot = trace.to_dot();
  // Both "simulate" tasks share a fill colour, "analyse" differs.
  auto colour_of = [&dot](const std::string& node) {
    const std::size_t at = dot.find(node + " [");
    const std::size_t fill = dot.find("fillcolor=\"", at) + 11;
    return dot.substr(fill, dot.find('"', fill) - fill);
  };
  EXPECT_EQ(colour_of("t1"), colour_of("t3"));
  EXPECT_NE(colour_of("t1"), colour_of("t2"));
  // Colour assignment is deterministic across exports of the same trace.
  EXPECT_EQ(dot, Trace(two_family_tasks()).to_dot());
}

TEST(TraceExport, GanttCsvRowShape) {
  const Trace trace(two_family_tasks());
  const std::string csv = trace.to_gantt_csv();
  EXPECT_EQ(csv.rfind("id,name,node,start_us,end_us\n", 0), 0u);
  // Every data row has exactly 4 commas; never-started tasks are skipped.
  std::size_t rows = 0;
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string row = csv.substr(pos, end - pos);
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 4) << row;
    ++rows;
    pos = end + 1;
  }
  EXPECT_EQ(rows, 3u);

  std::vector<TaskTrace> with_unstarted = two_family_tasks();
  with_unstarted.push_back(TaskTrace{});  // start_ns = -1: not run
  const std::string csv2 = Trace(std::move(with_unstarted)).to_gantt_csv();
  EXPECT_EQ(std::count(csv2.begin(), csv2.end(), '\n'), 4);  // header + 3 rows
}

TEST(TraceExport, OverlapFractionEdgeCases) {
  // Empty trace: no intervals at all.
  EXPECT_DOUBLE_EQ(Trace().overlap_fraction("a", "b"), 0.0);

  // Non-overlapping names: a ends before b starts.
  std::vector<TaskTrace> tasks(2);
  tasks[0].id = 1;
  tasks[0].name = "a";
  tasks[0].start_ns = 0;
  tasks[0].end_ns = 100;
  tasks[1].id = 2;
  tasks[1].name = "b";
  tasks[1].start_ns = 100;
  tasks[1].end_ns = 200;
  const Trace trace(std::move(tasks));
  EXPECT_DOUBLE_EQ(trace.overlap_fraction("a", "b"), 0.0);
  // Unknown family on either side is 0, not NaN.
  EXPECT_DOUBLE_EQ(trace.overlap_fraction("missing", "b"), 0.0);
  EXPECT_DOUBLE_EQ(trace.overlap_fraction("a", "missing"), 0.0);
  // Full self overlap.
  EXPECT_DOUBLE_EQ(trace.overlap_fraction("a", "a"), 1.0);
}

TEST(TraceExport, ToObsTrackEventsSkipsUnstarted) {
  std::vector<TaskTrace> tasks = two_family_tasks();
  tasks.push_back(TaskTrace{});  // never ran
  const auto events = to_obs_track_events(Trace(std::move(tasks)));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].track, "node0");
  EXPECT_EQ(events[0].name, "simulate");
  EXPECT_EQ(events[0].category, "taskrt.task");
  EXPECT_EQ(events[1].track, "node1");
  EXPECT_EQ(events[2].end_ns, 2000);
}

}  // namespace
}  // namespace climate::taskrt
