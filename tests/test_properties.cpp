// Cross-module property tests: randomized CDF-lite schemas round-trip,
// random task DAGs execute in dependency order, and random datacube
// operator pipelines agree with a dense reference implementation.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "datacube/server.hpp"
#include "ncio/ncfile.hpp"
#include "taskrt/runtime.hpp"

namespace climate {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// ncio: random schemas and hyperslabs round-trip.
// ---------------------------------------------------------------------------

class NcioFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NcioFuzz, RandomSchemaRoundTrip) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const std::string path =
      (fs::temp_directory_path() / ("fuzz_" + std::to_string(GetParam()) + ".nc")).string();

  auto writer = ncio::FileWriter::create(path);
  ASSERT_TRUE(writer.ok());

  // Random dimensions.
  const int ndims = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<std::string> dim_names;
  std::vector<std::uint64_t> dim_sizes;
  for (int d = 0; d < ndims; ++d) {
    dim_names.push_back("dim" + std::to_string(d));
    dim_sizes.push_back(static_cast<std::uint64_t>(rng.uniform_int(1, 9)));
    ASSERT_TRUE(writer->def_dim(dim_names.back(), dim_sizes.back()).ok());
  }
  // Random variables over random dim subsets (contiguous prefixes keep the
  // shapes simple).
  const int nvars = static_cast<int>(rng.uniform_int(1, 5));
  std::vector<std::vector<float>> payloads;
  std::vector<std::string> var_names;
  for (int v = 0; v < nvars; ++v) {
    const int rank = static_cast<int>(rng.uniform_int(1, ndims));
    std::vector<std::string> dims(dim_names.begin(), dim_names.begin() + rank);
    var_names.push_back("var" + std::to_string(v));
    ASSERT_TRUE(writer->def_var(var_names.back(), ncio::DType::kFloat32, dims).ok());
    std::uint64_t count = 1;
    for (int d = 0; d < rank; ++d) count *= dim_sizes[static_cast<std::size_t>(d)];
    std::vector<float> payload(count);
    for (auto& x : payload) x = static_cast<float>(rng.normal(0, 100));
    payloads.push_back(std::move(payload));
  }
  // Random attributes.
  ASSERT_TRUE(writer->put_attr("", "seed", static_cast<std::int64_t>(GetParam())).ok());
  ASSERT_TRUE(writer->put_attr(var_names[0], "note", std::string("fuzz")).ok());
  ASSERT_TRUE(writer->end_def().ok());
  for (int v = 0; v < nvars; ++v) {
    ASSERT_TRUE(writer
                    ->put_var(var_names[static_cast<std::size_t>(v)],
                              payloads[static_cast<std::size_t>(v)].data(),
                              payloads[static_cast<std::size_t>(v)].size())
                    .ok());
  }
  ASSERT_TRUE(writer->close().ok());

  auto reader = ncio::FileReader::open(path);
  ASSERT_TRUE(reader.ok());
  for (int v = 0; v < nvars; ++v) {
    auto values = reader->read_floats(var_names[static_cast<std::size_t>(v)]);
    ASSERT_TRUE(values.ok());
    EXPECT_EQ(*values, payloads[static_cast<std::size_t>(v)]);
  }
  // Random hyperslab of var0 equals the manual slice.
  auto shape = reader->var_shape(var_names[0]);
  ASSERT_TRUE(shape.ok());
  std::vector<std::uint64_t> start(shape->size()), count(shape->size());
  for (std::size_t d = 0; d < shape->size(); ++d) {
    start[d] = static_cast<std::uint64_t>(rng.uniform_index((*shape)[d]));
    count[d] = 1 + static_cast<std::uint64_t>(rng.uniform_index((*shape)[d] - start[d]));
  }
  auto slab = reader->read_slab(var_names[0], start, count);
  ASSERT_TRUE(slab.ok());
  // Verify against the full payload.
  std::vector<std::uint64_t> strides(shape->size(), 1);
  for (std::size_t d = shape->size(); d-- > 1;) strides[d - 1] = strides[d] * (*shape)[d];
  std::vector<std::uint64_t> idx(shape->size(), 0);
  std::size_t pos = 0;
  while (true) {
    std::uint64_t flat = 0;
    for (std::size_t d = 0; d < shape->size(); ++d) flat += (start[d] + idx[d]) * strides[d];
    ASSERT_FLOAT_EQ((*slab)[pos++], payloads[0][flat]);
    std::size_t d = shape->size();
    while (d-- > 0) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
      if (d == 0) goto done;
    }
    if (shape->empty()) break;
  }
done:
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NcioFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// taskrt: random DAGs always execute respecting dependencies.
// ---------------------------------------------------------------------------

class DagProperty : public ::testing::TestWithParam<int> {};

TEST_P(DagProperty, RandomDagExecutesInDependencyOrder) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  taskrt::RuntimeOptions options;
  options.workers = 1 + static_cast<std::size_t>(GetParam()) % 4;
  taskrt::Runtime rt(options);

  // Each task appends its id to a shared log; we later verify every
  // dependency appears before its dependant.
  std::mutex log_mutex;
  std::vector<int> execution_order;

  const int ntasks = 40;
  std::vector<taskrt::DataHandle> outputs;
  std::vector<std::vector<int>> deps_of(ntasks);
  for (int t = 0; t < ntasks; ++t) {
    std::vector<taskrt::Param> params;
    // Depend on up to 3 random earlier tasks.
    const int ndeps = static_cast<int>(rng.uniform_int(0, std::min(3, t)));
    std::set<int> chosen;
    for (int d = 0; d < ndeps; ++d) {
      chosen.insert(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(t))));
    }
    for (int dep : chosen) {
      params.push_back(taskrt::In(outputs[static_cast<std::size_t>(dep)]));
      deps_of[static_cast<std::size_t>(t)].push_back(dep);
    }
    taskrt::DataHandle out = rt.create_data();
    outputs.push_back(out);
    params.push_back(taskrt::Out(out));
    const std::size_t out_index = params.size() - 1;
    rt.submit("node", params, [t, out_index, &log_mutex, &execution_order](taskrt::TaskContext& ctx) {
      {
        std::lock_guard<std::mutex> lock(log_mutex);
        execution_order.push_back(t);
      }
      ctx.set_out(out_index, std::any(t));
    });
  }
  rt.wait_all();

  ASSERT_EQ(execution_order.size(), static_cast<std::size_t>(ntasks));
  std::map<int, std::size_t> position;
  for (std::size_t i = 0; i < execution_order.size(); ++i) position[execution_order[i]] = i;
  for (int t = 0; t < ntasks; ++t) {
    for (int dep : deps_of[static_cast<std::size_t>(t)]) {
      EXPECT_LT(position[dep], position[t]) << "task " << t << " ran before its dependency " << dep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// datacube: random operator pipelines match a dense reference.
// ---------------------------------------------------------------------------

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, RandomPipelineMatchesDenseReference) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 11);
  datacube::Server server(1 + static_cast<std::size_t>(GetParam()) % 4);

  const std::size_t rows = 6 + rng.uniform_index(10);
  const std::size_t alen = 4 + rng.uniform_index(12);
  std::vector<float> dense(rows * alen);
  for (auto& v : dense) v = static_cast<float>(rng.uniform(-10, 10));
  auto pid = server.create_cube("m", {{"row", rows, {}}}, {"t", alen, {}}, dense, "");
  ASSERT_TRUE(pid.ok());

  std::vector<float> reference = dense;
  std::string current = *pid;
  std::size_t current_alen = alen;

  const int steps = static_cast<int>(rng.uniform_int(1, 4));
  for (int s = 0; s < steps; ++s) {
    switch (rng.uniform_index(3)) {
      case 0: {  // scale + offset apply
        const float scale = static_cast<float>(rng.uniform(0.5, 2.0));
        auto next = server.apply(current, common::format("x * %g + 1", scale));
        ASSERT_TRUE(next.ok());
        current = *next;
        for (auto& v : reference) v = v * scale + 1;
        break;
      }
      case 1: {  // threshold mask
        auto next = server.apply(current, "predicate(x, '>0', 1, 0)");
        ASSERT_TRUE(next.ok());
        current = *next;
        for (auto& v : reference) v = v > 0 ? 1.0f : 0.0f;
        break;
      }
      default: {  // subset of the implicit dim
        if (current_alen < 2) continue;
        const std::size_t lo = rng.uniform_index(current_alen - 1);
        const std::size_t hi = lo + rng.uniform_index(current_alen - lo);
        auto next = server.subset(current, "t", lo, hi);
        ASSERT_TRUE(next.ok());
        current = *next;
        std::vector<float> sliced;
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t k = lo; k <= hi; ++k) sliced.push_back(reference[r * current_alen + k]);
        }
        reference = std::move(sliced);
        current_alen = hi - lo + 1;
        break;
      }
    }
  }
  auto final_values = server.fetch_dense(current);
  ASSERT_TRUE(final_values.ok());
  ASSERT_EQ(final_values->size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR((*final_values)[i], reference[i], 1e-4) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace climate
