// Tests for the workflow flight recorder (obs/prof): critical-path
// reconstruction, per-task attribution on a synthetic DAG with known
// timings, lifecycle stamp ordering on a real runtime, flow events and the
// report renderers.
#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "common/json.hpp"
#include "obs/prof/profile.hpp"
#include "taskrt/runtime.hpp"

namespace climate::obs::prof {
namespace {

using taskrt::TaskState;
using taskrt::TaskTrace;

// Hand-built three-task DAG with exactly known stamps (ns):
//
//   A [0, 100] on node0 (exec 90, transfer 10)
//   B [150, 250] on node1, deps {A}: ready at 100, queued at 100 -> dep wait
//     100, queue wait 50; exec 80, transfer 20
//   C [100, 160] on node0, deps {A}: runs immediately, off the critical path
//
// Critical path is A -> B: length 250, with a 50 ns scheduling gap.
taskrt::Trace synthetic_trace() {
  TaskTrace a;
  a.id = 1;
  a.name = "sim";
  a.state = TaskState::kCompleted;
  a.node = 0;
  a.submit_ns = 0;
  a.ready_ns = 0;
  a.queued_ns = 0;
  a.start_ns = 0;
  a.end_ns = 100;
  a.transfer_ns = 10;
  a.exec_ns = 90;

  TaskTrace b;
  b.id = 2;
  b.name = "analyze";
  b.state = TaskState::kCompleted;
  b.node = 1;
  b.submit_ns = 0;
  b.ready_ns = 100;
  b.queued_ns = 100;
  b.start_ns = 150;
  b.end_ns = 250;
  b.transfer_ns = 20;
  b.exec_ns = 80;
  b.deps = {1};

  TaskTrace c;
  c.id = 3;
  c.name = "viz";
  c.state = TaskState::kCompleted;
  c.node = 0;
  c.submit_ns = 0;
  c.ready_ns = 100;
  c.queued_ns = 100;
  c.start_ns = 100;
  c.end_ns = 160;
  c.exec_ns = 60;
  c.deps = {1};

  return taskrt::Trace({a, b, c});
}

TEST(Prof, SyntheticDagCriticalPathAndAttribution) {
  const Analysis analysis = analyze(synthetic_trace());

  ASSERT_EQ(analysis.critical_path, (std::vector<taskrt::TaskId>{1, 2}));
  EXPECT_EQ(analysis.makespan_ns, 250);
  EXPECT_EQ(analysis.critical_path_ns, 250);
  EXPECT_EQ(analysis.critical_wait_ns, 50);
  EXPECT_EQ(analysis.executed_tasks, 3u);
  EXPECT_EQ(analysis.failed_tasks, 0u);

  const TaskCost* b = analysis.find(2);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->on_critical_path);
  EXPECT_EQ(b->dep_wait_ns, 100);
  EXPECT_EQ(b->queue_wait_ns, 50);
  EXPECT_EQ(b->transfer_ns, 20);
  EXPECT_EQ(b->exec_ns, 80);
  EXPECT_EQ(b->overhead_ns, 0);
  EXPECT_EQ(b->slack_ns, 0);  // latest-ending task: bounded by run end

  // A gated both B and C; its earliest successor start equals its end.
  const TaskCost* a = analysis.find(1);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->on_critical_path);
  EXPECT_EQ(a->slack_ns, 0);

  // C could have finished up to run_end - end(C) = 90 ns later.
  const TaskCost* c = analysis.find(3);
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->on_critical_path);
  EXPECT_EQ(c->slack_ns, 90);

  // Per-function on-path time plus the scheduling gap sums exactly to the
  // path length (the shares account for 100% of the critical path).
  std::int64_t on_path = 0;
  for (const FunctionStat& f : analysis.functions) on_path += f.critical_ns;
  EXPECT_EQ(on_path + analysis.critical_wait_ns, analysis.critical_path_ns);
}

TEST(Prof, NodeRollupsAndTimelines) {
  const Analysis analysis = analyze(synthetic_trace(), {.timeline_buckets = 25});
  ASSERT_EQ(analysis.nodes.size(), 2u);

  const NodeStat& node0 = analysis.nodes[0];
  EXPECT_EQ(node0.node, 0);
  EXPECT_EQ(node0.tasks, 2u);
  EXPECT_EQ(node0.busy_ns, 160);  // A (100) + C (60)
  EXPECT_NEAR(node0.utilization, 160.0 / 250.0, 1e-9);
  EXPECT_NEAR(node0.idle_fraction, 1.0 - 160.0 / 250.0, 1e-9);

  // Timeline buckets are 10 ns wide; summed coverage equals busy time.
  const Timeline& util = node0.utilization_timeline;
  ASSERT_EQ(util.values.size(), 25u);
  EXPECT_EQ(util.bucket_ns, 10);
  double covered = 0.0;
  for (double v : util.values) covered += v * static_cast<double>(util.bucket_ns);
  EXPECT_NEAR(covered, 160.0, 1e-6);

  // node1 queued B for 50 ns: queue-depth coverage equals the queue wait.
  const Timeline& queue = analysis.nodes[1].queue_depth_timeline;
  double queued = 0.0;
  for (double v : queue.values) queued += v * static_cast<double>(queue.bucket_ns);
  EXPECT_NEAR(queued, 50.0, 1e-6);
}

TEST(Prof, ReportsRenderAndParse) {
  const Analysis analysis = analyze(synthetic_trace());

  const std::string text = analysis.text_report();
  EXPECT_NE(text.find("critical path: 2 tasks"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);
  EXPECT_NE(text.find("analyze"), std::string::npos);
  EXPECT_NE(text.find("(scheduling wait)"), std::string::npos);

  const auto parsed = common::Json::parse(analysis.json_report().dump());
  ASSERT_TRUE(parsed.ok());
  const common::Json& doc = parsed.value();
  EXPECT_EQ(doc["summary"]["critical_path_ns"].as_int(), 250);
  EXPECT_EQ(doc["summary"]["critical_wait_ns"].as_int(), 50);
  EXPECT_EQ(doc["critical_path"].size(), 2u);
  EXPECT_EQ(doc["tasks"].size(), 3u);

  const std::string dot = analysis.to_dot();
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);       // path nodes
  EXPECT_NE(dot.find("t1 -> t2 [color=\"red\""), std::string::npos);
  EXPECT_EQ(dot.find("t1 -> t3 [color"), std::string::npos);  // off-path edge plain
}

TEST(Prof, FlowEventsClampedInsideSlices) {
  const taskrt::Trace trace = synthetic_trace();
  const std::vector<FlowEvent> flows = to_flow_events(trace);
  ASSERT_EQ(flows.size(), 2u);  // A->B and A->C

  std::set<std::uint64_t> ids;
  for (const FlowEvent& flow : flows) {
    ids.insert(flow.id);
    EXPECT_EQ(flow.from_track, "node0");
    EXPECT_GE(flow.from_ns, 0);
    EXPECT_LT(flow.from_ns, 100);  // inside A's slice
    EXPECT_GE(flow.to_ns, 100);    // inside the consumer's slice
  }
  EXPECT_EQ(ids.size(), flows.size());  // unique arrow identities

  // The merged Chrome trace with tracks + flows must stay valid JSON.
  const std::string json =
      chrome_trace_json({}, taskrt::to_obs_track_events(trace), flows);
  ASSERT_TRUE(common::Json::parse(json).ok());
}

TEST(Prof, ChainedWorkflowPathMatchesMakespan) {
  // A pure chain: the critical path must cover every task, so its length
  // equals the trace makespan exactly (same first start, same last end).
  taskrt::RuntimeOptions options;
  options.workers = 2;
  taskrt::Runtime rt(options);
  taskrt::DataHandle data = rt.create_data(std::any(0));
  for (int i = 0; i < 4; ++i) {
    rt.submit("step", {taskrt::InOut(data)}, [](taskrt::TaskContext& ctx) {
      ctx.simulate_compute(std::chrono::milliseconds(15));
      ctx.set_out(0, std::any(ctx.in_as<int>(0) + 1));
    });
  }
  rt.wait_all();

  const Analysis analysis = profile(rt);
  EXPECT_EQ(analysis.critical_path.size(), 4u);
  EXPECT_EQ(analysis.critical_path_ns, analysis.makespan_ns);
  std::int64_t on_path = 0;
  for (const FunctionStat& f : analysis.functions) on_path += f.critical_ns;
  EXPECT_EQ(on_path + analysis.critical_wait_ns, analysis.critical_path_ns);
  // Four 15 ms bodies: the path must be at least the serial compute time.
  EXPECT_GE(analysis.critical_path_ns, 4 * 15'000'000);
}

TEST(Prof, RuntimeStampsAreOrdered) {
  taskrt::RuntimeOptions options;
  options.workers = 2;
  taskrt::Runtime rt(options);
  std::vector<taskrt::DataHandle> outs;
  taskrt::DataHandle root = rt.create_data();
  rt.submit("produce", {taskrt::Out(root)}, [](taskrt::TaskContext& ctx) {
    ctx.simulate_compute(std::chrono::milliseconds(5));
    ctx.set_out(0, std::any(1));
  });
  for (int i = 0; i < 6; ++i) {
    taskrt::DataHandle out = rt.create_data();
    outs.push_back(out);
    rt.submit("consume", {taskrt::In(root), taskrt::Out(out)}, [](taskrt::TaskContext& ctx) {
      ctx.simulate_compute(std::chrono::milliseconds(2));
      ctx.set_out(1, std::any(ctx.in_as<int>(0) + 1));
    });
  }
  rt.wait_all();

  const taskrt::Trace trace = rt.trace();
  for (const TaskTrace& t : trace.tasks()) {
    ASSERT_EQ(t.state, TaskState::kCompleted) << t.name;
    EXPECT_GE(t.ready_ns, t.submit_ns) << t.name;
    EXPECT_GE(t.queued_ns, t.ready_ns) << t.name;
    EXPECT_GE(t.start_ns, t.queued_ns) << t.name;
    EXPECT_GT(t.end_ns, t.start_ns) << t.name;
    // The measured components are sub-intervals of [start, end].
    EXPECT_LE(t.transfer_ns + t.exec_ns, t.end_ns - t.start_ns) << t.name;
    EXPECT_GE(t.exec_ns, 1'000'000) << t.name;  // >= the simulated compute
  }
}

TEST(Prof, SpanProfileAggregatesByGroup) {
  std::vector<SpanRecord> spans;
  SpanRecord a{1, 0, "datacube", "load", 0, 0, 100};
  SpanRecord b{2, 0, "datacube", "load", 0, 100, 250};
  SpanRecord c{3, 0, "ml", "train", 1, 50, 310};
  spans = {a, b, c};

  const SpanProfile profile = profile_spans(spans);
  EXPECT_EQ(profile.wall_ns, 310);
  ASSERT_EQ(profile.groups.size(), 2u);
  EXPECT_EQ(profile.groups[0].name, "train");  // 260 ns, sorted by total desc
  EXPECT_EQ(profile.groups[0].total_ns, 260);
  EXPECT_EQ(profile.groups[1].total_ns, 250);  // the two "load" spans merged

  const std::string report = profile.text_report();
  EXPECT_NE(report.find("datacube"), std::string::npos);
  EXPECT_NE(report.find("train"), std::string::npos);
}

TEST(Prof, SyncBarrierBridgesCriticalPath) {
  // B has no recorded producer (its input was built on the master from
  // synced results), but it was submitted only after A finished — the walk
  // must bridge the barrier so the path still spans the run.
  std::vector<TaskTrace> tasks;
  tasks.push_back({.id = 1,
                   .name = "produce",
                   .state = TaskState::kCompleted,
                   .node = 0,
                   .submit_ns = 0,
                   .start_ns = 0,
                   .end_ns = 100,
                   .exec_ns = 100});
  tasks.push_back({.id = 2,
                   .name = "post_sync",
                   .state = TaskState::kCompleted,
                   .node = 0,
                   .submit_ns = 110,
                   .start_ns = 120,
                   .end_ns = 200,
                   .exec_ns = 80});

  const Analysis analysis = analyze(taskrt::Trace(std::move(tasks)));
  ASSERT_EQ(analysis.critical_path.size(), 2u);
  EXPECT_EQ(analysis.critical_path.front(), 1u);
  EXPECT_EQ(analysis.critical_path.back(), 2u);
  EXPECT_EQ(analysis.critical_path_ns, 200);
  EXPECT_EQ(analysis.critical_path_ns, analysis.makespan_ns);
  // The barrier gap counts as scheduling wait on the path.
  EXPECT_EQ(analysis.critical_wait_ns, 20);
  // No data edge exists, so the DOT bridge is dashed, not a real edge.
  const std::string dot = analysis.to_dot();
  EXPECT_NE(dot.find("t1 -> t2 [style=dashed"), std::string::npos);
}

TEST(Prof, EmptyTraceProducesEmptyAnalysis) {
  const Analysis analysis = analyze(taskrt::Trace(std::vector<TaskTrace>{}));
  EXPECT_EQ(analysis.makespan_ns, 0);
  EXPECT_EQ(analysis.critical_path_ns, 0);
  EXPECT_TRUE(analysis.critical_path.empty());
  EXPECT_FALSE(analysis.text_report().empty());  // still renders
  EXPECT_TRUE(common::Json::parse(analysis.json_report().dump()).ok());
}

}  // namespace
}  // namespace climate::obs::prof
