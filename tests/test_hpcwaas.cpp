// Tests for the HPCWaaS stack: YAML parsing, TOSCA topologies, container
// image service, data logistics, batch scheduling, orchestrator, and the
// REST-style execution API.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "core/workflow.hpp"
#include "hpcwaas/service.hpp"
#include "hpcwaas/yaml.hpp"

namespace climate::hpcwaas {
namespace {

namespace fs = std::filesystem;

TEST(Yaml, ScalarsAndNesting) {
  auto doc = parse_yaml(R"(
name: test
count: 3
rate: 2.5
flag: true
off: false
nothing: null
nested:
  inner: value
  deeper:
    leaf: 42
)");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(doc->get_string("name"), "test");
  EXPECT_EQ(doc->get_int("count"), 3);
  EXPECT_DOUBLE_EQ(doc->get_number("rate"), 2.5);
  EXPECT_TRUE(doc->get_bool("flag"));
  EXPECT_FALSE((*doc)["off"].as_bool());
  EXPECT_TRUE((*doc)["nothing"].is_null());
  EXPECT_EQ((*doc)["nested"]["deeper"].get_int("leaf"), 42);
}

TEST(Yaml, Sequences) {
  auto doc = parse_yaml(R"(
items:
  - alpha
  - beta
  - 3
mappings:
  - host: node1
  - depends: node2
)");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  const auto& items = (*doc)["items"];
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_string(), "alpha");
  EXPECT_DOUBLE_EQ(items[2].as_number(), 3.0);
  EXPECT_EQ((*doc)["mappings"][0].get_string("host"), "node1");
  EXPECT_EQ((*doc)["mappings"][1].get_string("depends"), "node2");
}

TEST(Yaml, QuotedStringsAndComments) {
  auto doc = parse_yaml(R"(
# leading comment
plain: hello world   # trailing comment
quoted: "a: b # not a comment"
single: 'it''s-ish'
)");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(doc->get_string("plain"), "hello world");
  EXPECT_EQ(doc->get_string("quoted"), "a: b # not a comment");
}

TEST(Yaml, RejectsTabsAndGarbage) {
  EXPECT_FALSE(parse_yaml("\tkey: value").ok());
  EXPECT_FALSE(parse_yaml("just a scalar line").ok());
}

TEST(Tosca, ParsesCaseStudyTopology) {
  auto topology = parse_topology(core::case_study_topology_yaml());
  ASSERT_TRUE(topology.ok()) << topology.status().to_string();
  EXPECT_EQ(topology->name, "climate-extremes-case-study");
  EXPECT_EQ(topology->nodes.size(), 6u);
  EXPECT_EQ(topology->inputs.size(), 2u);

  const NodeTemplate* workflow = topology->find("extreme_events_workflow");
  ASSERT_NE(workflow, nullptr);
  EXPECT_EQ(workflow->kind, NodeKind::kWorkflow);
  EXPECT_EQ(workflow->host, "zeus_cluster");
  EXPECT_EQ(workflow->depends_on.size(), 4u);

  auto order = topology->deployment_order();
  ASSERT_TRUE(order.ok());
  // The compute node comes first; the workflow node last.
  EXPECT_EQ(order->front(), "zeus_cluster");
  EXPECT_EQ(order->back(), "extreme_events_workflow");
}

TEST(Tosca, DetectsDanglingRequirements) {
  const std::string bad = R"(
name: broken
topology_template:
  node_templates:
    app:
      type: eflows.nodes.Software
      requirements:
        - host: missing_node
)";
  EXPECT_FALSE(parse_topology(bad).ok());
}

TEST(Tosca, DetectsCycles) {
  const std::string cyclic = R"(
name: cycle
topology_template:
  node_templates:
    a:
      type: eflows.nodes.Software
      requirements:
        - depends: b
    b:
      type: eflows.nodes.Software
      requirements:
        - depends: a
)";
  EXPECT_FALSE(parse_topology(cyclic).ok());
}

TEST(Tosca, RejectsUnknownTypes) {
  const std::string unknown = R"(
name: odd
topology_template:
  node_templates:
    thing:
      type: eflows.nodes.Quantum
)";
  EXPECT_FALSE(parse_topology(unknown).ok());
}

TEST(Containers, ColdThenWarmBuild) {
  ContainerImageService service;
  ImageSpec spec;
  spec.name = "analytics";
  spec.packages = {"pyophidia", "ophidia-server", "numpy"};
  auto cold = service.build(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->layers.size(), 4u);  // base + 3 packages
  EXPECT_EQ(cold->cache_hits, 0u);
  EXPECT_GT(cold->build_ms, 0.0);
  EXPECT_GT(cold->total_bytes(), 0u);

  auto warm = service.build(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_hits, 4u);
  EXPECT_DOUBLE_EQ(warm->build_ms, 0.0);
  EXPECT_EQ(warm->id, cold->id);

  // Shared prefix: a spec with one extra package only builds one layer.
  ImageSpec extended = spec;
  extended.packages.push_back("scipy");
  auto incremental = service.build(extended);
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(incremental->cache_hits, 4u);
  EXPECT_NE(incremental->id, cold->id);
}

TEST(Containers, PlatformChangesDigests) {
  ContainerImageService service;
  ImageSpec spec;
  spec.name = "env";
  spec.packages = {"pycompss"};
  auto zeus = service.build(spec);
  spec.platform.name = "marenostrum";
  spec.platform.mpi = "intelmpi";
  auto mn = service.build(spec);
  ASSERT_TRUE(zeus.ok());
  ASSERT_TRUE(mn.ok());
  EXPECT_NE(zeus->id, mn->id);
  EXPECT_EQ(mn->cache_hits, 0u);  // different platform -> cold
}

TEST(Containers, LookupAndCacheManagement) {
  ContainerImageService service;
  ImageSpec spec;
  spec.name = "x";
  spec.packages = {"a"};
  auto image = service.build(spec);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(service.get(image->id).ok());
  EXPECT_FALSE(service.get("sha:nope").ok());
  EXPECT_EQ(service.cached_layers(), 2u);
  service.clear_cache();
  EXPECT_EQ(service.cached_layers(), 0u);
  EXPECT_FALSE(service.build(ImageSpec{}).ok());  // empty name
}

class DlsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("dls_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    std::ofstream(dir_ / "input.dat") << "climate data payload";
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(DlsTest, CopyGenerateVerifyPipeline) {
  DataLogisticsService dls;
  DataPipeline pipeline;
  pipeline.name = "stage_in";
  pipeline.steps.push_back(
      {DataStep::Kind::kCopy, (dir_ / "input.dat").string(), (dir_ / "staged/input.dat").string(),
       nullptr, ""});
  pipeline.steps.push_back({DataStep::Kind::kGenerate, "", (dir_ / "generated.txt").string(),
                            [](const std::string& path) {
                              std::ofstream out(path);
                              out << "generated";
                              return common::Status::Ok();
                            },
                            ""});
  pipeline.steps.push_back(
      {DataStep::Kind::kVerify, (dir_ / "staged/input.dat").string(), "", nullptr, ""});
  dls.register_pipeline(pipeline);

  auto report = dls.run("stage_in");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->steps.size(), 3u);
  EXPECT_GT(report->total_bytes, 0u);
  EXPECT_TRUE(fs::exists(dir_ / "staged/input.dat"));

  // Checksums agree between source and staged copy.
  auto src = file_digest((dir_ / "input.dat").string());
  auto dst = file_digest((dir_ / "staged/input.dat").string());
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(*src, *dst);
}

TEST_F(DlsTest, VerifyDetectsCorruption) {
  DataLogisticsService dls;
  DataPipeline pipeline;
  pipeline.name = "check";
  pipeline.steps.push_back({DataStep::Kind::kVerify, (dir_ / "input.dat").string(), "", nullptr,
                            "0000000000000000"});  // wrong digest
  const PipelineReport report = dls.execute(pipeline);
  EXPECT_FALSE(report.ok());
}

TEST_F(DlsTest, PipelineStopsAtFirstFailure) {
  DataLogisticsService dls;
  DataPipeline pipeline;
  pipeline.name = "failing";
  pipeline.steps.push_back(
      {DataStep::Kind::kCopy, (dir_ / "missing.dat").string(), (dir_ / "out.dat").string(),
       nullptr, ""});
  pipeline.steps.push_back(
      {DataStep::Kind::kVerify, (dir_ / "input.dat").string(), "", nullptr, ""});
  const PipelineReport report = dls.execute(pipeline);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.steps.size(), 1u);  // second step never ran
  EXPECT_FALSE(dls.run("unregistered").ok());
}

TEST(Batch, JobsRunAndRecordTimings) {
  BatchScheduler scheduler({{"n0", 2, 16.0}});
  std::atomic<int> ran{0};
  JobSpec spec;
  spec.name = "job";
  auto id = scheduler.submit(spec, [&] { ran.fetch_add(1); });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.wait(*id).ok());
  EXPECT_EQ(ran.load(), 1);
  auto info = scheduler.info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_EQ(info->node, "n0");
  EXPECT_GE(info->queue_wait_ns(), 0);
}

TEST(Batch, RejectsOversizedJobs) {
  BatchScheduler scheduler({{"small", 1, 2.0}});
  JobSpec spec;
  spec.name = "huge";
  spec.cores = 64;
  EXPECT_FALSE(scheduler.submit(spec, [] {}).ok());
}

TEST(Batch, CapacityLimitsConcurrency) {
  BatchScheduler scheduler({{"n0", 1, 16.0}});
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.name = "serial";
    auto id = scheduler.submit(spec, [&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (JobId id : ids) ASSERT_TRUE(scheduler.wait(id).ok());
  EXPECT_EQ(peak.load(), 1);  // single core -> strictly serial
}

TEST(Batch, BackfillSkipsBlockedHead) {
  // A 2-core node running a 2-core job blocks another 2-core job, but a
  // 1-core job behind it can backfill... with one core free it can start
  // only when cores exist; craft: node 2 cores; job A 2 cores (running),
  // job B 2 cores (pending), job C 1 core (pending) -> C cannot start while
  // A occupies both; after A, both B and C fit in order. Use a 3-core node
  // instead: A(2) running, B(2) pending, C(1) backfills immediately.
  BatchScheduler scheduler({{"n0", 3, 16.0}});
  std::atomic<bool> release_a{false};
  std::atomic<bool> c_ran_while_a{false};
  JobSpec a_spec;
  a_spec.name = "A";
  a_spec.cores = 2;
  auto a = scheduler.submit(a_spec, [&] {
    while (!release_a.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  JobSpec b_spec;
  b_spec.name = "B";
  b_spec.cores = 2;
  auto b = scheduler.submit(b_spec, [] {});
  JobSpec c_spec;
  c_spec.name = "C";
  c_spec.cores = 1;
  auto c = scheduler.submit(c_spec, [&] { c_ran_while_a.store(!release_a.load()); });
  ASSERT_TRUE(scheduler.wait(*c).ok());
  release_a.store(true);
  ASSERT_TRUE(scheduler.wait(*a).ok());
  ASSERT_TRUE(scheduler.wait(*b).ok());
  EXPECT_TRUE(c_ran_while_a.load());  // C finished before A released: backfilled
}

TEST(Batch, FailedJobSurfacesError) {
  BatchScheduler scheduler({{"n0", 2, 8.0}});
  JobSpec spec;
  spec.name = "bad";
  auto id = scheduler.submit(spec, [] { throw std::runtime_error("job exploded"); });
  ASSERT_TRUE(id.ok());
  const common::Status status = scheduler.wait(*id);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("job exploded"), std::string::npos);
  EXPECT_EQ(scheduler.info(*id)->state, JobState::kFailed);
}

TEST(Orchestrator, DeploysCaseStudyTopology) {
  ContainerImageService images;
  DataLogisticsService dls;
  // Register the pipeline the topology references.
  DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  dls.register_pipeline(pipeline);

  Orchestrator orchestrator(images, dls);
  auto topology = parse_topology(core::case_study_topology_yaml());
  ASSERT_TRUE(topology.ok());
  const Deployment deployment = orchestrator.deploy(*topology);
  ASSERT_TRUE(deployment.ok()) << deployment.steps.back().status.to_string();
  EXPECT_EQ(deployment.steps.size(), 6u);
  EXPECT_EQ(deployment.image_ids.size(), 3u);  // three Software nodes
  EXPECT_EQ(deployment.workflow_node, "extreme_events_workflow");
  // The orchestrator replays step timings through the attribution profiler.
  EXPECT_NE(deployment.run_report.find("critical path"), std::string::npos);
  for (const auto& step : deployment.steps) {
    EXPECT_GE(step.start_ns, 0) << step.node;
    EXPECT_GE(step.end_ns, step.start_ns) << step.node;
  }
}

// Transient step failures (injected DLS transfer faults) are retried with
// backoff; DeploymentStep::attempts records the tries and surfaces them in
// the step detail.
TEST(Orchestrator, RetriesTransientStepFailures) {
  ContainerImageService images;
  DataLogisticsService dls;
  DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  // One real step so the DLS injector has a decision point to veto.
  DataStep verify_step;
  verify_step.kind = DataStep::Kind::kVerify;
  const std::string probe = (fs::temp_directory_path() / "dls_probe.txt").string();
  std::ofstream(probe) << "payload";
  verify_step.source = probe;
  pipeline.steps.push_back(verify_step);
  dls.register_pipeline(pipeline);

  // First two pipeline runs fail with an injected transfer fault.
  auto plan = common::fault::Plan::parse(
      R"({"seed": 9, "rules": [{"kind": "dls_error", "rate": 1.0, "max": 2}]})");
  ASSERT_TRUE(plan.ok());
  auto faults = std::make_shared<common::fault::Injector>(*plan);
  dls.set_fault_injector(faults);

  Orchestrator orchestrator(images, dls);
  common::RetryOptions retry;
  retry.max_attempts = 4;
  retry.base_delay_ms = 0.05;
  retry.max_delay_ms = 0.5;
  orchestrator.set_retry(retry);
  auto topology = parse_topology(core::case_study_topology_yaml());
  ASSERT_TRUE(topology.ok());
  const Deployment deployment = orchestrator.deploy(*topology);
  ASSERT_TRUE(deployment.ok()) << deployment.steps.back().status.to_string();
  EXPECT_EQ(faults->injected_count(), 2u);

  const DeploymentStep* dls_step = nullptr;
  for (const DeploymentStep& step : deployment.steps) {
    if (step.kind == NodeKind::kDataPipeline) dls_step = &step;
  }
  ASSERT_NE(dls_step, nullptr);
  EXPECT_EQ(dls_step->attempts, 3);  // two injected faults + the success
  EXPECT_NE(dls_step->detail.find("[3 attempts]"), std::string::npos) << dls_step->detail;
  fs::remove(probe);
}

// Injected deployment-step faults exhaust the retry budget and fail the
// deployment; attempts are still recorded.
TEST(Orchestrator, StepErrorExhaustionFailsDeployment) {
  ContainerImageService images;
  DataLogisticsService dls;
  DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  dls.register_pipeline(pipeline);

  auto plan = common::fault::Plan::parse(
      R"({"seed": 3, "rules": [{"kind": "step_error", "target": "esm_environment", "rate": 1.0}]})");
  ASSERT_TRUE(plan.ok());
  Orchestrator orchestrator(images, dls);
  orchestrator.set_fault_injector(std::make_shared<common::fault::Injector>(*plan));
  common::RetryOptions retry;
  retry.max_attempts = 3;
  retry.base_delay_ms = 0.05;
  retry.max_delay_ms = 0.2;
  orchestrator.set_retry(retry);

  auto topology = parse_topology(core::case_study_topology_yaml());
  ASSERT_TRUE(topology.ok());
  const Deployment deployment = orchestrator.deploy(*topology);
  EXPECT_FALSE(deployment.ok());
  const DeploymentStep& failed = deployment.steps.back();
  EXPECT_EQ(failed.node, "esm_environment");
  EXPECT_EQ(failed.status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(failed.attempts, 3);
}

TEST(Orchestrator, FailsOnMissingPipeline) {
  ContainerImageService images;
  DataLogisticsService dls;  // pipeline NOT registered
  Orchestrator orchestrator(images, dls);
  auto topology = parse_topology(core::case_study_topology_yaml());
  ASSERT_TRUE(topology.ok());
  const Deployment deployment = orchestrator.deploy(*topology);
  EXPECT_FALSE(deployment.ok());
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<HpcWaasService>();
    DataPipeline pipeline;
    pipeline.name = "forcing_stage_in";
    service_->dls().register_pipeline(pipeline);
  }

  std::unique_ptr<HpcWaasService> service_;
};

TEST_F(ServiceTest, DeployInvokeAndPollViaApi) {
  auto workflow_id = service_->deploy_workflow(
      core::case_study_topology_yaml(), [](const Json& params) {
        Json result = Json::object();
        result["echo_years"] = params.get_string("years", "?");
        result["done"] = true;
        return result;
      });
  ASSERT_TRUE(workflow_id.ok()) << workflow_id.status().to_string();

  // REST: list workflows.
  auto list = service_->handle("GET", "/workflows", Json());
  ASSERT_TRUE(list.ok());
  ASSERT_EQ((*list)["workflows"].size(), 1u);
  EXPECT_EQ((*list)["workflows"][0].get_string("id"), *workflow_id);

  // REST: detail exposes the declared inputs with defaults.
  auto detail = service_->handle("GET", "/workflows/" + *workflow_id, Json());
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ((*detail)["inputs"].size(), 2u);

  // REST: start an execution ("as a simple REST invocation").
  Json params = Json::object();
  auto started = service_->handle("POST", "/workflows/" + *workflow_id + "/executions", params);
  ASSERT_TRUE(started.ok());
  const std::string exec_id = started->get_string("execution_id");
  ASSERT_FALSE(exec_id.empty());

  ASSERT_TRUE(service_->wait(exec_id).ok());
  auto status = service_->handle("GET", "/executions/" + exec_id, Json());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->get_string("state"), "succeeded");
  EXPECT_TRUE((*status)["result"].get_bool("done"));
  // Default input value filled in from the topology declaration.
  EXPECT_EQ((*status)["result"].get_string("echo_years"), "1");
}

TEST_F(ServiceTest, MissingRequiredInputRejected) {
  const std::string topology = R"(
name: strict
topology_template:
  inputs:
    dataset:
      type: string
      required: true
  node_templates:
    cluster:
      type: eflows.nodes.Compute
    wf:
      type: eflows.nodes.Workflow
      requirements:
        - host: cluster
)";
  auto id = service_->deploy_workflow(topology, [](const Json&) { return Json(); });
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(service_->invoke(*id, Json::object()).ok());
  Json params = Json::object();
  params["dataset"] = "cmip6";
  EXPECT_TRUE(service_->invoke(*id, params).ok());
}

TEST_F(ServiceTest, FailedExecutionReported) {
  auto id = service_->deploy_workflow(core::case_study_topology_yaml(), [](const Json&) -> Json {
    throw std::runtime_error("workflow crashed");
  });
  ASSERT_TRUE(id.ok());
  auto exec = service_->invoke(*id, Json::object());
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(service_->wait(*exec).ok());
  auto status = service_->handle("GET", "/executions/" + *exec, Json());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->get_string("state"), "failed");
  EXPECT_NE(status->get_string("error").find("crashed"), std::string::npos);
}

TEST_F(ServiceTest, UnknownRoutesAndIds) {
  EXPECT_FALSE(service_->handle("GET", "/nope", Json()).ok());
  EXPECT_FALSE(service_->handle("GET", "/workflows/wf-99", Json()).ok());
  EXPECT_FALSE(service_->handle("GET", "/executions/exec-99", Json()).ok());
  EXPECT_FALSE(service_->invoke("wf-99", Json()).ok());
  EXPECT_FALSE(service_->undeploy_workflow("wf-99").ok());
}

TEST_F(ServiceTest, UndeployRemovesWorkflow) {
  auto id = service_->deploy_workflow(core::case_study_topology_yaml(),
                                      [](const Json&) { return Json(); });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service_->undeploy_workflow(*id).ok());
  EXPECT_TRUE(service_->workflows().empty());
  EXPECT_FALSE(service_->invoke(*id, Json()).ok());
}


TEST_F(ServiceTest, V1RoutesMirrorLegacyAliases) {
  auto workflow_id = service_->deploy_workflow(core::case_study_topology_yaml(),
                                               [](const Json&) { return Json::object(); });
  ASSERT_TRUE(workflow_id.ok()) << workflow_id.status().to_string();

  // Every route is reachable under /v1/ with typed HttpResponse results.
  auto list = service_->rest("GET", "/v1/workflows", Json());
  EXPECT_EQ(list.status, 200);
  ASSERT_EQ(list.body["workflows"].size(), 1u);
  EXPECT_EQ(list.body["workflows"][0].get_string("id"), *workflow_id);

  auto detail = service_->rest("GET", "/v1/workflows/" + *workflow_id, Json());
  EXPECT_EQ(detail.status, 200);
  EXPECT_EQ(detail.body.get_string("id"), *workflow_id);

  auto started = service_->rest("POST", "/v1/workflows/" + *workflow_id + "/executions",
                                Json::object());
  ASSERT_EQ(started.status, 201);
  const std::string exec_id = started.body.get_string("execution_id");
  ASSERT_FALSE(exec_id.empty());
  ASSERT_TRUE(service_->wait(exec_id).ok());
  auto polled = service_->rest("GET", "/v1/executions/" + exec_id, Json());
  EXPECT_EQ(polled.status, 200);
  EXPECT_EQ(polled.body.get_string("state"), "succeeded");

  // The unversioned alias serves the same representation as /v1.
  auto legacy = service_->rest("GET", "/workflows", Json());
  EXPECT_EQ(legacy.status, 200);
  ASSERT_EQ(legacy.body["workflows"].size(), 1u);
  EXPECT_EQ(legacy.body["workflows"][0].get_string("id"), *workflow_id);

  // Undeploy via the versioned surface.
  auto undeployed = service_->rest("DELETE", "/v1/workflows/" + *workflow_id, Json());
  EXPECT_EQ(undeployed.status, 200);
  EXPECT_TRUE(service_->workflows().empty());
}

TEST_F(ServiceTest, RestDistinguishesFailureClasses) {
  // Unknown resource -> 404 with the structured envelope.
  auto missing = service_->rest("GET", "/v1/workflows/wf-99", Json());
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.body["error"].get_string("code"), "not_found");
  EXPECT_FALSE(missing.body["error"].get_string("message").empty());
  EXPECT_FALSE(missing.body["error"].get_string("detail").empty());

  // Unknown path -> 404; known path with a wrong method -> 405.
  EXPECT_EQ(service_->rest("GET", "/v1/nope", Json()).status, 404);
  auto wrong_method = service_->rest("PUT", "/v1/workflows", Json());
  EXPECT_EQ(wrong_method.status, 405);
  EXPECT_EQ(wrong_method.body["error"].get_string("code"), "method_not_allowed");
  EXPECT_EQ(service_->rest("DELETE", "/v1/executions/exec-1", Json()).status, 405);

  // Unknown API version -> 404 with its own code.
  auto bad_version = service_->rest("GET", "/v2/workflows", Json());
  EXPECT_EQ(bad_version.status, 404);
  EXPECT_EQ(bad_version.body["error"].get_string("code"), "unknown_api_version");

  // Malformed input (missing required workflow input) -> 400.
  const std::string topology = R"(
name: strict
topology_template:
  inputs:
    dataset:
      type: string
      required: true
  node_templates:
    cluster:
      type: eflows.nodes.Compute
    wf:
      type: eflows.nodes.Workflow
      requirements:
        - host: cluster
)";
  auto id = service_->deploy_workflow(topology, [](const Json&) { return Json(); });
  ASSERT_TRUE(id.ok());
  auto rejected = service_->rest("POST", "/v1/workflows/" + *id + "/executions", Json::object());
  EXPECT_EQ(rejected.status, 400);
  EXPECT_EQ(rejected.body["error"].get_string("code"), "invalid_argument");

  // The legacy wrapper folds envelopes back into Status codes.
  EXPECT_FALSE(service_->handle("GET", "/v1/workflows/wf-99", Json()).ok());
  EXPECT_FALSE(service_->handle("PUT", "/v1/workflows", Json()).ok());
}

}  // namespace
}  // namespace climate::hpcwaas
