// Unit tests for the message-passing layer: point-to-point ordering,
// collectives, and a halo-exchange pattern like the ESM's.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "msg/communicator.hpp"

namespace climate::msg {
namespace {

TEST(Msg, PointToPointPreservesOrder) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(1, 7, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv_value<int>(0, 7), i);
    }
  });
}

TEST(Msg, TagsAreIndependentChannels) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 100);
      comm.send_value(1, 2, 200);
    } else {
      // Receive in the opposite order of sending: tags demultiplex.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(Msg, VectorRoundTrip) {
  World::run(3, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload = {1.5, 2.5, 3.5};
      comm.send(1, 0, payload);
      comm.send(2, 0, payload);
    } else {
      EXPECT_EQ(comm.recv<double>(0, 0), (std::vector<double>{1.5, 2.5, 3.5}));
    }
  });
}

TEST(Msg, BarrierSynchronizesPhases) {
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  World::run(4, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    if (phase_one.load() != 4) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Msg, RepeatedBarriers) {
  World::run(3, [](Communicator& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
}

TEST(Msg, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    World::run(3, [root](Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.0, 2.0, static_cast<double>(root)};
      comm.broadcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[2], static_cast<double>(root));
    });
  }
}

TEST(Msg, AllreduceSumMinMax) {
  World::run(4, [](Communicator& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kSum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kMax), 4.0);
  });
}

TEST(Msg, AllreduceVectors) {
  World::run(3, [](Communicator& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank()), 1.0};
    comm.allreduce(data, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(data[0], 3.0);  // 0+1+2
    EXPECT_DOUBLE_EQ(data[1], 3.0);
  });
}

TEST(Msg, GatherConcatenatesInRankOrder) {
  World::run(3, [](Communicator& comm) {
    std::vector<double> mine = {static_cast<double>(comm.rank() * 10),
                                static_cast<double>(comm.rank() * 10 + 1)};
    std::vector<double> all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<double>{0, 1, 10, 11, 20, 21}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Msg, HaloExchangePattern) {
  // Each rank owns one value; exchanges with neighbours like the ESM's
  // latitude-band halo exchange.
  constexpr int kRanks = 4;
  World::run(kRanks, [](Communicator& comm) {
    const int rank = comm.rank();
    const std::vector<float> mine = {static_cast<float>(rank)};
    if (rank + 1 < comm.size()) comm.send(rank + 1, 1, mine);
    if (rank > 0) comm.send(rank - 1, 2, mine);
    if (rank > 0) {
      EXPECT_EQ(comm.recv<float>(rank - 1, 1)[0], static_cast<float>(rank - 1));
    }
    if (rank + 1 < comm.size()) {
      EXPECT_EQ(comm.recv<float>(rank + 1, 2)[0], static_cast<float>(rank + 1));
    }
  });
}

TEST(Msg, SingleRankWorldWorks) {
  World::run(1, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<double> data = {5.0};
    comm.allreduce(data, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(data[0], 5.0);
  });
}

TEST(Msg, ExceptionPropagatesToCaller) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& comm) {
                            comm.barrier();
                            throw std::runtime_error("rank failure");
                          }),
               std::runtime_error);
}

TEST(Msg, BadRankArgumentsThrow) {
  World::run(1, [](Communicator& comm) {
    EXPECT_THROW(comm.send_value(5, 0, 1), std::out_of_range);
    EXPECT_THROW(comm.recv_value<int>(-1, 0), std::out_of_range);
  });
}

}  // namespace
}  // namespace climate::msg
