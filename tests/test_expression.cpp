// Tests for the datacube expression engine (the oph_predicate-style array
// primitives), including property-style parameterized checks of the
// wave_duration primitive.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datacube/expression.hpp"

namespace climate::datacube {
namespace {

std::vector<float> eval(const std::string& text, const std::vector<float>& measure) {
  auto expr = Expression::parse(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().to_string();
  return expr->eval(measure);
}

TEST(Expression, Arithmetic) {
  EXPECT_EQ(eval("measure * 2 + 1", {1, 2, 3}), (std::vector<float>{3, 5, 7}));
  EXPECT_EQ(eval("x - 1", {1, 2}), (std::vector<float>{0, 1}));
  EXPECT_EQ(eval("-x", {1, -2}), (std::vector<float>{-1, 2}));
  EXPECT_EQ(eval("(x + 1) * (x - 1)", {2, 3}), (std::vector<float>{3, 8}));
  EXPECT_EQ(eval("10 / x", {2, 5}), (std::vector<float>{5, 2}));
}

TEST(Expression, DivisionByZeroYieldsZero) {
  EXPECT_EQ(eval("1 / x", {0}), (std::vector<float>{0}));
}

TEST(Expression, Comparisons) {
  EXPECT_EQ(eval("x > 2", {1, 2, 3}), (std::vector<float>{0, 0, 1}));
  EXPECT_EQ(eval("x >= 2", {1, 2, 3}), (std::vector<float>{0, 1, 1}));
  EXPECT_EQ(eval("x < 2", {1, 2, 3}), (std::vector<float>{1, 0, 0}));
  EXPECT_EQ(eval("x <= 2", {1, 2, 3}), (std::vector<float>{1, 1, 0}));
  EXPECT_EQ(eval("x == 2", {1, 2, 3}), (std::vector<float>{0, 1, 0}));
  EXPECT_EQ(eval("x != 2", {1, 2, 3}), (std::vector<float>{1, 0, 1}));
}

TEST(Expression, Functions) {
  EXPECT_EQ(eval("abs(x)", {-3, 4}), (std::vector<float>{3, 4}));
  EXPECT_EQ(eval("max(x, 2)", {1, 3}), (std::vector<float>{2, 3}));
  EXPECT_EQ(eval("min(x, 2)", {1, 3}), (std::vector<float>{1, 2}));
  EXPECT_EQ(eval("pow(x, 2)", {2, 3}), (std::vector<float>{4, 9}));
  EXPECT_EQ(eval("sqrt(x)", {4, 9}), (std::vector<float>{2, 3}));
  EXPECT_EQ(eval("sqrt(x)", {-1}), (std::vector<float>{0}));  // clamped
}

TEST(Expression, PredicateShortForm) {
  EXPECT_EQ(eval("predicate(x, '>0', 1, 0)", {-1, 0, 2}), (std::vector<float>{0, 0, 1}));
  EXPECT_EQ(eval("predicate(x, '<=1', 5, 7)", {0, 1, 2}), (std::vector<float>{5, 5, 7}));
}

TEST(Expression, PredicateOphidiaLongForm) {
  // The exact spelling from the paper's Listing 1.
  const std::string listing1 = "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')";
  EXPECT_EQ(eval(listing1, {-2, 0, 3, 7}), (std::vector<float>{0, 0, 1, 1}));
}

TEST(Expression, PredicateThenElseExpressions) {
  EXPECT_EQ(eval("predicate(x, '>0', x * 10, x)", {-1, 2}), (std::vector<float>{-1, 20}));
}

TEST(Expression, Scans) {
  EXPECT_EQ(eval("running_max(x)", {1, 3, 2, 5, 4}), (std::vector<float>{1, 3, 3, 5, 5}));
  EXPECT_EQ(eval("running_sum(x)", {1, 2, 3}), (std::vector<float>{1, 3, 6}));
}

TEST(Expression, Shift) {
  EXPECT_EQ(eval("shift(x, 1)", {1, 2, 3}), (std::vector<float>{0, 1, 2}));
  EXPECT_EQ(eval("shift(x, -1)", {1, 2, 3}), (std::vector<float>{2, 3, 0}));
  EXPECT_EQ(eval("shift(x, 0)", {1, 2, 3}), (std::vector<float>{1, 2, 3}));
}

TEST(Expression, ScalarOnlyExpression) {
  EXPECT_EQ(eval("2 + 3", {}), (std::vector<float>{5}));
}

TEST(Expression, ParseErrors) {
  EXPECT_FALSE(Expression::parse("x +").ok());
  EXPECT_FALSE(Expression::parse("unknown_fn(x)").ok());
  EXPECT_FALSE(Expression::parse("(x").ok());
  EXPECT_FALSE(Expression::parse("x 'oops'").ok());
  EXPECT_FALSE(Expression::parse("predicate(x)").ok());            // no condition
  EXPECT_FALSE(Expression::parse("max(x)").ok());                  // arity
  EXPECT_FALSE(Expression::parse("x @ 2").ok());                   // bad char
  EXPECT_FALSE(Expression::parse("wave_duration(x)").ok());        // arity
}

TEST(WaveDuration, BasicRuns) {
  // Runs of ones: [3] then [2], min_len 2 -> lengths at run ends.
  EXPECT_EQ(wave_duration({1, 1, 1, 0, 1, 1}, 2), (std::vector<float>{0, 0, 3, 0, 0, 2}));
  // min_len 4 filters both.
  EXPECT_EQ(wave_duration({1, 1, 1, 0, 1, 1}, 4), (std::vector<float>(6, 0)));
}

TEST(WaveDuration, RunAtEndOfSeries) {
  EXPECT_EQ(wave_duration({0, 1, 1, 1}, 3), (std::vector<float>{0, 0, 0, 3}));
}

TEST(WaveDuration, AllOnesAndAllZeros) {
  EXPECT_EQ(wave_duration({1, 1, 1, 1}, 2), (std::vector<float>{0, 0, 0, 4}));
  EXPECT_EQ(wave_duration({0, 0, 0}, 1), (std::vector<float>{0, 0, 0}));
  EXPECT_EQ(wave_duration({}, 3), (std::vector<float>{}));
}

TEST(Expression, WaveDurationViaEngine) {
  EXPECT_EQ(eval("wave_duration(x, 2)", {1, 1, 0, 1, 1, 1}),
            (std::vector<float>{0, 2, 0, 0, 0, 3}));
  // Composition with predicate: threshold first, then run lengths.
  EXPECT_EQ(eval("wave_duration(predicate(x, '>5', 1, 0), 2)", {6, 7, 3, 9, 9, 9}),
            (std::vector<float>{0, 2, 0, 0, 0, 3}));
}

// Property-style sweep: invariants of wave_duration for random binary
// series and several min_len values.
class WaveDurationProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaveDurationProperty, SumOfDurationsEqualsQualifyingDays) {
  const int min_len = GetParam();
  common::Rng rng(1000 + static_cast<std::uint64_t>(min_len));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> binary(120);
    for (auto& v : binary) v = rng.bernoulli(0.55) ? 1.0f : 0.0f;
    const std::vector<float> durations = wave_duration(binary, min_len);
    ASSERT_EQ(durations.size(), binary.size());

    // Reference: scan runs directly.
    float expected_sum = 0;
    float expected_max = 0;
    int expected_count = 0;
    int run = 0;
    for (std::size_t i = 0; i <= binary.size(); ++i) {
      if (i < binary.size() && binary[i] > 0.5f) {
        ++run;
      } else {
        if (run >= min_len) {
          expected_sum += static_cast<float>(run);
          expected_max = std::max(expected_max, static_cast<float>(run));
          ++expected_count;
        }
        run = 0;
      }
    }
    float sum = 0, max = 0;
    int count = 0;
    for (float d : durations) {
      sum += d;
      max = std::max(max, d);
      if (d > 0) ++count;
    }
    EXPECT_EQ(sum, expected_sum);
    EXPECT_EQ(max, expected_max);
    EXPECT_EQ(count, expected_count);
    // Every reported duration is at least min_len.
    for (float d : durations) {
      if (d > 0) {
        EXPECT_GE(d, static_cast<float>(min_len));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MinLengths, WaveDurationProperty, ::testing::Values(1, 2, 3, 6, 10));

// Parameterized check: predicate output is always binary for 1/0 branches.
class PredicateProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PredicateProperty, OutputIsBinary) {
  auto expr = Expression::parse(std::string("predicate(x, '") + GetParam() + "', 1, 0)");
  ASSERT_TRUE(expr.ok());
  common::Rng rng(9);
  std::vector<float> measure(64);
  for (auto& v : measure) v = static_cast<float>(rng.normal(0, 10));
  for (float v : expr->eval(measure)) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Conditions, PredicateProperty,
                         ::testing::Values(">0", ">=1", "<0", "<=-1", "==0", "!=0"));

}  // namespace
}  // namespace climate::datacube

namespace climate::datacube {
namespace {

TEST(Expression, PredicateBroadcastsArrayBranches) {
  // then/else arrays select elementwise.
  EXPECT_EQ(eval("predicate(x, '>0', x * 2, x * -1)", {-2, 3}),
            (std::vector<float>{2, 6}));
}

TEST(Expression, NestedFunctionComposition) {
  EXPECT_EQ(eval("max(abs(x), running_max(x))", {-5, 2, -1}),
            (std::vector<float>{5, 2, 2}));
}

TEST(Expression, WhitespaceAndUnaryPlusTolerated) {
  EXPECT_EQ(eval("  + x   *  2 ", {3}), (std::vector<float>{6}));
}

TEST(Expression, ChainedComparisonsEvaluateLeftToRight) {
  // (x > 0) > 0 is the binary mask again.
  EXPECT_EQ(eval("x > 0 > 0", {-1, 2}), (std::vector<float>{0, 1}));
}

}  // namespace
}  // namespace climate::datacube
