// Unit tests for the Status/Result error-handling vocabulary and the logger.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/status.hpp"

namespace climate::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.to_string(), "NOT_FOUND: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kDataLoss); ++code) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Unavailable("x"));
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result(Status::InvalidArgument("bad input"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
  EXPECT_THROW(result.value(), BadResultAccess);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ReturnIfErrorMacro, PropagatesFailures) {
  auto inner = [](bool fail) -> Status {
    return fail ? Status::Internal("inner") : Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    CLIMATE_RETURN_IF_ERROR(inner(fail));
    return Status::Unavailable("after");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
  EXPECT_EQ(outer(false).code(), StatusCode::kUnavailable);
}

TEST(Log, LevelNamesAndThreshold) {
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  LOG_ERROR("test") << "suppressed";  // must not crash while disabled
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace climate::common
