// Tests for the observability subsystem (src/obs): registry merge semantics,
// histogram bucketing, span nesting/context propagation, and the syntactic
// validity of the Chrome-trace / Prometheus / JSON exporters.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace climate::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::global().reset();
    SpanCollector::global().clear();
  }
};

TEST_F(ObsTest, CounterMergesAcrossThreads) {
  Counter* counter = MetricsRegistry::global().counter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  Counter* a = MetricsRegistry::global().counter("test.stable");
  Counter* b = MetricsRegistry::global().counter("test.stable");
  EXPECT_EQ(a, b);
  a->add(3);
  // reset() zeroes in place: the handle stays valid and reusable.
  MetricsRegistry::global().reset();
  EXPECT_EQ(b->value(), 0u);
  b->add(2);
  EXPECT_EQ(a->value(), 2u);
}

TEST_F(ObsTest, GaugeTracksSetAndAdd) {
  Gauge* gauge = MetricsRegistry::global().gauge("test.gauge");
  gauge->set(10);
  gauge->add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->add(5);
  EXPECT_EQ(gauge->value(), 12);
}

TEST_F(ObsTest, HistogramBucketsObservations) {
  Histogram* hist =
      MetricsRegistry::global().histogram("test.hist", {10.0, 100.0, 1000.0});
  hist->observe(5.0);     // bucket 0 (<=10)
  hist->observe(10.0);    // bucket 0 (<=10, inclusive)
  hist->observe(50.0);    // bucket 1
  hist->observe(999.0);   // bucket 2
  hist->observe(5000.0);  // +Inf bucket
  const HistogramSnapshot snap = hist->snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite + 1 overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0 + 10.0 + 50.0 + 999.0 + 5000.0);
}

TEST_F(ObsTest, HistogramMergesAcrossThreads) {
  Histogram* hist = MetricsRegistry::global().histogram("test.hist_mt", {50.0});
  constexpr int kThreads = 4;
  constexpr int kObs = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kObs; ++i) hist->observe(static_cast<double>(i % 100));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = hist->snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_EQ(snap.counts[0] + snap.counts[1], snap.count);
}

TEST_F(ObsTest, SnapshotCoversAllMetricKinds) {
  MetricsRegistry::global().counter("snap.counter")->add(7);
  MetricsRegistry::global().gauge("snap.gauge")->set(-4);
  MetricsRegistry::global().histogram("snap.hist")->observe(123.0);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("snap.counter"), 7u);
  EXPECT_EQ(snap.gauges.at("snap.gauge"), -4);
  EXPECT_EQ(snap.histograms.at("snap.hist").count, 1u);
}

TEST_F(ObsTest, SpanNestingPropagatesParentIds) {
  {
    Span outer("test", "outer");
    EXPECT_EQ(Span::current_id(), outer.id());
    {
      Span inner("test", "inner");
      EXPECT_EQ(Span::current_id(), inner.id());
    }
    EXPECT_EQ(Span::current_id(), outer.id());
  }
  EXPECT_EQ(Span::current_id(), 0u);

  const auto spans = SpanCollector::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer_rec = spans[0].name == "outer" ? spans[0] : spans[1];
  const SpanRecord& inner_rec = spans[0].name == "inner" ? spans[0] : spans[1];
  EXPECT_EQ(outer_rec.name, "outer");
  EXPECT_EQ(outer_rec.parent, 0u);
  EXPECT_EQ(inner_rec.name, "inner");
  EXPECT_EQ(inner_rec.parent, outer_rec.id);
  EXPECT_GE(outer_rec.end_ns, inner_rec.end_ns);
}

TEST_F(ObsTest, SpansOnSeparateThreadsAreIndependentRoots) {
  std::thread a([] { Span span("test", "thread_a"); });
  std::thread b([] { Span span("test", "thread_b"); });
  a.join();
  b.join();
  const auto spans = SpanCollector::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  set_enabled(false);
  OBS_COUNTER_ADD("test.disabled_counter", 5);
  { Span span("test", "disabled_span"); }
  set_enabled(true);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled_counter"), 0u);
  EXPECT_EQ(SpanCollector::global().snapshot().size(), 0u);
}

TEST_F(ObsTest, CollectorCapsAndCountsDrops) {
  SpanCollector::global().set_capacity(4);
  for (int i = 0; i < 10; ++i) Span span("test", "capped");
  EXPECT_LE(SpanCollector::global().snapshot().size(), 4u);
  EXPECT_GT(SpanCollector::global().dropped(), 0u);
  SpanCollector::global().set_capacity(1u << 20);
  SpanCollector::global().clear();
}

TEST_F(ObsTest, ChromeTraceJsonIsValidAndMergesTracks) {
  {
    Span outer("esm", "run_day");
    Span inner("datacube", "reduce");
  }
  std::vector<TrackEvent> tracks;
  tracks.push_back({"node0", "esm_simulation", "taskrt.task", 1000, 2000});
  tracks.push_back({"node1", "load_tmax", "taskrt.task", 1500, 2500});

  const std::string json = chrome_trace_json(SpanCollector::global().snapshot(), tracks);
  auto parsed = common::Json::parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_TRUE(parsed->contains("traceEvents"));
  const auto& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());

  std::set<std::string> names;
  std::set<std::int64_t> pids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    const std::string phase = ev.get_string("ph");
    EXPECT_TRUE(phase == "X" || phase == "M") << phase;
    if (phase == "X") {
      names.insert(ev.get_string("name"));
      pids.insert(ev.get_int("pid"));
      EXPECT_GE(ev.get_number("dur"), 0.0);
    }
  }
  EXPECT_TRUE(names.count("run_day"));
  EXPECT_TRUE(names.count("reduce"));
  EXPECT_TRUE(names.count("esm_simulation"));
  EXPECT_TRUE(names.count("load_tmax"));
  EXPECT_EQ(pids.size(), 2u);  // spans (pid 1) + external tracks (pid 2)
}

TEST_F(ObsTest, ChromeTraceFlowEventsBindTracks) {
  std::vector<TrackEvent> tracks;
  tracks.push_back({"node0", "produce", "taskrt.task", 1000, 2000});
  tracks.push_back({"node1", "consume", "taskrt.task", 2500, 3500});
  std::vector<FlowEvent> flows;
  flows.push_back({7, "produce -> consume", "taskrt.dep", "node0", 1999, "node1", 2501});

  const std::string json = chrome_trace_json({}, tracks, flows);
  auto parsed = common::Json::parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const auto& events = (*parsed)["traceEvents"];

  // Collect per-track tids from the thread_name metadata; each distinct
  // track label must get exactly one tid.
  std::map<std::string, std::set<std::int64_t>> tids_of_track;
  const common::Json* flow_start = nullptr;
  const common::Json* flow_finish = nullptr;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    const std::string phase = ev.get_string("ph");
    if (phase == "M" && ev.get_string("name") == "thread_name" && ev.get_int("pid") == 2) {
      tids_of_track[ev["args"].get_string("name")].insert(ev.get_int("tid"));
    }
    if (phase == "s") flow_start = &ev;
    if (phase == "f") flow_finish = &ev;
  }
  ASSERT_EQ(tids_of_track.size(), 2u);
  for (const auto& [track, tids] : tids_of_track) EXPECT_EQ(tids.size(), 1u) << track;

  ASSERT_NE(flow_start, nullptr);
  ASSERT_NE(flow_finish, nullptr);
  EXPECT_EQ(flow_start->get_int("id"), 7);
  EXPECT_EQ(flow_finish->get_int("id"), 7);
  EXPECT_EQ(flow_finish->get_string("bp"), "e");
  // Timestamps are monotonic along the arrow and land inside the slices.
  EXPECT_LT(flow_start->get_number("ts"), flow_finish->get_number("ts"));
  EXPECT_EQ(*tids_of_track.at("node0").begin(), flow_start->get_int("tid"));
  EXPECT_EQ(*tids_of_track.at("node1").begin(), flow_finish->get_int("tid"));
}

TEST_F(ObsTest, PrometheusTextExposition) {
  MetricsRegistry::global().counter("prom.ops.total")->add(3);
  MetricsRegistry::global().gauge("prom.depth")->set(-2);
  Histogram* hist = MetricsRegistry::global().histogram("prom.lat_ns", {10.0, 100.0});
  hist->observe(5.0);
  hist->observe(50.0);
  hist->observe(500.0);

  const std::string text = prometheus_text(MetricsRegistry::global().snapshot());
  // Names are sanitized ('.' -> '_') and prefixed.
  EXPECT_NE(text.find("climate_prom_ops_total 3"), std::string::npos);
  EXPECT_NE(text.find("climate_prom_depth -2"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf.
  EXPECT_NE(text.find("climate_prom_lat_ns_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("climate_prom_lat_ns_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("climate_prom_lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("climate_prom_lat_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE climate_prom_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE climate_prom_lat_ns histogram"), std::string::npos);
}

TEST_F(ObsTest, PrometheusNameSanitization) {
  // Leading digits are covered by the "climate_" prefix; every other invalid
  // character (repeated dots included) becomes '_', one per character.
  EXPECT_EQ(prom_metric_name("9task..x"), "climate_9task__x");
  EXPECT_EQ(prom_metric_name("taskrt.task_ns.esm_step"), "climate_taskrt_task_ns_esm_step");
  EXPECT_EQ(prom_metric_name("a-b c"), "climate_a_b_c");
  EXPECT_EQ(prom_metric_name(""), "climate_");

  // A metric whose source name starts with a digit must expose a valid
  // Prometheus name end-to-end.
  MetricsRegistry::global().counter("9starts.with.digit")->add(1);
  const std::string text = prometheus_text(MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("climate_9starts_with_digit 1"), std::string::npos);
}

TEST_F(ObsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

TEST_F(ObsTest, PrometheusHelpAndTypeLines) {
  MetricsRegistry::global().set_help("help.counter", "Counted things\nsecond line");
  MetricsRegistry::global().counter("help.counter")->add(2);
  MetricsRegistry::global().gauge("help.missing")->set(1);

  const std::string text = prometheus_text(MetricsRegistry::global().snapshot());
  // Registered help text, newline-escaped, before the TYPE line.
  const auto help_pos = text.find("# HELP climate_help_counter Counted things\\nsecond line");
  const auto type_pos = text.find("# TYPE climate_help_counter counter");
  EXPECT_NE(help_pos, std::string::npos);
  EXPECT_NE(type_pos, std::string::npos);
  EXPECT_LT(help_pos, type_pos);
  // Metrics without registered help still get a fallback HELP line.
  EXPECT_NE(text.find("# HELP climate_help_missing "), std::string::npos);
  EXPECT_NE(text.find("# TYPE climate_help_missing gauge"), std::string::npos);
}

TEST_F(ObsTest, LogSpanProviderReportsCurrentSpan) {
  // span.cpp installs Span::current_id as the log-correlation hook at static
  // init; JSON log records use it to tag the enclosing span.
  ASSERT_NE(common::log_span_provider(), nullptr);
  EXPECT_EQ(common::log_span_provider()(), 0u);
  {
    Span span("test", "log_scope");
    EXPECT_EQ(common::log_span_provider()(), span.id());
  }
  EXPECT_EQ(common::log_span_provider()(), 0u);
}

TEST_F(ObsTest, MetricsJsonRoundtrips) {
  MetricsRegistry::global().counter("json.counter")->add(9);
  MetricsRegistry::global().histogram("json.hist", {1.0})->observe(0.5);
  const common::Json doc = metrics_json(MetricsRegistry::global().snapshot());
  auto parsed = common::Json::parse(doc.dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ((*parsed)["counters"].get_int("json.counter"), 9);
  EXPECT_TRUE((*parsed)["histograms"].contains("json.hist"));
}

TEST_F(ObsTest, ScopedLatencyRecordsIntoHistogram) {
  {
    OBS_SCOPED_LATENCY("test.scope_ns");
  }
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  ASSERT_EQ(snap.histograms.count("test.scope_ns"), 1u);
  EXPECT_EQ(snap.histograms.at("test.scope_ns").count, 1u);
}

TEST_F(ObsTest, NowNsIsMonotonic) {
  const std::int64_t a = now_ns();
  const std::int64_t b = now_ns();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(ObsLog, FormatSwitchRoundtrips) {
  using common::LogFormat;
  EXPECT_EQ(common::log_format(), LogFormat::kHuman);
  common::set_log_format(LogFormat::kJson);
  EXPECT_EQ(common::log_format(), LogFormat::kJson);
  common::set_log_format(LogFormat::kHuman);
  EXPECT_EQ(common::log_format(), LogFormat::kHuman);
}

TEST(ObsLog, ThreadIdsAreStableAndDistinct) {
  const std::size_t main_id = common::log_thread_id();
  EXPECT_EQ(common::log_thread_id(), main_id);
  std::size_t other_id = main_id;
  std::thread t([&other_id] { other_id = common::log_thread_id(); });
  t.join();
  EXPECT_NE(other_id, main_id);
}

}  // namespace
}  // namespace climate::obs
