// Units for the chaos layer (common/fault.hpp) and the shared retry
// discipline (common/retry.hpp): plan parsing, deterministic replay of the
// injection log, target matching, backoff/budget behaviour and the circuit
// breaker's state machine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/retry.hpp"

namespace climate::common {
namespace {

using fault::Injector;
using fault::Kind;
using fault::Plan;
using fault::Rule;

TEST(FaultPlan, ParsesFromJson) {
  auto plan = Plan::parse(R"({"seed": 42, "rules": [
    {"kind": "task_error", "rate": 0.05},
    {"kind": "node_crash", "target": "node1", "at": 3},
    {"kind": "dls_error", "rate": 1.0, "max": 2},
    {"kind": "fragment_delay", "rate": 0.1, "delay_ms": 2.5}]})");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 4u);
  EXPECT_EQ(plan->rules[0].kind, Kind::kTaskError);
  EXPECT_DOUBLE_EQ(plan->rules[0].rate, 0.05);
  EXPECT_EQ(plan->rules[1].kind, Kind::kNodeCrash);
  EXPECT_EQ(plan->rules[1].target, "node1");
  EXPECT_EQ(plan->rules[1].at, 3);
  EXPECT_EQ(plan->rules[2].max_injections, 2);
  EXPECT_DOUBLE_EQ(plan->rules[3].delay_ms, 2.5);
}

TEST(FaultPlan, RejectsUnknownKind) {
  auto plan = Plan::parse(R"({"rules": [{"kind": "meteor_strike"}]})");
  EXPECT_FALSE(plan.ok());
}

TEST(FaultPlan, RoundTripsThroughJson) {
  auto plan = Plan::parse(R"({"seed": 7, "rules": [
    {"kind": "step_error", "target": "esm*", "rate": 0.5, "max": 3, "delay_ms": 1}]})");
  ASSERT_TRUE(plan.ok());
  auto reparsed = Plan::from_json(plan->to_json());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed->seed, 7u);
  ASSERT_EQ(reparsed->rules.size(), 1u);
  EXPECT_EQ(reparsed->rules[0].target, "esm*");
  EXPECT_EQ(reparsed->rules[0].max_injections, 3);
}

TEST(FaultInjector, AtRuleFiresExactlyOnce) {
  Plan plan;
  plan.seed = 1;
  Rule rule;
  rule.kind = Kind::kNodeCrash;
  rule.target = "node1";
  rule.at = 3;
  plan.rules.push_back(rule);
  Injector injector(plan);
  int fired = 0;
  for (std::int64_t key = 0; key < 10; ++key) {
    if (injector.fire(Kind::kNodeCrash, "node1", key)) ++fired;
    EXPECT_FALSE(injector.fire(Kind::kNodeCrash, "node0", key));  // wrong target
    EXPECT_FALSE(injector.fire(Kind::kTaskError, "node1", key));  // wrong kind
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(injector.injected_count(), 1u);
}

TEST(FaultInjector, PrefixTargetAndEmptyTargetMatch) {
  Plan plan;
  plan.seed = 1;
  Rule prefix;
  prefix.kind = Kind::kTaskError;
  prefix.target = "load_*";
  prefix.rate = 1.0;
  plan.rules.push_back(prefix);
  Injector injector(plan);
  EXPECT_TRUE(injector.fire(Kind::kTaskError, "load_tmax", 0));
  EXPECT_TRUE(injector.fire(Kind::kTaskError, "load_tmin", 1));
  EXPECT_FALSE(injector.fire(Kind::kTaskError, "esm_simulation", 2));

  Plan all;
  all.seed = 1;
  Rule any;
  any.kind = Kind::kDlsError;
  any.rate = 1.0;
  all.rules.push_back(any);
  Injector injector_all(all);
  EXPECT_TRUE(injector_all.fire(Kind::kDlsError, "anything", 0));
}

TEST(FaultInjector, RateIsStatisticallyHonoured) {
  Plan plan;
  plan.seed = 99;
  Rule rule;
  rule.kind = Kind::kTaskError;
  rule.rate = 0.2;
  plan.rules.push_back(rule);
  Injector injector(plan);
  int fired = 0;
  const int trials = 10000;
  for (std::int64_t key = 0; key < trials; ++key) {
    if (injector.fire(Kind::kTaskError, "victim", key)) ++fired;
  }
  // Binomial(10000, 0.2): mean 2000, sigma 40 — a 5-sigma band.
  EXPECT_GT(fired, 1800);
  EXPECT_LT(fired, 2200);
}

TEST(FaultInjector, MaxInjectionsCapsFirings) {
  Plan plan;
  plan.seed = 5;
  Rule rule;
  rule.kind = Kind::kDlsError;
  rule.rate = 1.0;
  rule.max_injections = 2;
  plan.rules.push_back(rule);
  Injector injector(plan);
  int fired = 0;
  for (std::int64_t key = 0; key < 10; ++key) {
    if (injector.fire(Kind::kDlsError, "pipe", key)) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FaultInjector, SameSeedSamePlanSameEventLog) {
  auto plan = Plan::parse(R"({"seed": 1234, "rules": [
    {"kind": "task_error", "rate": 0.3},
    {"kind": "fragment_error", "target": "reduce", "rate": 0.5},
    {"kind": "node_slowdown", "rate": 0.1, "delay_ms": 1}]})");
  ASSERT_TRUE(plan.ok());

  // Drive the same decision stream through two injectors from several
  // threads each; the canonical event logs must match exactly.
  auto drive = [](Injector& injector) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&injector, t] {
        for (std::int64_t key = t; key < 400; key += 4) {
          (void)injector.fire(Kind::kTaskError, "task" + std::to_string(key % 7), key);
          (void)injector.fire(Kind::kFragmentError, key % 2 ? "reduce" : "apply", key);
          (void)injector.fire(Kind::kNodeSlowdown, "node" + std::to_string(key % 3), key);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    return injector.event_log();
  };

  Injector a(*plan);
  Injector b(*plan);
  const std::vector<std::string> log_a = drive(a);
  const std::vector<std::string> log_b = drive(b);
  EXPECT_GT(log_a.size(), 0u);
  EXPECT_EQ(log_a, log_b);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  Rule rule;
  rule.kind = Kind::kTaskError;
  rule.rate = 0.5;
  Plan plan_a{1, {rule}};
  Plan plan_b{2, {rule}};
  Injector a(plan_a);
  Injector b(plan_b);
  for (std::int64_t key = 0; key < 200; ++key) {
    (void)a.fire(Kind::kTaskError, "victim", key);
    (void)b.fire(Kind::kTaskError, "victim", key);
  }
  EXPECT_NE(a.event_log(), b.event_log());
}

TEST(FaultInjector, FromEnvParsesInlineJson) {
  ::setenv("CLIMATE_FAULTS_TEST", R"({"seed": 3, "rules": [{"kind": "task_error", "rate": 1}]})",
           1);
  auto injector = Injector::from_env("CLIMATE_FAULTS_TEST");
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->plan().seed, 3u);
  EXPECT_TRUE(injector->fire(Kind::kTaskError, "x", 0));
  ::unsetenv("CLIMATE_FAULTS_TEST");
  EXPECT_EQ(Injector::from_env("CLIMATE_FAULTS_TEST"), nullptr);
}

// ---- retry.hpp -------------------------------------------------------------

TEST(Retry, BackoffIsDeterministicAndBounded) {
  RetryOptions options;
  options.max_attempts = 6;
  options.base_delay_ms = 1.0;
  options.max_delay_ms = 8.0;
  options.budget_ms = 1000.0;
  options.jitter_seed = 77;
  Backoff a(options);
  Backoff b(options);
  int delays = 0;
  for (;;) {
    auto da = a.next_delay_ms();
    auto db = b.next_delay_ms();
    ASSERT_EQ(da.has_value(), db.has_value());
    if (!da.has_value()) break;
    EXPECT_DOUBLE_EQ(*da, *db);  // same seed, same schedule
    EXPECT_GE(*da, options.base_delay_ms);
    EXPECT_LE(*da, options.max_delay_ms);
    ++delays;
  }
  EXPECT_EQ(delays, options.max_attempts - 1);
}

TEST(Retry, BackoffRespectsBudget) {
  RetryOptions options;
  options.max_attempts = 1000;
  options.base_delay_ms = 4.0;
  options.max_delay_ms = 50.0;
  options.budget_ms = 20.0;
  Backoff backoff(options);
  while (backoff.next_delay_ms().has_value()) {
  }
  EXPECT_LE(backoff.slept_ms(), options.budget_ms);
}

TEST(Retry, RetryCallSucceedsAfterTransientFailures) {
  RetryOptions options;
  options.max_attempts = 5;
  options.base_delay_ms = 0.01;
  options.max_delay_ms = 0.1;
  int calls = 0;
  RetryStats stats;
  Status outcome = retry_call(
      [&]() -> Status {
        return ++calls < 3 ? Status::Unavailable("busy") : Status::Ok();
      },
      options, transient_status, &stats);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_FALSE(stats.exhausted);
}

TEST(Retry, RetryCallDoesNotRetryPermanentErrors) {
  int calls = 0;
  RetryStats stats;
  Status outcome = retry_call(
      [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("bad request");
      },
      RetryOptions{}, transient_status, &stats);
  EXPECT_EQ(outcome.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(stats.exhausted);
}

TEST(Retry, RetryCallReportsExhaustion) {
  RetryOptions options;
  options.max_attempts = 3;
  options.base_delay_ms = 0.01;
  options.max_delay_ms = 0.05;
  int calls = 0;
  RetryStats stats;
  Status outcome = retry_call([&]() -> Status {
    ++calls;
    return Status::Unavailable("still down");
  }, options, transient_status, &stats);
  EXPECT_EQ(outcome.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(stats.exhausted);
}

TEST(Retry, RetryCallWorksWithResult) {
  RetryOptions options;
  options.max_attempts = 4;
  options.base_delay_ms = 0.01;
  int calls = 0;
  Result<int> outcome = retry_call(
      [&]() -> Result<int> {
        if (++calls < 2) return Status::Unavailable("warming up");
        return 42;
      },
      options, transient_status, nullptr);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, 42);
  EXPECT_EQ(calls, 2);
}

TEST(Retry, CircuitBreakerOpensAfterConsecutiveFailures) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_ms = 10.0;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // fails fast while open
}

TEST(Retry, CircuitBreakerHalfOpensAndCloses) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.open_ms = 5.0;
  options.half_open_probes = 1;
  CircuitBreaker breaker(options);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  EXPECT_TRUE(breaker.allow());  // the half-open probe
  EXPECT_FALSE(breaker.allow());  // only one probe per window
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(Retry, CircuitBreakerReopensOnFailedProbe) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_ms = 5.0;
  CircuitBreaker breaker(options);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // the probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
}

}  // namespace
}  // namespace climate::common
