// Tests for the ML stack: tensors, layer forward/backward (numerical
// gradient checks), losses, optimizers, persistence, and the TC pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "ml/network.hpp"
#include "ml/tc_pipeline.hpp"

namespace climate::ml {
namespace {

namespace fs = std::filesystem;

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  t.at2(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t[5], 5.0f);
  Tensor t4({2, 3, 4, 5});
  t4.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t4[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_EQ(t4.shape_string(), "[2x3x4x5]");
}

TEST(Tensor, ReshapeChecksSize) {
  Tensor t({4, 4});
  t.reshape({2, 8});
  EXPECT_EQ(t.dim(1), 8u);
  EXPECT_THROW(t.reshape({3, 3}), std::invalid_argument);
}

TEST(Tensor, HeUniformBounded) {
  common::Rng rng(1);
  Tensor t = Tensor::he_uniform({64}, 16, rng);
  const float limit = std::sqrt(6.0f / 16.0f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), limit);
  }
}

// Numerical gradient check of a whole network against backprop.
TEST(Layers, GradientCheckDenseReluSigmoid) {
  common::Rng rng(3);
  Sequential net;
  net.add(std::make_unique<Dense>(5, 4, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(4, 2, rng))
      .add(std::make_unique<Sigmoid>());

  Tensor input({2, 5});
  common::Rng data_rng(5);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(data_rng.normal(0, 1));
  }
  Tensor target({2, 2});
  target.fill(1.0f);

  auto loss_fn = [&]() {
    Tensor pred = net.forward(input, true);
    Tensor grad;
    return std::make_pair(bce_loss(pred, target, &grad), grad);
  };

  net.zero_grad();
  auto [loss, grad] = loss_fn();
  net.backward(grad);

  // Compare analytic parameter gradients against central differences.
  const float eps = 1e-3f;
  int checked = 0;
  for (Parameter* p : net.parameters()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.size(), 4); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float plus = loss_fn().first;
      p->value[i] = saved - eps;
      const float minus = loss_fn().first;
      p->value[i] = saved;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric, 2e-2f) << p->name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GE(checked, 8);
}

TEST(Layers, GradientCheckConvPool) {
  common::Rng rng(11);
  Sequential net;
  net.add(std::make_unique<Conv2D>(1, 2, 3, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(2 * 2 * 2, 1, rng))
      .add(std::make_unique<Sigmoid>());

  Tensor input({1, 1, 4, 4});
  common::Rng data_rng(13);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(data_rng.normal(0, 1));
  }
  Tensor target({1, 1});
  target[0] = 1.0f;

  auto loss_fn = [&]() {
    Tensor pred = net.forward(input, true);
    Tensor grad;
    return std::make_pair(bce_loss(pred, target, &grad), grad);
  };
  net.zero_grad();
  auto [loss, grad] = loss_fn();
  net.backward(grad);

  const float eps = 1e-3f;
  for (Parameter* p : net.parameters()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.size(), 3); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float plus = loss_fn().first;
      p->value[i] = saved - eps;
      const float minus = loss_fn().first;
      p->value[i] = saved;
      EXPECT_NEAR(p->grad[i], (plus - minus) / (2 * eps), 3e-2f) << p->name;
    }
  }
}

TEST(Layers, Conv2DPreservesSpatialSize) {
  common::Rng rng(2);
  Conv2D conv(3, 8, 3, rng);
  Tensor input({2, 3, 10, 12});
  Tensor out = conv.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{2, 8, 10, 12}));
  EXPECT_THROW(Conv2D(1, 1, 4, rng), std::invalid_argument);  // even kernel
}

TEST(Layers, MaxPoolHalvesAndSelectsMax) {
  MaxPool2 pool;
  Tensor input({1, 1, 2, 2});
  input[0] = 1;
  input[1] = 7;
  input[2] = 3;
  input[3] = 5;
  Tensor out = pool.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 7.0f);
}

TEST(Losses, BceAtPerfectPredictionNearZero) {
  Tensor pred({1, 1});
  pred[0] = 0.9999f;
  Tensor target({1, 1});
  target[0] = 1.0f;
  Tensor grad;
  EXPECT_LT(bce_loss(pred, target, &grad), 1e-3f);
  pred[0] = 0.0001f;
  EXPECT_GT(bce_loss(pred, target, &grad), 5.0f);
}

TEST(Losses, MaskedMseIgnoresMaskedElements) {
  Tensor pred({1, 2});
  pred[0] = 1.0f;
  pred[1] = 100.0f;  // wildly wrong but masked out
  Tensor target({1, 2});
  target[0] = 0.0f;
  target[1] = 0.0f;
  Tensor mask({1, 2});
  mask[0] = 1.0f;
  mask[1] = 0.0f;
  Tensor grad;
  const float loss = mse_loss(pred, target, mask, &grad);
  EXPECT_NEAR(loss, 0.5f, 1e-5f);  // only (1-0)^2 / 2 elements
  EXPECT_FLOAT_EQ(grad[1], 0.0f);
}

TEST(Optimizers, AdamReducesLossOnToyProblem) {
  common::Rng rng(17);
  Sequential net;
  net.add(std::make_unique<Dense>(2, 8, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(8, 1, rng))
      .add(std::make_unique<Sigmoid>());
  AdamOptimizer adam(net.parameters(), 5e-2f);

  // XOR-ish binary task.
  Tensor inputs({4, 2});
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Tensor targets({4, 1});
  for (int i = 0; i < 4; ++i) {
    inputs.at2(static_cast<std::size_t>(i), 0) = xs[i][0];
    inputs.at2(static_cast<std::size_t>(i), 1) = xs[i][1];
    targets[static_cast<std::size_t>(i)] = (xs[i][0] != xs[i][1]) ? 1.0f : 0.0f;
  }
  float first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    net.zero_grad();
    Tensor pred = net.forward(inputs, true);
    Tensor grad;
    const float loss = bce_loss(pred, targets, &grad);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    net.backward(grad);
    adam.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.3f);
  EXPECT_LT(last_loss, 0.3f);
}

TEST(Optimizers, SgdStepsDownhill) {
  common::Rng rng(23);
  Sequential net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  SgdOptimizer sgd(net.parameters(), 0.05f, 0.0f);
  Tensor input({1, 1});
  input[0] = 1.0f;
  Tensor target({1, 1});
  target[0] = 3.0f;
  Tensor mask({1, 1});
  mask[0] = 1.0f;
  float first = 0, last = 0;
  for (int i = 0; i < 100; ++i) {
    net.zero_grad();
    Tensor pred = net.forward(input, true);
    Tensor grad;
    const float loss = mse_loss(pred, target, mask, &grad);
    if (i == 0) first = loss;
    last = loss;
    net.backward(grad);
    sgd.step();
  }
  EXPECT_LT(last, first * 0.01f);
}

TEST(Network, SaveLoadRoundTrip) {
  const std::string path = (fs::temp_directory_path() / "weights_test.bin").string();
  common::Rng rng(31);
  Sequential a;
  a.add(std::make_unique<Dense>(4, 3, rng)).add(std::make_unique<Dense>(3, 2, rng));
  ASSERT_TRUE(a.save_weights(path).ok());

  common::Rng rng2(99);
  Sequential b;
  b.add(std::make_unique<Dense>(4, 3, rng2)).add(std::make_unique<Dense>(3, 2, rng2));
  ASSERT_TRUE(b.load_weights(path).ok());

  Tensor input({1, 4});
  input.fill(0.5f);
  const Tensor pa = a.forward(input, false);
  const Tensor pb = b.forward(input, false);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_FLOAT_EQ(pa[i], pb[i]);

  // Architecture mismatch refuses to load.
  Sequential c;
  common::Rng rng3(1);
  c.add(std::make_unique<Dense>(4, 3, rng3));
  EXPECT_FALSE(c.load_weights(path).ok());
  fs::remove(path);
}

TEST(TcPipeline, PatchTilingCoversGrid) {
  common::Field psl(32, 48, 1013.0f), wspd(32, 48, 5.0f), vort(32, 48, 0.0f), tas(32, 48, 20.0f);
  auto patches = make_patches(psl, wspd, vort, tas, 16);
  EXPECT_EQ(patches.size(), 2u * 3u);
  EXPECT_EQ(patches[0].features.shape(), (std::vector<std::size_t>{kTcChannels, 16, 16}));
  // Feature scaling applied: psl 1013 -> 0.
  EXPECT_NEAR(patches[0].features[0], 0.0f, 1e-5f);
}

TEST(TcPipeline, LabelPatchesFindsCenters) {
  common::Field f(32, 48, 0.0f);
  auto patches = make_patches(f, f, f, f, 16);
  label_patches(patches, 16, {{20.0, 40.0}});  // inside patch (1, 2)
  int positives = 0;
  for (const TcPatch& p : patches) {
    if (p.has_tc) {
      ++positives;
      EXPECT_EQ(p.row0, 16u);
      EXPECT_EQ(p.col0, 32u);
      EXPECT_NEAR(p.center_row_frac, 4.0f / 16.0f, 1e-5f);
      EXPECT_NEAR(p.center_col_frac, 8.0f / 16.0f, 1e-5f);
    }
  }
  EXPECT_EQ(positives, 1);
}

TEST(TcPipeline, LocalizerLearnsSyntheticCyclones) {
  // Synthetic patches: a pressure dip + wind ring at a random position for
  // positives, flat noise for negatives. The CNN must learn to separate
  // them and regress the centre.
  const std::size_t patch = 16;
  common::Rng rng(41);
  auto make_sample = [&](bool positive) {
    TcPatch p;
    p.features = Tensor({kTcChannels, patch, patch});
    const double cy = 3 + rng.uniform() * (patch - 6);
    const double cx = 3 + rng.uniform() * (patch - 6);
    for (std::size_t y = 0; y < patch; ++y) {
      for (std::size_t x = 0; x < patch; ++x) {
        float psl = 1013.0f + static_cast<float>(rng.normal(0, 1.2));
        float wind = 6.0f + static_cast<float>(rng.normal(0, 1.5));
        float vort = static_cast<float>(rng.normal(0, 0.4));
        float temp = 25.0f + static_cast<float>(rng.normal(0, 0.8));
        if (positive) {
          const double r2 = ((y - cy) * (y - cy) + (x - cx) * (x - cx)) / 9.0;
          psl -= 35.0f * static_cast<float>(std::exp(-r2));
          wind += 28.0f * static_cast<float>(std::exp(-r2 / 2));
          vort += 6.0f * static_cast<float>(std::exp(-r2));
        }
        p.features[(0 * patch + y) * patch + x] = scale_feature(0, psl);
        p.features[(1 * patch + y) * patch + x] = scale_feature(1, wind);
        p.features[(2 * patch + y) * patch + x] = scale_feature(2, vort);
        p.features[(3 * patch + y) * patch + x] = scale_feature(3, temp);
      }
    }
    p.has_tc = positive;
    p.center_row_frac = static_cast<float>(cy / patch);
    p.center_col_frac = static_cast<float>(cx / patch);
    return p;
  };

  std::vector<TcPatch> train;
  for (int i = 0; i < 160; ++i) train.push_back(make_sample(i % 2 == 0));

  TcLocalizer localizer(patch, 4242);
  float loss = 0;
  for (int epoch = 0; epoch < 12; ++epoch) loss = localizer.train_epoch(train);
  EXPECT_LT(loss, 0.5f);

  // Held-out evaluation.
  int correct = 0;
  double center_err = 0;
  int positives = 0;
  std::vector<TcPatch> test;
  for (int i = 0; i < 60; ++i) test.push_back(make_sample(i % 2 == 0));
  const auto outputs = localizer.infer(test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const bool predicted = outputs[i].presence > 0.5f;
    if (predicted == test[i].has_tc) ++correct;
    if (test[i].has_tc) {
      ++positives;
      center_err += std::hypot(outputs[i].row_frac - test[i].center_row_frac,
                               outputs[i].col_frac - test[i].center_col_frac);
    }
  }
  EXPECT_GT(correct, 50);  // > 83% accuracy
  EXPECT_LT(center_err / positives, 0.25);  // within a quarter patch
}

TEST(TcPipeline, DetectEndToEndOnSyntheticField) {
  // Train quickly, then run detect() on a full field with one synthetic
  // cyclone imprinted, checking geo-referencing.
  const std::size_t patch = 16;
  common::LatLonGrid grid(32, 48);
  common::Field psl(grid, 1013.0f), wspd(grid, 5.0f), vort(grid, 0.0f), tas(grid, 24.0f);
  const std::size_t cy = 12, cx = 30;
  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 0; x < 48; ++x) {
      const double r2 =
          ((y - static_cast<double>(cy)) * (y - static_cast<double>(cy)) +
           (x - static_cast<double>(cx)) * (x - static_cast<double>(cx))) / 6.0;
      psl.at(y, x) -= 38.0f * static_cast<float>(std::exp(-r2));
      wspd.at(y, x) += 30.0f * static_cast<float>(std::exp(-r2 / 2));
      vort.at(y, x) += 7.0f * static_cast<float>(std::exp(-r2));
    }
  }

  // Training patches from shifted copies of the same pattern.
  TcLocalizer localizer(patch, 7);
  std::vector<TcPatch> train;
  common::Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    const bool positive = i % 2 == 0;
    common::Field p2(patch, patch, 1013.0f), w2(patch, patch, 5.0f), v2(patch, patch, 0.0f),
        t2(patch, patch, 24.0f);
    const double py = 3 + rng.uniform() * 10, px = 3 + rng.uniform() * 10;
    for (std::size_t y = 0; y < patch; ++y) {
      for (std::size_t x = 0; x < patch; ++x) {
        double r2 = ((y - py) * (y - py) + (x - px) * (x - px)) / 6.0;
        if (positive) {
          p2.at(y, x) -= 38.0f * static_cast<float>(std::exp(-r2));
          w2.at(y, x) += 30.0f * static_cast<float>(std::exp(-r2 / 2));
          v2.at(y, x) += 7.0f * static_cast<float>(std::exp(-r2));
        }
        p2.at(y, x) += static_cast<float>(rng.normal(0, 1.0));
        w2.at(y, x) += static_cast<float>(rng.normal(0, 1.0));
      }
    }
    auto patches = make_patches(p2, w2, v2, t2, patch);
    patches[0].has_tc = positive;
    patches[0].center_row_frac = static_cast<float>(py / patch);
    patches[0].center_col_frac = static_cast<float>(px / patch);
    train.push_back(std::move(patches[0]));
  }
  for (int epoch = 0; epoch < 12; ++epoch) localizer.train_epoch(train);

  const auto detections = localizer.detect(psl, wspd, vort, tas, grid, 0.5);
  ASSERT_GE(detections.size(), 1u);
  // Nearest detection to the imprinted centre.
  const double true_lat = grid.lat(cy);
  const double true_lon = grid.lon(cx);
  double best = 1e18;
  for (const TcDetection& d : detections) {
    best = std::min(best, common::great_circle_km(d.lat, d.lon, true_lat, true_lon));
  }
  // One cell of this very coarse 32x48 test grid spans ~600 km; require the
  // centre within a few cells.
  EXPECT_LT(best, 2200.0);
}

}  // namespace
}  // namespace climate::ml
