// Tests for the extremes module: baselines, wave indices (reference vs
// datacube pipeline equivalence), TC detection/tracking, skill scoring.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "datacube/client.hpp"
#include "esm/climatology.hpp"
#include "esm/forcing.hpp"
#include "esm/model.hpp"
#include "extremes/heatwaves.hpp"
#include "extremes/skill.hpp"
#include "extremes/tc_tracker.hpp"

namespace climate::extremes {
namespace {

using common::Field;
using common::LatLonGrid;

/// Builds daily fields with a constant baseline and a scripted anomaly
/// series at one cell.
std::vector<Field> scripted_days(const LatLonGrid& grid, const Baseline& baseline,
                                 std::size_t ci, std::size_t cj,
                                 const std::vector<float>& anomalies) {
  std::vector<Field> days;
  for (std::size_t d = 0; d < anomalies.size(); ++d) {
    Field field(grid);
    for (std::size_t i = 0; i < grid.nlat(); ++i) {
      for (std::size_t j = 0; j < grid.nlon(); ++j) {
        field.at(i, j) = baseline.tasmax(i, j, static_cast<int>(d));
      }
    }
    field.at(ci, cj) += anomalies[d];
    days.push_back(std::move(field));
  }
  return days;
}

TEST(Baseline, AnalyticShapesMatchClimatology) {
  LatLonGrid grid(16, 24);
  Baseline baseline = Baseline::analytic(grid, 30, 4);
  EXPECT_EQ(baseline.days_per_year(), 30);
  // tasmax exceeds tasmin everywhere (diurnal amplitude).
  for (int doy = 0; doy < 30; doy += 7) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_GT(baseline.tasmax(i, 0, doy), baseline.tasmin(i, 0, doy));
    }
  }
  // Warming offset shifts both.
  Baseline warm = Baseline::analytic(grid, 30, 4, 2.0);
  EXPECT_NEAR(warm.tasmax(4, 0, 3) - baseline.tasmax(4, 0, 3), 2.0, 1e-4);
}

TEST(Baseline, FromDailyDataAveragesYears) {
  LatLonGrid grid(4, 4);
  // Two years of data: year one all 10, year two all 20 -> mean 15.
  std::vector<Field> tasmax;
  std::vector<Field> tasmin;
  for (int y = 0; y < 2; ++y) {
    for (int d = 0; d < 5; ++d) {
      tasmax.emplace_back(grid, y == 0 ? 10.0f : 20.0f);
      tasmin.emplace_back(grid, y == 0 ? 0.0f : 10.0f);
    }
  }
  Baseline baseline = Baseline::from_daily_data(grid, 5, tasmax, tasmin);
  EXPECT_FLOAT_EQ(baseline.tasmax(0, 0, 0), 15.0f);
  EXPECT_FLOAT_EQ(baseline.tasmin(2, 3, 4), 5.0f);
}

TEST(Baseline, RowsByDayTransposeConsistent) {
  LatLonGrid grid(3, 4);
  Baseline baseline = Baseline::analytic(grid, 6, 4);
  const std::vector<float> rows = baseline.tasmax_rows_by_day();
  ASSERT_EQ(rows.size(), 3u * 4u * 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (int d = 0; d < 6; ++d) {
        EXPECT_FLOAT_EQ(rows[(i * 4 + j) * 6 + static_cast<std::size_t>(d)],
                        baseline.tasmax(i, j, d));
      }
    }
  }
}

TEST(WaveIndices, DetectsScriptedHeatWave) {
  LatLonGrid grid(8, 8);
  Baseline baseline = Baseline::analytic(grid, 20, 4);
  // 7 hot days (wave), 3 cool, 6 hot days (wave), rest cool.
  std::vector<float> anomalies(20, 0.0f);
  for (int d = 0; d < 7; ++d) anomalies[static_cast<std::size_t>(d)] = 6.0f;
  for (int d = 10; d < 16; ++d) anomalies[static_cast<std::size_t>(d)] = 7.0f;
  const auto days = scripted_days(grid, baseline, 3, 4, anomalies);

  WaveIndices indices = compute_wave_indices(days, baseline, true);
  EXPECT_FLOAT_EQ(indices.duration_max.at(3, 4), 7.0f);
  EXPECT_FLOAT_EQ(indices.count.at(3, 4), 2.0f);
  EXPECT_NEAR(indices.frequency.at(3, 4), 13.0f / 20.0f, 1e-5f);
  // Other cells untouched.
  EXPECT_FLOAT_EQ(indices.count.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(indices.duration_max.at(7, 7), 0.0f);
}

TEST(WaveIndices, ShortSpellsDoNotCount) {
  LatLonGrid grid(4, 4);
  Baseline baseline = Baseline::analytic(grid, 15, 4);
  std::vector<float> anomalies(15, 0.0f);
  for (int d = 2; d < 7; ++d) anomalies[static_cast<std::size_t>(d)] = 8.0f;  // 5 days < 6
  const auto days = scripted_days(grid, baseline, 1, 1, anomalies);
  WaveIndices indices = compute_wave_indices(days, baseline, true);
  EXPECT_FLOAT_EQ(indices.count.at(1, 1), 0.0f);
}

TEST(WaveIndices, ThresholdIsFiveDegrees) {
  LatLonGrid grid(4, 4);
  Baseline baseline = Baseline::analytic(grid, 12, 4);
  std::vector<float> below(12, 4.9f);   // never reaches +5
  std::vector<float> at(12, 5.0f);      // exactly +5 counts (>=)
  const auto days_below = scripted_days(grid, baseline, 0, 0, below);
  const auto days_at = scripted_days(grid, baseline, 0, 0, at);
  EXPECT_FLOAT_EQ(compute_wave_indices(days_below, baseline, true).count.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(compute_wave_indices(days_at, baseline, true).count.at(0, 0), 1.0f);
}

TEST(WaveIndices, ColdWavesUseMinimumTemperature) {
  LatLonGrid grid(4, 4);
  Baseline baseline = Baseline::analytic(grid, 14, 4);
  // Build tasmin days: baseline tasmin minus 6 for 8 consecutive days.
  std::vector<Field> days;
  for (int d = 0; d < 14; ++d) {
    Field field(grid);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        field.at(i, j) = baseline.tasmin(i, j, d);
      }
    }
    if (d >= 3 && d < 11) field.at(2, 2) -= 6.0f;
    days.push_back(std::move(field));
  }
  WaveIndices indices = compute_wave_indices(days, baseline, false);
  EXPECT_FLOAT_EQ(indices.duration_max.at(2, 2), 8.0f);
  EXPECT_FLOAT_EQ(indices.count.at(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(indices.count.at(0, 0), 0.0f);
}

TEST(WaveIndices, DatacubePipelineMatchesReference) {
  // The paper's Listing-1 pipeline must agree with the direct scan on real
  // model output.
  esm::EsmConfig config;
  config.nlat = 24;
  config.nlon = 36;
  config.days_per_year = 40;
  config.seed = 99;
  esm::ForcingTable forcing =
      esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  esm::EsmModel model(config, forcing);
  LatLonGrid grid(config.nlat, config.nlon);
  Baseline baseline = Baseline::analytic(grid, config.days_per_year, config.steps_per_day);

  std::vector<Field> tasmax_days;
  for (int d = 0; d < config.days_per_year; ++d) {
    tasmax_days.push_back(model.run_day().tasmax);
  }
  const WaveIndices reference = compute_wave_indices(tasmax_days, baseline, true);

  // Build the cubes and run the datacube pipeline.
  datacube::Server server(3);
  datacube::Client client(server);
  std::vector<float> temp_rows(grid.size() * static_cast<std::size_t>(config.days_per_year));
  for (std::size_t c = 0; c < grid.size(); ++c) {
    for (int d = 0; d < config.days_per_year; ++d) {
      temp_rows[c * static_cast<std::size_t>(config.days_per_year) + static_cast<std::size_t>(d)] =
          tasmax_days[static_cast<std::size_t>(d)][c];
    }
  }
  std::vector<datacube::DimInfo> dims = {{"lat", grid.nlat(), grid.lats()},
                                         {"lon", grid.nlon(), grid.lons()}};
  datacube::DimInfo day_dim{"day", static_cast<std::size_t>(config.days_per_year), {}};
  auto temp_cube = client.create_cube("tasmax", dims, day_dim, temp_rows);
  ASSERT_TRUE(temp_cube.ok());
  auto baseline_cube =
      client.create_cube("baseline", dims, day_dim, baseline.tasmax_rows_by_day());
  ASSERT_TRUE(baseline_cube.ok());

  auto cubes = compute_wave_indices_datacube(client, *temp_cube, *baseline_cube, true);
  ASSERT_TRUE(cubes.ok());
  auto dur = index_cube_to_field(cubes->duration_max, grid);
  auto count = index_cube_to_field(cubes->count, grid);
  auto freq = index_cube_to_field(cubes->frequency, grid);
  ASSERT_TRUE(dur.ok());
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(freq.ok());
  for (std::size_t c = 0; c < grid.size(); ++c) {
    ASSERT_FLOAT_EQ((*dur)[c], reference.duration_max[c]) << "cell " << c;
    ASSERT_FLOAT_EQ((*count)[c], reference.count[c]) << "cell " << c;
    ASSERT_NEAR((*freq)[c], reference.frequency[c], 1e-5f) << "cell " << c;
  }
}

TEST(WaveIndices, IndexCubeToFieldChecksShape) {
  datacube::Server server(1);
  datacube::Client client(server);
  auto cube = client.create_cube("m", {{"row", 4, {}}}, {"t", 1, {}},
                                 std::vector<float>(4, 0.0f));
  ASSERT_TRUE(cube.ok());
  LatLonGrid wrong(4, 4);
  EXPECT_FALSE(index_cube_to_field(*cube, wrong).ok());
}

// ---------------------------------------------------------------------------
// TC tracker
// ---------------------------------------------------------------------------

/// Builds fields with a synthetic cyclone at (lat, lon).
void imprint_cyclone(Field* psl, Field* wspd, Field* vort, const LatLonGrid& grid, double lat,
                     double lon) {
  for (std::size_t i = 0; i < grid.nlat(); ++i) {
    for (std::size_t j = 0; j < grid.nlon(); ++j) {
      const double r = esm::angular_distance_deg(grid.lat(i), grid.lon(j), lat, lon);
      if (r > 15) continue;
      psl->at(i, j) -= 40.0f * static_cast<float>(std::exp(-r * r / 16.0));
      wspd->at(i, j) += 30.0f * static_cast<float>(std::exp(-r * r / 8.0));
      vort->at(i, j) +=
          (lat >= 0 ? 6.0f : -6.0f) * static_cast<float>(std::exp(-r * r / 16.0));
    }
  }
}

TEST(TcTracker, DetectsSyntheticCyclone) {
  LatLonGrid grid(48, 72);
  Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
  imprint_cyclone(&psl, &wspd, &vort, grid, 18.0, 140.0);
  const auto candidates = detect_candidates(psl, wspd, vort, grid, 0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_NEAR(candidates[0].lat, 18.0, 4.0);
  EXPECT_NEAR(candidates[0].lon, 140.0, 4.0);
  EXPECT_LT(candidates[0].psl_hpa, 1000.0);
  EXPECT_GT(candidates[0].max_wind_ms, 16.0);
}

TEST(TcTracker, RejectsWrongSignVorticity) {
  LatLonGrid grid(48, 72);
  Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
  imprint_cyclone(&psl, &wspd, &vort, grid, 18.0, 140.0);
  // Flip the vorticity sign: anticyclonic lows are rejected.
  for (auto& v : vort.data()) v = -v;
  EXPECT_TRUE(detect_candidates(psl, wspd, vort, grid, 0).empty());
}

TEST(TcTracker, RejectsHighLatitudeLows) {
  LatLonGrid grid(48, 72);
  Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
  imprint_cyclone(&psl, &wspd, &vort, grid, 62.0, 40.0);  // beyond max_abs_lat
  EXPECT_TRUE(detect_candidates(psl, wspd, vort, grid, 0).empty());
}

TEST(TcTracker, LinksMovingCycloneIntoOneTrack) {
  LatLonGrid grid(48, 72);
  // The coarse 5-degree test grid quantizes candidate positions, so a slow
  // cyclone appears to hop a whole cell (>500 km) at once: give the linker a
  // budget matching the cell size.
  TrackerCriteria criteria;
  criteria.max_speed_kmh = 120.0;
  std::vector<std::vector<TcCandidate>> per_step;
  for (int step = 0; step < 10; ++step) {
    Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
    const double lat = 14.0 + 0.5 * step;
    const double lon = 150.0 - 1.2 * step;
    imprint_cyclone(&psl, &wspd, &vort, grid, lat, lon);
    per_step.push_back(detect_candidates(psl, wspd, vort, grid, step, criteria));
  }
  const auto tracks = link_tracks(per_step, 4, criteria);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_GE(tracks[0].duration_steps(), 9);  // one step may fall on a cell edge
  EXPECT_LT(tracks[0].min_psl(), 1000.0);
  EXPECT_GT(tracks[0].max_wind(), 16.0);
}

TEST(TcTracker, JumpBeyondSpeedLimitSplitsTracks) {
  LatLonGrid grid(48, 72);
  std::vector<std::vector<TcCandidate>> per_step;
  TrackerCriteria criteria;
  criteria.min_track_steps = 3;
  for (int step = 0; step < 8; ++step) {
    Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
    // Teleports 90 degrees at step 4: must start a new track.
    const double lon = step < 4 ? 140.0 : 230.0;
    imprint_cyclone(&psl, &wspd, &vort, grid, 15.0, lon);
    per_step.push_back(detect_candidates(psl, wspd, vort, grid, step, criteria));
  }
  const auto tracks = link_tracks(per_step, 4, criteria);
  EXPECT_EQ(tracks.size(), 2u);
}

TEST(TcTracker, ShortLivedCandidatesFiltered) {
  LatLonGrid grid(48, 72);
  std::vector<std::vector<TcCandidate>> per_step;
  TrackerCriteria criteria;  // min_track_steps = 6
  for (int step = 0; step < 3; ++step) {
    Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
    imprint_cyclone(&psl, &wspd, &vort, grid, 15.0, 140.0);
    per_step.push_back(detect_candidates(psl, wspd, vort, grid, step, criteria));
  }
  EXPECT_TRUE(link_tracks(per_step, 4, criteria).empty());
}

TEST(TcTracker, TwoSimultaneousCyclones) {
  LatLonGrid grid(48, 72);
  TrackerCriteria criteria;
  criteria.max_speed_kmh = 120.0;  // see LinksMovingCycloneIntoOneTrack
  std::vector<std::vector<TcCandidate>> per_step;
  for (int step = 0; step < 8; ++step) {
    Field psl(grid, 1012.0f), wspd(grid, 6.0f), vort(grid, 0.0f);
    imprint_cyclone(&psl, &wspd, &vort, grid, 15.0, 120.0 - step);
    imprint_cyclone(&psl, &wspd, &vort, grid, -15.0, 60.0 + step);
    per_step.push_back(detect_candidates(psl, wspd, vort, grid, step, criteria));
  }
  const auto tracks = link_tracks(per_step, 4, criteria);
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_GE(tracks[0].duration_steps(), 7);
  EXPECT_GE(tracks[1].duration_steps(), 7);
}

// ---------------------------------------------------------------------------
// Skill scoring
// ---------------------------------------------------------------------------

esm::CycloneTruth make_truth(int id, int start_step, int steps, double lat, double lon) {
  esm::CycloneTruth truth;
  truth.id = id;
  truth.genesis_step = start_step;
  for (int s = 0; s < steps; ++s) {
    truth.track.push_back({start_step + s, lat, lon + s, 980.0, 30.0});
  }
  return truth;
}

TEST(Skill, PerfectDetections) {
  std::vector<esm::CycloneTruth> truth = {make_truth(1, 0, 5, 15.0, 140.0)};
  std::vector<DetectionFix> detections;
  for (int s = 0; s < 5; ++s) detections.push_back({s, 15.0, 140.0 + s});
  const SkillScores scores = score_detections(detections, truth);
  EXPECT_EQ(scores.hits, 5u);
  EXPECT_EQ(scores.misses, 0u);
  EXPECT_EQ(scores.false_alarms, 0u);
  EXPECT_DOUBLE_EQ(scores.pod(), 1.0);
  EXPECT_DOUBLE_EQ(scores.far(), 0.0);
  EXPECT_NEAR(scores.mean_center_error_km, 0.0, 1e-9);
}

TEST(Skill, MissesAndFalseAlarms) {
  std::vector<esm::CycloneTruth> truth = {make_truth(1, 0, 4, 15.0, 140.0)};
  std::vector<DetectionFix> detections = {
      {0, 15.0, 140.0},   // hit
      {1, -40.0, 20.0},   // false alarm (far away)
      {9, 15.0, 140.0},   // false alarm (no truth at step 9)
  };
  const SkillScores scores = score_detections(detections, truth);
  EXPECT_EQ(scores.hits, 1u);
  EXPECT_EQ(scores.misses, 3u);
  EXPECT_EQ(scores.false_alarms, 2u);
  EXPECT_NEAR(scores.pod(), 0.25, 1e-9);
  EXPECT_NEAR(scores.far(), 2.0 / 3.0, 1e-9);
}

TEST(Skill, GreedyMatchingIsOneToOne) {
  // Two truths at the same step, one detection: exactly one hit.
  std::vector<esm::CycloneTruth> truth = {make_truth(1, 0, 1, 15.0, 140.0),
                                          make_truth(2, 0, 1, 15.0, 150.0)};
  std::vector<DetectionFix> detections = {{0, 15.0, 141.0}};
  const SkillScores scores = score_detections(detections, truth);
  EXPECT_EQ(scores.hits, 1u);
  EXPECT_EQ(scores.misses, 1u);
  EXPECT_EQ(scores.false_alarms, 0u);
}

TEST(Skill, TruthFixesFlattening) {
  std::vector<esm::CycloneTruth> truth = {make_truth(1, 0, 3, 10, 100),
                                          make_truth(2, 5, 2, -12, 200)};
  EXPECT_EQ(truth_fixes(truth).size(), 5u);
}

}  // namespace
}  // namespace climate::extremes

namespace climate::extremes {
namespace {

TEST(Baseline, QuantileBaselineBracketsMean) {
  LatLonGrid grid(4, 4);
  common::Rng rng(55);
  // 6 "years" of 10-day data with noise.
  std::vector<Field> tasmax, tasmin;
  for (int d = 0; d < 60; ++d) {
    Field mx(grid), mn(grid);
    for (std::size_t c = 0; c < grid.size(); ++c) {
      mx[c] = 20.0f + static_cast<float>(rng.normal(0, 3));
      mn[c] = 10.0f + static_cast<float>(rng.normal(0, 3));
    }
    tasmax.push_back(std::move(mx));
    tasmin.push_back(std::move(mn));
  }
  Baseline mean_baseline = Baseline::from_daily_data(grid, 10, tasmax, tasmin);
  Baseline q90 = Baseline::from_daily_quantile(grid, 10, tasmax, tasmin, 0.9, 2);
  for (int doy = 0; doy < 10; ++doy) {
    for (std::size_t c = 0; c < grid.size(); ++c) {
      const std::size_t i = c / grid.nlon(), j = c % grid.nlon();
      // The 90th percentile of tasmax sits above the mean; the 10th
      // percentile of tasmin sits below it.
      EXPECT_GT(q90.tasmax(i, j, doy), mean_baseline.tasmax(i, j, doy) - 0.5f);
      EXPECT_LT(q90.tasmin(i, j, doy), mean_baseline.tasmin(i, j, doy) + 0.5f);
    }
  }
  // Global check: on average the quantile baselines are strictly on the
  // correct side of the means.
  double dmax = 0, dmin = 0;
  for (int doy = 0; doy < 10; ++doy) {
    dmax += q90.tasmax(0, 0, doy) - mean_baseline.tasmax(0, 0, doy);
    dmin += q90.tasmin(0, 0, doy) - mean_baseline.tasmin(0, 0, doy);
  }
  EXPECT_GT(dmax, 0.0);
  EXPECT_LT(dmin, 0.0);
}

TEST(Baseline, QuantileBaselineReducesWaveCounts) {
  // Against a 90th-percentile threshold, fewer heat waves qualify than
  // against the mean baseline (monotonicity of the definition).
  LatLonGrid grid(6, 6);
  common::Rng rng(77);
  std::vector<Field> days;
  std::vector<Field> tasmin_days;
  for (int d = 0; d < 40; ++d) {
    Field f(grid);
    for (std::size_t c = 0; c < grid.size(); ++c) {
      f[c] = 25.0f + static_cast<float>(rng.normal(0, 4));
    }
    days.push_back(f);
    tasmin_days.push_back(f);
  }
  Baseline mean_baseline = Baseline::from_daily_data(grid, 20, days, tasmin_days);
  Baseline q_baseline = Baseline::from_daily_quantile(grid, 20, days, tasmin_days, 0.9, 2);
  const WaveIndices vs_mean = compute_wave_indices(days, mean_baseline, true, 3, 2.0);
  const WaveIndices vs_q = compute_wave_indices(days, q_baseline, true, 3, 2.0);
  double mean_total = 0, q_total = 0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    mean_total += vs_mean.count[c];
    q_total += vs_q.count[c];
  }
  EXPECT_LE(q_total, mean_total);
}

}  // namespace
}  // namespace climate::extremes

namespace climate::extremes {
namespace {

TEST(WarmingResponse, HotterScenarioMeansMoreHeatWaves) {
  // The case study's motivation: indices respond to GHG forcing. Same
  // weather noise, two forcing levels, fixed reference baseline.
  auto run_year = [](esm::Scenario scenario, int start_year) {
    esm::EsmConfig config;
    config.nlat = 24;
    config.nlon = 36;
    config.days_per_year = 60;
    config.seed = 31;
    config.scenario = scenario;
    config.start_year = start_year;
    esm::ForcingTable forcing = esm::ForcingTable::from_scenario(scenario, 2015, 100);
    esm::EsmModel model(config, forcing);
    LatLonGrid grid(config.nlat, config.nlon);
    std::vector<Field> tasmax_days, tasmin_days;
    for (int d = 0; d < config.days_per_year; ++d) {
      esm::DailyFields day = model.run_day();
      tasmax_days.push_back(std::move(day.tasmax));
      tasmin_days.push_back(std::move(day.tasmin));
    }
    Baseline baseline =
        Baseline::analytic(grid, config.days_per_year, config.steps_per_day, 0.0);
    return std::make_pair(compute_wave_indices(tasmax_days, baseline, true),
                          compute_wave_indices(tasmin_days, baseline, false));
  };
  const auto [heat_now, cold_now] = run_year(esm::Scenario::kHistorical, 2015);
  const auto [heat_future, cold_future] = run_year(esm::Scenario::kSsp585, 2090);
  EXPECT_GT(heat_future.count.mean(), heat_now.count.mean());
  EXPECT_GT(heat_future.frequency.mean(), heat_now.frequency.mean());
  EXPECT_LT(cold_future.count.mean(), cold_now.count.mean());
}

}  // namespace
}  // namespace climate::extremes
