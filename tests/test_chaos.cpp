// Chaos tests of the task runtime's node-failure recovery, deadlines and
// straggler speculation (labelled "chaos" in CTest; scripts/check.sh --full
// also runs them under ThreadSanitizer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <thread>

#include "common/fault.hpp"
#include "taskrt/runtime.hpp"

namespace climate::taskrt {
namespace {

namespace fs = std::filesystem;
using common::fault::Injector;
using common::fault::Kind;
using common::fault::Plan;
using common::fault::Rule;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(static_cast<std::int64_t>(ms * 1e6)));
}

/// Fast-liveness options: a crashed node is declared dead within a few ms.
RuntimeOptions fast_liveness(std::size_t workers) {
  RuntimeOptions options;
  options.workers = workers;
  options.heartbeat_interval_ms = 1.0;
  options.heartbeat_timeout_ms = 5.0;
  options.verify = VerifyMode::kOn;
  return options;
}

/// Three "a" nodes plus one "b" node, fast liveness.
RuntimeOptions pinned_cluster() {
  RuntimeOptions options = fast_liveness(4);
  for (int i = 0; i < 4; ++i) {
    NodeSpec spec;
    spec.name = "node" + std::to_string(i);
    spec.cores = 1;
    spec.tags = {i < 3 ? "a" : "b"};
    options.nodes.push_back(std::move(spec));
  }
  return options;
}

TaskOptions pin(const char* tag) {
  TaskOptions options;
  options.constraints.insert(tag);
  return options;
}

/// Blocks until the runtime has declared `count` nodes dead (the monitor
/// thread does this asynchronously after a crash).
void wait_for_node_death(Runtime& rt, std::uint64_t count) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rt.recovery().node_failures < count) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "node death never detected";
    sleep_ms(1);
  }
}

/// Polls the trace until the named task has completed, returning the node
/// that ran it (-1 on timeout). Unlike sync(), this does not stage a master
/// replica, so the task's output stays homed only on the executing node.
int wait_for_completion(Runtime& rt, const std::string& name) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    for (const TaskTrace& task : std::vector<TaskTrace>(rt.trace().tasks())) {
      if (task.name == name && task.state == TaskState::kCompleted) return task.node;
    }
    sleep_ms(1);
  }
  return -1;
}

OutputCodec int_codec() {
  OutputCodec codec;
  codec.serialize = [](const std::any& value) { return std::to_string(any_as<int>(value)); };
  codec.deserialize = [](const std::string& blob) -> std::any { return std::stoi(blob); };
  return codec;
}

// Kill 1 of 4 nodes mid-run: the completed producer's output lived only on
// the dead node, so the consumer's pickup re-blocks it and the runtime
// replays the producer by lineage on a surviving node.
TEST(Chaos, NodeCrashRecoversByLineageReplay) {
  Runtime rt(pinned_cluster());
  // Keep the only "b" node busy so the consumer stays queued while the
  // producer's node dies.
  DataHandle filler_h = rt.create_data();
  rt.submit("filler", pin("b"), {Out(filler_h)}, [](TaskContext& ctx) {
    sleep_ms(120);
    ctx.set_out(0, std::any(0));
  });

  std::atomic<int> producer_runs{0};
  DataHandle value_h = rt.create_data();
  rt.submit("producer", pin("a"), {Out(value_h)}, [&producer_runs](TaskContext& ctx) {
    producer_runs.fetch_add(1);
    ctx.set_out(0, std::any(21));
  });
  // Wait for completion WITHOUT sync(): syncing stages the value on the
  // master, and the crash would then have nothing to destroy.
  const int producer_node = wait_for_completion(rt, "producer");
  ASSERT_GE(producer_node, 0);
  ASSERT_LT(producer_node, 3);
  rt.crash_node(static_cast<std::size_t>(producer_node));
  wait_for_node_death(rt, 1);

  DataHandle doubled_h = rt.create_data();
  rt.submit("consumer", pin("b"), {In(value_h), Out(doubled_h)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(ctx.in_as<int>(0) * 2));
  });
  EXPECT_EQ(rt.sync_as<int>(doubled_h), 42);
  EXPECT_EQ(rt.sync_as<int>(filler_h), 0);  // consume: keeps the lint clean
  rt.wait_all();

  const RecoveryReport recovery = rt.recovery();
  EXPECT_EQ(recovery.node_failures, 1u);
  EXPECT_GE(recovery.data_versions_lost, 1u);
  EXPECT_GE(recovery.tasks_replayed, 1u);
  EXPECT_GE(recovery.data_versions_rematerialized, 1u);
  EXPECT_EQ(producer_runs.load(), 2);  // original + lineage replay
  EXPECT_EQ(rt.verify_report().violation_count(), 0u);
}

// Same crash, but the producer checkpointed its outputs: recovery restores
// from the checkpoint instead of re-running the body.
TEST(Chaos, NodeCrashRecoversFromCheckpoint) {
  const std::string dir =
      (fs::temp_directory_path() / "climate_chaos_ckpt").string();
  fs::remove_all(dir);
  RuntimeOptions options = pinned_cluster();
  options.checkpoint_dir = dir;
  Runtime rt(options);

  DataHandle filler_h = rt.create_data();
  rt.submit("filler", pin("b"), {Out(filler_h)}, [](TaskContext& ctx) {
    sleep_ms(120);
    ctx.set_out(0, std::any(0));
  });

  std::atomic<int> producer_runs{0};
  TaskOptions producer_options = pin("a");
  producer_options.checkpoint_key = "chaos_producer";
  producer_options.codec = int_codec();
  DataHandle value_h = rt.create_data();
  rt.submit("producer", producer_options, {Out(value_h)}, [&producer_runs](TaskContext& ctx) {
    producer_runs.fetch_add(1);
    ctx.set_out(0, std::any(21));
  });
  const int producer_node = wait_for_completion(rt, "producer");
  ASSERT_GE(producer_node, 0);
  rt.crash_node(static_cast<std::size_t>(producer_node));
  wait_for_node_death(rt, 1);

  DataHandle doubled_h = rt.create_data();
  rt.submit("consumer", pin("b"), {In(value_h), Out(doubled_h)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(ctx.in_as<int>(0) * 2));
  });
  EXPECT_EQ(rt.sync_as<int>(doubled_h), 42);
  EXPECT_EQ(rt.sync_as<int>(filler_h), 0);
  rt.wait_all();

  const RecoveryReport recovery = rt.recovery();
  EXPECT_EQ(recovery.node_failures, 1u);
  EXPECT_GE(recovery.checkpoint_restores, 1u);
  EXPECT_EQ(producer_runs.load(), 1);  // the body never re-ran
  EXPECT_EQ(rt.verify_report().violation_count(), 0u);
  fs::remove_all(dir);
}

// Durable outputs (filesystem / datacube service) survive the crash: no
// invalidation, no replay.
TEST(Chaos, DurableOutputsAreNotInvalidated) {
  Runtime rt(pinned_cluster());
  DataHandle filler_h = rt.create_data();
  rt.submit("filler", pin("b"), {Out(filler_h)}, [](TaskContext& ctx) {
    sleep_ms(80);
    ctx.set_out(0, std::any(0));
  });

  std::atomic<int> producer_runs{0};
  TaskOptions producer_options = pin("a");
  producer_options.durable_outputs = true;
  DataHandle value_h = rt.create_data();
  rt.submit("producer", producer_options, {Out(value_h)}, [&producer_runs](TaskContext& ctx) {
    producer_runs.fetch_add(1);
    ctx.set_out(0, std::any(21));
  });
  const int producer_node = wait_for_completion(rt, "producer");
  ASSERT_GE(producer_node, 0);
  rt.crash_node(static_cast<std::size_t>(producer_node));
  wait_for_node_death(rt, 1);

  DataHandle doubled_h = rt.create_data();
  rt.submit("consumer", pin("b"), {In(value_h), Out(doubled_h)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(ctx.in_as<int>(0) * 2));
  });
  EXPECT_EQ(rt.sync_as<int>(doubled_h), 42);
  rt.wait_all();

  const RecoveryReport recovery = rt.recovery();
  EXPECT_EQ(recovery.tasks_replayed, 0u);
  EXPECT_EQ(recovery.data_versions_lost, 0u);
  EXPECT_EQ(producer_runs.load(), 1);
}

// A plan-scheduled crash (node1's second task pickup) mid-graph: the
// workflow still completes with correct values and a clean verifier report.
TEST(Chaos, InjectedNodeCrashMidGraphCompletes) {
  Plan plan;
  plan.seed = 11;
  Rule crash;
  crash.kind = Kind::kNodeCrash;
  crash.target = "node1";
  crash.at = 1;
  plan.rules.push_back(crash);

  RuntimeOptions options = fast_liveness(4);
  options.faults = std::make_shared<Injector>(plan);
  Runtime rt(options);

  const int n = 16;
  std::vector<DataHandle> produced(n);
  for (int i = 0; i < n; ++i) {
    produced[i] = rt.create_data();
    rt.submit("produce" + std::to_string(i), {Out(produced[i])}, [i](TaskContext& ctx) {
      sleep_ms(3);
      ctx.set_out(0, std::any(i));
    });
  }
  std::vector<DataHandle> doubled(n);
  for (int i = 0; i < n; ++i) {
    doubled[i] = rt.create_data();
    rt.submit("consume" + std::to_string(i), {In(produced[i]), Out(doubled[i])},
              [](TaskContext& ctx) {
                sleep_ms(1);
                ctx.set_out(1, std::any(ctx.in_as<int>(0) * 2));
              });
  }
  DataHandle total_h = rt.create_data();
  std::vector<Param> params;
  for (int i = 0; i < n; ++i) params.push_back(In(doubled[i]));
  params.push_back(Out(total_h));
  rt.submit("sum", params, [n](TaskContext& ctx) {
    int total = 0;
    for (int i = 0; i < n; ++i) total += ctx.in_as<int>(static_cast<std::size_t>(i));
    ctx.set_out(static_cast<std::size_t>(n), std::any(total));
  });

  EXPECT_EQ(rt.sync_as<int>(total_h), n * (n - 1));  // sum of 2*i
  rt.wait_all();

  const RecoveryReport recovery = rt.recovery();
  EXPECT_EQ(recovery.node_failures, 1u);
  EXPECT_GE(recovery.faults_injected, 1u);
  EXPECT_EQ(rt.verify_report().violation_count(), 0u);
}

// Same seed + plan => byte-identical injection event logs across runs.
TEST(Chaos, SameSeedAndPlanReplayIdentically) {
  auto run_once = [](std::uint64_t seed) {
    Plan plan;
    plan.seed = seed;
    Rule flaky;
    flaky.kind = Kind::kTaskError;
    flaky.rate = 0.3;
    flaky.target = "work*";
    plan.rules.push_back(flaky);

    RuntimeOptions options;
    options.workers = 4;
    options.faults = std::make_shared<Injector>(plan);
    Runtime rt(options);
    std::vector<DataHandle> outs(24);
    for (int i = 0; i < 24; ++i) {
      outs[i] = rt.create_data();
      TaskOptions task_options;
      task_options.on_failure = FailurePolicy::kRetry;
      task_options.max_retries = 8;
      rt.submit("work" + std::to_string(i), task_options, {Out(outs[i])}, [i](TaskContext& ctx) {
        ctx.set_out(0, std::any(i));
      });
    }
    int total = 0;
    for (int i = 0; i < 24; ++i) total += rt.sync_as<int>(outs[i]);
    rt.wait_all();
    EXPECT_EQ(total, 24 * 23 / 2);
    EXPECT_GE(rt.recovery().faults_injected, 1u);
    return rt.fault_injector()->event_log();
  };

  const std::vector<std::string> first = run_once(2024);
  const std::vector<std::string> second = run_once(2024);
  EXPECT_EQ(first, second);
  EXPECT_NE(run_once(2025), first);
}

// Crash a node while checkpointed tasks are completing — the stress shape
// the TSan gate runs (checkpoint saves happen outside the runtime lock while
// the death handler walks the graph).
TEST(Chaos, CrashDuringCheckpointStress) {
  const std::string dir =
      (fs::temp_directory_path() / "climate_chaos_ckpt_stress").string();
  for (int round = 0; round < 3; ++round) {
    fs::remove_all(dir);
    Plan plan;
    plan.seed = 100 + static_cast<std::uint64_t>(round);
    Rule crash;
    crash.kind = Kind::kNodeCrash;
    crash.target = "node2";
    crash.at = 2;
    plan.rules.push_back(crash);

    RuntimeOptions options = fast_liveness(4);
    options.checkpoint_dir = dir;
    options.faults = std::make_shared<Injector>(plan);
    Runtime rt(options);

    const int n = 20;
    std::vector<DataHandle> outs(n);
    for (int i = 0; i < n; ++i) {
      outs[i] = rt.create_data();
      TaskOptions task_options;
      task_options.checkpoint_key = "stress" + std::to_string(i);
      task_options.codec = int_codec();
      rt.submit("stress" + std::to_string(i), task_options, {Out(outs[i])},
                [i](TaskContext& ctx) {
                  sleep_ms(1);
                  ctx.set_out(0, std::any(i * 3));
                });
    }
    DataHandle total_h = rt.create_data();
    std::vector<Param> params;
    for (int i = 0; i < n; ++i) params.push_back(In(outs[i]));
    params.push_back(Out(total_h));
    rt.submit("stress_sum", params, [n](TaskContext& ctx) {
      int total = 0;
      for (int i = 0; i < n; ++i) total += ctx.in_as<int>(static_cast<std::size_t>(i));
      ctx.set_out(static_cast<std::size_t>(n), std::any(total));
    });
    EXPECT_EQ(rt.sync_as<int>(total_h), 3 * n * (n - 1) / 2);
    rt.wait_all();
    // Death declaration is asynchronous: the graph can drain before the
    // monitor notices the missed heartbeats.
    ASSERT_GE(rt.recovery().faults_injected, 1u);
    wait_for_node_death(rt, 1);
    EXPECT_EQ(rt.recovery().node_failures, 1u);
  }
  fs::remove_all(dir);
}

// A hung task trips its deadline and goes down the FailurePolicy path; with
// kRetry the second attempt succeeds.
TEST(Chaos, DeadlineKillsHungTaskAndRetries) {
  RuntimeOptions options = fast_liveness(2);
  Runtime rt(options);
  std::atomic<int> attempts{0};
  TaskOptions task_options;
  task_options.on_failure = FailurePolicy::kRetry;
  task_options.max_retries = 2;
  task_options.deadline_ms = 25.0;
  DataHandle out_h = rt.create_data();
  rt.submit("hangs_once", task_options, {Out(out_h)}, [&attempts](TaskContext& ctx) {
    if (attempts.fetch_add(1) == 0) {
      // Hang well past the deadline, but honour the cancel flag so the
      // worker slot frees promptly once the monitor kills the attempt.
      for (int i = 0; i < 500 && !ctx.cancelled(); ++i) sleep_ms(1);
      if (ctx.cancelled()) return;  // killed: never publishes
    }
    ctx.set_out(0, std::any(7));
  });
  EXPECT_EQ(rt.sync_as<int>(out_h), 7);
  rt.wait_all();
  EXPECT_GE(rt.recovery().deadline_failures, 1u);
  EXPECT_GE(attempts.load(), 2);
}

// Deadline exhaustion without retries is a workflow failure.
TEST(Chaos, DeadlineExhaustionFailsWorkflow) {
  RuntimeOptions options = fast_liveness(2);
  Runtime rt(options);
  TaskOptions task_options;
  task_options.deadline_ms = 15.0;  // default policy kFail
  DataHandle out_h = rt.create_data();
  rt.submit("hangs_forever", task_options, {Out(out_h)}, [](TaskContext& ctx) {
    for (int i = 0; i < 2000 && !ctx.cancelled(); ++i) sleep_ms(1);
  });
  EXPECT_THROW(rt.wait_all(), WorkflowError);
  EXPECT_GE(rt.recovery().deadline_failures, 1u);
}

// Straggler speculation: a task running far beyond its function's trailing
// mean gets a backup copy; the first finisher wins.
TEST(Chaos, SpeculativeBackupFirstFinisherWins) {
  RuntimeOptions options = fast_liveness(4);
  options.speculation = true;
  options.speculation_factor = 2.0;
  options.speculation_min_ms = 5.0;
  options.speculation_min_samples = 3;
  Runtime rt(options);

  // Build the trailing mean with four quick instances.
  for (int i = 0; i < 4; ++i) {
    DataHandle h = rt.create_data();
    rt.submit("spec_work", {Out(h)}, [](TaskContext& ctx) {
      sleep_ms(3);
      ctx.set_out(0, std::any(1));
    });
    EXPECT_EQ(rt.sync_as<int>(h), 1);
  }

  // The straggler: its first invocation stalls, the backup copy is quick.
  std::atomic<int> invocations{0};
  DataHandle slow_h = rt.create_data();
  rt.submit("spec_work", {Out(slow_h)}, [&invocations](TaskContext& ctx) {
    if (invocations.fetch_add(1) == 0) {
      for (int i = 0; i < 400 && !ctx.cancelled(); ++i) sleep_ms(1);
      if (ctx.cancelled()) return;  // superseded by the backup
    }
    ctx.set_out(0, std::any(99));
  });
  EXPECT_EQ(rt.sync_as<int>(slow_h), 99);
  rt.wait_all();

  const RecoveryReport recovery = rt.recovery();
  EXPECT_GE(recovery.speculative_backups, 1u);
  EXPECT_GE(recovery.speculative_wins, 1u);
  bool straggler_flagged = false;
  for (const TaskTrace& task : std::vector<TaskTrace>(rt.trace().tasks())) {
    if (task.speculated) straggler_flagged = true;
  }
  EXPECT_TRUE(straggler_flagged);
}

// Node-failure rescheduling never consumes FailurePolicy retries: a task
// whose node dies mid-body is re-run without touching max_retries.
TEST(Chaos, NodeFailureDoesNotConsumeRetries) {
  RuntimeOptions options = pinned_cluster();
  Runtime rt(options);
  std::atomic<int> runs{0};
  std::atomic<bool> crashed{false};
  TaskOptions task_options = pin("a");
  task_options.on_failure = FailurePolicy::kRetry;
  task_options.max_retries = 0;  // any genuine failure would be fatal
  DataHandle out_h = rt.create_data();
  rt.submit("slow_victim", task_options, {Out(out_h)}, [&](TaskContext& ctx) {
    runs.fetch_add(1);
    // First run: wait until the crash lands, then keep the body alive a bit
    // so the in-flight attempt is what the node loses.
    if (!crashed.load()) {
      for (int i = 0; i < 500 && !crashed.load(); ++i) sleep_ms(1);
      sleep_ms(5);
    }
    ctx.set_out(0, std::any(13));
  });
  sleep_ms(10);  // let a node pick the task up
  int victim_node = -1;
  for (const TaskTrace& task : std::vector<TaskTrace>(rt.trace().tasks())) {
    if (task.name == "slow_victim" && task.node >= 0) victim_node = task.node;
  }
  ASSERT_GE(victim_node, 0) << "task never started";
  rt.crash_node(static_cast<std::size_t>(victim_node));
  crashed.store(true);
  EXPECT_EQ(rt.sync_as<int>(out_h), 13);
  rt.wait_all();
  EXPECT_EQ(rt.stats().retries, 0u);  // the reschedule was free
  EXPECT_GE(rt.recovery().tasks_rescheduled, 1u);
  EXPECT_EQ(runs.load(), 2);
  bool victim_traced = false;
  for (const TaskTrace& task : std::vector<TaskTrace>(rt.trace().tasks())) {
    if (task.name == "slow_victim") {
      victim_traced = true;
      EXPECT_GE(task.node_failures, 1);
    }
  }
  EXPECT_TRUE(victim_traced);
}

}  // namespace
}  // namespace climate::taskrt
