// Integration tests of the end-to-end extreme-events workflow (the paper's
// case study) at reduced scale: graph structure (Figure 3), result
// correctness against direct computation, streaming vs staged equivalence,
// checkpoint recovery, and HPCWaaS-driven execution.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/workflow.hpp"
#include "esm/diagnostics.hpp"
#include "esm/model.hpp"
#include "esm/writer.hpp"
#include "hpcwaas/service.hpp"

namespace climate::core {
namespace {

namespace fs = std::filesystem;

WorkflowConfig small_config(const std::string& dir) {
  WorkflowConfig config;
  config.esm.nlat = 32;
  config.esm.nlon = 64;
  config.esm.days_per_year = 24;
  config.esm.seed = 21;
  config.years = 1;
  config.output_dir = dir;
  config.workers = 3;
  config.io_servers = 2;
  config.run_ml_tc = false;  // ML path exercised separately (needs weights)
  config.tc_chunk_days = 12;
  return config;
}

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / ("wf_" + std::to_string(::getpid()) + "_" +
                                         ::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(WorkflowTest, EndToEndSingleYear) {
  WorkflowConfig config = small_config(dir_);
  ExtremeEventsWorkflow workflow(config);
  auto results = workflow.run();
  ASSERT_TRUE(results.ok()) << results.status().to_string();

  // Daily files of section 5.2: one per day with the full variable set.
  std::size_t daily_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_ + "/daily")) {
    if (entry.path().extension() == ".nc") ++daily_files;
  }
  EXPECT_EQ(daily_files, 24u);
  EXPECT_GT(results->bytes_written, 0u);

  // Index files + maps exported (steps 5-6).
  ASSERT_EQ(results->years.size(), 1u);
  const YearResults& year = results->years[0];
  for (const std::string& path : year.exported_files) {
    EXPECT_TRUE(fs::exists(path)) << path;
  }
  EXPECT_TRUE(fs::exists(year.map_file));
  EXPECT_TRUE(fs::exists(results->final_map_file));

  // Index fields are sane.
  EXPECT_GE(year.heat.count.min(), 0.0f);
  EXPECT_LE(year.heat.frequency.max(), 1.0f);
  EXPECT_GE(year.heat.frequency.min(), 0.0f);

  // The task graph contains every Figure-3 function family.
  const auto counts = results->trace.counts_by_name();
  for (const char* name :
       {"load_forcing", "load_baseline_heat", "load_baseline_cold", "esm_simulation",
        "year_ready", "load_tmax", "load_tmin", "heat_duration", "cold_duration",
        "heat_index_max", "heat_index_number", "heat_index_frequency", "cold_index_max",
        "cold_index_number", "cold_index_frequency", "tc_georeference",
        "tc_deterministic_tracking", "validate_store", "render_year_map", "final_maps"}) {
    EXPECT_TRUE(counts.count(name)) << "missing task type " << name;
  }
  EXPECT_EQ(counts.at("esm_simulation"), 1u);
  EXPECT_GT(results->trace.edge_count(), 10u);
  EXPECT_EQ(results->runtime_stats.tasks_failed, 0u);

  // Summary JSON aggregates per-year validation records.
  EXPECT_EQ(results->summary["years"].size(), 1u);
  EXPECT_EQ(results->summary["years"][0].get_int("year"), 2015);
}

TEST_F(WorkflowTest, EndToEndRunIsVerifierClean) {
  // The whole case-study graph under the taskrt verifier: every declared
  // direction must match what the task bodies actually do, and the graph
  // lint must find no cycles, races, orphans or checkpoint gaps.
  WorkflowConfig config = small_config(dir_);
  config.verify = taskrt::VerifyMode::kOn;
  ExtremeEventsWorkflow workflow(config);
  auto results = workflow.run();
  ASSERT_TRUE(results.ok()) << results.status().to_string();
  EXPECT_TRUE(results->verify_report.empty()) << results->verify_report.to_string();
  EXPECT_EQ(results->summary.get_int("verify_errors"), 0);
  EXPECT_EQ(results->summary.get_int("verify_warnings"), 0);
  EXPECT_EQ(results->summary.get_int("verify_notes"), 0);
}

TEST_F(WorkflowTest, IndicesMatchDirectComputation) {
  WorkflowConfig config = small_config(dir_);
  ExtremeEventsWorkflow workflow(config);
  auto results = workflow.run();
  ASSERT_TRUE(results.ok());

  // Recompute the heat indices directly from the daily files.
  const common::LatLonGrid grid(config.esm.nlat, config.esm.nlon);
  extremes::Baseline baseline = extremes::Baseline::analytic(
      grid, config.esm.days_per_year, config.esm.steps_per_day, 0.0);
  std::vector<common::Field> tasmax_days;
  for (int d = 0; d < config.esm.days_per_year; ++d) {
    auto field = esm::read_daily_field(
        esm::daily_filename(dir_ + "/daily", config.esm.start_year, d), "tasmax");
    ASSERT_TRUE(field.ok());
    tasmax_days.push_back(std::move(*field));
  }
  const extremes::WaveIndices reference =
      extremes::compute_wave_indices(tasmax_days, baseline, true);
  const extremes::WaveIndices& workflow_result = results->years[0].heat;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    ASSERT_FLOAT_EQ(workflow_result.duration_max[c], reference.duration_max[c]) << c;
    ASSERT_FLOAT_EQ(workflow_result.count[c], reference.count[c]) << c;
    ASSERT_NEAR(workflow_result.frequency[c], reference.frequency[c], 1e-5) << c;
  }
}

TEST_F(WorkflowTest, StreamingAndStagedAgree) {
  WorkflowConfig config = small_config(dir_ + "/streaming");
  config.streaming = true;
  auto streaming = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(streaming.ok());

  WorkflowConfig staged_config = small_config(dir_ + "/staged");
  staged_config.streaming = false;
  auto staged = ExtremeEventsWorkflow(staged_config).run();
  ASSERT_TRUE(staged.ok());

  const auto& a = streaming->years[0].heat;
  const auto& b = staged->years[0].heat;
  for (std::size_t c = 0; c < a.count.size(); ++c) {
    ASSERT_FLOAT_EQ(a.count[c], b.count[c]);
    ASSERT_FLOAT_EQ(a.duration_max[c], b.duration_max[c]);
  }
  EXPECT_EQ(streaming->years[0].tracks.size(), staged->years[0].tracks.size());
}

TEST_F(WorkflowTest, MultiYearRun) {
  WorkflowConfig config = small_config(dir_);
  config.years = 2;
  config.esm.days_per_year = 16;
  auto results = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->years.size(), 2u);
  EXPECT_EQ(results->years[0].year, 2015);
  EXPECT_EQ(results->years[1].year, 2016);
  const auto counts = results->trace.counts_by_name();
  EXPECT_EQ(counts.at("esm_simulation"), 2u);
  EXPECT_EQ(counts.at("load_tmax"), 2u);
  EXPECT_EQ(counts.at("heat_index_max"), 2u);
  // Baselines loaded once, reused across years (section 5.3).
  EXPECT_EQ(counts.at("load_baseline_heat"), 1u);
}

TEST_F(WorkflowTest, MlPipelineRunsWithPretrainedWeights) {
  WorkflowConfig config = small_config(dir_);
  config.esm.nlat = 64;   // inference grid = 32x64 -> 2x4 patches of 16
  config.esm.nlon = 128;
  config.esm.days_per_year = 12;
  config.esm.tc_spawn_per_day = 1.2;
  const std::string weights = dir_ + "/tc_weights.bin";
  fs::create_directories(dir_);
  auto loss = pretrain_tc_localizer(config.esm, weights, 16, /*epochs=*/6, /*train_days=*/25);
  ASSERT_TRUE(loss.ok()) << loss.status().to_string();
  EXPECT_TRUE(fs::exists(weights));

  config.run_ml_tc = true;
  config.tc_weights_path = weights;
  config.tc_chunk_days = 6;
  auto results = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(results.ok()) << results.status().to_string();
  const auto counts = results->trace.counts_by_name();
  EXPECT_EQ(counts.at("tc_preprocess"), 2u);  // 12 days / 6-day chunks
  EXPECT_EQ(counts.at("tc_inference"), 2u);
  EXPECT_EQ(counts.at("tc_georeference"), 1u);
  // The skill record exists (values depend on the short training).
  EXPECT_GE(results->years[0].ml_skill.pod(), 0.0);
}

TEST_F(WorkflowTest, CheckpointRecoverySkipsAnalysis) {
  WorkflowConfig config = small_config(dir_);
  config.checkpoint_dir = dir_ + "/ckpt";
  auto first = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->runtime_stats.tasks_from_checkpoint, 0u);

  // Re-run with the same checkpoint dir: analysis tasks restore.
  auto second = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->runtime_stats.tasks_from_checkpoint, 5u);
  // Results identical.
  for (std::size_t c = 0; c < first->years[0].heat.count.size(); ++c) {
    ASSERT_FLOAT_EQ(first->years[0].heat.count[c], second->years[0].heat.count[c]);
  }
}

TEST_F(WorkflowTest, MissingOutputDirRejected) {
  WorkflowConfig config;
  EXPECT_FALSE(ExtremeEventsWorkflow(config).run().ok());
}

TEST_F(WorkflowTest, RunsThroughHpcWaas) {
  // Figure 1 end to end: deploy the topology, invoke through the REST-style
  // API, poll until the workflow (running as a batch job) finishes.
  hpcwaas::HpcWaasService service;
  hpcwaas::DataPipeline pipeline;
  pipeline.name = "forcing_stage_in";
  service.dls().register_pipeline(pipeline);

  const std::string dir = dir_;
  auto workflow_id = service.deploy_workflow(
      case_study_topology_yaml(), [dir](const common::Json& params) {
        WorkflowConfig config = small_config(dir + "/run");
        config.years = static_cast<int>(params.get_number("years", 1));
        auto results = ExtremeEventsWorkflow(config).run();
        if (!results.ok()) throw std::runtime_error(results.status().to_string());
        common::Json out = common::Json::object();
        out["years"] = results->years.size();
        out["tasks"] = results->trace.tasks().size();
        out["makespan_ms"] = results->makespan_ms;
        return out;
      });
  ASSERT_TRUE(workflow_id.ok()) << workflow_id.status().to_string();

  common::Json params = common::Json::object();
  params["years"] = 1;
  auto exec = service.invoke(*workflow_id, params);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(service.wait(*exec).ok());
  auto record = service.execution(*exec);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, hpcwaas::ExecutionState::kSucceeded);
  EXPECT_EQ(record->result.get_int("years"), 1);
  EXPECT_GT(record->result.get_int("tasks"), 15);
}

TEST(WorkflowStatics, TopologyYamlParses) {
  EXPECT_FALSE(case_study_topology_yaml().empty());
}

}  // namespace
}  // namespace climate::core

namespace climate::core {
namespace {

TEST_F(WorkflowTest, HeterogeneousPlacementRespectsNodeClasses) {
  WorkflowConfig config = small_config(dir_);
  config.heterogeneous = true;
  config.hpc_nodes = 1;
  config.data_nodes = 2;
  config.gpu_nodes = 1;
  auto results = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(results.ok()) << results.status().to_string();

  // Node indices: [0] hpc, [1..2] data, [3] gpu (gpu is also data-capable).
  for (const auto& task : results->trace.tasks()) {
    if (task.node < 0) continue;
    if (task.name == "esm_simulation") {
      EXPECT_EQ(task.node, 0) << task.name;
    } else if (task.name == "load_tmax" || task.name == "heat_duration" ||
               task.name == "validate_store" || task.name == "tc_deterministic_tracking") {
      EXPECT_GE(task.node, 1) << task.name;  // never on the hpc node
    }
  }
  EXPECT_EQ(results->runtime_stats.tasks_failed, 0u);
}

TEST_F(WorkflowTest, OnlineDiagnosticsWritten) {
  WorkflowConfig config = small_config(dir_);
  config.online_diagnostics = true;
  auto results = ExtremeEventsWorkflow(config).run();
  ASSERT_TRUE(results.ok()) << results.status().to_string();
  const std::string diag_path = dir_ + "/diagnostics/diagnostics_2015.nc";
  ASSERT_TRUE(fs::exists(diag_path));
  auto rows = esm::DiagnosticsRecorder::load(diag_path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<std::size_t>(config.esm.days_per_year));
  for (const auto& row : *rows) {
    EXPECT_GT(row.global_mean_pr_mmday, 0.0);
    EXPECT_LT(row.min_psl_hpa, 1013.0);
  }
}

TEST_F(WorkflowTest, ContainerizedRunMatchesBareMetalResults) {
  WorkflowConfig bare = small_config(dir_ + "/bare");
  auto bare_results = ExtremeEventsWorkflow(bare).run();
  ASSERT_TRUE(bare_results.ok());

  WorkflowConfig contained = small_config(dir_ + "/contained");
  contained.container_startup_ms = 2.0;
  auto contained_results = ExtremeEventsWorkflow(contained).run();
  ASSERT_TRUE(contained_results.ok());

  // Identical science either way.
  for (std::size_t c = 0; c < bare_results->years[0].heat.count.size(); ++c) {
    ASSERT_FLOAT_EQ(bare_results->years[0].heat.count[c],
                    contained_results->years[0].heat.count[c]);
  }
}

}  // namespace
}  // namespace climate::core
