// Tests for the datacube framework: storage model, operators, catalog,
// client bindings, import/export, and operator algebra properties.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <thread>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "datacube/client.hpp"
#include "datacube/server.hpp"
#include "ncio/ncfile.hpp"

namespace climate::datacube {
namespace {

namespace fs = std::filesystem;

/// Builds a small cube of rows x alen with values f(row, k).
std::string make_test_cube(Server& server, std::size_t rows, std::size_t alen,
                           float (*fn)(std::size_t, std::size_t)) {
  std::vector<float> dense(rows * alen);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < alen; ++k) dense[r * alen + k] = fn(r, k);
  }
  auto pid = server.create_cube("m", {{"row", rows, {}}}, {"t", alen, {}}, dense, "test cube");
  EXPECT_TRUE(pid.ok());
  return *pid;
}

TEST(CubeData, ValidateAndDense) {
  CubeData cube;
  cube.measure = "m";
  cube.explicit_dims = {{"row", 4, {}}};
  cube.implicit_dim = {"t", 3, {}};
  cube.fragments = make_fragments(4, 3, 2, 2);
  EXPECT_TRUE(cube.validate().ok());
  EXPECT_EQ(cube.row_count(), 4u);
  EXPECT_EQ(cube.element_count(), 12u);
  EXPECT_EQ(cube.to_dense().size(), 12u);
}

TEST(CubeData, FragmentsPartitionRows) {
  const auto fragments = make_fragments(10, 2, 3, 2);
  ASSERT_EQ(fragments.size(), 3u);
  std::size_t covered = 0;
  for (const Fragment& f : fragments) {
    EXPECT_EQ(f.row_start, covered);
    covered += f.row_count;
    EXPECT_LT(f.server, 2);
  }
  EXPECT_EQ(covered, 10u);
}

TEST(CubeData, RowMultiIndex) {
  CubeData cube;
  cube.explicit_dims = {{"a", 3, {}}, {"b", 4, {}}};
  cube.implicit_dim = {"t", 1, {}};
  EXPECT_EQ(cube.row_multi_index(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(cube.row_multi_index(5), (std::vector<std::size_t>{1, 1}));
  EXPECT_EQ(cube.row_multi_index(11), (std::vector<std::size_t>{2, 3}));
}

TEST(Server, ReduceOperators) {
  Server server(2);
  const std::string pid =
      make_test_cube(server, 3, 4, [](std::size_t r, std::size_t k) {
        return static_cast<float>(r * 10 + k);
      });
  // Row r holds {10r, 10r+1, 10r+2, 10r+3}.
  auto check = [&](ReduceOp op, std::vector<float> expected) {
    auto out = server.reduce(pid, op);
    ASSERT_TRUE(out.ok());
    auto dense = server.fetch_dense(*out);
    ASSERT_TRUE(dense.ok());
    ASSERT_EQ(dense->size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR((*dense)[r], expected[r], 1e-4);
  };
  check(ReduceOp::kMax, {3, 13, 23});
  check(ReduceOp::kMin, {0, 10, 20});
  check(ReduceOp::kSum, {6, 46, 86});
  check(ReduceOp::kAvg, {1.5, 11.5, 21.5});
  check(ReduceOp::kCount, {4, 4, 4});
}

TEST(Server, ReduceStd) {
  Server server(1);
  const std::string pid =
      make_test_cube(server, 1, 4, [](std::size_t, std::size_t k) {
        return static_cast<float>(k);  // {0,1,2,3}: population std = sqrt(1.25)
      });
  auto out = server.reduce(pid, ReduceOp::kStd);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR((*server.fetch_dense(*out))[0], std::sqrt(1.25f), 1e-5);
}

TEST(Server, GroupedReduce) {
  Server server(2);
  const std::string pid =
      make_test_cube(server, 2, 6, [](std::size_t r, std::size_t k) {
        return static_cast<float>(r * 100 + k);
      });
  auto out = server.reduce(pid, ReduceOp::kSum, 2);  // pairs
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  ASSERT_TRUE(dense.ok());
  ASSERT_EQ(dense->size(), 2u * 3u);
  EXPECT_FLOAT_EQ((*dense)[0], 1.0f);   // 0+1
  EXPECT_FLOAT_EQ((*dense)[1], 5.0f);   // 2+3
  EXPECT_FLOAT_EQ((*dense)[2], 9.0f);   // 4+5
  EXPECT_FLOAT_EQ((*dense)[3], 201.0f); // 100+101
}

TEST(Server, GroupedReduceUnevenTail) {
  Server server(1);
  const std::string pid = make_test_cube(server, 1, 5, [](std::size_t, std::size_t k) {
    return static_cast<float>(k + 1);  // {1..5}
  });
  auto out = server.reduce(pid, ReduceOp::kSum, 2);
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ((*dense), (std::vector<float>{3, 7, 5}));  // (1+2)(3+4)(5)
}

TEST(Server, ApplyExpression) {
  Server server(2);
  const std::string pid = make_test_cube(server, 2, 3, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r + k);
  });
  auto out = server.apply(pid, "measure * 2 + 1");
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ(*dense, (std::vector<float>{1, 3, 5, 3, 5, 7}));
}

TEST(Server, ApplyBadExpressionFails) {
  Server server(1);
  const std::string pid = make_test_cube(server, 1, 2, [](std::size_t, std::size_t) {
    return 0.0f;
  });
  EXPECT_FALSE(server.apply(pid, "nonsense(((").ok());
}

TEST(Server, Intercube) {
  Server server(2);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(10 * (r + 1) + k);
  });
  const std::string b = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) {
    return 2.0f;
  });
  auto sub = server.intercube(a, b, InterOp::kSub);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(*server.fetch_dense(*sub), (std::vector<float>{8, 9, 18, 19}));
  auto mul = server.intercube(a, b, InterOp::kMul);
  EXPECT_EQ(*server.fetch_dense(*mul), (std::vector<float>{20, 22, 40, 42}));
  auto div = server.intercube(a, b, InterOp::kDiv);
  EXPECT_EQ(*server.fetch_dense(*div), (std::vector<float>{5, 5.5, 10, 10.5}));
}

TEST(Server, IntercubeShapeMismatch) {
  Server server(1);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) { return 1.0f; });
  const std::string b = make_test_cube(server, 2, 3, [](std::size_t, std::size_t) { return 1.0f; });
  EXPECT_FALSE(server.intercube(a, b, InterOp::kAdd).ok());
}

TEST(Server, SubsetImplicitDim) {
  Server server(2);
  const std::string pid = make_test_cube(server, 2, 5, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  auto out = server.subset(pid, "t", 1, 3);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->implicit_dim.size, 3u);
  EXPECT_EQ(*server.fetch_dense(*out), (std::vector<float>{1, 2, 3, 11, 12, 13}));
}

TEST(Server, SubsetExplicitDim) {
  Server server(2);
  const std::string pid = make_test_cube(server, 4, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  auto out = server.subset(pid, "row", 1, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*server.fetch_dense(*out), (std::vector<float>{10, 11, 20, 21}));
  EXPECT_FALSE(server.subset(pid, "row", 2, 9).ok());   // out of range
  EXPECT_FALSE(server.subset(pid, "nope", 0, 1).ok());  // unknown dim
}

TEST(Server, MergeAlongFirstDim) {
  Server server(2);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  const std::string b = make_test_cube(server, 3, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(100 + r * 10 + k);
  });
  auto out = server.merge(a, b);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->explicit_dims[0].size, 5u);
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ(dense->size(), 10u);
  EXPECT_FLOAT_EQ((*dense)[4], 100.0f);
}

TEST(Server, CatalogLifecycle) {
  Server server(1);
  const std::string pid = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) {
    return 1.0f;
  });
  EXPECT_EQ(server.list_cubes().size(), 1u);
  EXPECT_GT(server.resident_bytes(), 0u);
  ASSERT_TRUE(server.set_metadata(pid, "author", "test").ok());
  auto meta = server.metadata(pid);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->at("author"), "test");
  ASSERT_TRUE(server.delete_cube(pid).ok());
  EXPECT_FALSE(server.delete_cube(pid).ok());
  EXPECT_EQ(server.list_cubes().size(), 0u);
  EXPECT_FALSE(server.cubeschema(pid).ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cubes_created, 1u);
  EXPECT_EQ(stats.cubes_deleted, 1u);
}

TEST(Server, ImportExportRoundTrip) {
  const std::string dir = fs::temp_directory_path().string();
  const std::string path = dir + "/dc_roundtrip.nc";
  Server server(2);
  // Build a cube, export, import, compare.
  std::vector<float> dense(4 * 6);
  for (std::size_t i = 0; i < dense.size(); ++i) dense[i] = static_cast<float>(i) * 0.5f;
  auto pid = server.create_cube("tas", {{"cell", 4, {0, 1, 2, 3}}}, {"day", 6, {}}, dense, "x");
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(server.exportnc(*pid, path).ok());

  auto imported = server.importnc(path, "tas");
  ASSERT_TRUE(imported.ok());
  auto roundtrip = server.fetch_dense(*imported);
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_EQ(*roundtrip, dense);
  auto schema = server.cubeschema(*imported);
  EXPECT_EQ(schema->explicit_dims[0].name, "cell");
  EXPECT_EQ(schema->implicit_dim.name, "day");
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.disk_writes, 1u);
  EXPECT_EQ(stats.disk_reads, 1u);
  fs::remove(path);
}

TEST(Server, ImportMissingFileOrVariableFails) {
  Server server(1);
  EXPECT_FALSE(server.importnc("/nonexistent/file.nc", "v").ok());
}

TEST(Server, ScalingIoServersPreservesResults) {
  std::vector<float> reference;
  for (std::size_t servers : {1u, 2u, 4u, 8u}) {
    Server server(servers);
    const std::string pid = make_test_cube(server, 16, 8, [](std::size_t r, std::size_t k) {
      return static_cast<float>((r * 7 + k * 3) % 13);
    });
    auto reduced = server.reduce(pid, ReduceOp::kSum);
    ASSERT_TRUE(reduced.ok());
    auto dense = server.fetch_dense(*reduced);
    ASSERT_TRUE(dense.ok());
    if (reference.empty()) {
      reference = *dense;
    } else {
      EXPECT_EQ(*dense, reference) << "with " << servers << " io servers";
    }
  }
}

TEST(Server, DynamicRescaleKeepsCatalog) {
  Server server(1);
  const std::string pid = make_test_cube(server, 4, 4, [](std::size_t, std::size_t) {
    return 2.0f;
  });
  server.set_io_servers(4);
  EXPECT_EQ(server.io_servers(), 4u);
  auto out = server.reduce(pid, ReduceOp::kSum);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ((*server.fetch_dense(*out))[0], 8.0f);
}

TEST(Client, Listing1Shape) {
  // The exact operator sequence of the paper's Listing 1 on a synthetic
  // duration cube.
  Server server(2);
  Client client(server);
  // duration cube: row 0 has waves of length 6 and 8; row 1 none.
  std::vector<float> duration = {0, 0, 0, 0, 0, 6, 0, 8, 0, 0,
                                 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  auto cube = client.create_cube("duration", {{"cell", 2, {}}}, {"day", 10, {}}, duration);
  ASSERT_TRUE(cube.ok());

  auto max_cube = cube->reduce("max", 0, "Max Duration cube");
  ASSERT_TRUE(max_cube.ok());
  EXPECT_EQ(*max_cube->values(), (std::vector<float>{8, 0}));

  auto mask = cube->apply("oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
  ASSERT_TRUE(mask.ok());
  auto count = mask->reduce("sum", 0, "Number of durations cube");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count->values(), (std::vector<float>{2, 0}));
  ASSERT_TRUE(mask->del().ok());

  const std::string dir = fs::temp_directory_path().string();
  ASSERT_TRUE(count->exportnc2(dir, "listing1_count").ok());
  EXPECT_TRUE(fs::exists(dir + "/listing1_count.nc"));
  fs::remove(dir + "/listing1_count.nc");
}

TEST(Client, InvalidCubeOperations) {
  Cube cube;  // default: invalid
  EXPECT_FALSE(cube.reduce("max").ok());
  EXPECT_FALSE(cube.apply("x").ok());
  EXPECT_FALSE(cube.values().ok());
  Server server(1);
  Client client(server);
  Cube attached = client.attach("oph://local/datacube/999");
  EXPECT_FALSE(attached.reduce("max").ok());  // unknown pid at server
}

TEST(Client, ParseOpNames) {
  EXPECT_TRUE(parse_reduce_op("max").ok());
  EXPECT_TRUE(parse_reduce_op("mean").ok());
  EXPECT_FALSE(parse_reduce_op("median").ok());
  EXPECT_TRUE(parse_inter_op("sub").ok());
  EXPECT_FALSE(parse_inter_op("xor").ok());
}

// Operator algebra properties over random cubes.
class DatacubeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DatacubeProperty, ReduceSumEqualsApplySumViaRunningSum) {
  const std::size_t io_servers = GetParam();
  Server server(io_servers);
  common::Rng rng(100 + io_servers);
  std::vector<float> dense(12 * 20);
  for (auto& v : dense) v = static_cast<float>(rng.uniform(-5, 5));
  auto pid = server.create_cube("m", {{"row", 12, {}}}, {"t", 20, {}}, dense, "");
  ASSERT_TRUE(pid.ok());

  auto reduced = server.reduce(*pid, ReduceOp::kSum);
  ASSERT_TRUE(reduced.ok());
  // running_sum's last element equals the total: subset the last index.
  auto scanned = server.apply(*pid, "running_sum(x)");
  ASSERT_TRUE(scanned.ok());
  auto last = server.subset(*scanned, "t", 19, 19);
  ASSERT_TRUE(last.ok());
  const auto a = *server.fetch_dense(*reduced);
  const auto b = *server.fetch_dense(*last);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-3);
}

TEST_P(DatacubeProperty, MaxMinusMinNonNegative) {
  Server server(GetParam());
  common::Rng rng(7);
  std::vector<float> dense(8 * 16);
  for (auto& v : dense) v = static_cast<float>(rng.normal(0, 3));
  auto pid = server.create_cube("m", {{"row", 8, {}}}, {"t", 16, {}}, dense, "");
  auto mx = server.reduce(*pid, ReduceOp::kMax);
  auto mn = server.reduce(*pid, ReduceOp::kMin);
  auto diff = server.intercube(*mx, *mn, InterOp::kSub);
  ASSERT_TRUE(diff.ok());
  const std::vector<float> values = *server.fetch_dense(*diff);
  for (float v : values) EXPECT_GE(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(IoServers, DatacubeProperty, ::testing::Values(1, 2, 4));

TEST(Admission, RejectsWhenSessionQueueFull) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queued_per_session = 0;  // no waiting: reject on a busy server
  AdmissionController admission(options);

  auto first = admission.admit("alice");
  ASSERT_TRUE(first.ok());
  auto second = admission.admit("alice");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), common::StatusCode::kUnavailable);

  auto snap = admission.snapshot();
  EXPECT_EQ(snap.inflight, 1u);
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(snap.rejected, 1u);

  first->release();
  EXPECT_EQ(admission.snapshot().inflight, 0u);
  EXPECT_TRUE(admission.admit("alice").ok());  // slot free again
}

TEST(Admission, TicketReleaseGrantsWaiter) {
  AdmissionOptions options;
  options.max_inflight = 1;
  AdmissionController admission(options);

  auto held = admission.admit("alice");
  ASSERT_TRUE(held.ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto ticket = admission.admit("bob");
    EXPECT_TRUE(ticket.ok());
    granted.store(true);
  });
  while (admission.snapshot().queued == 0) std::this_thread::yield();
  EXPECT_FALSE(granted.load());  // bounded in-flight: bob waits
  held->release();
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(admission.snapshot().admitted, 2u);
}

TEST(Admission, RoundRobinAcrossSessions) {
  // One flooding session queues three operators before an interactive
  // session queues one; round-robin serves the interactive session second
  // instead of last (FIFO would serve it fourth).
  AdmissionOptions options;
  options.max_inflight = 1;
  AdmissionController admission(options);

  auto held = admission.admit("seed");
  ASSERT_TRUE(held.ok());

  std::mutex order_mutex;
  std::vector<std::string> order;
  std::vector<std::thread> waiters;
  auto spawn = [&](const std::string& session) {
    const std::size_t queued_before = admission.snapshot().queued;
    waiters.emplace_back([&admission, &order_mutex, &order, session] {
      auto ticket = admission.admit(session);
      ASSERT_TRUE(ticket.ok());
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(session);
    });
    // Serialize enqueue order so the round-robin outcome is deterministic.
    while (admission.snapshot().queued == queued_before) std::this_thread::yield();
  };
  spawn("flood");
  spawn("flood");
  spawn("flood");
  spawn("interactive");

  held->release();
  for (std::thread& thread : waiters) thread.join();
  const std::vector<std::string> expected = {"flood", "interactive", "flood", "flood"};
  EXPECT_EQ(order, expected);
}

TEST(Admission, RaisingInflightBoundGrantsWaiters) {
  AdmissionOptions options;
  options.max_inflight = 1;
  AdmissionController admission(options);
  auto held = admission.admit("a");
  ASSERT_TRUE(held.ok());
  std::thread waiter([&] {
    auto ticket = admission.admit("b");
    EXPECT_TRUE(ticket.ok());
    EXPECT_EQ(admission.snapshot().inflight, 2u);  // both tickets live
  });
  while (admission.snapshot().queued == 0) std::this_thread::yield();
  options.max_inflight = 4;
  admission.set_options(options);  // growth grants without a release
  waiter.join();
  EXPECT_EQ(admission.snapshot().admitted, 2u);
  EXPECT_EQ(admission.snapshot().inflight, 1u);  // waiter's ticket released
}

TEST(Server, SessionScopeBindsThread) {
  EXPECT_EQ(Server::current_session(), "default");
  {
    Server::SessionScope outer("alice");
    EXPECT_EQ(Server::current_session(), "alice");
    {
      Server::SessionScope inner("bob");
      EXPECT_EQ(Server::current_session(), "bob");
    }
    EXPECT_EQ(Server::current_session(), "alice");
  }
  EXPECT_EQ(Server::current_session(), "default");
}

TEST(Server, AdmissionRejectionSurfacesAsUnavailable) {
  Server server(1);
  const std::string pid = make_test_cube(server, 4, 8, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r + k);
  });
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queued_per_session = 0;
  server.set_admission(options);

  // Saturate the only slot from another thread, then observe the rejection.
  std::atomic<bool> hold{true};
  std::atomic<bool> running{false};
  server.set_fragment_latency_ns(1000000);  // 1 ms per fragment: keeps the op in flight
  std::thread busy([&] {
    running.store(true);
    while (hold.load()) {
      auto r = server.reduce(pid, ReduceOp::kSum);
      if (r.ok()) (void)server.delete_cube(*r);
    }
  });
  while (!running.load()) std::this_thread::yield();
  bool saw_rejection = false;
  for (int i = 0; i < 200 && !saw_rejection; ++i) {
    auto result = server.reduce(pid, ReduceOp::kMax);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), common::StatusCode::kUnavailable);
      saw_rejection = true;
    } else {
      (void)server.delete_cube(*result);
    }
  }
  hold.store(false);
  busy.join();
  server.set_fragment_latency_ns(0);
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(server.admission_snapshot().rejected, 0u);
}

TEST(Client, OpenValidatesAndSnapshotsSchema) {
  Server server(2);
  Client client(server, "alice");
  const std::string pid = make_test_cube(server, 6, 12, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 100 + k);
  });

  EXPECT_FALSE(client.open("oph://local/datacube/999").ok());

  auto cube = client.open(pid);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->pid(), pid);
  EXPECT_EQ(cube->session(), "alice");
  EXPECT_EQ(cube->schema_snapshot().measure, "m");
  EXPECT_EQ(cube->schema_snapshot().element_count, 72u);

  // Operator results carry their own snapshot without raw-PID plumbing.
  auto reduced = cube->reduce("max");
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->schema_snapshot().implicit_dim.size, 1u);
  EXPECT_EQ(reduced->handle().schema.element_count, 6u);

  // Handles are pure values: they survive rebinding via another client.
  CubeHandle handle = reduced->handle();
  Client other(server, "bob");
  Cube rebound = other.bind(handle);
  EXPECT_EQ(rebound.session(), "bob");
  auto values = rebound.values();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 6u);

  auto handles = client.cubes();
  ASSERT_TRUE(handles.ok());
  ASSERT_EQ(handles->size(), 2u);
  EXPECT_EQ(handles->front().pid, pid);
  EXPECT_FALSE(handles->front().schema.measure.empty());
}

TEST(Server, MultiSessionStressIsConsistent) {
  // N sessions hammer the server with mixed operators while the I/O-server
  // pool is rescaled concurrently; striped stats must be exact after join
  // and monotone while running (run under TSan via scripts/check.sh).
  Server server(2);
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kRounds = 10;

  std::atomic<bool> done{false};
  std::thread rescaler([&] {
    std::size_t flip = 0;
    while (!done.load()) {
      server.set_io_servers(1 + (flip++ % 4));
      std::this_thread::yield();
    }
  });
  std::thread watcher([&] {
    std::uint64_t last_ops = 0;
    while (!done.load()) {
      const ServerStats snap = server.stats();
      EXPECT_GE(snap.operators_executed, last_ops);  // monotone, never torn
      last_ops = snap.operators_executed;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> sessions;
  for (std::size_t t = 0; t < kSessions; ++t) {
    sessions.emplace_back([&server, t] {
      Client client(server, "session-" + std::to_string(t));
      std::vector<float> dense(8 * 16);
      for (std::size_t i = 0; i < dense.size(); ++i) {
        dense[i] = static_cast<float>((t + 1) * i);
      }
      auto base = client.create_cube("m", {{"row", 8, {}}}, {"t", 16, {}}, dense);
      ASSERT_TRUE(base.ok());
      for (std::size_t round = 0; round < kRounds; ++round) {
        auto reduced = base->reduce("max", 4);
        ASSERT_TRUE(reduced.ok()) << reduced.status().to_string();
        auto applied = base->apply("measure * 2");
        ASSERT_TRUE(applied.ok()) << applied.status().to_string();
        ASSERT_TRUE(reduced->del().ok());
        ASSERT_TRUE(applied->del().ok());
      }
    });
  }
  for (std::thread& session : sessions) session.join();
  done.store(true);
  rescaler.join();
  watcher.join();

  // Exact at quiescence: every session ran 2 operators per round, created
  // one base cube plus one cube per operator, and deleted the derived ones.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.operators_executed, kSessions * kRounds * 2);
  EXPECT_EQ(stats.cubes_created, kSessions * (1 + kRounds * 2));
  EXPECT_EQ(stats.cubes_deleted, kSessions * kRounds * 2);
  EXPECT_EQ(server.list_cubes().size(), kSessions);  // the base cubes remain
  EXPECT_EQ(server.admission_snapshot().inflight, 0u);
  EXPECT_GE(server.admission_snapshot().admitted, kSessions * kRounds * 2);
}

// ---------------------------------------------------------------------------
// Chaos injection + client retry discipline
// ---------------------------------------------------------------------------

TEST(ClientRetry, AbsorbsInjectedFragmentFaults) {
  Server server(2);
  // The first two operator admissions fail with an injected UNAVAILABLE.
  auto plan = common::fault::Plan::parse(
      R"({"seed": 17, "rules": [{"kind": "fragment_error", "rate": 1.0, "max": 2}]})");
  ASSERT_TRUE(plan.ok());
  auto faults = std::make_shared<common::fault::Injector>(*plan);
  server.set_fault_injector(faults);

  Client client(server);
  common::RetryOptions retry;
  retry.max_attempts = 4;
  retry.base_delay_ms = 0.05;
  retry.max_delay_ms = 0.5;
  client.set_retry(retry);
  auto cube = client.create_cube("m", {{"row", 2, {}}}, {"t", 3, {}}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(cube.ok());

  // Both faults land on this one call; the retry layer absorbs them.
  auto reduced = cube->reduce("max");
  ASSERT_TRUE(reduced.ok()) << reduced.status().to_string();
  EXPECT_EQ(*reduced->values(), (std::vector<float>{3, 6}));
  const ClientRetryStats stats = client.retry_stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_EQ(faults->injected_count(), 2u);
}

TEST(ClientRetry, BreakerOpensUnderPersistentFaults) {
  Server server(1);
  auto plan = common::fault::Plan::parse(
      R"({"seed": 4, "rules": [{"kind": "fragment_error", "rate": 1.0}]})");
  ASSERT_TRUE(plan.ok());
  server.set_fault_injector(std::make_shared<common::fault::Injector>(*plan));

  Client client(server);
  common::RetryOptions retry;
  retry.max_attempts = 2;
  retry.base_delay_ms = 0.05;
  retry.max_delay_ms = 0.2;
  common::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.open_ms = 200.0;
  client.set_retry(retry, breaker);
  auto cube = client.create_cube("m", {{"row", 1, {}}}, {"t", 2, {}}, {1, 2});
  ASSERT_TRUE(cube.ok());  // create_cube is not an operator: no admission gate

  // Every operator call fails; the breaker opens after three exhausted calls.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cube->reduce("max").status().code(), common::StatusCode::kUnavailable);
  }
  EXPECT_EQ(client.breaker_state(), common::CircuitBreaker::State::kOpen);
  auto rejected = cube->reduce("max");
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("circuit breaker open"), std::string::npos)
      << rejected.status().to_string();
  const ClientRetryStats stats = client.retry_stats();
  EXPECT_GE(stats.exhausted, 3u);
  EXPECT_GE(stats.breaker_rejections, 1u);
}

TEST(ClientRetry, FragmentDelayOnlyAddsLatency) {
  Server server(1);
  auto plan = common::fault::Plan::parse(
      R"({"seed": 8, "rules": [{"kind": "fragment_delay", "rate": 1.0, "delay_ms": 1}]})");
  ASSERT_TRUE(plan.ok());
  auto faults = std::make_shared<common::fault::Injector>(*plan);
  server.set_fault_injector(faults);
  Client client(server);
  auto cube = client.create_cube("m", {{"row", 1, {}}}, {"t", 2, {}}, {4, 9});
  ASSERT_TRUE(cube.ok());
  auto reduced = cube->reduce("sum");
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(*reduced->values(), (std::vector<float>{13}));
  EXPECT_GE(faults->injected_count(), 1u);
  EXPECT_EQ(client.retry_stats().retries, 0u);  // delays are not failures
}

}  // namespace
}  // namespace climate::datacube
