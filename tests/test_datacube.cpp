// Tests for the datacube framework: storage model, operators, catalog,
// client bindings, import/export, and operator algebra properties.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.hpp"
#include "datacube/client.hpp"
#include "datacube/server.hpp"
#include "ncio/ncfile.hpp"

namespace climate::datacube {
namespace {

namespace fs = std::filesystem;

/// Builds a small cube of rows x alen with values f(row, k).
std::string make_test_cube(Server& server, std::size_t rows, std::size_t alen,
                           float (*fn)(std::size_t, std::size_t)) {
  std::vector<float> dense(rows * alen);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < alen; ++k) dense[r * alen + k] = fn(r, k);
  }
  auto pid = server.create_cube("m", {{"row", rows, {}}}, {"t", alen, {}}, dense, "test cube");
  EXPECT_TRUE(pid.ok());
  return *pid;
}

TEST(CubeData, ValidateAndDense) {
  CubeData cube;
  cube.measure = "m";
  cube.explicit_dims = {{"row", 4, {}}};
  cube.implicit_dim = {"t", 3, {}};
  cube.fragments = make_fragments(4, 3, 2, 2);
  EXPECT_TRUE(cube.validate().ok());
  EXPECT_EQ(cube.row_count(), 4u);
  EXPECT_EQ(cube.element_count(), 12u);
  EXPECT_EQ(cube.to_dense().size(), 12u);
}

TEST(CubeData, FragmentsPartitionRows) {
  const auto fragments = make_fragments(10, 2, 3, 2);
  ASSERT_EQ(fragments.size(), 3u);
  std::size_t covered = 0;
  for (const Fragment& f : fragments) {
    EXPECT_EQ(f.row_start, covered);
    covered += f.row_count;
    EXPECT_LT(f.server, 2);
  }
  EXPECT_EQ(covered, 10u);
}

TEST(CubeData, RowMultiIndex) {
  CubeData cube;
  cube.explicit_dims = {{"a", 3, {}}, {"b", 4, {}}};
  cube.implicit_dim = {"t", 1, {}};
  EXPECT_EQ(cube.row_multi_index(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(cube.row_multi_index(5), (std::vector<std::size_t>{1, 1}));
  EXPECT_EQ(cube.row_multi_index(11), (std::vector<std::size_t>{2, 3}));
}

TEST(Server, ReduceOperators) {
  Server server(2);
  const std::string pid =
      make_test_cube(server, 3, 4, [](std::size_t r, std::size_t k) {
        return static_cast<float>(r * 10 + k);
      });
  // Row r holds {10r, 10r+1, 10r+2, 10r+3}.
  auto check = [&](ReduceOp op, std::vector<float> expected) {
    auto out = server.reduce(pid, op);
    ASSERT_TRUE(out.ok());
    auto dense = server.fetch_dense(*out);
    ASSERT_TRUE(dense.ok());
    ASSERT_EQ(dense->size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR((*dense)[r], expected[r], 1e-4);
  };
  check(ReduceOp::kMax, {3, 13, 23});
  check(ReduceOp::kMin, {0, 10, 20});
  check(ReduceOp::kSum, {6, 46, 86});
  check(ReduceOp::kAvg, {1.5, 11.5, 21.5});
  check(ReduceOp::kCount, {4, 4, 4});
}

TEST(Server, ReduceStd) {
  Server server(1);
  const std::string pid =
      make_test_cube(server, 1, 4, [](std::size_t, std::size_t k) {
        return static_cast<float>(k);  // {0,1,2,3}: population std = sqrt(1.25)
      });
  auto out = server.reduce(pid, ReduceOp::kStd);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR((*server.fetch_dense(*out))[0], std::sqrt(1.25f), 1e-5);
}

TEST(Server, GroupedReduce) {
  Server server(2);
  const std::string pid =
      make_test_cube(server, 2, 6, [](std::size_t r, std::size_t k) {
        return static_cast<float>(r * 100 + k);
      });
  auto out = server.reduce(pid, ReduceOp::kSum, 2);  // pairs
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  ASSERT_TRUE(dense.ok());
  ASSERT_EQ(dense->size(), 2u * 3u);
  EXPECT_FLOAT_EQ((*dense)[0], 1.0f);   // 0+1
  EXPECT_FLOAT_EQ((*dense)[1], 5.0f);   // 2+3
  EXPECT_FLOAT_EQ((*dense)[2], 9.0f);   // 4+5
  EXPECT_FLOAT_EQ((*dense)[3], 201.0f); // 100+101
}

TEST(Server, GroupedReduceUnevenTail) {
  Server server(1);
  const std::string pid = make_test_cube(server, 1, 5, [](std::size_t, std::size_t k) {
    return static_cast<float>(k + 1);  // {1..5}
  });
  auto out = server.reduce(pid, ReduceOp::kSum, 2);
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ((*dense), (std::vector<float>{3, 7, 5}));  // (1+2)(3+4)(5)
}

TEST(Server, ApplyExpression) {
  Server server(2);
  const std::string pid = make_test_cube(server, 2, 3, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r + k);
  });
  auto out = server.apply(pid, "measure * 2 + 1");
  ASSERT_TRUE(out.ok());
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ(*dense, (std::vector<float>{1, 3, 5, 3, 5, 7}));
}

TEST(Server, ApplyBadExpressionFails) {
  Server server(1);
  const std::string pid = make_test_cube(server, 1, 2, [](std::size_t, std::size_t) {
    return 0.0f;
  });
  EXPECT_FALSE(server.apply(pid, "nonsense(((").ok());
}

TEST(Server, Intercube) {
  Server server(2);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(10 * (r + 1) + k);
  });
  const std::string b = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) {
    return 2.0f;
  });
  auto sub = server.intercube(a, b, InterOp::kSub);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(*server.fetch_dense(*sub), (std::vector<float>{8, 9, 18, 19}));
  auto mul = server.intercube(a, b, InterOp::kMul);
  EXPECT_EQ(*server.fetch_dense(*mul), (std::vector<float>{20, 22, 40, 42}));
  auto div = server.intercube(a, b, InterOp::kDiv);
  EXPECT_EQ(*server.fetch_dense(*div), (std::vector<float>{5, 5.5, 10, 10.5}));
}

TEST(Server, IntercubeShapeMismatch) {
  Server server(1);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) { return 1.0f; });
  const std::string b = make_test_cube(server, 2, 3, [](std::size_t, std::size_t) { return 1.0f; });
  EXPECT_FALSE(server.intercube(a, b, InterOp::kAdd).ok());
}

TEST(Server, SubsetImplicitDim) {
  Server server(2);
  const std::string pid = make_test_cube(server, 2, 5, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  auto out = server.subset(pid, "t", 1, 3);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->implicit_dim.size, 3u);
  EXPECT_EQ(*server.fetch_dense(*out), (std::vector<float>{1, 2, 3, 11, 12, 13}));
}

TEST(Server, SubsetExplicitDim) {
  Server server(2);
  const std::string pid = make_test_cube(server, 4, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  auto out = server.subset(pid, "row", 1, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*server.fetch_dense(*out), (std::vector<float>{10, 11, 20, 21}));
  EXPECT_FALSE(server.subset(pid, "row", 2, 9).ok());   // out of range
  EXPECT_FALSE(server.subset(pid, "nope", 0, 1).ok());  // unknown dim
}

TEST(Server, MergeAlongFirstDim) {
  Server server(2);
  const std::string a = make_test_cube(server, 2, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 10 + k);
  });
  const std::string b = make_test_cube(server, 3, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(100 + r * 10 + k);
  });
  auto out = server.merge(a, b);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->explicit_dims[0].size, 5u);
  auto dense = server.fetch_dense(*out);
  EXPECT_EQ(dense->size(), 10u);
  EXPECT_FLOAT_EQ((*dense)[4], 100.0f);
}

TEST(Server, CatalogLifecycle) {
  Server server(1);
  const std::string pid = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) {
    return 1.0f;
  });
  EXPECT_EQ(server.list_cubes().size(), 1u);
  EXPECT_GT(server.resident_bytes(), 0u);
  ASSERT_TRUE(server.set_metadata(pid, "author", "test").ok());
  auto meta = server.metadata(pid);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->at("author"), "test");
  ASSERT_TRUE(server.delete_cube(pid).ok());
  EXPECT_FALSE(server.delete_cube(pid).ok());
  EXPECT_EQ(server.list_cubes().size(), 0u);
  EXPECT_FALSE(server.cubeschema(pid).ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cubes_created, 1u);
  EXPECT_EQ(stats.cubes_deleted, 1u);
}

TEST(Server, ImportExportRoundTrip) {
  const std::string dir = fs::temp_directory_path().string();
  const std::string path = dir + "/dc_roundtrip.nc";
  Server server(2);
  // Build a cube, export, import, compare.
  std::vector<float> dense(4 * 6);
  for (std::size_t i = 0; i < dense.size(); ++i) dense[i] = static_cast<float>(i) * 0.5f;
  auto pid = server.create_cube("tas", {{"cell", 4, {0, 1, 2, 3}}}, {"day", 6, {}}, dense, "x");
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(server.exportnc(*pid, path).ok());

  auto imported = server.importnc(path, "tas");
  ASSERT_TRUE(imported.ok());
  auto roundtrip = server.fetch_dense(*imported);
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_EQ(*roundtrip, dense);
  auto schema = server.cubeschema(*imported);
  EXPECT_EQ(schema->explicit_dims[0].name, "cell");
  EXPECT_EQ(schema->implicit_dim.name, "day");
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.disk_writes, 1u);
  EXPECT_EQ(stats.disk_reads, 1u);
  fs::remove(path);
}

TEST(Server, ImportMissingFileOrVariableFails) {
  Server server(1);
  EXPECT_FALSE(server.importnc("/nonexistent/file.nc", "v").ok());
}

TEST(Server, ScalingIoServersPreservesResults) {
  std::vector<float> reference;
  for (std::size_t servers : {1u, 2u, 4u, 8u}) {
    Server server(servers);
    const std::string pid = make_test_cube(server, 16, 8, [](std::size_t r, std::size_t k) {
      return static_cast<float>((r * 7 + k * 3) % 13);
    });
    auto reduced = server.reduce(pid, ReduceOp::kSum);
    ASSERT_TRUE(reduced.ok());
    auto dense = server.fetch_dense(*reduced);
    ASSERT_TRUE(dense.ok());
    if (reference.empty()) {
      reference = *dense;
    } else {
      EXPECT_EQ(*dense, reference) << "with " << servers << " io servers";
    }
  }
}

TEST(Server, DynamicRescaleKeepsCatalog) {
  Server server(1);
  const std::string pid = make_test_cube(server, 4, 4, [](std::size_t, std::size_t) {
    return 2.0f;
  });
  server.set_io_servers(4);
  EXPECT_EQ(server.io_servers(), 4u);
  auto out = server.reduce(pid, ReduceOp::kSum);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ((*server.fetch_dense(*out))[0], 8.0f);
}

TEST(Client, Listing1Shape) {
  // The exact operator sequence of the paper's Listing 1 on a synthetic
  // duration cube.
  Server server(2);
  Client client(server);
  // duration cube: row 0 has waves of length 6 and 8; row 1 none.
  std::vector<float> duration = {0, 0, 0, 0, 0, 6, 0, 8, 0, 0,
                                 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  auto cube = client.create_cube("duration", {{"cell", 2, {}}}, {"day", 10, {}}, duration);
  ASSERT_TRUE(cube.ok());

  auto max_cube = cube->reduce("max", 0, "Max Duration cube");
  ASSERT_TRUE(max_cube.ok());
  EXPECT_EQ(*max_cube->values(), (std::vector<float>{8, 0}));

  auto mask = cube->apply("oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
  ASSERT_TRUE(mask.ok());
  auto count = mask->reduce("sum", 0, "Number of durations cube");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count->values(), (std::vector<float>{2, 0}));
  ASSERT_TRUE(mask->del().ok());

  const std::string dir = fs::temp_directory_path().string();
  ASSERT_TRUE(count->exportnc2(dir, "listing1_count").ok());
  EXPECT_TRUE(fs::exists(dir + "/listing1_count.nc"));
  fs::remove(dir + "/listing1_count.nc");
}

TEST(Client, InvalidCubeOperations) {
  Cube cube;  // default: invalid
  EXPECT_FALSE(cube.reduce("max").ok());
  EXPECT_FALSE(cube.apply("x").ok());
  EXPECT_FALSE(cube.values().ok());
  Server server(1);
  Client client(server);
  Cube attached = client.attach("oph://local/datacube/999");
  EXPECT_FALSE(attached.reduce("max").ok());  // unknown pid at server
}

TEST(Client, ParseOpNames) {
  EXPECT_TRUE(parse_reduce_op("max").ok());
  EXPECT_TRUE(parse_reduce_op("mean").ok());
  EXPECT_FALSE(parse_reduce_op("median").ok());
  EXPECT_TRUE(parse_inter_op("sub").ok());
  EXPECT_FALSE(parse_inter_op("xor").ok());
}

// Operator algebra properties over random cubes.
class DatacubeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DatacubeProperty, ReduceSumEqualsApplySumViaRunningSum) {
  const std::size_t io_servers = GetParam();
  Server server(io_servers);
  common::Rng rng(100 + io_servers);
  std::vector<float> dense(12 * 20);
  for (auto& v : dense) v = static_cast<float>(rng.uniform(-5, 5));
  auto pid = server.create_cube("m", {{"row", 12, {}}}, {"t", 20, {}}, dense, "");
  ASSERT_TRUE(pid.ok());

  auto reduced = server.reduce(*pid, ReduceOp::kSum);
  ASSERT_TRUE(reduced.ok());
  // running_sum's last element equals the total: subset the last index.
  auto scanned = server.apply(*pid, "running_sum(x)");
  ASSERT_TRUE(scanned.ok());
  auto last = server.subset(*scanned, "t", 19, 19);
  ASSERT_TRUE(last.ok());
  const auto a = *server.fetch_dense(*reduced);
  const auto b = *server.fetch_dense(*last);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-3);
}

TEST_P(DatacubeProperty, MaxMinusMinNonNegative) {
  Server server(GetParam());
  common::Rng rng(7);
  std::vector<float> dense(8 * 16);
  for (auto& v : dense) v = static_cast<float>(rng.normal(0, 3));
  auto pid = server.create_cube("m", {{"row", 8, {}}}, {"t", 16, {}}, dense, "");
  auto mx = server.reduce(*pid, ReduceOp::kMax);
  auto mn = server.reduce(*pid, ReduceOp::kMin);
  auto diff = server.intercube(*mx, *mn, InterOp::kSub);
  ASSERT_TRUE(diff.ok());
  const std::vector<float> values = *server.fetch_dense(*diff);
  for (float v : values) EXPECT_GE(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(IoServers, DatacubeProperty, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace climate::datacube

namespace climate::datacube {
namespace {

TEST(Server, ConcatImplicitJoinsSegments) {
  Server server(2);
  const std::string jan = make_test_cube(server, 3, 4, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 100 + k);
  });
  const std::string feb = make_test_cube(server, 3, 2, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r * 100 + 50 + k);
  });
  auto out = server.concat_implicit(jan, feb);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->implicit_dim.size, 6u);
  const auto dense = *server.fetch_dense(*out);
  // Row 1: {100,101,102,103} ++ {150,151}.
  EXPECT_FLOAT_EQ(dense[6 + 0], 100.0f);
  EXPECT_FLOAT_EQ(dense[6 + 3], 103.0f);
  EXPECT_FLOAT_EQ(dense[6 + 4], 150.0f);
  EXPECT_FLOAT_EQ(dense[6 + 5], 151.0f);
}

TEST(Server, ConcatImplicitRejectsRowMismatch) {
  Server server(1);
  const std::string a = make_test_cube(server, 3, 4, [](std::size_t, std::size_t) { return 0.0f; });
  const std::string b = make_test_cube(server, 2, 4, [](std::size_t, std::size_t) { return 0.0f; });
  EXPECT_FALSE(server.concat_implicit(a, b).ok());
}

TEST(Server, ConcatImplicitEqualsSingleImport) {
  // Assembling a "year" from two halves equals building it at once.
  Server server(2);
  std::vector<float> full(5 * 10);
  for (std::size_t i = 0; i < full.size(); ++i) full[i] = static_cast<float>(i * 3 % 17);
  std::vector<float> first, second;
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t k = 0; k < 6; ++k) first.push_back(full[r * 10 + k]);
    for (std::size_t k = 6; k < 10; ++k) second.push_back(full[r * 10 + k]);
  }
  auto whole = server.create_cube("m", {{"row", 5, {}}}, {"t", 10, {}}, full, "");
  auto a = server.create_cube("m", {{"row", 5, {}}}, {"t", 6, {}}, first, "");
  auto b = server.create_cube("m", {{"row", 5, {}}}, {"t", 4, {}}, second, "");
  auto joined = server.concat_implicit(*a, *b);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*server.fetch_dense(*joined), *server.fetch_dense(*whole));
}

TEST(Server, AggregateCollapsesExplicitDim) {
  Server server(2);
  // 2x3 explicit grid, arrays of length 2: value = (a*10 + b) at position k.
  std::vector<float> dense;
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      dense.push_back(static_cast<float>(a * 10 + b));        // k = 0
      dense.push_back(static_cast<float>(a * 10 + b) + 0.5f); // k = 1
    }
  }
  auto pid = server.create_cube("m", {{"a", 2, {}}, {"b", 3, {}}}, {"t", 2, {}}, dense, "");
  ASSERT_TRUE(pid.ok());

  // Collapse 'a' (outer): sum over a for each (b, k).
  auto over_a = server.aggregate(*pid, "a", ReduceOp::kSum);
  ASSERT_TRUE(over_a.ok());
  auto schema = server.cubeschema(*over_a);
  ASSERT_EQ(schema->explicit_dims.size(), 1u);
  EXPECT_EQ(schema->explicit_dims[0].name, "b");
  const auto sums = *server.fetch_dense(*over_a);
  ASSERT_EQ(sums.size(), 3u * 2u);
  EXPECT_FLOAT_EQ(sums[0], 0.0f + 10.0f);      // b=0, k=0
  EXPECT_FLOAT_EQ(sums[1], 0.5f + 10.5f);      // b=0, k=1
  EXPECT_FLOAT_EQ(sums[4], 2.0f + 12.0f);      // b=2, k=0

  // Collapse 'b' (inner) with avg.
  auto over_b = server.aggregate(*pid, "b", ReduceOp::kAvg);
  ASSERT_TRUE(over_b.ok());
  const auto avgs = *server.fetch_dense(*over_b);
  ASSERT_EQ(avgs.size(), 2u * 2u);
  EXPECT_FLOAT_EQ(avgs[0], (0.0f + 1.0f + 2.0f) / 3.0f);   // a=0, k=0
  EXPECT_FLOAT_EQ(avgs[3], (10.5f + 11.5f + 12.5f) / 3.0f); // a=1, k=1
}

TEST(Server, AggregateToScalarDim) {
  Server server(1);
  const std::string pid = make_test_cube(server, 4, 3, [](std::size_t r, std::size_t k) {
    return static_cast<float>(r + k);
  });
  auto out = server.aggregate(pid, "row", ReduceOp::kMax);
  ASSERT_TRUE(out.ok());
  auto schema = server.cubeschema(*out);
  EXPECT_EQ(schema->explicit_dims[0].name, "scalar");
  const auto values = *server.fetch_dense(*out);
  EXPECT_EQ(values, (std::vector<float>{3, 4, 5}));  // max over rows per k
}

TEST(Server, AggregateUnknownDimFails) {
  Server server(1);
  const std::string pid = make_test_cube(server, 2, 2, [](std::size_t, std::size_t) { return 1.0f; });
  EXPECT_FALSE(server.aggregate(pid, "nope", ReduceOp::kSum).ok());
  EXPECT_FALSE(server.aggregate(pid, "t", ReduceOp::kSum).ok());  // implicit dim is not explicit
}

}  // namespace
}  // namespace climate::datacube

namespace climate::datacube {
namespace {

TEST(Client, ConcatAndAggregateWrappers) {
  Server server(2);
  Client client(server);
  auto a = client.create_cube("m", {{"row", 2, {}}}, {"t", 2, {}}, {1, 2, 3, 4});
  auto b = client.create_cube("m", {{"row", 2, {}}}, {"t", 1, {}}, {9, 9});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto joined = a->concat(*b, "year assembly");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined->values(), (std::vector<float>{1, 2, 9, 3, 4, 9}));

  auto collapsed = joined->aggregate("row", "sum");
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(*collapsed->values(), (std::vector<float>{4, 6, 18}));
  EXPECT_FALSE(joined->aggregate("row", "nonsense").ok());
  Cube invalid;
  EXPECT_FALSE(invalid.concat(*b).ok());
  EXPECT_FALSE(invalid.aggregate("row", "sum").ok());
}

}  // namespace
}  // namespace climate::datacube

namespace climate::datacube {
namespace {

using common::Json;

TEST(Dispatch, OperatorRequestsRoundTrip) {
  Server server(2);
  // Create a cube by hand, then drive everything through the wire format.
  auto pid = server.create_cube("m", {{"row", 2, {}}}, {"t", 4, {}},
                                {1, 2, 3, 4, 5, 6, 7, 8}, "");
  ASSERT_TRUE(pid.ok());

  Json reduce_req = Json::object();
  reduce_req["operator"] = "reduce";
  reduce_req["cube"] = *pid;
  reduce_req["operation"] = "sum";
  auto reduced = server.execute(reduce_req);
  ASSERT_TRUE(reduced.ok()) << reduced.status().to_string();
  EXPECT_EQ(reduced->get_string("status"), "OK");
  const std::string sum_pid = reduced->get_string("cube");
  EXPECT_EQ(*server.fetch_dense(sum_pid), (std::vector<float>{10, 26}));

  Json apply_req = Json::object();
  apply_req["operator"] = "apply";
  apply_req["cube"] = *pid;
  apply_req["query"] = "predicate(x, '>4', 1, 0)";
  auto mask = server.execute(apply_req);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*server.fetch_dense(mask->get_string("cube")),
            (std::vector<float>{0, 0, 0, 0, 1, 1, 1, 1}));

  Json schema_req = Json::object();
  schema_req["operator"] = "cubeschema";
  schema_req["cube"] = *pid;
  auto schema = server.execute(schema_req);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->get_string("measure"), "m");
  EXPECT_EQ((*schema)["implicit_dim"].get_int("size"), 4);

  Json list_req = Json::object();
  list_req["operator"] = "list";
  auto listing = server.execute(list_req);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ((*listing)["cubes"].size(), 3u);

  Json delete_req = Json::object();
  delete_req["operator"] = "delete";
  delete_req["cube"] = sum_pid;
  ASSERT_TRUE(server.execute(delete_req).ok());
  EXPECT_FALSE(server.cubeschema(sum_pid).ok());
}

TEST(Dispatch, ImportExportViaRequests) {
  const std::string path = (fs::temp_directory_path() / "dispatch_io.nc").string();
  Server server(1);
  auto pid = server.create_cube("tas", {{"cell", 3, {}}}, {"day", 2, {}},
                                {1, 2, 3, 4, 5, 6}, "");
  Json export_req = Json::object();
  export_req["operator"] = "exportnc";
  export_req["cube"] = *pid;
  export_req["path"] = path;
  ASSERT_TRUE(server.execute(export_req).ok());

  Json import_req = Json::object();
  import_req["operator"] = "importnc";
  import_req["path"] = path;
  import_req["measure"] = "tas";
  auto imported = server.execute(import_req);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(*server.fetch_dense(imported->get_string("cube")),
            (std::vector<float>{1, 2, 3, 4, 5, 6}));
  fs::remove(path);
}

TEST(Dispatch, MetadataViaRequests) {
  Server server(1);
  auto pid = server.create_cube("m", {{"row", 1, {}}}, {"t", 1, {}}, {0}, "");
  Json set_req = Json::object();
  set_req["operator"] = "metadata";
  set_req["cube"] = *pid;
  set_req["key"] = "experiment";
  set_req["value"] = "ssp585";
  ASSERT_TRUE(server.execute(set_req).ok());
  Json get_req = Json::object();
  get_req["operator"] = "metadata";
  get_req["cube"] = *pid;
  auto meta = server.execute(get_req);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)["metadata"].get_string("experiment"), "ssp585");
}

TEST(Dispatch, BadRequestsRejected) {
  Server server(1);
  EXPECT_FALSE(server.execute(Json::object()).ok());  // no operator
  Json unknown = Json::object();
  unknown["operator"] = "warp_drive";
  EXPECT_FALSE(server.execute(unknown).ok());
  Json bad_cube = Json::object();
  bad_cube["operator"] = "reduce";
  bad_cube["cube"] = "oph://nope";
  EXPECT_FALSE(server.execute(bad_cube).ok());
}

}  // namespace
}  // namespace climate::datacube
