// Tests for the streaming interface: DataStream semantics and the
// DirectoryWatcher used to detect completed simulation years.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "taskrt/stream.hpp"
#include "taskrt/types.hpp"

namespace climate::taskrt {
namespace {

namespace fs = std::filesystem;

TEST(DataStream, FifoOrder) {
  DataStream stream;
  for (int i = 0; i < 5; ++i) stream.publish(std::any(i));
  stream.close();
  for (int i = 0; i < 5; ++i) {
    auto item = stream.next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(any_as<int>(*item), i);
  }
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_TRUE(stream.finished());
}

TEST(DataStream, BlockingConsumerWakesOnPublish) {
  DataStream stream;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stream.publish(std::any(std::string("payload")));
    stream.close();
  });
  auto item = stream.next();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(any_as<std::string>(*item), "payload");
  producer.join();
}

TEST(DataStream, TryNextNonBlocking) {
  DataStream stream;
  EXPECT_FALSE(stream.try_next().has_value());
  stream.publish(std::any(1));
  EXPECT_TRUE(stream.try_next().has_value());
  EXPECT_FALSE(stream.try_next().has_value());
}

TEST(DataStream, PublishAfterCloseThrows) {
  DataStream stream;
  stream.close();
  EXPECT_THROW(stream.publish(std::any(1)), std::logic_error);
}

TEST(DataStream, Counters) {
  DataStream stream;
  stream.publish(std::any(1));
  stream.publish(std::any(2));
  EXPECT_EQ(stream.published(), 2u);
  (void)stream.next();
  EXPECT_EQ(stream.consumed(), 1u);
}

TEST(DataStream, MultipleConsumersDrainExactlyOnce) {
  DataStream stream;
  constexpr int kItems = 200;
  for (int i = 0; i < kItems; ++i) stream.publish(std::any(i));
  stream.close();
  std::atomic<int> drained{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      while (stream.next().has_value()) drained.fetch_add(1);
    });
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(drained.load(), kItems);
}

class WatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("watch_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void touch(const std::string& name) {
    std::ofstream out(dir_ / name);
    out << "data";
  }

  fs::path dir_;
};

TEST_F(WatcherTest, ReportsExistingAndNewFilesOnce) {
  touch("a.nc");
  std::mutex mutex;
  std::vector<std::string> seen;
  DirectoryWatcher watcher(
      dir_.string(), ".nc",
      [&](const std::string& path) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(fs::path(path).filename().string());
      },
      std::chrono::milliseconds(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  touch("b.nc");
  touch("ignored.txt");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  watcher.stop();
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a.nc");
  EXPECT_EQ(seen[1], "b.nc");
  EXPECT_EQ(watcher.seen(), 2u);
}

TEST_F(WatcherTest, FinalPollCatchesLateFiles) {
  DirectoryWatcher watcher(
      dir_.string(), ".nc", [&](const std::string&) {}, std::chrono::hours(1));
  // The poll interval is huge; files appearing before stop() must still be
  // delivered by the final round.
  touch("late.nc");
  watcher.stop();
  EXPECT_EQ(watcher.seen(), 1u);
}

TEST_F(WatcherTest, EmptySuffixMatchesEverything) {
  touch("x.bin");
  DirectoryWatcher watcher(
      dir_.string(), "", [&](const std::string&) {}, std::chrono::milliseconds(2));
  watcher.stop();
  EXPECT_EQ(watcher.seen(), 1u);
}

}  // namespace
}  // namespace climate::taskrt
