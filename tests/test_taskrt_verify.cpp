// Tests of the taskrt verifier: runtime directionality checking (read/write
// sets vs declared directions), the structured DirectionalityError carried by
// the TaskContext accessors, the whole-DAG graph linter, and the JSON report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "taskrt/runtime.hpp"
#include "taskrt/verify/graph_lint.hpp"
#include "taskrt/verify/verifier.hpp"

namespace climate::taskrt {
namespace {

namespace fs = std::filesystem;
using verify::DiagKind;
using verify::Diagnostic;
using verify::GraphAccess;
using verify::GraphNode;
using verify::GraphView;
using verify::Report;
using verify::Severity;

RuntimeOptions verified_options() {
  RuntimeOptions options;
  options.workers = 2;
  options.verify = VerifyMode::kOn;
  return options;
}

std::size_t count_kind(const Report& report, DiagKind kind) {
  std::size_t n = 0;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.kind == kind) ++n;
  }
  return n;
}

const Diagnostic* find_kind(const Report& report, DiagKind kind) {
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.kind == kind) return &diagnostic;
  }
  return nullptr;
}

// ---- runtime directionality checks ----------------------------------------

TEST(Verify, UnwrittenOutIsError) {
  Runtime rt(verified_options());
  DataHandle out = rt.create_data();
  rt.submit("lazy", {Out(out)}, [](TaskContext&) {});
  EXPECT_FALSE(rt.sync(out).has_value());  // behaviour unchanged: empty value
  const Report report = rt.verify_report();
  ASSERT_EQ(count_kind(report, DiagKind::kOutNeverWritten), 1u);
  const Diagnostic* diagnostic = find_kind(report, DiagKind::kOutNeverWritten);
  EXPECT_EQ(diagnostic->severity, Severity::kError);
  EXPECT_EQ(diagnostic->task_name, "lazy");
  EXPECT_EQ(diagnostic->param_index, 0);
  EXPECT_EQ(diagnostic->data, out.id);
}

TEST(Verify, UnwrittenInOutIsWarning) {
  Runtime rt(verified_options());
  DataHandle data = rt.create_data(std::any(7));
  rt.submit("noop", {InOut(data)}, [](TaskContext& ctx) { (void)ctx.in(0); });
  EXPECT_EQ(rt.sync_as<int>(data), 7);  // behaviour unchanged: pass-through
  const Report report = rt.verify_report();
  ASSERT_EQ(count_kind(report, DiagKind::kInOutNeverWritten), 1u);
  EXPECT_EQ(find_kind(report, DiagKind::kInOutNeverWritten)->severity, Severity::kWarning);
}

TEST(Verify, ReadOfOutParamThrowsStructuredErrorAndIsFlagged) {
  Runtime rt(verified_options());
  DataHandle out = rt.create_data();
  bool structured = false;
  rt.submit("bad_reader", {Out(out)}, [&](TaskContext& ctx) {
    try {
      (void)ctx.in(0);
    } catch (const DirectionalityError& e) {
      structured = e.status().code() == common::StatusCode::kFailedPrecondition &&
                   e.task_name() == "bad_reader" && e.param_index() == 0 &&
                   e.direction() == Direction::kOut;
    }
    ctx.set_out(0, std::any(1));
  });
  rt.wait_all();
  EXPECT_TRUE(structured);
  EXPECT_EQ(count_kind(rt.verify_report(), DiagKind::kOutReadBeforeWrite), 1u);
}

TEST(Verify, WriteOnInParamThrowsStructuredErrorAndIsFlagged) {
  Runtime rt(verified_options());
  DataHandle in = rt.create_data(std::any(1));
  bool structured = false;
  rt.submit("bad_writer", {In(in)}, [&](TaskContext& ctx) {
    (void)ctx.in(0);
    try {
      ctx.set_out(0, std::any(2));
    } catch (const DirectionalityError& e) {
      structured = e.status().code() == common::StatusCode::kFailedPrecondition &&
                   e.direction() == Direction::kIn;
    }
  });
  rt.wait_all();
  EXPECT_TRUE(structured);
  EXPECT_EQ(count_kind(rt.verify_report(), DiagKind::kWriteOnInParam), 1u);
}

TEST(Verify, AliasedParamsWithWriteIsError) {
  Runtime rt(verified_options());
  DataHandle data = rt.create_data(std::any(1));
  rt.submit("aliased", {In(data), InOut(data)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(ctx.in_as<int>(0) + 1));
  });
  rt.wait_all();
  const Report report = rt.verify_report();
  const Diagnostic* diagnostic = find_kind(report, DiagKind::kAliasedParams);
  ASSERT_NE(diagnostic, nullptr);
  EXPECT_EQ(diagnostic->severity, Severity::kError);
  EXPECT_EQ(diagnostic->data, data.id);
}

TEST(Verify, AliasedReadOnlyParamsIsNote) {
  Runtime rt(verified_options());
  DataHandle data = rt.create_data(std::any(1));
  rt.submit("double_read", {In(data), In(data)}, [](TaskContext& ctx) {
    (void)ctx.in(0);
    (void)ctx.in(1);
  });
  rt.wait_all();
  const Report report = rt.verify_report();
  const Diagnostic* diagnostic = find_kind(report, DiagKind::kAliasedParams);
  ASSERT_NE(diagnostic, nullptr);
  EXPECT_EQ(diagnostic->severity, Severity::kNote);
  EXPECT_EQ(report.violation_count(), 0u);  // notes are advisory
}

TEST(Verify, UnreadInParamIsNoteOnly) {
  Runtime rt(verified_options());
  DataHandle ordering = rt.create_data(std::any(1));
  DataHandle out = rt.create_data();
  rt.submit("ordered", {In(ordering), Out(out)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(2)); });
  EXPECT_EQ(rt.sync_as<int>(out), 2);
  const Report report = rt.verify_report();
  ASSERT_EQ(count_kind(report, DiagKind::kInNeverRead), 1u);
  EXPECT_EQ(find_kind(report, DiagKind::kInNeverRead)->severity, Severity::kNote);
  EXPECT_EQ(report.violation_count(), 0u);
}

TEST(Verify, SyncOnNeverWrittenDataThrowsInsteadOfHanging) {
  Runtime rt(verified_options());
  DataHandle never = rt.create_data();  // no initial value, no producer
  EXPECT_THROW((void)rt.sync(never), WorkflowError);
  EXPECT_EQ(count_kind(rt.verify_report(), DiagKind::kSyncNeverWritten), 1u);
}

TEST(Verify, SyncOnNeverWrittenDataThrowsEvenWithVerifyOff) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;
  Runtime rt(options);
  DataHandle never = rt.create_data();
  EXPECT_THROW((void)rt.sync(never), WorkflowError);
}

TEST(Verify, CleanGraphProducesNoDiagnostics) {
  Runtime rt(verified_options());
  DataHandle a = rt.create_data(std::any(3));
  DataHandle b = rt.create_data();
  DataHandle c = rt.create_data();
  rt.submit("double", {In(a), Out(b)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(2 * ctx.in_as<int>(0))); });
  rt.submit("inc", {In(b), Out(c)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(ctx.in_as<int>(0) + 1)); });
  EXPECT_EQ(rt.sync_as<int>(c), 7);
  rt.wait_all();
  (void)rt.release_data(b);
  const Report report = rt.verify_report();
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(Verify, DisabledRuntimeCollectsNothing) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;
  Runtime rt(options);
  DataHandle out = rt.create_data();
  rt.submit("lazy", {Out(out)}, [](TaskContext&) {});
  rt.wait_all();
  EXPECT_FALSE(rt.verify_enabled());
  EXPECT_TRUE(rt.verify_report().empty());
}

TEST(Verify, AutoModeFollowsEnvironment) {
  ::setenv("CLIMATE_VERIFY", "1", 1);
  { EXPECT_TRUE(Runtime(RuntimeOptions{}).verify_enabled()); }
  ::setenv("CLIMATE_VERIFY", "0", 1);
  { EXPECT_FALSE(Runtime(RuntimeOptions{}).verify_enabled()); }
  ::unsetenv("CLIMATE_VERIFY");
}

// ---- graph linter over synthetic graphs ------------------------------------

GraphNode node(TaskId id, std::string name, std::vector<TaskId> deps,
               std::vector<GraphAccess> accesses) {
  GraphNode n;
  n.id = id;
  n.name = std::move(name);
  n.deps = std::move(deps);
  n.accesses = std::move(accesses);
  return n;
}

TEST(GraphLint, DetectsCycleAndDownstreamUnreachable) {
  // 1 <-> 2 form a cycle (impossible through submit(), hence synthetic);
  // 3 depends on the cycle and can never start either.
  GraphView graph;
  graph.nodes.push_back(node(1, "a", {2}, {}));
  graph.nodes.push_back(node(2, "b", {1}, {}));
  graph.nodes.push_back(node(3, "c", {2}, {}));
  const std::vector<Diagnostic> diagnostics = verify::lint_graph(graph);
  const Report report{diagnostics};
  EXPECT_EQ(report.count(Severity::kError), 2u);
  ASSERT_EQ(count_kind(report, DiagKind::kGraphCycle), 1u);
  EXPECT_NE(find_kind(report, DiagKind::kGraphCycle)->message.find("->"), std::string::npos);
  EXPECT_EQ(count_kind(report, DiagKind::kUnreachableTask), 1u);
  EXPECT_EQ(find_kind(report, DiagKind::kUnreachableTask)->task, 3u);
}

TEST(GraphLint, DetectsDependencyOnUnknownTask) {
  GraphView graph;
  graph.nodes.push_back(node(1, "a", {99}, {}));
  const Report report{verify::lint_graph(graph)};
  EXPECT_EQ(count_kind(report, DiagKind::kUnreachableTask), 1u);
}

TEST(GraphLint, FlagsOrphanOutputUnlessConsumed) {
  GraphView graph;
  graph.nodes.push_back(node(1, "writer", {}, {{/*data=*/7, Direction::kOut, 0, 1}}));
  EXPECT_EQ(count_kind(Report{verify::lint_graph(graph)}, DiagKind::kOrphanOutput), 1u);

  GraphView synced = graph;
  synced.synced.insert(7);
  EXPECT_TRUE(verify::lint_graph(synced).empty());

  GraphView read = graph;
  read.nodes.push_back(node(2, "reader", {1}, {{/*data=*/7, Direction::kIn, 1, 0}}));
  read.synced.insert(7);  // the reader's own result is data-free
  EXPECT_TRUE(verify::lint_graph(read).empty());
}

TEST(GraphLint, FlagsUnorderedWritersOfOneDatum) {
  GraphView graph;
  graph.synced.insert(5);
  graph.nodes.push_back(node(1, "w1", {}, {{5, Direction::kOut, 0, 1}}));
  graph.nodes.push_back(node(2, "w2", {}, {{5, Direction::kOut, 0, 2}}));
  const Report report{verify::lint_graph(graph)};
  ASSERT_EQ(count_kind(report, DiagKind::kWriteWriteRace), 1u);
  EXPECT_EQ(find_kind(report, DiagKind::kWriteWriteRace)->severity, Severity::kError);

  GraphView ordered = graph;
  ordered.nodes[1].deps = {1};  // w1 -> w2 ordering edge resolves the race
  EXPECT_TRUE(verify::lint_graph(ordered).empty());
}

TEST(GraphLint, CheckpointCoverage) {
  GraphView graph;
  graph.checkpointing_enabled = true;
  graph.synced = {1, 2, 3};
  GraphNode producer = node(1, "producer", {}, {{1, Direction::kOut, 0, 1}});
  GraphNode keyed = node(2, "keyed", {1}, {{1, Direction::kIn, 1, 0}, {2, Direction::kOut, 0, 1}});
  keyed.checkpoint_key = "year1";
  keyed.checkpoint_codec_ok = true;
  GraphNode duplicate = node(3, "dup", {}, {{3, Direction::kOut, 0, 1}});
  duplicate.checkpoint_key = "year1";  // collides with `keyed`
  duplicate.checkpoint_codec_ok = true;
  graph.nodes = {producer, keyed, duplicate};
  const Report report{verify::lint_graph(graph)};
  EXPECT_EQ(count_kind(report, DiagKind::kCheckpointGap), 2u);
  EXPECT_EQ(report.count(Severity::kError), 1u);  // duplicate key
  EXPECT_EQ(report.count(Severity::kNote), 1u);   // unkeyed producer

  GraphView no_codec = graph;
  no_codec.nodes.pop_back();
  no_codec.nodes[1].checkpoint_codec_ok = false;
  const Report codec_report{verify::lint_graph(no_codec)};
  EXPECT_EQ(codec_report.count(Severity::kWarning), 1u);

  GraphView disabled = graph;
  disabled.checkpointing_enabled = false;
  EXPECT_EQ(count_kind(Report{verify::lint_graph(disabled)}, DiagKind::kCheckpointGap), 0u);
}

TEST(GraphLint, RuntimeLintGraphIsCallableWithoutVerifyMode) {
  RuntimeOptions options;
  options.verify = VerifyMode::kOff;
  Runtime rt(options);
  DataHandle out = rt.create_data();
  rt.submit("writer", {Out(out)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(1)); });
  rt.wait_all();
  const std::vector<Diagnostic> diagnostics = rt.lint_graph();  // out never consumed
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].kind, DiagKind::kOrphanOutput);
}

// ---- report plumbing -------------------------------------------------------

TEST(Verify, ReportRendersAndCounts) {
  Runtime rt(verified_options());
  DataHandle out = rt.create_data();
  rt.submit("lazy", {Out(out)}, [](TaskContext&) {});
  (void)rt.sync(out);
  const Report report = rt.verify_report();
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.violation_count(), 1u);
  EXPECT_NE(report.to_string().find("out_never_written"), std::string::npos);
  EXPECT_NE(report.to_string().find("'lazy'"), std::string::npos);
  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("out_never_written"), std::string::npos);
}

TEST(Verify, WritesJsonLinesReportOnShutdown) {
  const fs::path dir = fs::temp_directory_path() / "taskrt_verify_report_test";
  fs::create_directories(dir);
  const fs::path path = dir / "report.jsonl";
  fs::remove(path);
  ::setenv("CLIMATE_VERIFY_REPORT", path.string().c_str(), 1);
  {
    Runtime rt(verified_options());
    DataHandle out = rt.create_data();
    rt.submit("lazy", {Out(out)}, [](TaskContext&) {});
    (void)rt.sync(out);
  }
  ::unsetenv("CLIMATE_VERIFY_REPORT");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_NE(line.find("out_never_written"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(std::getline(in, line)));  // exactly one line per run
  fs::remove_all(dir);
}

}  // namespace
}  // namespace climate::taskrt
