// Tests for the coupled model: climatology sanity, forcing I/O, event
// seeding, physical plausibility of the fields, coupler conservation,
// daily file round trips, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "esm/climatology.hpp"
#include "esm/cyclones.hpp"
#include "esm/diagnostics.hpp"
#include "esm/ensemble.hpp"
#include "ncio/ncfile.hpp"
#include "esm/model.hpp"
#include "esm/parallel.hpp"
#include "esm/writer.hpp"

namespace climate::esm {
namespace {

namespace fs = std::filesystem;

EsmConfig tiny_config() {
  EsmConfig config;
  config.nlat = 32;
  config.nlon = 48;
  config.days_per_year = 20;
  config.start_year = 2020;
  config.seed = 7;
  return config;
}

TEST(Climatology, EquatorWarmerThanPoles) {
  EXPECT_GT(mean_temperature_c(0), mean_temperature_c(60));
  EXPECT_GT(mean_temperature_c(0), mean_temperature_c(-60));
  EXPECT_LT(mean_temperature_c(85), 0.0);
  EXPECT_GT(mean_temperature_c(0), 25.0);
}

TEST(Climatology, SeasonalCyclePeaksInLocalSummer) {
  // NH mid-latitude warmest near day 196, coldest half a year away.
  const double summer = baseline_temperature_c(45, kNorthSummerPeakDay, 365);
  const double winter = baseline_temperature_c(45, (kNorthSummerPeakDay + 182) % 365, 365);
  EXPECT_GT(summer, winter + 10.0);
  // SH is out of phase.
  const double sh_at_nh_summer = baseline_temperature_c(-45, kNorthSummerPeakDay, 365);
  const double sh_at_nh_winter = baseline_temperature_c(-45, (kNorthSummerPeakDay + 182) % 365, 365);
  EXPECT_LT(sh_at_nh_summer, sh_at_nh_winter);
}

TEST(Climatology, DiurnalCycleHasDailyAmplitude) {
  double lo = 1e9, hi = -1e9;
  for (int s = 0; s < 4; ++s) {
    const double v = diurnal_cycle_c(s, 4);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 3.0);
}

TEST(Climatology, SstNeverBelowFreezing) {
  for (double lat = -89; lat <= 89; lat += 7) {
    for (int doy = 0; doy < 365; doy += 30) {
      EXPECT_GE(baseline_sst_c(lat, doy, 365), -1.8);
    }
  }
  EXPECT_GT(baseline_sst_c(0, 0, 365), 26.0);  // warm tropics
}

TEST(Climatology, PrecipItczPeakIsTropical) {
  double best_lat = 0, best = -1;
  for (double lat = -60; lat <= 60; lat += 1) {
    const double p = baseline_precip_mmday(lat, 180, 365);
    if (p > best) {
      best = p;
      best_lat = lat;
    }
  }
  EXPECT_LT(std::fabs(best_lat), 20.0);
}

TEST(Forcing, ScenariosOrdered) {
  const int start = 2015, years = 40;
  auto historical = ForcingTable::from_scenario(Scenario::kHistorical, start, years);
  auto ssp245 = ForcingTable::from_scenario(Scenario::kSsp245, start, years);
  auto ssp585 = ForcingTable::from_scenario(Scenario::kSsp585, start, years);
  EXPECT_LT(historical.co2_ppm(2050), ssp245.co2_ppm(2050));
  EXPECT_LT(ssp245.co2_ppm(2050), ssp585.co2_ppm(2050));
  // Monotone growth.
  for (int y = start + 1; y < start + years; ++y) {
    EXPECT_GT(ssp585.co2_ppm(y), ssp585.co2_ppm(y - 1));
  }
}

TEST(Forcing, WarmingPositiveAndIncreasing) {
  auto table = ForcingTable::from_scenario(Scenario::kSsp585, 2015, 50);
  EXPECT_GT(table.warming_c(2015, 3.0), 0.0);
  EXPECT_GT(table.warming_c(2060, 3.0), table.warming_c(2020, 3.0));
}

TEST(Forcing, SaveLoadRoundTrip) {
  const std::string path = (fs::temp_directory_path() / "forcing_test.nc").string();
  auto table = ForcingTable::from_scenario(Scenario::kSsp245, 2015, 10);
  ASSERT_TRUE(table.save(path).ok());
  auto loaded = ForcingTable::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->start_year(), 2015);
  EXPECT_EQ(loaded->years(), 10u);
  for (int y = 2015; y < 2025; ++y) {
    EXPECT_DOUBLE_EQ(loaded->co2_ppm(y), table.co2_ppm(y));
  }
  fs::remove(path);
}

TEST(HashRandom, DeterministicAndWellDistributed) {
  EXPECT_EQ(hash_uniform(1, 2, 3, 4), hash_uniform(1, 2, 3, 4));
  EXPECT_NE(hash_uniform(1, 2, 3, 4), hash_uniform(1, 2, 3, 5));
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += hash_uniform(42, 7, static_cast<std::uint64_t>(i), 0);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(HashRandom, PoissonMeanApproximatelyCorrect) {
  double total = 0;
  for (int i = 0; i < 5000; ++i) {
    total += hash_poisson(0.8, 99, 1, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_NEAR(total / 5000.0, 0.8, 0.06);
}

TEST(Cyclones, SpawnAndTrackStructure) {
  EsmConfig config = tiny_config();
  config.days_per_year = 365;
  config.tc_spawn_per_day = 1.0;
  CycloneModel model(config);
  for (int step = 0; step < 365 * config.steps_per_day; ++step) model.step(step);
  ASSERT_GT(model.truth().size(), 5u);
  for (const CycloneTruth& tc : model.truth()) {
    int last_step = -1;
    for (const CycloneSample& sample : tc.track) {
      EXPECT_GT(sample.step, last_step);  // strictly increasing time
      last_step = sample.step;
      EXPECT_LT(std::fabs(sample.lat), 56.0);
      EXPECT_GE(sample.lon, 0.0);
      EXPECT_LT(sample.lon, 360.0);
      EXPECT_LT(sample.central_psl_hpa, 1008.0);
      EXPECT_GT(sample.max_wind_ms, 15.0);
    }
    // Consecutive samples move a bounded distance.
    for (std::size_t i = 1; i < tc.track.size(); ++i) {
      const double km = common::great_circle_km(tc.track[i - 1].lat, tc.track[i - 1].lon,
                                                tc.track[i].lat, tc.track[i].lon);
      EXPECT_LT(km, 600.0);  // < 100 km/h at 6-hourly steps
    }
  }
}

TEST(Cyclones, SeasonalityFavorsLocalSummer) {
  EsmConfig config = tiny_config();
  config.days_per_year = 365;  // day-of-year arguments below assume real years
  CycloneModel model(config);
  EXPECT_GT(model.season_weight(true, 250), 0.9);
  EXPECT_LT(model.season_weight(true, 68), 0.1);
  EXPECT_GT(model.season_weight(false, 50), 0.9);
}

TEST(Cyclones, ImprintShapesAreLocal) {
  EsmConfig config = tiny_config();
  CycloneModel model(config);
  // Force one active cyclone.
  for (int step = 0; step < 400 && model.active().empty(); ++step) model.step(step);
  ASSERT_FALSE(model.active().empty());
  const ActiveCyclone& tc = model.active().front();
  EXPECT_LT(model.psl_anomaly_hpa(tc.lat, tc.lon), -2.0);
  EXPECT_NEAR(model.psl_anomaly_hpa(tc.lat, tc.lon + 60.0), 0.0, 1e-6);
  EXPECT_GT(model.warm_core_c(tc.lat, tc.lon), 0.1);
  EXPECT_GT(model.precip_mmday(tc.lat, tc.lon), 1.0);
  // Wind is tangential: at the centre it vanishes, nearby it does not.
  double du = 0, dv = 0;
  model.wind_anomaly_ms(tc.lat + 1.5, tc.lon, &du, &dv);
  EXPECT_GT(std::sqrt(du * du + dv * dv), 3.0);
}

TEST(Model, DailyFieldsPhysicallyPlausible) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  DailyFields day = model.run_day();
  ASSERT_EQ(day.psl.size(), 4u);
  EXPECT_EQ(day.year, 2020);
  EXPECT_EQ(day.day_of_year, 0);
  for (std::size_t i = 0; i < config.nlat; ++i) {
    for (std::size_t j = 0; j < config.nlon; ++j) {
      EXPECT_GE(day.tasmax.at(i, j), day.tasmin.at(i, j));
      EXPECT_GE(day.tas.at(i, j), day.tasmin.at(i, j) - 1e-3);
      EXPECT_LE(day.tas.at(i, j), day.tasmax.at(i, j) + 1e-3);
      EXPECT_GT(day.tas.at(i, j), -90.0f);
      EXPECT_LT(day.tas.at(i, j), 65.0f);
      EXPECT_GT(day.psl[0].at(i, j), 850.0f);
      EXPECT_LT(day.psl[0].at(i, j), 1080.0f);
      EXPECT_GE(day.pr.at(i, j), 0.0f);
      EXPECT_GE(day.sic.at(i, j), 0.0f);
      EXPECT_LE(day.sic.at(i, j), 1.0f);
      EXPECT_GE(day.sst.at(i, j), -1.81f);
      EXPECT_GE(day.rh.at(i, j), 0.0f);
      EXPECT_LE(day.rh.at(i, j), 1.0f);
    }
  }
  // Tropics warmer than poles on average.
  const std::size_t eq = config.nlat / 2;
  EXPECT_GT(day.tas.at(eq, 0), day.tas.at(config.nlat - 1, 0));
}

TEST(Model, GhgWarmingRaisesTemperatures) {
  EsmConfig config = tiny_config();
  config.days_per_year = 10;
  ForcingTable low = ForcingTable::from_scenario(Scenario::kHistorical, config.start_year, 2);
  // A much higher CO2 world, same weather noise.
  EsmConfig hot_config = config;
  hot_config.start_year = 2090;
  ForcingTable high = ForcingTable::from_scenario(Scenario::kSsp585, 2015, 100);

  EsmModel cold_model(config, low);
  EsmModel hot_model(hot_config, high);
  const DailyFields cold = cold_model.run_day();
  const DailyFields hot = hot_model.run_day();
  // Same doy (0), same seed -> same noise; GHG offset dominates the diff of
  // global means.
  EXPECT_GT(hot.tas.mean(), cold.tas.mean() + 0.5);
}

TEST(Model, EventLogPopulated) {
  EsmConfig config = tiny_config();
  config.days_per_year = 60;
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  for (int d = 0; d < 60; ++d) model.run_day();
  EXPECT_GT(model.events().thermal_events.size(), 10u);
  EXPECT_GT(model.events().heat_wave_count(), 0u);
  EXPECT_GT(model.events().cold_wave_count(), 0u);
}

TEST(Model, CouplerConservesExchanges) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  for (int d = 0; d < 5; ++d) model.run_day();
  const CouplerDiagnostics& coupler = model.coupler();
  EXPECT_EQ(coupler.exchanges, 20u);  // 5 days x 4 steps, coupling every step
  EXPECT_DOUBLE_EQ(coupler.heat_sent_atm, coupler.heat_received_ocean);
  EXPECT_DOUBLE_EQ(coupler.momentum_sent_atm, coupler.momentum_received_ocean);
  EXPECT_DOUBLE_EQ(coupler.freshwater_sent_atm, coupler.freshwater_received_ocean);
  EXPECT_GT(coupler.momentum_sent_atm, 0.0);
  EXPECT_GT(coupler.freshwater_sent_atm, 0.0);
}

TEST(Writer, DailyFileRoundTrip) {
  const std::string dir = (fs::temp_directory_path() / "esm_writer_test").string();
  fs::create_directories(dir);
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  DailyFields day = model.run_day();
  const common::LatLonGrid grid(config.nlat, config.nlon);
  const std::string path = daily_filename(dir, day.year, day.day_of_year);
  auto bytes = write_daily_file(path, day, grid);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fs::file_size(path), *bytes);

  int year = 0, doy = -1;
  ASSERT_TRUE(parse_daily_filename(path, &year, &doy));
  EXPECT_EQ(year, 2020);
  EXPECT_EQ(doy, 0);
  EXPECT_FALSE(parse_daily_filename(dir + "/random.nc", &year, &doy));

  auto tasmax = read_daily_field(path, "tasmax");
  ASSERT_TRUE(tasmax.ok());
  EXPECT_EQ(tasmax->nlat(), config.nlat);
  for (std::size_t c = 0; c < tasmax->size(); ++c) {
    EXPECT_FLOAT_EQ((*tasmax)[c], day.tasmax[c]);
  }
  auto psl = read_daily_steps(path, "psl");
  ASSERT_TRUE(psl.ok());
  ASSERT_EQ(psl->size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t c = 0; c < (*psl)[s].size(); ++c) {
      EXPECT_FLOAT_EQ((*psl)[s][c], day.psl[s][c]);
    }
  }
  // All 20 documented variables present.
  auto reader = climate::ncio::FileReader::open(path);
  ASSERT_TRUE(reader.ok());
  for (const std::string& name : daily_variable_names()) {
    ASSERT_TRUE(reader->var_info(name).ok()) << name;
  }
  fs::remove_all(dir);
}

TEST(Parallel, MatchesSerialBitForBit) {
  EsmConfig config = tiny_config();
  config.days_per_year = 4;
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);

  // Serial reference.
  EsmModel serial(config, forcing);
  std::vector<DailyFields> serial_days;
  for (int d = 0; d < 4; ++d) serial_days.push_back(serial.run_day());

  for (int ranks : {2, 3}) {
    ParallelEsmDriver driver(config, forcing, ranks);
    std::vector<DailyFields> parallel_days;
    driver.run(4, [&](const DailyFields& day) { parallel_days.push_back(day); });
    ASSERT_EQ(parallel_days.size(), 4u);
    for (int d = 0; d < 4; ++d) {
      const DailyFields& a = serial_days[static_cast<std::size_t>(d)];
      const DailyFields& b = parallel_days[static_cast<std::size_t>(d)];
      ASSERT_EQ(a.tas.size(), b.tas.size());
      for (std::size_t c = 0; c < a.tas.size(); ++c) {
        ASSERT_EQ(a.tas[c], b.tas[c]) << "ranks=" << ranks << " day=" << d << " cell=" << c;
        ASSERT_EQ(a.tasmax[c], b.tasmax[c]);
        ASSERT_EQ(a.sst[c], b.sst[c]);
      }
      for (std::size_t s = 0; s < a.psl.size(); ++s) {
        for (std::size_t c = 0; c < a.psl[s].size(); ++c) {
          ASSERT_EQ(a.psl[s][c], b.psl[s][c]);
          ASSERT_EQ(a.vort850[s][c], b.vort850[s][c]);
        }
      }
    }
    // Coupler integrals agree with the serial run.
    EXPECT_NEAR(driver.coupler().heat_sent_atm, serial.coupler().heat_sent_atm, 1e-6);
    // Ground truth identical.
    EXPECT_EQ(driver.events().thermal_events.size(), serial.events().thermal_events.size());
  }
}

TEST(Model, DeterministicAcrossRuns) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel a(config, forcing);
  EsmModel b(config, forcing);
  const DailyFields da = a.run_day();
  const DailyFields db = b.run_day();
  for (std::size_t c = 0; c < da.tas.size(); ++c) ASSERT_EQ(da.tas[c], db.tas[c]);
}

TEST(Model, SeedChangesWeather) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel a(config, forcing);
  config.seed = 8;
  EsmModel b(config, forcing);
  const DailyFields da = a.run_day();
  const DailyFields db = b.run_day();
  std::size_t differing = 0;
  for (std::size_t c = 0; c < da.tas.size(); ++c) {
    if (da.tas[c] != db.tas[c]) ++differing;
  }
  EXPECT_GT(differing, da.tas.size() / 2);
}

}  // namespace
}  // namespace climate::esm

namespace climate::esm {
namespace {

TEST(Diagnostics, RowsTrackGlobalIndicators) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  const common::LatLonGrid grid(config.nlat, config.nlon);
  DiagnosticsRecorder recorder;
  for (int d = 0; d < 5; ++d) {
    const DailyFields day = model.run_day();
    const DailyDiagnostics& row = recorder.record(day, grid);
    EXPECT_EQ(row.day_of_run, d);
    EXPECT_GT(row.global_mean_tas_c, -30.0);
    EXPECT_LT(row.global_mean_tas_c, 40.0);
    EXPECT_GT(row.global_mean_pr_mmday, 0.0);
    EXPECT_LT(row.min_psl_hpa, 1013.0);
    EXPECT_GT(row.max_wspd_ms, 0.0);
    EXPECT_GE(row.ice_area_fraction, 0.0);
    EXPECT_LE(row.ice_area_fraction, 1.0);
    EXPECT_GT(row.max_tas_anomaly_c, 0.0);
  }
  EXPECT_EQ(recorder.rows().size(), 5u);
}

TEST(Diagnostics, SaveLoadRoundTrip) {
  const std::string path = (fs::temp_directory_path() / "diag_test.nc").string();
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  const common::LatLonGrid grid(config.nlat, config.nlon);
  DiagnosticsRecorder recorder;
  for (int d = 0; d < 4; ++d) recorder.record(model.run_day(), grid);
  ASSERT_TRUE(recorder.save(path).ok());
  auto rows = DiagnosticsRecorder::load(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ((*rows)[i].global_mean_tas_c, recorder.rows()[i].global_mean_tas_c);
    EXPECT_DOUBLE_EQ((*rows)[i].min_psl_hpa, recorder.rows()[i].min_psl_hpa);
    EXPECT_DOUBLE_EQ((*rows)[i].max_wspd_ms, recorder.rows()[i].max_wspd_ms);
  }
  fs::remove(path);
}

TEST(Diagnostics, TropicalCycloneLeavesSignature) {
  // A day with an active strong TC has a deeper min psl than a TC-free day.
  EsmConfig config = tiny_config();
  config.days_per_year = 365;
  config.tc_spawn_per_day = 2.0;
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EsmModel model(config, forcing);
  const common::LatLonGrid grid(config.nlat, config.nlon);
  DiagnosticsRecorder recorder;
  for (int d = 0; d < 40; ++d) recorder.record(model.run_day(), grid);
  double deepest = 1e9;
  for (const auto& row : recorder.rows()) deepest = std::min(deepest, row.min_psl_hpa);
  EXPECT_LT(deepest, 1000.0);  // at least one strong low appeared
}

}  // namespace
}  // namespace climate::esm

namespace climate::esm {
namespace {

TEST(Ensemble, MembersDecorrelateAndStatisticsBehave) {
  EsmConfig config = tiny_config();
  config.days_per_year = 365;
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EnsembleDriver driver(config, forcing, 4);
  EXPECT_EQ(driver.member_seed(0), config.seed);
  EXPECT_NE(driver.member_seed(1), driver.member_seed(2));

  int observed_members = 0;
  std::set<int> seen;
  const auto stats = driver.run(3, [&](int member, const DailyFields& day) {
    seen.insert(member);
    observed_members = static_cast<int>(seen.size());
    EXPECT_GE(day.day_of_run, 0);
  });
  EXPECT_EQ(observed_members, 4);
  ASSERT_EQ(stats.size(), 3u);
  for (const EnsembleDay& day : stats) {
    // Spread is positive somewhere (weather decorrelated) but bounded.
    EXPECT_GT(day.spread.max(), 0.05f);
    EXPECT_LT(day.spread.max(), 15.0f);
    // Ensemble mean stays physical.
    EXPECT_GT(day.mean.mean(), -30.0);
    EXPECT_LT(day.mean.mean(), 40.0);
  }
}

TEST(Ensemble, SingleMemberHasZeroSpreadAndEqualsModel) {
  EsmConfig config = tiny_config();
  ForcingTable forcing = ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  EnsembleDriver driver(config, forcing, 1);
  const auto stats = driver.run(2);
  EsmModel reference(config, forcing);
  for (const EnsembleDay& day : stats) {
    const DailyFields fields = reference.run_day();
    EXPECT_FLOAT_EQ(day.spread.max(), 0.0f);
    for (std::size_t c = 0; c < fields.tas.size(); ++c) {
      ASSERT_FLOAT_EQ(day.mean[c], fields.tas[c]);
    }
  }
}

}  // namespace
}  // namespace climate::esm
