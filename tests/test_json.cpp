// Unit tests for the JSON parser/serializer.
#include <gtest/gtest.h>

#include "common/json.hpp"

namespace climate::common {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  auto doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["a"].size(), 3u);
  EXPECT_TRUE((*doc)["a"][2]["b"].as_bool());
  EXPECT_TRUE((*doc)["c"]["d"].is_null());
}

TEST(Json, ParseEscapes) {
  auto doc = Json::parse(R"("line\nbreak\t\"quoted\" \\ A é")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "line\nbreak\t\"quoted\" \\ A \xc3\xa9");
}

TEST(Json, ParseSurrogatePair) {
  auto doc = Json::parse(R"("😀")");  // emoji
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(Json, RoundTripStability) {
  const std::string text =
      R"({"array":[1,2.5,"x"],"bool":false,"nested":{"deep":[{"k":"v"}]},"null":null})";
  auto doc = Json::parse(text);
  ASSERT_TRUE(doc.ok());
  auto again = Json::parse(doc->dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*doc, *again);
  EXPECT_EQ(doc->dump(), again->dump());
}

TEST(Json, DumpEscapesControlCharacters) {
  Json value(std::string("a\x01" "b\n"));
  EXPECT_EQ(value.dump(), "\"a\\u0001b\\n\"");
}

TEST(Json, IntegersSerializeWithoutDecimalPoint) {
  Json value(42);
  EXPECT_EQ(value.dump(), "42");
  Json big(static_cast<std::int64_t>(1234567890123LL));
  EXPECT_EQ(big.dump(), "1234567890123");
}

TEST(Json, ObjectAccessors) {
  Json object = Json::object();
  object["name"] = "zeus";
  object["nodes"] = 348;
  object["active"] = true;
  EXPECT_EQ(object.get_string("name"), "zeus");
  EXPECT_EQ(object.get_int("nodes"), 348);
  EXPECT_TRUE(object.get_bool("active"));
  EXPECT_EQ(object.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(object.get_int("name", -1), -1);  // wrong type -> fallback
  EXPECT_TRUE(object.contains("name"));
  EXPECT_FALSE(object.contains("missing"));
}

TEST(Json, ConstLookupOfMissingKeyIsNull) {
  const Json object = Json::object();
  EXPECT_TRUE(object["anything"].is_null());
}

TEST(Json, ArrayBuilding) {
  Json array = Json::array();
  array.push_back(1);
  array.push_back("two");
  EXPECT_EQ(array.size(), 2u);
  EXPECT_EQ(array[1].as_string(), "two");
}

TEST(Json, PrettyPrintParsesBack) {
  Json object = Json::object();
  object["list"] = Json(Json::Array{Json(1), Json(2)});
  object["obj"] = Json::object();
  object["obj"]["x"] = 1.5;
  auto parsed = Json::parse(object.dump_pretty());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, object);
}

}  // namespace
}  // namespace climate::common

namespace climate::common {
namespace {

TEST(Json, DeepNestingRoundTrip) {
  std::string text = "1";
  for (int i = 0; i < 60; ++i) text = "[" + text + "]";
  auto doc = Json::parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->dump(), text);
}

TEST(Json, WhitespaceEverywhere) {
  auto doc = Json::parse(" \n\t{ \"a\" :\n [ 1 ,\t2 ] }\n ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["a"].size(), 2u);
}

TEST(Json, NumberEdgeCases) {
  EXPECT_DOUBLE_EQ(Json::parse("0.5e-2")->as_number(), 0.005);
  EXPECT_DOUBLE_EQ(Json::parse("-0")->as_number(), 0.0);
  EXPECT_FALSE(Json::parse("01abc").ok());
}

}  // namespace
}  // namespace climate::common
