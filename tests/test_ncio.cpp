// Unit tests for the CDF-lite file format: round trips, hyperslabs,
// attributes, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ncio/ncfile.hpp"

namespace climate::ncio {
namespace {

namespace fs = std::filesystem;

class NcioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("ncio_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(NcioTest, RoundTripFloatVariable) {
  auto writer = FileWriter::create(path("a.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("x", 4).ok());
  ASSERT_TRUE(writer->def_dim("y", 3).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"x", "y"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data(12);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i) * 1.5f;
  ASSERT_TRUE(writer->put_var("v", data.data(), data.size()).ok());
  ASSERT_TRUE(writer->close().ok());

  auto reader = FileReader::open(path("a.nc"));
  ASSERT_TRUE(reader.ok());
  auto shape = reader->var_shape("v");
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, (std::vector<std::uint64_t>{4, 3}));
  auto values = reader->read_floats("v");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, data);
}

TEST_F(NcioTest, AllDTypesRoundTrip) {
  auto writer = FileWriter::create(path("types.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 5).ok());
  ASSERT_TRUE(writer->def_var("f32", DType::kFloat32, {"n"}).ok());
  ASSERT_TRUE(writer->def_var("f64", DType::kFloat64, {"n"}).ok());
  ASSERT_TRUE(writer->def_var("i32", DType::kInt32, {"n"}).ok());
  ASSERT_TRUE(writer->def_var("i64", DType::kInt64, {"n"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> f32 = {1, 2, 3, 4, 5};
  std::vector<double> f64 = {1.5, 2.5, 3.5, 4.5, 5.5};
  std::vector<std::int32_t> i32 = {-1, 0, 1, 2, 3};
  std::vector<std::int64_t> i64 = {10, 20, 30, 40, 1LL << 40};
  ASSERT_TRUE(writer->put_var("f32", f32.data(), 5).ok());
  ASSERT_TRUE(writer->put_var("f64", f64.data(), 5).ok());
  ASSERT_TRUE(writer->put_var("i32", i32.data(), 5).ok());
  ASSERT_TRUE(writer->put_var("i64", i64.data(), 5).ok());
  ASSERT_TRUE(writer->close().ok());

  auto reader = FileReader::open(path("types.nc"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->read_floats("f32"), f32);
  EXPECT_EQ(*reader->read_doubles("f64"), f64);
  auto i32_back = reader->read_doubles("i32");
  ASSERT_TRUE(i32_back.ok());
  EXPECT_EQ((*i32_back)[0], -1.0);
  auto i64_back = reader->read_doubles("i64");
  ASSERT_TRUE(i64_back.ok());
  EXPECT_EQ((*i64_back)[4], static_cast<double>(1LL << 40));
}

TEST_F(NcioTest, AttributesRoundTrip) {
  auto writer = FileWriter::create(path("attrs.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 2).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"n"}).ok());
  ASSERT_TRUE(writer->put_attr("", "title", std::string("test file")).ok());
  ASSERT_TRUE(writer->put_attr("", "year", static_cast<std::int64_t>(2026)).ok());
  ASSERT_TRUE(writer->put_attr("v", "scale", 2.5).ok());
  ASSERT_TRUE(writer->put_attr("v", "units", std::string("degC")).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data = {1, 2};
  ASSERT_TRUE(writer->put_var("v", data.data(), 2).ok());
  ASSERT_TRUE(writer->close().ok());

  auto reader = FileReader::open(path("attrs.nc"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(std::get<std::string>(*reader->attr("", "title")), "test file");
  EXPECT_EQ(std::get<std::int64_t>(*reader->attr("", "year")), 2026);
  EXPECT_DOUBLE_EQ(std::get<double>(*reader->attr("v", "scale")), 2.5);
  EXPECT_EQ(std::get<std::string>(*reader->attr("v", "units")), "degC");
  EXPECT_FALSE(reader->attr("v", "missing").ok());
  EXPECT_FALSE(reader->attr("w", "units").ok());
}

TEST_F(NcioTest, HyperslabReadMatchesManualSlice) {
  auto writer = FileWriter::create(path("slab.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("a", 4).ok());
  ASSERT_TRUE(writer->def_dim("b", 5).ok());
  ASSERT_TRUE(writer->def_dim("c", 6).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"a", "b", "c"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data(4 * 5 * 6);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
  ASSERT_TRUE(writer->put_var("v", data.data(), data.size()).ok());
  ASSERT_TRUE(writer->close().ok());

  auto reader = FileReader::open(path("slab.nc"));
  ASSERT_TRUE(reader.ok());
  auto slab = reader->read_slab("v", {1, 2, 3}, {2, 2, 2});
  ASSERT_TRUE(slab.ok());
  ASSERT_EQ(slab->size(), 8u);
  std::size_t k = 0;
  for (std::uint64_t a = 1; a <= 2; ++a) {
    for (std::uint64_t b = 2; b <= 3; ++b) {
      for (std::uint64_t c = 3; c <= 4; ++c) {
        EXPECT_FLOAT_EQ((*slab)[k++], data[(a * 5 + b) * 6 + c]);
      }
    }
  }
}

TEST_F(NcioTest, HyperslabWriteThenFullRead) {
  auto writer = FileWriter::create(path("slabw.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("r", 3).ok());
  ASSERT_TRUE(writer->def_dim("c", 4).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"r", "c"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> zero(12, 0.0f);
  ASSERT_TRUE(writer->put_var("v", zero.data(), zero.size()).ok());
  std::vector<float> patch = {9, 8, 7, 6};
  ASSERT_TRUE(writer->put_slab("v", {1, 1}, {2, 2}, patch.data()).ok());
  ASSERT_TRUE(writer->close().ok());

  auto reader = FileReader::open(path("slabw.nc"));
  ASSERT_TRUE(reader.ok());
  auto values = reader->read_floats("v");
  ASSERT_TRUE(values.ok());
  EXPECT_FLOAT_EQ((*values)[1 * 4 + 1], 9.0f);
  EXPECT_FLOAT_EQ((*values)[1 * 4 + 2], 8.0f);
  EXPECT_FLOAT_EQ((*values)[2 * 4 + 1], 7.0f);
  EXPECT_FLOAT_EQ((*values)[2 * 4 + 2], 6.0f);
  EXPECT_FLOAT_EQ((*values)[0], 0.0f);
}

TEST_F(NcioTest, ErrorPaths) {
  auto writer = FileWriter::create(path("err.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 3).ok());
  EXPECT_FALSE(writer->def_dim("n", 4).ok());          // duplicate dim
  EXPECT_FALSE(writer->def_dim("z", 0).ok());          // zero length
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"n"}).ok());
  EXPECT_FALSE(writer->def_var("v", DType::kFloat32, {"n"}).ok());  // dup var
  EXPECT_FALSE(writer->def_var("w", DType::kFloat32, {"missing"}).ok());
  std::vector<float> data = {1, 2, 3};
  EXPECT_FALSE(writer->put_var("v", data.data(), 3).ok());  // before end_def
  ASSERT_TRUE(writer->end_def().ok());
  EXPECT_FALSE(writer->end_def().ok());                     // double end_def
  EXPECT_FALSE(writer->put_var("v", data.data(), 2).ok());  // wrong count
  EXPECT_FALSE(writer->put_var("w", data.data(), 3).ok());  // unknown var
  std::vector<double> dbl = {1, 2, 3};
  EXPECT_FALSE(writer->put_var("v", dbl.data(), 3).ok());   // wrong dtype
  ASSERT_TRUE(writer->put_var("v", data.data(), 3).ok());
  ASSERT_TRUE(writer->close().ok());

  EXPECT_FALSE(FileReader::open(path("nonexistent.nc")).ok());

  auto reader = FileReader::open(path("err.nc"));
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->read_floats("missing").ok());
  EXPECT_FALSE(reader->read_slab("v", {0}, {4}).ok());      // out of range
  EXPECT_FALSE(reader->read_slab("v", {0, 0}, {1, 1}).ok()); // rank mismatch
  EXPECT_FALSE(reader->dim_length("zz").ok());
}

TEST_F(NcioTest, RejectsNonCdfFiles) {
  {
    std::ofstream junk(path("junk.nc"), std::ios::binary);
    junk << "this is not a cdf-lite file at all";
  }
  EXPECT_FALSE(FileReader::open(path("junk.nc")).ok());
}

TEST_F(NcioTest, TotalBytesMatchesFileSize) {
  auto writer = FileWriter::create(path("size.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 100).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"n"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data(100, 1.0f);
  ASSERT_TRUE(writer->put_var("v", data.data(), 100).ok());
  const std::uint64_t declared = writer->total_bytes();
  ASSERT_TRUE(writer->close().ok());
  EXPECT_EQ(fs::file_size(path("size.nc")), declared);
}

}  // namespace
}  // namespace climate::ncio

namespace climate::ncio {
namespace {

TEST_F(NcioTest, ManyVariablesHeaderSurvives) {
  auto writer = FileWriter::create(path("many.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 3).ok());
  for (int v = 0; v < 60; ++v) {
    ASSERT_TRUE(writer->def_var("variable_" + std::to_string(v), DType::kFloat32, {"n"}).ok());
  }
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data = {1, 2, 3};
  for (int v = 0; v < 60; ++v) {
    ASSERT_TRUE(writer->put_var("variable_" + std::to_string(v), data.data(), 3).ok());
  }
  ASSERT_TRUE(writer->close().ok());
  auto reader = FileReader::open(path("many.nc"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->vars().size(), 60u);
  EXPECT_EQ(*reader->read_floats("variable_59"), data);
}

TEST_F(NcioTest, ScalarHyperslabOnOneDimVar) {
  auto writer = FileWriter::create(path("one.nc"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->def_dim("n", 5).ok());
  ASSERT_TRUE(writer->def_var("v", DType::kFloat32, {"n"}).ok());
  ASSERT_TRUE(writer->end_def().ok());
  std::vector<float> data = {10, 20, 30, 40, 50};
  ASSERT_TRUE(writer->put_var("v", data.data(), 5).ok());
  ASSERT_TRUE(writer->close().ok());
  auto reader = FileReader::open(path("one.nc"));
  auto slab = reader->read_slab("v", {2}, {2});
  ASSERT_TRUE(slab.ok());
  EXPECT_EQ(*slab, (std::vector<float>{30, 40}));
}

}  // namespace
}  // namespace climate::ncio
