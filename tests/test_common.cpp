// Unit tests for the common utilities: grid geometry, statistics, strings,
// RNG determinism, thread pool, images.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "common/bounded_queue.hpp"
#include "common/grid.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/striped.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace climate::common {
namespace {

TEST(LatLonGrid, CoordinatesSpanGlobe) {
  LatLonGrid grid(96, 144);
  EXPECT_EQ(grid.nlat(), 96u);
  EXPECT_EQ(grid.nlon(), 144u);
  EXPECT_NEAR(grid.lat(0), -90.0 + 0.5 * 180.0 / 96, 1e-9);
  EXPECT_NEAR(grid.lat(95), 90.0 - 0.5 * 180.0 / 96, 1e-9);
  EXPECT_NEAR(grid.lon(0), 0.0, 1e-9);
  EXPECT_LT(grid.lon(143), 360.0);
}

TEST(LatLonGrid, AreaWeightsSumToOne) {
  LatLonGrid grid(48, 96);
  double total = 0.0;
  for (std::size_t i = 0; i < grid.nlat(); ++i) {
    total += grid.area_weight(i) * static_cast<double>(grid.nlon());
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LatLonGrid, NearestLookupRoundTrips) {
  LatLonGrid grid(90, 180);
  for (std::size_t i = 0; i < grid.nlat(); i += 7) {
    EXPECT_EQ(grid.nearest_lat(grid.lat(i)), i);
  }
  for (std::size_t j = 0; j < grid.nlon(); j += 11) {
    EXPECT_EQ(grid.nearest_lon(grid.lon(j)), j);
  }
  // Longitude wrap.
  EXPECT_EQ(grid.nearest_lon(-2.0), grid.nearest_lon(358.0));
}

TEST(LatLonGrid, WrapLon) {
  LatLonGrid grid(10, 20);
  EXPECT_EQ(grid.wrap_lon(-1), 19u);
  EXPECT_EQ(grid.wrap_lon(20), 0u);
  EXPECT_EQ(grid.wrap_lon(41), 1u);
}

TEST(GreatCircle, KnownDistances) {
  // Quarter of the equator.
  EXPECT_NEAR(great_circle_km(0, 0, 0, 90), kEarthRadiusKm * kPi / 2, 1.0);
  // Pole to equator.
  EXPECT_NEAR(great_circle_km(90, 0, 0, 0), kEarthRadiusKm * kPi / 2, 1.0);
  // Identity.
  EXPECT_NEAR(great_circle_km(45, 120, 45, 120), 0.0, 1e-9);
}

TEST(Field, BasicStats) {
  Field field(4, 4, 2.0f);
  field.at(1, 1) = 10.0f;
  field.at(2, 2) = -6.0f;
  EXPECT_FLOAT_EQ(field.max(), 10.0f);
  EXPECT_FLOAT_EQ(field.min(), -6.0f);
  EXPECT_NEAR(field.mean(), (14 * 2.0 + 10.0 - 6.0) / 16.0, 1e-6);
}

TEST(Bilinear, InterpolatesMidpoints) {
  Field field(2, 2);
  field.at(0, 0) = 0.0f;
  field.at(0, 1) = 2.0f;
  field.at(1, 0) = 4.0f;
  field.at(1, 1) = 6.0f;
  EXPECT_FLOAT_EQ(bilinear_sample(field, 0.0, 0.0), 0.0f);
  EXPECT_FLOAT_EQ(bilinear_sample(field, 0.5, 0.0), 2.0f);
  EXPECT_FLOAT_EQ(bilinear_sample(field, 0.0, 0.5), 1.0f);
  EXPECT_FLOAT_EQ(bilinear_sample(field, 0.5, 0.5), 3.0f);
}

TEST(Regrid, PreservesConstantFields) {
  Field field(8, 16, 3.5f);
  Field out = regrid_bilinear(field, 4, 8);
  ASSERT_EQ(out.nlat(), 4u);
  ASSERT_EQ(out.nlon(), 8u);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Regrid, UpsamplePreservesMean) {
  Field field(6, 12);
  Rng rng(3);
  for (auto& v : field.data()) v = static_cast<float>(rng.uniform(0, 10));
  Field up = regrid_bilinear(field, 24, 48);
  EXPECT_NEAR(up.mean(), field.mean(), 0.35);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), 4.5, 1e-12);
  EXPECT_NEAR(stats.variance(), 6.0, 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 8.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.normal(5, 3);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Quantile, Median) {
  EXPECT_NEAR(quantile({3, 1, 2}, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(quantile({1, 2, 3, 4}, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile({1, 2, 3, 4}, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile({1, 2, 3, 4}, 1.0), 4.0, 1e-12);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Strings, SplitTrimJoin) {
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(split("a,b,,c", ',')[2], "");
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_TRUE(starts_with("prefix_x", "prefix"));
  EXPECT_TRUE(ends_with("file.nc", ".nc"));
  EXPECT_FALSE(ends_with("file.txt", ".nc"));
}

TEST(Strings, FormatAndBytes) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(1024.0 * 1024.0 * 271), "271.0 MB");
}

TEST(Strings, Fnv1a64Stable) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(hex64(0).size(), 16u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, WorkerIndexIsStable) {
  ThreadPool pool(2);
  std::set<int> seen;
  std::mutex m;
  pool.parallel_for(32, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(m);
    seen.insert(ThreadPool::current_worker());
  });
  for (int w : seen) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 2);
  }
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // caller is not a worker
}

TEST(Image, WritesPgmAndPpm) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  Field field(8, 16);
  for (std::size_t i = 0; i < field.size(); ++i) field[i] = static_cast<float>(i);
  ASSERT_TRUE(write_pgm(dir + "/t.pgm", field, 0.0f, 127.0f).ok());
  ASSERT_TRUE(write_ppm_diverging(dir + "/t.ppm", field, 0.0f, 127.0f).ok());
  EXPECT_GT(std::filesystem::file_size(dir + "/t.pgm"), 8u * 16u);
  EXPECT_GT(std::filesystem::file_size(dir + "/t.ppm"), 3u * 8u * 16u);
}

TEST(Image, AsciiMapHasExpectedShape) {
  Field field(16, 32, 1.0f);
  const std::string art = ascii_map(field, 32);
  const std::vector<std::string> rows = split(art, '\n');
  EXPECT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 32u);
}


TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_FALSE(queue.try_push(4));  // full: rejected, not blocked
  EXPECT_EQ(queue.size(), 3u);
  auto a = queue.try_pop();
  auto b = queue.try_pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_TRUE(queue.try_push(4));  // slot freed
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.try_push(8));  // closed: no new items
  auto drained = queue.pop();
  ASSERT_TRUE(drained.has_value());  // existing items still drain
  EXPECT_EQ(*drained, 7);
  EXPECT_FALSE(queue.pop().has_value());  // closed + empty: nullopt, no block
}

TEST(BoundedQueue, BlockingPopFeedsConsumerThread) {
  BoundedQueue<int> queue(2);
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto item = queue.pop()) received.push_back(*item);
  });
  for (int i = 0; i < 50; ++i) {
    while (!queue.try_push(i)) std::this_thread::yield();
  }
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(StripedCounter, ExactAtQuiescence) {
  StripedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) counter.increment();
      counter.add(5);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), static_cast<std::uint64_t>(kThreads) * (kIncrements + 5));
}

}  // namespace
}  // namespace climate::common
