// Fault-tolerance tests of the task runtime: the four failure policies
// (fail / retry / ignore / cancel-successors) and task-level checkpointing
// (paper section 4.2.1).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "taskrt/checkpoint.hpp"
#include "taskrt/runtime.hpp"

namespace climate::taskrt {
namespace {

namespace fs = std::filesystem;

taskrt::OutputCodec int_codec() {
  OutputCodec codec;
  codec.serialize = [](const std::any& value) {
    return std::to_string(any_as<int>(value));
  };
  codec.deserialize = [](const std::string& blob) -> std::any { return std::stoi(blob); };
  return codec;
}

TEST(Failures, FailPolicyPropagatesToWaitAll) {
  Runtime rt;
  DataHandle out = rt.create_data();
  rt.submit("boom", {Out(out)}, [](TaskContext&) { throw std::runtime_error("kaboom"); });
  EXPECT_THROW(rt.wait_all(), WorkflowError);
}

TEST(Failures, FailPolicyPropagatesToSync) {
  Runtime rt;
  DataHandle out = rt.create_data();
  rt.submit("boom", {Out(out)}, [](TaskContext&) { throw std::runtime_error("kaboom"); });
  EXPECT_THROW(rt.sync(out), WorkflowError);
}

TEST(Failures, FailCancelsPendingTasks) {
  Runtime rt;
  DataHandle a = rt.create_data();
  DataHandle b = rt.create_data();
  // Gate the failure until both tasks are submitted; otherwise a fast worker
  // can fail 'boom' first and the second submit throws WorkflowError.
  std::atomic<bool> both_submitted{false};
  const TaskId t1 = rt.submit("boom", {Out(a)}, [&both_submitted](TaskContext&) {
    while (!both_submitted.load()) std::this_thread::yield();
    throw std::runtime_error("kaboom");
  });
  const TaskId t2 = rt.submit("dependent", {In(a), Out(b)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(1));
  });
  both_submitted.store(true);
  try {
    rt.wait_all();
    FAIL() << "expected WorkflowError";
  } catch (const WorkflowError&) {
  }
  EXPECT_EQ(rt.task_state(t1), TaskState::kFailed);
  EXPECT_EQ(rt.task_state(t2), TaskState::kCancelled);
}

TEST(Failures, SubmitAfterFatalFailureThrows) {
  Runtime rt;
  DataHandle a = rt.create_data();
  rt.submit("boom", {Out(a)}, [](TaskContext&) { throw std::runtime_error("kaboom"); });
  try {
    rt.wait_all();
  } catch (const WorkflowError&) {
  }
  DataHandle b = rt.create_data();
  EXPECT_THROW(rt.submit("late", {Out(b)}, [](TaskContext&) {}), WorkflowError);
}

TEST(Failures, RetrySucceedsAfterTransientErrors) {
  Runtime rt;
  DataHandle out = rt.create_data();
  std::atomic<int> attempts{0};
  TaskOptions options;
  options.on_failure = FailurePolicy::kRetry;
  options.max_retries = 3;
  rt.submit("flaky", options, {Out(out)}, [&](TaskContext& ctx) {
    if (attempts.fetch_add(1) < 2) throw std::runtime_error("transient");
    ctx.set_out(0, std::any(99));
  });
  EXPECT_EQ(rt.sync_as<int>(out), 99);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(rt.stats().retries, 2u);
}

TEST(Failures, RetryExhaustionIsFatal) {
  Runtime rt;
  DataHandle out = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kRetry;
  options.max_retries = 2;
  std::atomic<int> attempts{0};
  rt.submit("hopeless", options, {Out(out)}, [&](TaskContext&) {
    attempts.fetch_add(1);
    throw std::runtime_error("permanent");
  });
  EXPECT_THROW(rt.wait_all(), WorkflowError);
  EXPECT_EQ(attempts.load(), 3);  // initial + 2 retries
}

TEST(Failures, IgnorePolicyContinuesWithPreviousValue) {
  Runtime rt;
  DataHandle data = rt.create_data(std::any(5));
  DataHandle result = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kIgnore;
  rt.submit("ignored_failure", options, {InOut(data)},
            [](TaskContext&) { throw std::runtime_error("ignored"); });
  rt.submit("consumer", {In(data), Out(result)},
            [](TaskContext& ctx) { ctx.set_out(1, std::any(ctx.in_as<int>(0) * 2)); });
  // Workflow continues; the failed writer's output falls back to version n-1.
  EXPECT_EQ(rt.sync_as<int>(result), 10);
  rt.wait_all();  // no throw
  EXPECT_EQ(rt.stats().tasks_failed, 1u);
  EXPECT_EQ(rt.stats().tasks_completed, 2u);
}

TEST(Failures, CancelSuccessorsLeavesSiblingsRunning) {
  Runtime rt;
  DataHandle bad = rt.create_data();
  DataHandle good = rt.create_data();
  DataHandle downstream_bad = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kCancelSuccessors;
  const TaskId bad_id = rt.submit("bad_branch", options, {Out(bad)},
                                  [](TaskContext&) { throw std::runtime_error("branch dead"); });
  const TaskId dep_id = rt.submit("bad_child", {In(bad), Out(downstream_bad)},
                                  [](TaskContext& ctx) { ctx.set_out(1, std::any(1)); });
  rt.submit("good_branch", {Out(good)},
            [](TaskContext& ctx) { ctx.set_out(0, std::any(123)); });
  EXPECT_EQ(rt.sync_as<int>(good), 123);
  rt.wait_all();  // not fatal
  EXPECT_EQ(rt.task_state(bad_id), TaskState::kFailed);
  EXPECT_EQ(rt.task_state(dep_id), TaskState::kCancelled);
  EXPECT_THROW(rt.sync(downstream_bad), WorkflowError);
}

// Trace contract under retries (taskrt/trace.hpp): exec_ns accumulates the
// body time of every attempt, and queued_ns is re-stamped on each re-enqueue
// so queue-wait attribution reflects the final attempt.
TEST(Failures, RetryTraceSumsExecAndRestampsQueued) {
  Runtime rt;
  DataHandle out = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kRetry;
  options.max_retries = 3;
  std::atomic<int> attempts{0};
  const TaskId id = rt.submit("flaky_timed", options, {Out(out)}, [&](TaskContext& ctx) {
    ctx.simulate_compute(std::chrono::milliseconds(5));
    if (attempts.fetch_add(1) < 2) throw std::runtime_error("transient");
    ctx.set_out(0, std::any(4));
  });
  EXPECT_EQ(rt.sync_as<int>(out), 4);
  rt.wait_all();
  const Trace trace = rt.trace();
  const TaskTrace* flaky = nullptr;
  for (const TaskTrace& task : trace.tasks()) {
    if (task.id == id) flaky = &task;
  }
  ASSERT_NE(flaky, nullptr);
  EXPECT_EQ(flaky->attempts, 3);
  // Three bodies of ~5 ms each must be summed, not last-attempt-only.
  EXPECT_GE(flaky->exec_ns, 12'000'000);
  // queued_ns was re-stamped on the final re-enqueue, which happened after
  // the first two ~5 ms bodies — well past the original submit stamp.
  EXPECT_GE(flaky->queued_ns - flaky->submit_ns, 8'000'000);
  // start_ns tracks the final attempt's dequeue, so it follows queued_ns.
  EXPECT_GE(flaky->start_ns, flaky->queued_ns);
}

// kCancelSuccessors propagates a structured reason: every transitively
// cancelled task names the root failed task in its trace record and the
// verifier report.
TEST(Failures, CancelSuccessorsCarriesStructuredReason) {
  RuntimeOptions rt_options;
  rt_options.verify = VerifyMode::kOn;
  Runtime rt(rt_options);
  DataHandle bad = rt.create_data();
  DataHandle mid = rt.create_data();
  DataHandle leaf = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kCancelSuccessors;
  const TaskId bad_id = rt.submit("bad_root", options, {Out(bad)},
                                  [](TaskContext&) { throw std::runtime_error("root dead"); });
  const TaskId mid_id = rt.submit("mid_child", {In(bad), Out(mid)},
                                  [](TaskContext& ctx) { ctx.set_out(1, std::any(1)); });
  const TaskId leaf_id = rt.submit("leaf_child", {In(mid), Out(leaf)},
                                   [](TaskContext& ctx) { ctx.set_out(1, std::any(1)); });
  rt.wait_all();  // not fatal
  EXPECT_EQ(rt.task_state(bad_id), TaskState::kFailed);

  const Trace trace = rt.trace();
  int cancelled_with_reason = 0;
  for (const TaskTrace& task : trace.tasks()) {
    if (task.id != mid_id && task.id != leaf_id) continue;
    EXPECT_EQ(task.state, TaskState::kCancelled);
    // Both carry the ROOT cause (bad_root), not just their direct parent.
    EXPECT_EQ(task.cancelled_by, bad_id);
    EXPECT_NE(task.error.find("cancelled by failure of task " + std::to_string(bad_id)),
              std::string::npos)
        << task.error;
    EXPECT_NE(task.error.find("bad_root"), std::string::npos) << task.error;
    ++cancelled_with_reason;
  }
  EXPECT_EQ(cancelled_with_reason, 2);

  // The verifier report mirrors the cancellation cause as notes.
  int cancel_notes = 0;
  const verify::Report report = rt.verify_report();
  for (const verify::Diagnostic& diag : report.diagnostics()) {
    if (diag.kind == verify::DiagKind::kCancelledByFailure) {
      EXPECT_NE(diag.message.find("cancelled by failure of task"), std::string::npos);
      ++cancel_notes;
    }
  }
  EXPECT_EQ(cancel_notes, 2);
}

TEST(Failures, SubmitOnCancelledDataCancelsNewTask) {
  Runtime rt;
  DataHandle bad = rt.create_data();
  TaskOptions options;
  options.on_failure = FailurePolicy::kCancelSuccessors;
  rt.submit("bad", options, {Out(bad)}, [](TaskContext&) {
    throw std::runtime_error("dead");
  });
  rt.wait_all();
  DataHandle out = rt.create_data();
  const TaskId late = rt.submit("late_child", {In(bad), Out(out)}, [](TaskContext& ctx) {
    ctx.set_out(1, std::any(1));
  });
  rt.wait_all();
  EXPECT_EQ(rt.task_state(late), TaskState::kCancelled);
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / ("ckpt_" + std::to_string(::getpid()))).string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CheckpointTest, StoreRoundTrip) {
  CheckpointStore store(dir_);
  EXPECT_FALSE(store.contains("k1"));
  ASSERT_TRUE(store.save("k1", {"alpha", "beta"}).ok());
  EXPECT_TRUE(store.contains("k1"));
  auto loaded = store.load("k1");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.clear().ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(CheckpointTest, SecondRunSkipsCheckpointedTask) {
  std::atomic<int> executions{0};
  auto run_workflow = [&]() -> int {
    RuntimeOptions options;
    options.checkpoint_dir = dir_;
    Runtime rt(options);
    DataHandle out = rt.create_data();
    TaskOptions topts;
    topts.checkpoint_key = "expensive-task";
    topts.codec = int_codec();
    rt.submit("expensive", topts, {Out(out)}, [&](TaskContext& ctx) {
      executions.fetch_add(1);
      ctx.set_out(0, std::any(77));
    });
    return rt.sync_as<int>(out);
  };
  EXPECT_EQ(run_workflow(), 77);
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(run_workflow(), 77);      // restored, not re-executed
  EXPECT_EQ(executions.load(), 1);
}

TEST_F(CheckpointTest, RecoveryAfterMidWorkflowFailure) {
  // First run: task A checkpoints, then B fails fatally. Second run: A is
  // skipped, B succeeds.
  std::atomic<int> a_runs{0};
  std::atomic<bool> b_should_fail{true};
  auto run_workflow = [&]() -> int {
    RuntimeOptions options;
    options.checkpoint_dir = dir_;
    Runtime rt(options);
    DataHandle mid = rt.create_data();
    DataHandle out = rt.create_data();
    TaskOptions a_opts;
    a_opts.checkpoint_key = "stage-a";
    a_opts.codec = int_codec();
    rt.submit("stage_a", a_opts, {Out(mid)}, [&](TaskContext& ctx) {
      a_runs.fetch_add(1);
      ctx.set_out(0, std::any(10));
    });
    rt.submit("stage_b", {In(mid), Out(out)}, [&](TaskContext& ctx) {
      if (b_should_fail.load()) throw std::runtime_error("power loss");
      ctx.set_out(1, std::any(ctx.in_as<int>(0) + 1));
    });
    return rt.sync_as<int>(out);
  };
  EXPECT_THROW(run_workflow(), WorkflowError);
  EXPECT_EQ(a_runs.load(), 1);
  b_should_fail.store(false);
  EXPECT_EQ(run_workflow(), 11);
  EXPECT_EQ(a_runs.load(), 1);  // recovered from the last checkpointed task
  CheckpointStore store(dir_);
  EXPECT_TRUE(store.contains("stage-a"));
}

TEST_F(CheckpointTest, RuntimeCountsCheckpointRestores) {
  RuntimeOptions options;
  options.checkpoint_dir = dir_;
  TaskOptions topts;
  topts.checkpoint_key = "count-me";
  topts.codec = int_codec();
  {
    Runtime rt(options);
    DataHandle out = rt.create_data();
    rt.submit("t", topts, {Out(out)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(5)); });
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_from_checkpoint, 0u);
  }
  {
    Runtime rt(options);
    DataHandle out = rt.create_data();
    rt.submit("t", topts, {Out(out)}, [](TaskContext& ctx) { ctx.set_out(0, std::any(5)); });
    rt.wait_all();
    EXPECT_EQ(rt.stats().tasks_from_checkpoint, 1u);
    EXPECT_EQ(rt.stats().tasks_executed, 0u);
  }
}

}  // namespace
}  // namespace climate::taskrt
