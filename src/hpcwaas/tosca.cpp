#include "hpcwaas/tosca.hpp"

#include <set>

#include "common/strings.hpp"
#include "hpcwaas/yaml.hpp"

namespace climate::hpcwaas {

Result<NodeKind> parse_node_kind(const std::string& type_name) {
  if (type_name.find("Compute") != std::string::npos) return NodeKind::kCompute;
  if (type_name.find("Software") != std::string::npos) return NodeKind::kSoftware;
  if (type_name.find("DataPipeline") != std::string::npos ||
      type_name.find("DLS") != std::string::npos) {
    return NodeKind::kDataPipeline;
  }
  if (type_name.find("Workflow") != std::string::npos || type_name.find("PyCOMPSs") != std::string::npos) {
    return NodeKind::kWorkflow;
  }
  return Status::InvalidArgument("unknown TOSCA node type '" + type_name + "'");
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kCompute: return "compute";
    case NodeKind::kSoftware: return "software";
    case NodeKind::kDataPipeline: return "data_pipeline";
    case NodeKind::kWorkflow: return "workflow";
  }
  return "?";
}

const NodeTemplate* Topology::find(const std::string& node_name) const {
  for (const NodeTemplate& node : nodes) {
    if (node.name == node_name) return &node;
  }
  return nullptr;
}

Result<std::vector<std::string>> Topology::deployment_order() const {
  // Kahn's algorithm over host + depends edges.
  std::map<std::string, std::set<std::string>> deps;
  for (const NodeTemplate& node : nodes) {
    auto& d = deps[node.name];
    if (!node.host.empty()) d.insert(node.host);
    for (const std::string& dep : node.depends_on) d.insert(dep);
  }
  std::vector<std::string> order;
  std::set<std::string> placed;
  while (order.size() < nodes.size()) {
    bool progressed = false;
    for (const NodeTemplate& node : nodes) {
      if (placed.count(node.name)) continue;
      bool ready = true;
      for (const std::string& dep : deps[node.name]) {
        if (!placed.count(dep)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(node.name);
        placed.insert(node.name);
        progressed = true;
      }
    }
    if (!progressed) {
      return Status::InvalidArgument("topology has a dependency cycle");
    }
  }
  return order;
}

namespace {

std::string json_to_property(const Json& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_number() || value.is_bool() || value.is_null()) return value.dump();
  return value.dump();
}

}  // namespace

Result<Topology> topology_from_json(const Json& doc) {
  Topology topology;
  topology.name = doc.get_string("name", "unnamed-topology");
  topology.description = doc.get_string("description");

  const Json& inputs = doc["topology_template"]["inputs"];
  if (inputs.is_object()) {
    for (const auto& [name, spec] : inputs.as_object()) {
      TopologyInput input;
      input.name = name;
      input.type = spec.get_string("type", "string");
      input.required = spec.get_bool("required", false);
      const Json& dflt = spec["default"];
      if (!dflt.is_null()) input.default_value = json_to_property(dflt);
      topology.inputs.push_back(std::move(input));
    }
  }

  const Json& templates = doc["topology_template"]["node_templates"];
  if (!templates.is_object() || templates.size() == 0) {
    return Status::InvalidArgument("topology has no node_templates");
  }
  for (const auto& [name, spec] : templates.as_object()) {
    NodeTemplate node;
    node.name = name;
    node.type_name = spec.get_string("type");
    auto kind = parse_node_kind(node.type_name);
    if (!kind.ok()) return kind.status();
    node.kind = *kind;
    const Json& properties = spec["properties"];
    if (properties.is_object()) {
      for (const auto& [key, value] : properties.as_object()) {
        node.properties[key] = json_to_property(value);
      }
    }
    const Json& requirements = spec["requirements"];
    if (requirements.is_array()) {
      for (const Json& req : requirements.as_array()) {
        if (!req.is_object()) continue;
        for (const auto& [kind_name, target] : req.as_object()) {
          const std::string target_name =
              target.is_string() ? target.as_string() : target.get_string("node");
          if (kind_name == "host") {
            node.host = target_name;
          } else {
            node.depends_on.push_back(target_name);
          }
        }
      }
    }
    topology.nodes.push_back(std::move(node));
  }

  // Validate requirement targets.
  for (const NodeTemplate& node : topology.nodes) {
    if (!node.host.empty() && topology.find(node.host) == nullptr) {
      return Status::InvalidArgument("node '" + node.name + "' hosted on unknown node '" +
                                     node.host + "'");
    }
    for (const std::string& dep : node.depends_on) {
      if (topology.find(dep) == nullptr) {
        return Status::InvalidArgument("node '" + node.name + "' depends on unknown node '" + dep +
                                       "'");
      }
    }
  }
  // Validate acyclicity now so deployment can't fail later.
  auto order = topology.deployment_order();
  if (!order.ok()) return order.status();
  return topology;
}

Result<Topology> parse_topology(const std::string& yaml_text) {
  auto doc = parse_yaml(yaml_text);
  if (!doc.ok()) return doc.status();
  return topology_from_json(*doc);
}

}  // namespace climate::hpcwaas
