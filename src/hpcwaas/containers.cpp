#include "hpcwaas/containers.hpp"

#include <tuple>

#include "common/strings.hpp"

namespace climate::hpcwaas {

double ContainerImageService::package_build_ms(const std::string& package,
                                               const PlatformSpec& platform) {
  // Deterministic pseudo-cost: hash-derived "compile size" in a plausible
  // range, heavier for MPI-linked builds.
  const std::uint64_t h = common::fnv1a64(package + "@" + platform.arch);
  const double base = 40.0 + static_cast<double>(h % 400);
  const bool mpi_linked = package.find("mpi") != std::string::npos ||
                          package.find("compss") != std::string::npos ||
                          package.find("esm") != std::string::npos;
  return mpi_linked ? base * 2.5 : base;
}

Result<ImageManifest> ContainerImageService::build(const ImageSpec& spec) {
  if (spec.name.empty()) return Status::InvalidArgument("image spec needs a name");
  std::lock_guard<std::mutex> lock(mutex_);

  ImageManifest manifest;
  manifest.name = spec.name;
  manifest.platform = spec.platform;

  std::string cumulative = spec.base + "|" + spec.platform.name + "|" + spec.platform.arch + "|" +
                           spec.platform.mpi;
  // Base layer.
  std::vector<std::string> all_packages;
  all_packages.push_back(spec.base);
  all_packages.insert(all_packages.end(), spec.packages.begin(), spec.packages.end());

  for (const std::string& package : all_packages) {
    cumulative += ";" + package;
    const std::string digest = "sha:" + common::hex64(common::fnv1a64(cumulative));
    auto it = layer_cache_.find(digest);
    if (it != layer_cache_.end()) {
      ImageLayer layer = it->second;
      layer.from_cache = true;
      ++manifest.cache_hits;
      manifest.layers.push_back(std::move(layer));
      continue;
    }
    ImageLayer layer;
    layer.digest = digest;
    layer.package = package;
    layer.size_bytes = 1'000'000 + (common::fnv1a64(package) % 200) * 1'000'000;
    layer.from_cache = false;
    manifest.build_ms += package_build_ms(package, spec.platform);
    layer_cache_[digest] = layer;
    manifest.layers.push_back(std::move(layer));
  }
  manifest.id = manifest.layers.empty() ? "sha:empty" : manifest.layers.back().digest;
  images_[manifest.id] = manifest;
  return manifest;
}

Result<ImageManifest> ContainerImageService::get(const std::string& image_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = images_.find(image_id);
  if (it == images_.end()) return Status::NotFound("no image '" + image_id + "'");
  return it->second;
}

std::size_t ContainerImageService::cached_layers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return layer_cache_.size();
}

void ContainerImageService::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  layer_cache_.clear();
}

}  // namespace climate::hpcwaas
