// The deployment orchestrator — this repository's Yorc equivalent (paper
// section 4.1): given a validated TOSCA topology, it derives a deployment
// plan (dependency order), builds the container images for every software
// node through the Container Image Creation service, executes the
// deployment-time data pipelines through the Data Logistics Service, and
// records the workflow entry node that the Execution API will publish.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "hpcwaas/containers.hpp"
#include "hpcwaas/dls.hpp"
#include "hpcwaas/tosca.hpp"

namespace climate::hpcwaas {

/// One executed deployment step.
struct DeploymentStep {
  std::string node;
  NodeKind kind = NodeKind::kSoftware;
  Status status;
  double elapsed_ms = 0.0;
  std::int64_t start_ns = -1;  ///< obs::now_ns() clock (profiler input).
  std::int64_t end_ns = -1;
  std::string detail;  ///< Image id, pipeline report summary, ...
};

enum class DeploymentState { kDeployed, kFailed };

/// Result of deploying one topology.
struct Deployment {
  std::string id;
  std::string topology_name;
  DeploymentState state = DeploymentState::kFailed;
  std::vector<DeploymentStep> steps;
  std::vector<std::string> image_ids;
  std::string workflow_node;  ///< Name of the workflow node template.
  double total_ms = 0.0;
  /// Attribution run report over the executed steps: the topology's
  /// depends_on/host edges are replayed through the workflow profiler
  /// (obs/prof), so the report names the steps on the deployment's critical
  /// path. Empty when nothing was deployed.
  std::string run_report;

  bool ok() const { return state == DeploymentState::kDeployed; }
};

/// Interprets topologies into running environments.
class Orchestrator {
 public:
  Orchestrator(ContainerImageService& images, DataLogisticsService& dls)
      : images_(&images), dls_(&dls) {}

  /// Deploys a topology: every node in dependency order. Stops at the first
  /// failing step (state kFailed).
  Deployment deploy(const Topology& topology);

 private:
  DeploymentStep deploy_node(const Topology& topology, const NodeTemplate& node,
                             Deployment* deployment);

  ContainerImageService* images_;
  DataLogisticsService* dls_;
  std::uint64_t next_id_ = 1;
};

}  // namespace climate::hpcwaas
