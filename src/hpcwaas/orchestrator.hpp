// The deployment orchestrator — this repository's Yorc equivalent (paper
// section 4.1): given a validated TOSCA topology, it derives a deployment
// plan (dependency order), builds the container images for every software
// node through the Container Image Creation service, executes the
// deployment-time data pipelines through the Data Logistics Service, and
// records the workflow entry node that the Execution API will publish.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/retry.hpp"
#include "hpcwaas/containers.hpp"
#include "hpcwaas/dls.hpp"
#include "hpcwaas/tosca.hpp"

namespace climate::hpcwaas {

/// One executed deployment step.
struct DeploymentStep {
  std::string node;
  NodeKind kind = NodeKind::kSoftware;
  Status status;
  double elapsed_ms = 0.0;
  std::int64_t start_ns = -1;  ///< obs::now_ns() clock (profiler input).
  std::int64_t end_ns = -1;
  int attempts = 1;    ///< Tries including the first (step retry discipline).
  std::string detail;  ///< Image id, pipeline report summary, ...
};

enum class DeploymentState { kDeployed, kFailed };

/// Result of deploying one topology.
struct Deployment {
  std::string id;
  std::string topology_name;
  DeploymentState state = DeploymentState::kFailed;
  std::vector<DeploymentStep> steps;
  std::vector<std::string> image_ids;
  std::string workflow_node;  ///< Name of the workflow node template.
  double total_ms = 0.0;
  /// Attribution run report over the executed steps: the topology's
  /// depends_on/host edges are replayed through the workflow profiler
  /// (obs/prof), so the report names the steps on the deployment's critical
  /// path. Empty when nothing was deployed.
  std::string run_report;

  bool ok() const { return state == DeploymentState::kDeployed; }
};

/// Interprets topologies into running environments.
class Orchestrator {
 public:
  Orchestrator(ContainerImageService& images, DataLogisticsService& dls)
      : images_(&images), dls_(&dls) {}

  /// Deploys a topology: every node in dependency order. Stops at the first
  /// failing step (state kFailed). Transient step failures (UNAVAILABLE
  /// image-registry or DLS transfer errors) are retried with backoff before
  /// the step counts as failed; DeploymentStep::attempts records the tries.
  Deployment deploy(const Topology& topology);

  /// Replaces the per-step retry discipline (common/retry.hpp defaults
  /// otherwise). max_attempts = 1 disables retrying.
  void set_retry(common::RetryOptions options) { retry_ = options; }

  /// Arms chaos injection on the deployment path: kStepError rules fail one
  /// step attempt with UNAVAILABLE. Targets match node names; decision keys
  /// are step_ordinal * 100 + attempt. Null disarms.
  void set_fault_injector(std::shared_ptr<common::fault::Injector> faults) {
    faults_ = std::move(faults);
  }

 private:
  DeploymentStep deploy_node(const Topology& topology, const NodeTemplate& node,
                             Deployment* deployment);

  ContainerImageService* images_;
  DataLogisticsService* dls_;
  common::RetryOptions retry_;
  std::shared_ptr<common::fault::Injector> faults_;
  std::int64_t step_ordinal_ = 0;  // fault decision key, counts deploy_node calls
  std::uint64_t next_id_ = 1;
};

}  // namespace climate::hpcwaas
