#include "hpcwaas/yaml.hpp"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.hpp"

namespace climate::hpcwaas {
namespace {

struct Line {
  int indent = 0;
  std::string content;  // without indentation or trailing comment
};

/// Strips a trailing comment that is not inside quotes.
std::string strip_comment(const std::string& line) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double && (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

Result<std::vector<Line>> tokenize(const std::string& text) {
  std::vector<Line> lines;
  for (const std::string& raw : common::split(text, '\n')) {
    std::string stripped = strip_comment(raw);
    std::size_t indent = 0;
    while (indent < stripped.size() && stripped[indent] == ' ') ++indent;
    if (indent < stripped.size() && stripped[indent] == '\t') {
      return Status::InvalidArgument("tabs are not allowed for YAML indentation");
    }
    const std::string content = common::trim(stripped);
    if (content.empty() || content == "---") continue;
    lines.push_back({static_cast<int>(indent), content});
  }
  return lines;
}

/// Parses a scalar token: quoted string, bool, null, number, or raw string.
Json parse_scalar(const std::string& token) {
  if (token.size() >= 2 &&
      ((token.front() == '"' && token.back() == '"') ||
       (token.front() == '\'' && token.back() == '\''))) {
    return Json(token.substr(1, token.size() - 2));
  }
  if (token == "true" || token == "True") return Json(true);
  if (token == "false" || token == "False") return Json(false);
  if (token == "null" || token == "~") return Json(nullptr);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end && *end == '\0' && end != token.c_str()) return Json(value);
  return Json(token);
}

/// Splits "key: value" at the first ':' followed by space/end, respecting
/// quotes. Returns false if the line is not a mapping entry.
bool split_key_value(const std::string& content, std::string* key, std::string* value) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == ':' && !in_single && !in_double &&
             (i + 1 == content.size() || content[i + 1] == ' ')) {
      *key = common::trim(content.substr(0, i));
      *value = i + 1 < content.size() ? common::trim(content.substr(i + 1)) : "";
      if (key->size() >= 2 && ((key->front() == '"' && key->back() == '"') ||
                               (key->front() == '\'' && key->back() == '\''))) {
        *key = key->substr(1, key->size() - 2);
      }
      return !key->empty();
    }
  }
  return false;
}

class BlockParser {
 public:
  explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Result<Json> parse() {
    if (lines_.empty()) return Json::object();
    Json root;
    Status st = parse_block(0, lines_[0].indent, &root);
    if (!st.ok()) return st;
    if (pos_ != lines_.size()) {
      return Status::InvalidArgument("inconsistent indentation near '" + lines_[pos_].content + "'");
    }
    return root;
  }

 private:
  Status parse_block(std::size_t start, int indent, Json* out) {
    pos_ = start;
    const bool is_sequence = lines_[pos_].content.rfind("- ", 0) == 0 || lines_[pos_].content == "-";
    if (is_sequence) {
      *out = Json::array();
      while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
             (lines_[pos_].content.rfind("- ", 0) == 0 || lines_[pos_].content == "-")) {
        std::string item = lines_[pos_].content == "-" ? "" : common::trim(lines_[pos_].content.substr(2));
        const std::size_t item_line = pos_;
        ++pos_;
        if (item.empty()) {
          // Nested block under the dash.
          if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
            Json child;
            CLIMATE_RETURN_IF_ERROR(parse_block(pos_, lines_[pos_].indent, &child));
            out->push_back(std::move(child));
          } else {
            out->push_back(Json(nullptr));
          }
          continue;
        }
        std::string key, value;
        if (split_key_value(item, &key, &value)) {
          // "- key: value" starts an inline mapping; further keys may follow
          // at a deeper indent.
          Json entry = Json::object();
          if (value.empty()) {
            if (pos_ < lines_.size() && lines_[pos_].indent > indent + 2 - 1 &&
                lines_[pos_].indent > indent) {
              Json child;
              CLIMATE_RETURN_IF_ERROR(parse_block(pos_, lines_[pos_].indent, &child));
              entry[key] = std::move(child);
            } else {
              entry[key] = Json(nullptr);
            }
          } else {
            entry[key] = parse_scalar(value);
          }
          // Continuation keys of the same mapping are indented to align past
          // the dash (indent + 2).
          while (pos_ < lines_.size() && lines_[pos_].indent == indent + 2 &&
                 lines_[pos_].content.rfind("- ", 0) != 0) {
            std::string k2, v2;
            if (!split_key_value(lines_[pos_].content, &k2, &v2)) {
              return Status::InvalidArgument("expected mapping entry in sequence item at line of '" +
                                             lines_[pos_].content + "'");
            }
            ++pos_;
            if (v2.empty()) {
              if (pos_ < lines_.size() && lines_[pos_].indent > indent + 2) {
                Json child;
                CLIMATE_RETURN_IF_ERROR(parse_block(pos_, lines_[pos_].indent, &child));
                entry[k2] = std::move(child);
              } else {
                entry[k2] = Json(nullptr);
              }
            } else {
              entry[k2] = parse_scalar(v2);
            }
          }
          out->push_back(std::move(entry));
        } else {
          (void)item_line;
          out->push_back(parse_scalar(item));
        }
      }
      return Status::Ok();
    }

    // Block mapping.
    *out = Json::object();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      std::string key, value;
      if (!split_key_value(lines_[pos_].content, &key, &value)) {
        return Status::InvalidArgument("expected 'key: value' at '" + lines_[pos_].content + "'");
      }
      ++pos_;
      if (!value.empty()) {
        (*out)[key] = parse_scalar(value);
        continue;
      }
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        Json child;
        CLIMATE_RETURN_IF_ERROR(parse_block(pos_, lines_[pos_].indent, &child));
        (*out)[key] = std::move(child);
      } else {
        (*out)[key] = Json(nullptr);
      }
    }
    return Status::Ok();
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> parse_yaml(const std::string& text) {
  auto lines = tokenize(text);
  if (!lines.ok()) return lines.status();
  BlockParser parser(std::move(*lines));
  return parser.parse();
}

}  // namespace climate::hpcwaas
