#include "hpcwaas/service.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace climate::hpcwaas {

const char* execution_state_name(ExecutionState state) {
  switch (state) {
    case ExecutionState::kPending: return "pending";
    case ExecutionState::kRunning: return "running";
    case ExecutionState::kSucceeded: return "succeeded";
    case ExecutionState::kFailed: return "failed";
  }
  return "?";
}

HpcWaasService::HpcWaasService(std::vector<BatchNodeSpec> cluster)
    : batch_(std::make_unique<BatchScheduler>(std::move(cluster))),
      orchestrator_(images_, dls_) {}

HpcWaasService::~HpcWaasService() = default;

Result<std::string> HpcWaasService::deploy_workflow(const std::string& topology_yaml,
                                                    WorkflowFn fn) {
  auto topology = parse_topology(topology_yaml);
  if (!topology.ok()) return topology.status();

  Deployment deployment = orchestrator_.deploy(*topology);
  if (!deployment.ok()) {
    for (const DeploymentStep& step : deployment.steps) {
      if (!step.status.ok()) {
        return Status::FailedPrecondition("deployment failed at node '" + step.node +
                                          "': " + step.status.to_string());
      }
    }
    return Status::Internal("deployment failed");
  }
  if (deployment.workflow_node.empty()) {
    return Status::InvalidArgument("topology '" + topology->name + "' declares no Workflow node");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const std::string id = "wf-" + std::to_string(next_workflow_++);
  WorkflowEntry entry;
  entry.id = id;
  entry.name = topology->name;
  entry.description = topology->description;
  entry.deployment = std::move(deployment);
  entry.inputs = topology->inputs;
  workflows_[id] = std::move(entry);
  functions_[id] = std::move(fn);
  return id;
}

Status HpcWaasService::undeploy_workflow(const std::string& workflow_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (workflows_.erase(workflow_id) == 0) {
    return Status::NotFound("no workflow '" + workflow_id + "'");
  }
  functions_.erase(workflow_id);
  return Status::Ok();
}

Result<std::string> HpcWaasService::invoke(const std::string& workflow_id, Json params) {
  WorkflowFn fn;
  std::shared_ptr<ExecutionRecord> record;
  std::string execution_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto wf = workflows_.find(workflow_id);
    if (wf == workflows_.end()) return Status::NotFound("no workflow '" + workflow_id + "'");
    // Input validation against the topology's declarations.
    if (!params.is_object()) params = Json::object();
    for (const TopologyInput& input : wf->second.inputs) {
      if (!params.contains(input.name)) {
        if (input.required) {
          return Status::InvalidArgument("missing required input '" + input.name + "'");
        }
        if (!input.default_value.empty()) params[input.name] = Json(input.default_value);
      }
    }
    fn = functions_[workflow_id];
    execution_id = "exec-" + std::to_string(next_execution_++);
    record = std::make_shared<ExecutionRecord>();
    record->id = execution_id;
    record->workflow_id = workflow_id;
    record->params = params;
    executions_[execution_id] = record;
  }

  JobSpec job_spec;
  job_spec.name = workflow_id + "/" + execution_id;
  auto job = batch_->submit(job_spec, [this, record, fn, params] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      record->state = ExecutionState::kRunning;
    }
    Json result;
    std::string error;
    bool ok = true;
    try {
      result = fn(params);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      record->result = std::move(result);
      record->error = error;
      record->state = ok ? ExecutionState::kSucceeded : ExecutionState::kFailed;
    }
    if (!ok) throw std::runtime_error(error);  // surface to the batch system too
  });
  if (!job.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    executions_.erase(execution_id);
    return job.status();
  }
  record->job = *job;
  return execution_id;
}

Result<ExecutionRecord> HpcWaasService::execution(const std::string& execution_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = executions_.find(execution_id);
  if (it == executions_.end()) return Status::NotFound("no execution '" + execution_id + "'");
  return *it->second;  // copy taken under the lock
}

Status HpcWaasService::wait(const std::string& execution_id) {
  std::shared_ptr<ExecutionRecord> record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = executions_.find(execution_id);
    if (it == executions_.end()) return Status::NotFound("no execution '" + execution_id + "'");
    record = it->second;
  }
  const Status job_status = batch_->wait(record->job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (record->state == ExecutionState::kFailed) {
      return Status::Internal("execution failed: " + record->error);
    }
  }
  return job_status;
}

std::vector<WorkflowEntry> HpcWaasService::workflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkflowEntry> out;
  for (const auto& [id, entry] : workflows_) out.push_back(entry);
  return out;
}

namespace {

/// Builds the structured error envelope every failing REST response carries.
HttpResponse error_response(int status, const std::string& code, const std::string& message,
                            const std::string& detail) {
  Json error = Json::object();
  error["code"] = code;
  error["message"] = message;
  if (!detail.empty()) error["detail"] = detail;
  Json body = Json::object();
  body["error"] = std::move(error);
  return HttpResponse{status, std::move(body)};
}

/// Maps a Status from the typed API onto an HTTP failure response.
HttpResponse status_response(const Status& status, const std::string& route) {
  switch (status.code()) {
    case common::StatusCode::kInvalidArgument:
    case common::StatusCode::kOutOfRange:
      return error_response(400, "invalid_argument", status.message(), route);
    case common::StatusCode::kNotFound:
      return error_response(404, "not_found", status.message(), route);
    case common::StatusCode::kFailedPrecondition:
      return error_response(409, "failed_precondition", status.message(), route);
    case common::StatusCode::kUnavailable:
      return error_response(503, "unavailable", status.message(), route);
    default:
      return error_response(500, "internal", status.message(), route);
  }
}

}  // namespace

HttpResponse HpcWaasService::rest(const std::string& method, const std::string& path,
                                  const Json& body) {
  const std::string route = method + " " + path;
  std::vector<std::string> parts = common::split(path, '/');
  // parts[0] is empty for a leading '/'; drop it and any empty trailing
  // segment so "/v1/workflows/" and "/v1/workflows" are the same route.
  if (!parts.empty() && parts.front().empty()) parts.erase(parts.begin());
  while (!parts.empty() && parts.back().empty()) parts.pop_back();

  // Version prefix: "v1" (current) or none (legacy alias of v1). Any other
  // "v<N>" prefix is an unknown API version.
  if (!parts.empty() && parts.front() == "v1") {
    parts.erase(parts.begin());
  } else if (!parts.empty() && parts.front().size() >= 2 && parts.front()[0] == 'v' &&
             std::isdigit(static_cast<unsigned char>(parts.front()[1]))) {
    return error_response(404, "unknown_api_version",
                          "unknown API version '" + parts.front() + "' (supported: v1)", route);
  }
  auto segment = [&](std::size_t i) -> std::string { return i < parts.size() ? parts[i] : ""; };

  if (segment(0) == "workflows" && segment(1).empty()) {
    if (method != "GET") {
      return error_response(405, "method_not_allowed", method + " not allowed on /v1/workflows",
                            route);
    }
    Json list = Json::array();
    for (const WorkflowEntry& entry : workflows()) {
      Json item = Json::object();
      item["id"] = entry.id;
      item["name"] = entry.name;
      item["description"] = entry.description;
      list.push_back(std::move(item));
    }
    Json response = Json::object();
    response["workflows"] = std::move(list);
    return HttpResponse{200, std::move(response)};
  }
  if (segment(0) == "workflows" && !segment(1).empty() && segment(2).empty()) {
    if (method == "DELETE") {
      const Status status = undeploy_workflow(segment(1));
      if (!status.ok()) return status_response(status, route);
      Json response = Json::object();
      response["undeployed"] = segment(1);
      return HttpResponse{200, std::move(response)};
    }
    if (method != "GET") {
      return error_response(405, "method_not_allowed",
                            method + " not allowed on /v1/workflows/<id>", route);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(segment(1));
    if (it == workflows_.end()) {
      return error_response(404, "not_found", "no workflow '" + segment(1) + "'", route);
    }
    Json response = Json::object();
    response["id"] = it->second.id;
    response["name"] = it->second.name;
    response["description"] = it->second.description;
    Json inputs = Json::array();
    for (const TopologyInput& input : it->second.inputs) {
      Json spec = Json::object();
      spec["name"] = input.name;
      spec["type"] = input.type;
      spec["required"] = input.required;
      if (!input.default_value.empty()) spec["default"] = input.default_value;
      inputs.push_back(std::move(spec));
    }
    response["inputs"] = std::move(inputs);
    response["deployment_id"] = it->second.deployment.id;
    return HttpResponse{200, std::move(response)};
  }
  if (segment(0) == "workflows" && segment(2) == "executions" && segment(3).empty()) {
    if (method != "POST") {
      return error_response(405, "method_not_allowed",
                            method + " not allowed on /v1/workflows/<id>/executions", route);
    }
    auto execution_id = invoke(segment(1), body);
    if (!execution_id.ok()) return status_response(execution_id.status(), route);
    Json response = Json::object();
    response["execution_id"] = *execution_id;
    return HttpResponse{201, std::move(response)};
  }
  if (segment(0) == "executions" && !segment(1).empty() && segment(2).empty()) {
    if (method != "GET") {
      return error_response(405, "method_not_allowed",
                            method + " not allowed on /v1/executions/<id>", route);
    }
    auto record = execution(segment(1));
    if (!record.ok()) return status_response(record.status(), route);
    Json response = Json::object();
    response["id"] = record->id;
    response["workflow_id"] = record->workflow_id;
    response["state"] = execution_state_name(record->state);
    if (record->state == ExecutionState::kSucceeded) response["result"] = record->result;
    if (record->state == ExecutionState::kFailed) response["error"] = record->error;
    return HttpResponse{200, std::move(response)};
  }
  return error_response(404, "not_found", route + " is not a known route", route);
}

Result<Json> HpcWaasService::handle(const std::string& method, const std::string& path,
                                    const Json& body) {
  HttpResponse response = rest(method, path, body);
  if (response.ok()) return std::move(response.body);
  const Json& error = response.body["error"];
  const std::string message = error.get_string("message");
  switch (response.status) {
    case 400: return Status::InvalidArgument(message);
    case 404: return Status::NotFound(message);
    case 405: return Status::FailedPrecondition(message);
    case 409: return Status::FailedPrecondition(message);
    case 503: return Status::Unavailable(message);
    default: return Status::Internal(message);
  }
}


}  // namespace climate::hpcwaas
