// Data Logistics Service (paper section 4.1: "the management of the required
// data is done by the Data Logistics Service which executes the required
// data pipelines either at deployment or execution time").
//
// A pipeline is an ordered list of data-movement steps (stage-in copies,
// generated inputs, checksum verification, stage-out). Execution records
// per-step outcomes and byte counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"

namespace climate::hpcwaas {

using common::Result;
using common::Status;

/// A single data-movement step.
struct DataStep {
  enum class Kind { kCopy, kGenerate, kVerify };
  Kind kind = Kind::kCopy;
  std::string source;       ///< kCopy: source path; kVerify: path to check.
  std::string destination;  ///< kCopy/kGenerate: target path.
  /// kGenerate: producer writing the file (e.g. the forcing table writer).
  std::function<Status(const std::string& path)> generator;
  /// kVerify: expected FNV-1a content hash in hex (empty = record only).
  std::string expected_digest;
};

/// A named pipeline.
struct DataPipeline {
  std::string name;
  std::vector<DataStep> steps;
};

/// Outcome of one executed step.
struct StepReport {
  std::string description;
  Status status;
  std::uint64_t bytes = 0;
  std::string digest;  ///< Content hash of the touched file (hex).
};

/// Outcome of a pipeline run.
struct PipelineReport {
  std::string pipeline;
  std::vector<StepReport> steps;
  std::uint64_t total_bytes = 0;
  bool ok() const {
    for (const StepReport& s : steps) {
      if (!s.status.ok()) return false;
    }
    return true;
  }
};

/// The service: a registry of pipelines plus an executor.
class DataLogisticsService {
 public:
  /// Registers (or replaces) a pipeline.
  void register_pipeline(DataPipeline pipeline);

  /// Runs a registered pipeline by name.
  Result<PipelineReport> run(const std::string& name);

  /// Runs an ad-hoc pipeline.
  PipelineReport execute(const DataPipeline& pipeline);

  std::vector<std::string> pipelines() const;

  /// Arms chaos injection on the transfer path: kDlsError rules fail the
  /// matching step with UNAVAILABLE before it touches any file (a transient
  /// transfer failure — the orchestrator's step retry absorbs it). Targets
  /// match pipeline names; decision keys are run_ordinal * 1000 + step
  /// index. Null disarms.
  void set_fault_injector(std::shared_ptr<common::fault::Injector> faults) {
    faults_ = std::move(faults);
  }

 private:
  std::map<std::string, DataPipeline> registry_;
  std::shared_ptr<common::fault::Injector> faults_;
  std::int64_t run_ordinal_ = 0;  // fault decision key, counts execute() calls
};

/// FNV-1a content hash of a file, hex encoded.
Result<std::string> file_digest(const std::string& path);

}  // namespace climate::hpcwaas
