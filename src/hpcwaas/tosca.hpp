// TOSCA-like topology model (the extended-TOSCA application descriptions the
// developer authors in Alien4Cloud, paper section 4.1/5.1 step 1): node
// templates with types, properties and host/depends requirements, plus
// workflow input declarations. Parsed from the YAML subset and validated
// (known types, resolvable requirements, acyclic dependencies).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace climate::hpcwaas {

using common::Json;
using common::Result;
using common::Status;

/// The node-template kinds the orchestrator understands.
enum class NodeKind {
  kCompute,      ///< An HPC allocation target (cluster/partition).
  kSoftware,     ///< A software environment (built as a container image).
  kDataPipeline, ///< A Data Logistics Service pipeline.
  kWorkflow,     ///< The workflow application itself.
};

Result<NodeKind> parse_node_kind(const std::string& type_name);
const char* node_kind_name(NodeKind kind);

/// One node template.
struct NodeTemplate {
  std::string name;
  NodeKind kind = NodeKind::kSoftware;
  std::string type_name;                        ///< Original TOSCA type string.
  std::map<std::string, std::string> properties;
  std::string host;                             ///< Requirement: hosted on.
  std::vector<std::string> depends_on;          ///< Requirement: depends on.
};

/// A workflow input declaration.
struct TopologyInput {
  std::string name;
  std::string type = "string";
  std::string default_value;
  bool required = false;
};

/// A parsed, validated topology.
struct Topology {
  std::string name;
  std::string description;
  std::vector<NodeTemplate> nodes;
  std::vector<TopologyInput> inputs;

  const NodeTemplate* find(const std::string& node_name) const;
  /// Node names in dependency order (hosts/dependencies first).
  Result<std::vector<std::string>> deployment_order() const;
};

/// Parses a topology from YAML text and validates it.
Result<Topology> parse_topology(const std::string& yaml_text);

/// Parses from an already-parsed Json tree.
Result<Topology> topology_from_json(const Json& doc);

}  // namespace climate::hpcwaas
