#include "hpcwaas/dls.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "obs/obs.hpp"

namespace climate::hpcwaas {

namespace fs = std::filesystem;

Result<std::string> file_digest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return common::hex64(common::fnv1a64(buffer.str()));
}

void DataLogisticsService::register_pipeline(DataPipeline pipeline) {
  registry_[pipeline.name] = std::move(pipeline);
}

Result<PipelineReport> DataLogisticsService::run(const std::string& name) {
  auto it = registry_.find(name);
  if (it == registry_.end()) return Status::NotFound("no data pipeline '" + name + "'");
  return execute(it->second);
}

PipelineReport DataLogisticsService::execute(const DataPipeline& pipeline) {
  obs::Span span("hpcwaas", "dls:" + pipeline.name);
  OBS_SCOPED_LATENCY("hpcwaas.dls_pipeline_ns");
  PipelineReport report;
  report.pipeline = pipeline.name;
  const std::int64_t run_key = run_ordinal_++;
  std::int64_t step_index = -1;
  for (const DataStep& step : pipeline.steps) {
    ++step_index;
    StepReport sr;
    if (faults_ && faults_->fire(common::fault::Kind::kDlsError, pipeline.name,
                                 run_key * 1000 + step_index)) {
      OBS_COUNTER_ADD("fault.injected.hpcwaas.dls_error", 1);
      obs::Span fault_span("fault", "inject:dls_error");
      sr.description = "transfer step " + std::to_string(step_index) + " of " + pipeline.name;
      sr.status = Status::Unavailable("injected DLS transfer fault in pipeline '" +
                                      pipeline.name + "' step " + std::to_string(step_index));
      report.steps.push_back(std::move(sr));
      break;  // pipelines stop at the first failing step
    }
    switch (step.kind) {
      case DataStep::Kind::kCopy: {
        sr.description = "copy " + step.source + " -> " + step.destination;
        std::error_code ec;
        fs::create_directories(fs::path(step.destination).parent_path(), ec);
        fs::copy_file(step.source, step.destination, fs::copy_options::overwrite_existing, ec);
        if (ec) {
          sr.status = Status::Unavailable("copy failed: " + ec.message());
        } else {
          sr.bytes = static_cast<std::uint64_t>(fs::file_size(step.destination, ec));
          auto digest = file_digest(step.destination);
          if (digest.ok()) sr.digest = *digest;
          sr.status = Status::Ok();
        }
        break;
      }
      case DataStep::Kind::kGenerate: {
        sr.description = "generate " + step.destination;
        if (!step.generator) {
          sr.status = Status::InvalidArgument("generate step without generator");
          break;
        }
        std::error_code ec;
        fs::create_directories(fs::path(step.destination).parent_path(), ec);
        sr.status = step.generator(step.destination);
        if (sr.status.ok()) {
          sr.bytes = static_cast<std::uint64_t>(fs::file_size(step.destination, ec));
          auto digest = file_digest(step.destination);
          if (digest.ok()) sr.digest = *digest;
        }
        break;
      }
      case DataStep::Kind::kVerify: {
        sr.description = "verify " + step.source;
        auto digest = file_digest(step.source);
        if (!digest.ok()) {
          sr.status = digest.status();
          break;
        }
        sr.digest = *digest;
        if (!step.expected_digest.empty() && step.expected_digest != *digest) {
          sr.status = Status::DataLoss("digest mismatch for " + step.source + ": expected " +
                                       step.expected_digest + ", got " + *digest);
        } else {
          sr.status = Status::Ok();
        }
        break;
      }
    }
    report.total_bytes += sr.bytes;
    OBS_COUNTER_ADD("hpcwaas.dls_bytes_moved", sr.bytes);
    const bool failed = !sr.status.ok();
    report.steps.push_back(std::move(sr));
    if (failed) break;  // pipelines stop at the first failing step
  }
  return report;
}

std::vector<std::string> DataLogisticsService::pipelines() const {
  std::vector<std::string> names;
  for (const auto& [name, pipeline] : registry_) names.push_back(name);
  return names;
}

}  // namespace climate::hpcwaas
