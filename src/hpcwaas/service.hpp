// The HPCWaaS Execution API and workflow registry (paper Figure 1): the
// developer interface deploys a workflow from its TOSCA description; the
// end-user interface runs a deployed workflow "as a simple REST invocation"
// and polls its status. REST is modelled as an in-process handle(method,
// path, body) -> Json dispatch with the same routes a real gateway would
// expose.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "hpcwaas/batch.hpp"
#include "hpcwaas/containers.hpp"
#include "hpcwaas/dls.hpp"
#include "hpcwaas/orchestrator.hpp"
#include "hpcwaas/tosca.hpp"

namespace climate::hpcwaas {

/// A deployed workflow's executable entry point: params in, result out.
/// Runs inside a batch job (the PyCOMPSs master process of the original).
using WorkflowFn = std::function<Json(const Json& params)>;

/// A registered workflow.
struct WorkflowEntry {
  std::string id;
  std::string name;
  std::string description;
  Deployment deployment;
  std::vector<TopologyInput> inputs;
};

enum class ExecutionState { kPending, kRunning, kSucceeded, kFailed };

const char* execution_state_name(ExecutionState state);

/// HTTP-style response of the versioned REST surface: a status code plus a
/// JSON body. Failures always carry a structured error envelope:
///
///   {"error": {"code": "not_found", "message": "...", "detail": "..."}}
///
/// where `code` is a stable machine-readable slug, `message` is
/// human-readable, and `detail` carries route context.
struct HttpResponse {
  int status = 200;
  Json body;

  bool ok() const { return status < 400; }
};

/// One invocation of a deployed workflow.
struct ExecutionRecord {
  std::string id;
  std::string workflow_id;
  ExecutionState state = ExecutionState::kPending;
  Json params;
  Json result;
  std::string error;
  JobId job = 0;
};

/// The service facade: owns the stack components and the registries.
class HpcWaasService {
 public:
  /// Builds the service over a cluster description (the batch system's
  /// nodes).
  explicit HpcWaasService(std::vector<BatchNodeSpec> cluster = {});
  ~HpcWaasService();

  ContainerImageService& images() { return images_; }
  DataLogisticsService& dls() { return dls_; }
  BatchScheduler& batch() { return *batch_; }
  Orchestrator& orchestrator() { return orchestrator_; }

  // ----- developer interface ----------------------------------------------

  /// Deploys a workflow: parses + validates the topology, runs the
  /// orchestrator (images + data pipelines), publishes the entry point.
  /// Returns the workflow id.
  Result<std::string> deploy_workflow(const std::string& topology_yaml, WorkflowFn fn);

  /// Removes a workflow from the registry (undeploy).
  Status undeploy_workflow(const std::string& workflow_id);

  // ----- end-user interface -----------------------------------------------

  /// Starts an execution; returns the execution id immediately (the job runs
  /// asynchronously on the batch system). Missing required inputs are an
  /// error; declared defaults are filled in.
  Result<std::string> invoke(const std::string& workflow_id, Json params);

  /// Current status (+ result when finished).
  Result<ExecutionRecord> execution(const std::string& execution_id);

  /// Blocks until an execution finishes.
  Status wait(const std::string& execution_id);

  /// Registered workflows.
  std::vector<WorkflowEntry> workflows() const;

  /// Versioned REST dispatch (current version: v1):
  ///   GET    /v1/workflows                 -> {"workflows": [...]}
  ///   GET    /v1/workflows/<id>            -> detail
  ///   DELETE /v1/workflows/<id>            -> undeploy
  ///   POST   /v1/workflows/<id>/executions -> {"execution_id": ...}
  ///   GET    /v1/executions/<id>           -> {"state": ..., "result": ...}
  ///
  /// Status discipline: unknown path or missing resource -> 404, known path
  /// with an unsupported method -> 405, malformed input -> 400, transient
  /// refusal -> 503, anything else -> 500; every failure body is the
  /// HttpResponse error envelope. Unversioned paths ("/workflows", ...) are
  /// accepted as legacy aliases of v1; an unknown version prefix is a 404.
  HttpResponse rest(const std::string& method, const std::string& path, const Json& body);

  /// Deprecated: pre-versioning dispatch; prefer rest(). Forwards to rest()
  /// and folds the envelope back into a Status, so legacy callers keep
  /// their Result-based contract.
  Result<Json> handle(const std::string& method, const std::string& path, const Json& body);

 private:
  ContainerImageService images_;
  DataLogisticsService dls_;
  std::unique_ptr<BatchScheduler> batch_;
  Orchestrator orchestrator_;

  mutable std::mutex mutex_;
  std::map<std::string, WorkflowEntry> workflows_;
  std::map<std::string, WorkflowFn> functions_;
  std::map<std::string, std::shared_ptr<ExecutionRecord>> executions_;
  std::uint64_t next_workflow_ = 1;
  std::uint64_t next_execution_ = 1;
};

}  // namespace climate::hpcwaas
