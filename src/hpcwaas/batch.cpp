#include "hpcwaas/batch.hpp"

namespace climate::hpcwaas {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "PEND";
    case JobState::kRunning: return "RUN";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "EXIT";
  }
  return "?";
}

BatchScheduler::BatchScheduler(std::vector<BatchNodeSpec> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.empty()) nodes_.push_back({"node0", 4, 64.0});
  for (const BatchNodeSpec& node : nodes_) {
    free_cores_.push_back(node.cores);
    free_memory_.push_back(node.memory_gb);
  }
  epoch_ = std::chrono::steady_clock::now();
}

BatchScheduler::~BatchScheduler() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }
  for (std::thread& t : threads_) t.join();
}

std::int64_t BatchScheduler::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch_)
      .count();
}

Result<JobId> BatchScheduler::submit(const JobSpec& spec, std::function<void()> body) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool fits_somewhere = false;
  for (const BatchNodeSpec& node : nodes_) {
    if (spec.cores <= node.cores && spec.memory_gb <= node.memory_gb) {
      fits_somewhere = true;
      break;
    }
  }
  if (!fits_somewhere) {
    return Status::InvalidArgument("job '" + spec.name + "' exceeds every node's capacity");
  }
  const JobId id = next_id_++;
  JobInfo info;
  info.id = id;
  info.spec = spec;
  info.submit_ns = now_ns();
  jobs_[id] = std::move(info);
  queue_.push_back({id, std::move(body)});
  try_dispatch_locked();
  return id;
}

void BatchScheduler::try_dispatch_locked() {
  // FCFS with backfill: walk the queue in order; start any job that fits on
  // some node right now (a job that cannot start does not block later jobs).
  for (auto it = queue_.begin(); it != queue_.end();) {
    const JobSpec& spec = jobs_[it->id].spec;
    std::size_t chosen = nodes_.size();
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (spec.cores <= free_cores_[n] && spec.memory_gb <= free_memory_[n]) {
        chosen = n;
        break;
      }
    }
    if (chosen == nodes_.size()) {
      ++it;
      continue;
    }
    free_cores_[chosen] -= spec.cores;
    free_memory_[chosen] -= spec.memory_gb;
    JobInfo& info = jobs_[it->id];
    info.state = JobState::kRunning;
    info.start_ns = now_ns();
    info.node = nodes_[chosen].name;
    job_node_[it->id] = chosen;
    ++active_;
    threads_.emplace_back(&BatchScheduler::run_job, this, it->id, std::move(it->body), chosen);
    it = queue_.erase(it);
  }
}

void BatchScheduler::run_job(JobId id, std::function<void()> body, std::size_t node_index) {
  std::string error;
  bool ok = true;
  try {
    body();
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  } catch (...) {
    ok = false;
    error = "unknown exception";
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JobInfo& info = jobs_[id];
    info.state = ok ? JobState::kDone : JobState::kFailed;
    info.end_ns = now_ns();
    info.error = error;
    free_cores_[node_index] += info.spec.cores;
    free_memory_[node_index] += info.spec.memory_gb;
    --active_;
    try_dispatch_locked();
  }
  cv_.notify_all();
}

Status BatchScheduler::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job " + std::to_string(id));
  cv_.wait(lock, [&] {
    const JobState s = jobs_[id].state;
    return s == JobState::kDone || s == JobState::kFailed;
  });
  const JobInfo& info = jobs_[id];
  if (info.state == JobState::kFailed) {
    return Status::Internal("job '" + info.spec.name + "' failed: " + info.error);
  }
  return Status::Ok();
}

Result<JobInfo> BatchScheduler::info(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job " + std::to_string(id));
  return it->second;
}

std::vector<JobInfo> BatchScheduler::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, info] : jobs_) out.push_back(info);
  return out;
}

}  // namespace climate::hpcwaas
