// Container Image Creation service (paper section 4.1: "automates the
// creation of the container images for workflows, including the code as well
// as all the required software compiled for the target HPC platform").
//
// Builds layered image manifests from a software specification for a target
// platform. Layers are content-addressed (hash of the cumulative package
// list + platform), and a layer cache makes warm rebuilds cheap — the
// cold/warm build asymmetry the HPCWaaS deployment bench (FIG1) measures.
// Build cost is simulated deterministically from package "compile sizes".
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::hpcwaas {

using common::Result;
using common::Status;

/// Target platform of an image build (HPC systems differ, which is why the
/// service exists).
struct PlatformSpec {
  std::string name = "zeus";      ///< Cluster name.
  std::string arch = "x86_64";
  std::string mpi = "openmpi4";   ///< MPI flavour compiled against.
  bool operator<(const PlatformSpec& other) const {
    return std::tie(name, arch, mpi) < std::tie(other.name, other.arch, other.mpi);
  }
};

/// What to build: base environment plus an ordered package list.
struct ImageSpec {
  std::string name;
  std::string base = "ubuntu22.04";
  std::vector<std::string> packages;  ///< e.g. {"pycompss", "pyophidia", "tensorflow"}.
  PlatformSpec platform;
};

/// One image layer.
struct ImageLayer {
  std::string digest;       ///< Content hash of cumulative packages + platform.
  std::string package;      ///< Package installed by this layer.
  std::uint64_t size_bytes = 0;
  bool from_cache = false;
};

/// A finished image.
struct ImageManifest {
  std::string id;           ///< "sha:<hash>" of the top layer.
  std::string name;
  PlatformSpec platform;
  std::vector<ImageLayer> layers;
  double build_ms = 0.0;    ///< Simulated build time.
  std::size_t cache_hits = 0;

  std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const ImageLayer& layer : layers) total += layer.size_bytes;
    return total;
  }
};

/// The build service with its layer cache.
class ContainerImageService {
 public:
  /// Builds (or retrieves from cache) an image for the spec.
  Result<ImageManifest> build(const ImageSpec& spec);

  /// Looks up a finished image by id.
  Result<ImageManifest> get(const std::string& image_id) const;

  /// Cached layer count.
  std::size_t cached_layers() const;

  /// Drops the layer cache (forces cold builds).
  void clear_cache();

  /// Simulated per-package build cost [ms] — deterministic in the package
  /// name and platform; exposed for the bench's reporting.
  static double package_build_ms(const std::string& package, const PlatformSpec& platform);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ImageLayer> layer_cache_;        // digest -> layer
  std::map<std::string, ImageManifest> images_;          // id -> manifest
};

}  // namespace climate::hpcwaas
