// Minimal YAML-subset parser producing common::Json documents — enough for
// the TOSCA topology files of the Alien4Cloud/Yorc deployment path (paper
// section 4.1): nested block mappings, block sequences, scalars (strings,
// numbers, booleans, null), quoted strings and '#' comments. Flow syntax,
// anchors and multi-line scalars are not part of the subset.
#pragma once

#include <string>

#include "common/json.hpp"
#include "common/status.hpp"

namespace climate::hpcwaas {

using common::Json;
using common::Result;
using common::Status;

/// Parses a YAML-subset document into a Json tree.
Result<Json> parse_yaml(const std::string& text);

}  // namespace climate::hpcwaas
