// Batch scheduling system of the target cluster (Zeus runs IBM Spectrum
// LSF; this is the equivalent substrate the orchestrator submits to).
// FCFS with simple backfill over a set of nodes with core/memory capacity;
// job bodies execute on real threads, and queue/run timings are recorded so
// the deployment bench can report queue-wait overheads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace climate::hpcwaas {

using common::Result;
using common::Status;

using JobId = std::uint64_t;

/// One cluster node's capacity.
struct BatchNodeSpec {
  std::string name;
  int cores = 4;
  double memory_gb = 64.0;
};

/// Resource request of a job.
struct JobSpec {
  std::string name;
  int cores = 1;
  double memory_gb = 1.0;
};

enum class JobState { kPending, kRunning, kDone, kFailed };

const char* job_state_name(JobState state);

/// Observable job record.
struct JobInfo {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kPending;
  std::string node;        ///< Node it ran on (once started).
  std::int64_t submit_ns = 0;
  std::int64_t start_ns = -1;
  std::int64_t end_ns = -1;
  std::string error;

  std::int64_t queue_wait_ns() const { return start_ns < 0 ? -1 : start_ns - submit_ns; }
};

/// The scheduler.
class BatchScheduler {
 public:
  explicit BatchScheduler(std::vector<BatchNodeSpec> nodes);
  /// Waits for all jobs to finish, then stops.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues a job; `body` runs when resources free up. Jobs requesting
  /// more cores/memory than any node owns are rejected.
  Result<JobId> submit(const JobSpec& spec, std::function<void()> body);

  /// Blocks until the job reaches a terminal state; FAILED jobs return the
  /// captured error.
  Status wait(JobId id);

  /// Snapshot of a job's record.
  Result<JobInfo> info(JobId id) const;

  /// All job records (submission order).
  std::vector<JobInfo> jobs() const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct PendingJob {
    JobId id;
    std::function<void()> body;
  };

  void try_dispatch_locked();
  void run_job(JobId id, std::function<void()> body, std::size_t node_index);
  std::int64_t now_ns() const;

  std::vector<BatchNodeSpec> nodes_;
  std::vector<int> free_cores_;
  std::vector<double> free_memory_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<PendingJob> queue_;
  std::map<JobId, JobInfo> jobs_;
  std::map<JobId, std::size_t> job_node_;
  std::vector<std::thread> threads_;
  JobId next_id_ = 1;
  std::size_t active_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace climate::hpcwaas
