#include "hpcwaas/orchestrator.hpp"

#include <map>

#include "common/strings.hpp"
#include "obs/obs.hpp"
#include "obs/prof/profile.hpp"

namespace climate::hpcwaas {
namespace {

/// Platform of the compute node hosting (transitively) a node template.
PlatformSpec platform_for(const Topology& topology, const NodeTemplate& node) {
  PlatformSpec platform;
  const NodeTemplate* current = &node;
  for (int hops = 0; hops < 16 && current != nullptr; ++hops) {
    if (current->kind == NodeKind::kCompute) {
      auto it = current->properties.find("cluster");
      if (it != current->properties.end()) platform.name = it->second;
      it = current->properties.find("arch");
      if (it != current->properties.end()) platform.arch = it->second;
      it = current->properties.find("mpi");
      if (it != current->properties.end()) platform.mpi = it->second;
      return platform;
    }
    current = current->host.empty() ? nullptr : topology.find(current->host);
  }
  return platform;
}

}  // namespace

DeploymentStep Orchestrator::deploy_node(const Topology& topology, const NodeTemplate& node,
                                         Deployment* deployment) {
  DeploymentStep step;
  step.node = node.name;
  step.kind = node.kind;
  obs::Span span("hpcwaas", "deploy:" + node.name);
  step.start_ns = obs::now_ns();
  const auto begin = std::chrono::steady_clock::now();
  const std::int64_t step_key_base = step_ordinal_++ * 100;
  int attempt = 0;

  // One attempt of the step's work. Success-path mutations of the deployment
  // (image ids, workflow node) happen inside, which is safe because the
  // retry loop only re-runs failed attempts.
  auto run_once = [&]() -> Status {
    const std::int64_t attempt_key = step_key_base + attempt++;
    if (faults_ && faults_->fire(common::fault::Kind::kStepError, node.name, attempt_key)) {
      OBS_COUNTER_ADD("fault.injected.hpcwaas.step_error", 1);
      obs::Span fault_span("fault", "inject:step_error");
      return Status::Unavailable("injected deployment-step fault at node '" + node.name + "'");
    }
    switch (node.kind) {
      case NodeKind::kCompute: {
        // Nothing to install; the compute node is the target infrastructure.
        auto it = node.properties.find("cluster");
        step.detail = "target cluster " + (it != node.properties.end() ? it->second : "default");
        return Status::Ok();
      }
      case NodeKind::kSoftware: {
        ImageSpec spec;
        spec.name = node.name;
        auto it = node.properties.find("base");
        if (it != node.properties.end()) spec.base = it->second;
        it = node.properties.find("packages");
        if (it != node.properties.end()) {
          for (const std::string& pkg : common::split(it->second, ',')) {
            const std::string trimmed = common::trim(pkg);
            if (!trimmed.empty()) spec.packages.push_back(trimmed);
          }
        }
        spec.platform = platform_for(topology, node);
        auto manifest = images_->build(spec);
        if (!manifest.ok()) return manifest.status();
        deployment->image_ids.push_back(manifest->id);
        step.detail = common::format("image %s (%zu layers, %zu cached, %.0f ms simulated build)",
                                     manifest->id.c_str(), manifest->layers.size(),
                                     manifest->cache_hits, manifest->build_ms);
        return Status::Ok();
      }
      case NodeKind::kDataPipeline: {
        auto it = node.properties.find("pipeline");
        const std::string pipeline = it != node.properties.end() ? it->second : node.name;
        auto report = dls_->run(pipeline);
        if (!report.ok()) return report.status();
        step.detail = common::format("pipeline '%s': %zu steps, %s moved", pipeline.c_str(),
                                     report->steps.size(),
                                     common::human_bytes(static_cast<double>(report->total_bytes))
                                         .c_str());
        if (!report->ok()) {
          for (const StepReport& sr : report->steps) {
            if (!sr.status.ok()) return sr.status;
          }
        }
        return Status::Ok();
      }
      case NodeKind::kWorkflow: {
        deployment->workflow_node = node.name;
        step.detail = "workflow entry registered";
        return Status::Ok();
      }
    }
    return Status::Internal("unknown node kind");
  };

  common::RetryStats stats;
  step.status = common::retry_call(run_once, retry_, common::transient_status, &stats);
  step.attempts = stats.attempts;
  if (stats.attempts > 1) {
    OBS_COUNTER_ADD("hpcwaas.deploy_step_retries", stats.attempts - 1);
    step.detail += common::format(" [%d attempts]", stats.attempts);
  }

  step.elapsed_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                              begin)
                        .count();
  step.end_ns = obs::now_ns();
  obs::observe_histogram("hpcwaas.deploy_step_ns." + std::string(node_kind_name(node.kind)),
                         step.elapsed_ms * 1e6);
  return step;
}

namespace {

/// Replays the executed deployment as a pseudo task trace — one task per
/// step, dependency edges from the topology's depends_on/host requirements —
/// so the workflow profiler can attribute the deployment's critical path.
std::string deployment_run_report(const Topology& topology, const Deployment& deployment) {
  std::map<std::string, taskrt::TaskId> id_of;
  for (const DeploymentStep& step : deployment.steps) {
    if (step.start_ns >= 0) id_of.emplace(step.node, id_of.size() + 1);
  }
  std::vector<taskrt::TaskTrace> tasks;
  tasks.reserve(id_of.size());
  for (const DeploymentStep& step : deployment.steps) {
    auto it = id_of.find(step.node);
    if (it == id_of.end()) continue;
    taskrt::TaskTrace t;
    t.id = it->second;
    t.name = step.node;
    t.state = step.status.ok() ? taskrt::TaskState::kCompleted : taskrt::TaskState::kFailed;
    t.node = 0;  // the orchestrator deploys serially
    t.submit_ns = 0;
    t.start_ns = step.start_ns;
    t.end_ns = std::max(step.end_ns, step.start_ns + 1);
    t.exec_ns = t.end_ns - t.start_ns;
    t.attempts = step.attempts;
    if (!step.status.ok()) t.error = step.status.message();
    if (const NodeTemplate* tmpl = topology.find(step.node)) {
      auto add_dep = [&](const std::string& name) {
        auto dep = id_of.find(name);
        if (dep != id_of.end()) t.deps.push_back(dep->second);
      };
      for (const std::string& name : tmpl->depends_on) add_dep(name);
      if (!tmpl->host.empty()) add_dep(tmpl->host);
    }
    tasks.push_back(std::move(t));
  }
  if (tasks.empty()) return {};
  return obs::prof::analyze(taskrt::Trace(std::move(tasks))).text_report();
}

}  // namespace

Deployment Orchestrator::deploy(const Topology& topology) {
  OBS_SPAN("hpcwaas", "deploy");
  OBS_SCOPED_LATENCY("hpcwaas.deploy_ns");
  OBS_COUNTER_ADD("hpcwaas.deployments", 1);
  Deployment deployment;
  deployment.id = "dep-" + std::to_string(next_id_++);
  deployment.topology_name = topology.name;

  auto order = topology.deployment_order();
  if (!order.ok()) {
    DeploymentStep step;
    step.node = "(plan)";
    step.status = order.status();
    deployment.steps.push_back(std::move(step));
    deployment.state = DeploymentState::kFailed;
    return deployment;
  }

  const auto begin = std::chrono::steady_clock::now();
  bool failed = false;
  for (const std::string& name : *order) {
    const NodeTemplate* node = topology.find(name);
    DeploymentStep step = deploy_node(topology, *node, &deployment);
    failed = !step.status.ok();
    deployment.steps.push_back(std::move(step));
    if (failed) break;
  }
  deployment.total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin).count();
  deployment.state = failed ? DeploymentState::kFailed : DeploymentState::kDeployed;
  deployment.run_report = deployment_run_report(topology, deployment);
  return deployment;
}

}  // namespace climate::hpcwaas
