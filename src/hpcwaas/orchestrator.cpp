#include "hpcwaas/orchestrator.hpp"

#include "common/strings.hpp"
#include "obs/obs.hpp"

namespace climate::hpcwaas {
namespace {

/// Platform of the compute node hosting (transitively) a node template.
PlatformSpec platform_for(const Topology& topology, const NodeTemplate& node) {
  PlatformSpec platform;
  const NodeTemplate* current = &node;
  for (int hops = 0; hops < 16 && current != nullptr; ++hops) {
    if (current->kind == NodeKind::kCompute) {
      auto it = current->properties.find("cluster");
      if (it != current->properties.end()) platform.name = it->second;
      it = current->properties.find("arch");
      if (it != current->properties.end()) platform.arch = it->second;
      it = current->properties.find("mpi");
      if (it != current->properties.end()) platform.mpi = it->second;
      return platform;
    }
    current = current->host.empty() ? nullptr : topology.find(current->host);
  }
  return platform;
}

}  // namespace

DeploymentStep Orchestrator::deploy_node(const Topology& topology, const NodeTemplate& node,
                                         Deployment* deployment) {
  DeploymentStep step;
  step.node = node.name;
  step.kind = node.kind;
  obs::Span span("hpcwaas", "deploy:" + node.name);
  const auto begin = std::chrono::steady_clock::now();

  switch (node.kind) {
    case NodeKind::kCompute: {
      // Nothing to install; the compute node is the target infrastructure.
      step.status = Status::Ok();
      auto it = node.properties.find("cluster");
      step.detail = "target cluster " + (it != node.properties.end() ? it->second : "default");
      break;
    }
    case NodeKind::kSoftware: {
      ImageSpec spec;
      spec.name = node.name;
      auto it = node.properties.find("base");
      if (it != node.properties.end()) spec.base = it->second;
      it = node.properties.find("packages");
      if (it != node.properties.end()) {
        for (const std::string& pkg : common::split(it->second, ',')) {
          const std::string trimmed = common::trim(pkg);
          if (!trimmed.empty()) spec.packages.push_back(trimmed);
        }
      }
      spec.platform = platform_for(topology, node);
      auto manifest = images_->build(spec);
      if (!manifest.ok()) {
        step.status = manifest.status();
        break;
      }
      deployment->image_ids.push_back(manifest->id);
      step.status = Status::Ok();
      step.detail = common::format("image %s (%zu layers, %zu cached, %.0f ms simulated build)",
                                   manifest->id.c_str(), manifest->layers.size(),
                                   manifest->cache_hits, manifest->build_ms);
      break;
    }
    case NodeKind::kDataPipeline: {
      auto it = node.properties.find("pipeline");
      const std::string pipeline = it != node.properties.end() ? it->second : node.name;
      auto report = dls_->run(pipeline);
      if (!report.ok()) {
        step.status = report.status();
        break;
      }
      if (!report->ok()) {
        for (const StepReport& sr : report->steps) {
          if (!sr.status.ok()) {
            step.status = sr.status;
            break;
          }
        }
      } else {
        step.status = Status::Ok();
      }
      step.detail = common::format("pipeline '%s': %zu steps, %s moved", pipeline.c_str(),
                                   report->steps.size(),
                                   common::human_bytes(static_cast<double>(report->total_bytes)).c_str());
      break;
    }
    case NodeKind::kWorkflow: {
      deployment->workflow_node = node.name;
      step.status = Status::Ok();
      step.detail = "workflow entry registered";
      break;
    }
  }

  step.elapsed_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                              begin)
                        .count();
  obs::observe_histogram("hpcwaas.deploy_step_ns." + std::string(node_kind_name(node.kind)),
                         step.elapsed_ms * 1e6);
  return step;
}

Deployment Orchestrator::deploy(const Topology& topology) {
  OBS_SPAN("hpcwaas", "deploy");
  OBS_SCOPED_LATENCY("hpcwaas.deploy_ns");
  OBS_COUNTER_ADD("hpcwaas.deployments", 1);
  Deployment deployment;
  deployment.id = "dep-" + std::to_string(next_id_++);
  deployment.topology_name = topology.name;

  auto order = topology.deployment_order();
  if (!order.ok()) {
    DeploymentStep step;
    step.node = "(plan)";
    step.status = order.status();
    deployment.steps.push_back(std::move(step));
    deployment.state = DeploymentState::kFailed;
    return deployment;
  }

  const auto begin = std::chrono::steady_clock::now();
  bool failed = false;
  for (const std::string& name : *order) {
    const NodeTemplate* node = topology.find(name);
    DeploymentStep step = deploy_node(topology, *node, &deployment);
    failed = !step.status.ok();
    deployment.steps.push_back(std::move(step));
    if (failed) break;
  }
  deployment.total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin).count();
  deployment.state = failed ? DeploymentState::kFailed : DeploymentState::kDeployed;
  return deployment;
}

}  // namespace climate::hpcwaas
