// Detection-skill scoring against the simulator's ground truth: probability
// of detection (POD), false-alarm ratio (FAR) and mean centre error, the
// metrics the TC detection experiment (E5) reports for both the CNN and the
// deterministic tracker.
#pragma once

#include <vector>

#include "esm/events.hpp"

namespace climate::extremes {

/// A (step, lat, lon) fix from any detector.
struct DetectionFix {
  int step = 0;
  double lat = 0.0;
  double lon = 0.0;
};

/// Aggregate skill scores.
struct SkillScores {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t false_alarms = 0;
  double mean_center_error_km = 0.0;

  double pod() const {
    const double denom = static_cast<double>(hits + misses);
    return denom > 0 ? static_cast<double>(hits) / denom : 0.0;
  }
  double far() const {
    const double denom = static_cast<double>(hits + false_alarms);
    return denom > 0 ? static_cast<double>(false_alarms) / denom : 0.0;
  }
};

/// Matches detections against truth samples per step: a truth sample is hit
/// when some detection of the same step lies within `match_km`; detections
/// matching no truth are false alarms. Each detection matches at most one
/// truth sample (greedy nearest).
SkillScores score_detections(const std::vector<DetectionFix>& detections,
                             const std::vector<esm::CycloneTruth>& truth, double match_km = 500.0);

/// Flattens truth tracks into per-step fixes (for detectors evaluated per
/// time step).
std::vector<DetectionFix> truth_fixes(const std::vector<esm::CycloneTruth>& truth);

}  // namespace climate::extremes
