#include "extremes/heatwaves.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "esm/climatology.hpp"

namespace climate::extremes {

Baseline Baseline::analytic(const LatLonGrid& grid, int days_per_year, int steps_per_day,
                            double warming_offset_c) {
  Baseline b;
  b.days_per_year_ = days_per_year;
  b.nlat_ = grid.nlat();
  b.nlon_ = grid.nlon();
  b.tasmax_.resize(static_cast<std::size_t>(days_per_year) * b.nlat_ * b.nlon_);
  b.tasmin_.resize(b.tasmax_.size());
  // Expected diurnal extremes over the day's steps.
  double diurnal_max = -1e30, diurnal_min = 1e30;
  for (int s = 0; s < steps_per_day; ++s) {
    const double d = esm::diurnal_cycle_c(s, steps_per_day);
    diurnal_max = std::max(diurnal_max, d);
    diurnal_min = std::min(diurnal_min, d);
  }
  for (int doy = 0; doy < days_per_year; ++doy) {
    for (std::size_t i = 0; i < b.nlat_; ++i) {
      const double base =
          esm::baseline_temperature_c(grid.lat(i), doy, days_per_year) + warming_offset_c;
      const float tmax = static_cast<float>(base + diurnal_max);
      const float tmin = static_cast<float>(base + diurnal_min);
      const std::size_t offset = static_cast<std::size_t>(doy) * b.nlat_ * b.nlon_ + i * b.nlon_;
      for (std::size_t j = 0; j < b.nlon_; ++j) {
        b.tasmax_[offset + j] = tmax;
        b.tasmin_[offset + j] = tmin;
      }
    }
  }
  return b;
}

Baseline Baseline::from_daily_data(const LatLonGrid& grid, int days_per_year,
                                   const std::vector<Field>& tasmax_days,
                                   const std::vector<Field>& tasmin_days) {
  Baseline b;
  b.days_per_year_ = days_per_year;
  b.nlat_ = grid.nlat();
  b.nlon_ = grid.nlon();
  const std::size_t cells = b.nlat_ * b.nlon_;
  b.tasmax_.assign(static_cast<std::size_t>(days_per_year) * cells, 0.0f);
  b.tasmin_.assign(b.tasmax_.size(), 0.0f);
  std::vector<int> counts(static_cast<std::size_t>(days_per_year), 0);
  for (std::size_t d = 0; d < tasmax_days.size(); ++d) {
    const int doy = static_cast<int>(d) % days_per_year;
    ++counts[static_cast<std::size_t>(doy)];
    const std::size_t offset = static_cast<std::size_t>(doy) * cells;
    for (std::size_t c = 0; c < cells; ++c) {
      b.tasmax_[offset + c] += tasmax_days[d][c];
      if (d < tasmin_days.size()) b.tasmin_[offset + c] += tasmin_days[d][c];
    }
  }
  for (int doy = 0; doy < days_per_year; ++doy) {
    const int n = std::max(1, counts[static_cast<std::size_t>(doy)]);
    const std::size_t offset = static_cast<std::size_t>(doy) * cells;
    for (std::size_t c = 0; c < cells; ++c) {
      b.tasmax_[offset + c] /= static_cast<float>(n);
      b.tasmin_[offset + c] /= static_cast<float>(n);
    }
  }
  return b;
}

Baseline Baseline::from_daily_quantile(const LatLonGrid& grid, int days_per_year,
                                       const std::vector<Field>& tasmax_days,
                                       const std::vector<Field>& tasmin_days, double q,
                                       int window) {
  Baseline b;
  b.days_per_year_ = days_per_year;
  b.nlat_ = grid.nlat();
  b.nlon_ = grid.nlon();
  const std::size_t cells = b.nlat_ * b.nlon_;
  b.tasmax_.assign(static_cast<std::size_t>(days_per_year) * cells, 0.0f);
  b.tasmin_.assign(b.tasmax_.size(), 0.0f);

  // Indices of the day-of-run samples contributing to each calendar day
  // (the day itself +- window, across all years in the stack).
  std::vector<std::vector<std::size_t>> samples(static_cast<std::size_t>(days_per_year));
  const int total_days = static_cast<int>(tasmax_days.size());
  for (int d = 0; d < total_days; ++d) {
    for (int w = -window; w <= window; ++w) {
      const int doy = ((d + w) % days_per_year + days_per_year) % days_per_year;
      samples[static_cast<std::size_t>(doy)].push_back(static_cast<std::size_t>(d));
    }
  }

  std::vector<double> max_values;
  std::vector<double> min_values;
  for (int doy = 0; doy < days_per_year; ++doy) {
    const auto& sample_days = samples[static_cast<std::size_t>(doy)];
    const std::size_t offset = static_cast<std::size_t>(doy) * cells;
    for (std::size_t c = 0; c < cells; ++c) {
      max_values.clear();
      min_values.clear();
      for (std::size_t d : sample_days) {
        max_values.push_back(tasmax_days[d][c]);
        if (d < tasmin_days.size()) min_values.push_back(tasmin_days[d][c]);
      }
      b.tasmax_[offset + c] =
          max_values.empty() ? 0.0f : static_cast<float>(common::quantile(max_values, q));
      b.tasmin_[offset + c] =
          min_values.empty() ? 0.0f : static_cast<float>(common::quantile(min_values, 1.0 - q));
    }
  }
  return b;
}

std::vector<float> Baseline::tasmax_rows_by_day() const {
  // Transpose [day][cell] -> [cell][day].
  const std::size_t cells = nlat_ * nlon_;
  std::vector<float> out(tasmax_.size());
  for (std::size_t d = 0; d < static_cast<std::size_t>(days_per_year_); ++d) {
    for (std::size_t c = 0; c < cells; ++c) {
      out[c * static_cast<std::size_t>(days_per_year_) + d] = tasmax_[d * cells + c];
    }
  }
  return out;
}

std::vector<float> Baseline::tasmin_rows_by_day() const {
  const std::size_t cells = nlat_ * nlon_;
  std::vector<float> out(tasmin_.size());
  for (std::size_t d = 0; d < static_cast<std::size_t>(days_per_year_); ++d) {
    for (std::size_t c = 0; c < cells; ++c) {
      out[c * static_cast<std::size_t>(days_per_year_) + d] = tasmin_[d * cells + c];
    }
  }
  return out;
}

WaveIndices compute_wave_indices(const std::vector<Field>& daily_temp, const Baseline& baseline,
                                 bool warm, int min_days, double threshold_c) {
  const std::size_t nlat = baseline.nlat();
  const std::size_t nlon = baseline.nlon();
  WaveIndices out{Field(nlat, nlon), Field(nlat, nlon), Field(nlat, nlon)};
  const int days = static_cast<int>(daily_temp.size());
  for (std::size_t i = 0; i < nlat; ++i) {
    for (std::size_t j = 0; j < nlon; ++j) {
      int run = 0;
      int longest = 0;
      int waves = 0;
      int wave_days = 0;
      for (int d = 0; d <= days; ++d) {
        bool exceed = false;
        if (d < days) {
          const int doy = d % baseline.days_per_year();
          const float temp = daily_temp[static_cast<std::size_t>(d)].at(i, j);
          // Computed as a float difference first so the result is bit-equal
          // to the datacube pipeline (intercube sub -> predicate >=).
          const float diff = warm ? temp - baseline.tasmax(i, j, doy)
                                  : baseline.tasmin(i, j, doy) - temp;
          exceed = diff >= static_cast<float>(threshold_c);
        }
        if (exceed) {
          ++run;
        } else {
          if (run >= min_days) {
            longest = std::max(longest, run);
            ++waves;
            wave_days += run;
          }
          run = 0;
        }
      }
      out.duration_max.at(i, j) = static_cast<float>(longest);
      out.count.at(i, j) = static_cast<float>(waves);
      out.frequency.at(i, j) =
          days > 0 ? static_cast<float>(wave_days) / static_cast<float>(days) : 0.0f;
    }
  }
  return out;
}

Result<WaveIndexCubes> compute_wave_indices_datacube(datacube::Client& client,
                                                     const datacube::Cube& temp,
                                                     const datacube::Cube& baseline, bool warm,
                                                     int min_days, double threshold_c) {
  (void)client;
  // Exceedance: warm -> temp - baseline >= threshold, cold -> baseline - temp >= threshold.
  auto diff = warm ? temp.intercube(baseline, "sub", "temp minus baseline")
                   : baseline.intercube(temp, "sub", "baseline minus temp");
  if (!diff.ok()) return diff.status();

  auto mask = diff->apply(common::format("oph_predicate(measure, '>=%g', 1, 0)", threshold_c),
                          "wave-day mask");
  if (!mask.ok()) return mask.status();

  // The "duration cube" of Listing 1: run lengths at run ends.
  auto duration = mask->apply(common::format("wave_duration(measure, %d)", min_days),
                              "wave duration cube");
  if (!duration.ok()) return duration.status();

  WaveIndexCubes out;
  // Listing 1, IndexDurationMax: maximum length of waves in a year.
  auto max_cube = duration->reduce("max", 0, "Max Duration cube");
  if (!max_cube.ok()) return max_cube.status();
  out.duration_max = *max_cube;

  // Listing 1, IndexDurationNumber: predicate mask + sum.
  auto number_mask =
      duration->apply("oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
  if (!number_mask.ok()) return number_mask.status();
  auto count_cube = number_mask->reduce("sum", 0, "Number of durations cube");
  if (!count_cube.ok()) return count_cube.status();
  out.count = *count_cube;
  CLIMATE_RETURN_IF_ERROR(number_mask->del());

  // Frequency: total wave days / days-in-year.
  auto total_days = duration->reduce("sum", 0, "Total wave days cube");
  if (!total_days.ok()) return total_days.status();
  auto schema = temp.schema();
  if (!schema.ok()) return schema.status();
  const double days = static_cast<double>(schema->implicit_dim.size);
  auto freq = total_days->apply(common::format("measure / %g", days), "Wave frequency cube");
  if (!freq.ok()) return freq.status();
  out.frequency = *freq;
  CLIMATE_RETURN_IF_ERROR(total_days->del());
  CLIMATE_RETURN_IF_ERROR(diff->del());
  CLIMATE_RETURN_IF_ERROR(mask->del());
  CLIMATE_RETURN_IF_ERROR(duration->del());
  return out;
}

Result<Field> index_cube_to_field(const datacube::Cube& cube, const LatLonGrid& grid) {
  auto values = cube.values();
  if (!values.ok()) return values.status();
  if (values->size() != grid.size()) {
    return Status::InvalidArgument(
        common::format("index cube has %zu values, grid expects %zu", values->size(), grid.size()));
  }
  Field field(grid);
  std::copy(values->begin(), values->end(), field.data().begin());
  return field;
}

}  // namespace climate::extremes
