// Deterministic tropical-cyclone detection and tracking (the "deterministic
// algorithm for Tropical Cyclones tracking" the paper's workflow runs to
// validate the ML localization, section 5.4). Implements the classic
// criteria-based scheme: sea-level-pressure minima with strong nearby winds,
// cyclonic vorticity and a warm environment, linked across six-hourly steps
// under a maximum-displacement constraint with a minimum-lifetime filter.
#pragma once

#include <vector>

#include "common/grid.hpp"

namespace climate::extremes {

using common::Field;
using common::LatLonGrid;

/// Detection thresholds (defaults tuned to the simulator's climate but all
/// physically standard).
struct TrackerCriteria {
  double max_abs_lat = 50.0;       ///< TCs live equatorward of this.
  double psl_max_hpa = 1002.0;     ///< Candidate pressure minimum must be below.
  double psl_dip_hpa = 4.0;        ///< Depth below the neighbourhood mean.
  double wind_min_ms = 16.0;       ///< Peak wind within the search radius.
  double vort_min = 1.0;           ///< |relative vorticity|, cyclonic sign.
  int search_radius_cells = 3;     ///< Neighbourhood half-width.
  double max_speed_kmh = 65.0;     ///< Track-linking displacement limit.
  int min_track_steps = 6;         ///< Minimum lifetime (six-hourly steps).
  int max_gap_steps = 1;           ///< Missed detections bridged by linking.
};

/// One candidate TC fix at one time step.
struct TcCandidate {
  int step = 0;
  double lat = 0.0;
  double lon = 0.0;
  double psl_hpa = 0.0;
  double max_wind_ms = 0.0;
  double vorticity = 0.0;
};

/// A linked track.
struct TcTrack {
  int id = 0;
  std::vector<TcCandidate> fixes;

  int duration_steps() const { return static_cast<int>(fixes.size()); }
  double min_psl() const;
  double max_wind() const;
};

/// Finds candidate centres in one step's fields. `vort` uses the simulator's
/// 1e-5/s units; candidates require cyclonic sign for their hemisphere.
std::vector<TcCandidate> detect_candidates(const Field& psl, const Field& wspd, const Field& vort,
                                           const LatLonGrid& grid, int step,
                                           const TrackerCriteria& criteria = {});

/// Links per-step candidates into tracks with greedy nearest-neighbour
/// matching (closest pair first) under the speed limit; tracks shorter than
/// min_track_steps are dropped.
std::vector<TcTrack> link_tracks(const std::vector<std::vector<TcCandidate>>& per_step,
                                 int steps_per_day, const TrackerCriteria& criteria = {});

}  // namespace climate::extremes
