#include "extremes/skill.hpp"

#include <algorithm>
#include <map>

#include "common/grid.hpp"

namespace climate::extremes {

std::vector<DetectionFix> truth_fixes(const std::vector<esm::CycloneTruth>& truth) {
  std::vector<DetectionFix> fixes;
  for (const esm::CycloneTruth& cyclone : truth) {
    for (const esm::CycloneSample& sample : cyclone.track) {
      fixes.push_back({sample.step, sample.lat, sample.lon});
    }
  }
  return fixes;
}

SkillScores score_detections(const std::vector<DetectionFix>& detections,
                             const std::vector<esm::CycloneTruth>& truth, double match_km) {
  // Group both sides by step.
  std::map<int, std::vector<DetectionFix>> detections_by_step;
  for (const DetectionFix& d : detections) detections_by_step[d.step].push_back(d);
  std::map<int, std::vector<DetectionFix>> truth_by_step;
  for (const DetectionFix& t : truth_fixes(truth)) truth_by_step[t.step].push_back(t);

  SkillScores scores;
  double error_sum = 0.0;

  // Steps with truth: greedy nearest matching.
  for (auto& [step, truths] : truth_by_step) {
    auto it = detections_by_step.find(step);
    std::vector<DetectionFix> dets = it == detections_by_step.end() ? std::vector<DetectionFix>{}
                                                                    : it->second;
    std::vector<bool> det_used(dets.size(), false);
    std::vector<bool> truth_hit(truths.size(), false);
    while (true) {
      double best = match_km;
      std::size_t best_t = truths.size(), best_d = dets.size();
      for (std::size_t t = 0; t < truths.size(); ++t) {
        if (truth_hit[t]) continue;
        for (std::size_t d = 0; d < dets.size(); ++d) {
          if (det_used[d]) continue;
          const double km =
              common::great_circle_km(truths[t].lat, truths[t].lon, dets[d].lat, dets[d].lon);
          if (km <= best) {
            best = km;
            best_t = t;
            best_d = d;
          }
        }
      }
      if (best_t == truths.size()) break;
      truth_hit[best_t] = true;
      det_used[best_d] = true;
      ++scores.hits;
      error_sum += best;
    }
    for (std::size_t t = 0; t < truths.size(); ++t) {
      if (!truth_hit[t]) ++scores.misses;
    }
    for (std::size_t d = 0; d < dets.size(); ++d) {
      if (!det_used[d]) ++scores.false_alarms;
    }
    if (it != detections_by_step.end()) detections_by_step.erase(it);
  }
  // Remaining detection steps have no truth at all: all false alarms.
  for (const auto& [step, dets] : detections_by_step) {
    scores.false_alarms += dets.size();
  }
  scores.mean_center_error_km = scores.hits ? error_sum / static_cast<double>(scores.hits) : 0.0;
  return scores;
}

}  // namespace climate::extremes
