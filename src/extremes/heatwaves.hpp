// Heat-wave / cold-wave indices of paper section 5.3.
//
// Definitions (verbatim from the paper): a heat wave is a period of at least
// six consecutive days whose daily maximum temperature exceeds the
// historical average for that location and calendar day by 5 degC; a cold
// wave symmetric on the daily minimum, 5 degC below. The yearly indices per
// grid point are (i) the longest wave duration, (ii) the number of waves and
// (iii) the frequency (fraction of days belonging to a wave).
//
// Two implementations are provided and cross-validated in tests:
//  - a direct reference implementation on dense fields, and
//  - the datacube operator pipeline of Listing 1 (intercube difference ->
//    oph_predicate threshold mask -> wave_duration array primitive ->
//    reduce(max) / predicate+reduce(sum) / reduce(sum)).
#pragma once

#include <vector>

#include "common/grid.hpp"
#include "common/status.hpp"
#include "datacube/client.hpp"

namespace climate::extremes {

using common::Field;
using common::LatLonGrid;
using common::Result;
using common::Status;

/// Default wave criteria from the paper.
inline constexpr int kMinWaveDays = 6;
inline constexpr double kWaveThresholdC = 5.0;

/// Per-calendar-day baseline temperatures ("historical averages ... computed
/// over a 20-year period").
class Baseline {
 public:
  Baseline() = default;

  /// Analytic baseline from the model's climatology: expected daily tasmax /
  /// tasmin (seasonal cycle + diurnal extreme) for a reference year, without
  /// weather noise. `warming_offset_c` shifts both (e.g. the reference
  /// period's GHG warming).
  static Baseline analytic(const LatLonGrid& grid, int days_per_year, int steps_per_day,
                           double warming_offset_c = 0.0);

  /// Empirical baseline: per-calendar-day mean over a multi-year stack of
  /// daily fields (outer index = day-of-run; years concatenated).
  static Baseline from_daily_data(const LatLonGrid& grid, int days_per_year,
                                  const std::vector<Field>& tasmax_days,
                                  const std::vector<Field>& tasmin_days);

  /// Percentile baseline (the ETCCDI-style variant the paper's reference
  /// [31] compares against): per calendar day and cell, the q-quantile of
  /// tasmax across years and the (1-q)-quantile of tasmin, so both wave
  /// kinds use the matching tail. A +-`window` day window around each
  /// calendar day widens the sample like the ETCCDI definitions do.
  static Baseline from_daily_quantile(const LatLonGrid& grid, int days_per_year,
                                      const std::vector<Field>& tasmax_days,
                                      const std::vector<Field>& tasmin_days, double q = 0.9,
                                      int window = 2);

  int days_per_year() const { return days_per_year_; }
  std::size_t nlat() const { return nlat_; }
  std::size_t nlon() const { return nlon_; }

  /// Baseline daily-max temperature for (row, col, day-of-year).
  float tasmax(std::size_t i, std::size_t j, int doy) const {
    return tasmax_[static_cast<std::size_t>(doy) * nlat_ * nlon_ + i * nlon_ + j];
  }
  float tasmin(std::size_t i, std::size_t j, int doy) const {
    return tasmin_[static_cast<std::size_t>(doy) * nlat_ * nlon_ + i * nlon_ + j];
  }

  /// Dense (lat, lon | day) buffers for datacube ingestion: rows over
  /// (lat, lon), array dimension = day-of-year.
  std::vector<float> tasmax_rows_by_day() const;
  std::vector<float> tasmin_rows_by_day() const;

 private:
  int days_per_year_ = 0;
  std::size_t nlat_ = 0, nlon_ = 0;
  std::vector<float> tasmax_;  // [day][lat][lon]
  std::vector<float> tasmin_;
};

/// The three yearly indices, each a (lat, lon) map.
struct WaveIndices {
  Field duration_max;  ///< Longest wave [days].
  Field count;         ///< Number of waves.
  Field frequency;     ///< Wave days / days-in-year.
};

/// Reference implementation on one year of daily fields (tasmax for heat
/// waves; pass tasmin and warm=false for cold waves).
WaveIndices compute_wave_indices(const std::vector<Field>& daily_temp, const Baseline& baseline,
                                 bool warm, int min_days = kMinWaveDays,
                                 double threshold_c = kWaveThresholdC);

/// Datacube pipeline (Listing 1): takes cubes with rows (lat, lon) and the
/// day-of-year array dimension. `temp` is the year's tasmax (or tasmin) and
/// `baseline` the matching baseline cube; produces the three index cubes.
struct WaveIndexCubes {
  datacube::Cube duration_max;
  datacube::Cube count;
  datacube::Cube frequency;
};
Result<WaveIndexCubes> compute_wave_indices_datacube(datacube::Client& client,
                                                     const datacube::Cube& temp,
                                                     const datacube::Cube& baseline, bool warm,
                                                     int min_days = kMinWaveDays,
                                                     double threshold_c = kWaveThresholdC);

/// Converts a one-value-per-row index cube back into a (lat, lon) Field.
Result<Field> index_cube_to_field(const datacube::Cube& cube, const LatLonGrid& grid);

}  // namespace climate::extremes
