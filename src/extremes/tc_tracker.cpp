#include "extremes/tc_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace climate::extremes {

double TcTrack::min_psl() const {
  double m = 1e30;
  for (const TcCandidate& fix : fixes) m = std::min(m, fix.psl_hpa);
  return m;
}

double TcTrack::max_wind() const {
  double m = 0.0;
  for (const TcCandidate& fix : fixes) m = std::max(m, fix.max_wind_ms);
  return m;
}

std::vector<TcCandidate> detect_candidates(const Field& psl, const Field& wspd, const Field& vort,
                                           const LatLonGrid& grid, int step,
                                           const TrackerCriteria& criteria) {
  std::vector<TcCandidate> candidates;
  const int R = criteria.search_radius_cells;
  const long nlat = static_cast<long>(grid.nlat());
  const long nlon = static_cast<long>(grid.nlon());
  for (long i = R; i < nlat - R; ++i) {
    const double lat = grid.lat(static_cast<std::size_t>(i));
    if (std::fabs(lat) > criteria.max_abs_lat || std::fabs(lat) < 3.0) continue;
    for (long j = 0; j < nlon; ++j) {
      const float center = psl.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      if (center > criteria.psl_max_hpa) continue;

      // Local minimum and dip relative to the neighbourhood mean; also find
      // the strongest wind in the neighbourhood. Exact ties (a minimum shared
      // by two cells when the centre falls on a cell edge) are broken in scan
      // order so exactly one of the tied cells is reported.
      bool is_minimum = true;
      double neighbourhood_sum = 0.0;
      int neighbourhood_count = 0;
      double peak_wind = 0.0;
      for (long di = -R; di <= R && is_minimum; ++di) {
        for (long dj = -R; dj <= R; ++dj) {
          const std::size_t ii = static_cast<std::size_t>(i + di);
          const std::size_t jj = grid.wrap_lon(j + dj);
          const float p = psl.at(ii, jj);
          if (di != 0 || dj != 0) {
            if (p < center || (p == center && (di < 0 || (di == 0 && dj < 0)))) {
              is_minimum = false;
              break;
            }
          }
          neighbourhood_sum += p;
          ++neighbourhood_count;
          peak_wind = std::max(peak_wind, static_cast<double>(wspd.at(ii, jj)));
        }
      }
      if (!is_minimum) continue;
      const double dip = neighbourhood_sum / neighbourhood_count - center;
      if (dip < criteria.psl_dip_hpa) continue;
      if (peak_wind < criteria.wind_min_ms) continue;

      // Cyclonic vorticity: positive in the NH, negative in the SH.
      const double v = vort.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      const double cyclonic = lat >= 0 ? v : -v;
      if (cyclonic < criteria.vort_min) continue;

      candidates.push_back({step, lat, grid.lon(static_cast<std::size_t>(j)),
                            static_cast<double>(center), peak_wind, v});
    }
  }
  return candidates;
}

std::vector<TcTrack> link_tracks(const std::vector<std::vector<TcCandidate>>& per_step,
                                 int steps_per_day, const TrackerCriteria& criteria) {
  const double hours_per_step = 24.0 / std::max(1, steps_per_day);
  const double max_km = criteria.max_speed_kmh * hours_per_step;

  std::vector<TcTrack> open;
  std::vector<TcTrack> finished;
  int next_id = 1;

  auto close_stale = [&](int step) {
    for (auto it = open.begin(); it != open.end();) {
      if (it->fixes.back().step < step - 1 - criteria.max_gap_steps) {
        if (it->duration_steps() >= criteria.min_track_steps) finished.push_back(std::move(*it));
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (const std::vector<TcCandidate>& candidates : per_step) {
    if (candidates.empty()) continue;
    const int step = candidates.front().step;
    close_stale(step);

    // Greedy closest-pair matching between open tracks and this step's
    // candidates.
    std::vector<bool> candidate_used(candidates.size(), false);
    std::vector<bool> track_extended(open.size(), false);
    while (true) {
      double best_km = -1.0;
      std::size_t best_track = open.size();
      std::size_t best_candidate = candidates.size();
      for (std::size_t t = 0; t < open.size(); ++t) {
        if (track_extended[t]) continue;
        const TcCandidate& last = open[t].fixes.back();
        const int gap = step - last.step;  // 1 = consecutive
        if (gap < 1 || gap > 1 + criteria.max_gap_steps) continue;
        // The displacement budget scales with the number of steps bridged.
        const double limit = max_km * gap;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          if (candidate_used[c]) continue;
          const double km = common::great_circle_km(last.lat, last.lon, candidates[c].lat,
                                                    candidates[c].lon);
          if (km <= limit && (best_track == open.size() || km < best_km)) {
            best_km = km;
            best_track = t;
            best_candidate = c;
          }
        }
      }
      if (best_track == open.size()) break;
      open[best_track].fixes.push_back(candidates[best_candidate]);
      track_extended[best_track] = true;
      candidate_used[best_candidate] = true;
    }

    // Unmatched candidates seed new tracks.
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (candidate_used[c]) continue;
      TcTrack track;
      track.id = next_id++;
      track.fixes.push_back(candidates[c]);
      open.push_back(std::move(track));
      track_extended.push_back(true);
    }
  }
  for (TcTrack& track : open) {
    if (track.duration_steps() >= criteria.min_track_steps) finished.push_back(std::move(track));
  }
  std::sort(finished.begin(), finished.end(),
            [](const TcTrack& a, const TcTrack& b) { return a.id < b.id; });
  return finished;
}

}  // namespace climate::extremes
