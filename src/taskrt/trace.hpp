// Execution trace of a workflow run: per-task timings and placement, plus
// exporters for the artifacts the paper shows — the runtime task graph of
// Figure 3 (DOT, one colour per task function) and Gantt/overlap metrics
// used by the concurrency experiment (E2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "taskrt/types.hpp"

namespace climate::taskrt {

/// One task's trace record. Times are nanoseconds on the obs::now_ns()
/// clock. The full lifecycle state machine is recorded so the profiler
/// (src/obs/prof) can decompose each task into dependency-wait
/// (submit -> ready), queue-wait (queued -> start), data transfer, body
/// execution and checkpoint components:
///
///   submit --(dep wait)--> ready -> queued --(queue wait)--> start
///          --(transfer + exec + overhead)--> end [--> checkpoint save]
struct TaskTrace {
  TaskId id = 0;
  std::string name;          ///< Function name (graph colour class).
  TaskState state = TaskState::kPending;
  int node = -1;             ///< Executing node, -1 if never ran.
  std::int64_t submit_ns = 0;
  std::int64_t ready_ns = -1;   ///< All dependencies satisfied.
  std::int64_t queued_ns = -1;  ///< Pushed onto a node's ready queue (re-stamped on retry).
  std::int64_t start_ns = -1;   ///< Dequeued by a worker; input staging begins
                                ///< (re-stamped on retry, like queued_ns).
  std::int64_t end_ns = -1;     ///< Outputs published (terminal stamp for failures too).
  std::int64_t transfer_ns = 0;   ///< Input staging + simulated interconnect time.
  std::int64_t exec_ns = 0;       ///< Task body time (summed over retry attempts).
  std::int64_t checkpoint_ns = 0; ///< Checkpoint save time (after end_ns).
  std::vector<TaskId> deps;  ///< Predecessor task ids.
  bool from_checkpoint = false;
  int attempts = 0;          ///< Execution attempts (retries + speculative backups).
  int node_failures = 0;     ///< Attempts lost to node crashes (not retries).
  bool speculated = false;   ///< A straggler backup copy was launched.
  /// Failure/cancellation reason. Cancelled tasks carry the structured
  /// cause, e.g. "cancelled by failure of task 7 ('load_tmax')".
  std::string error;
  TaskId cancelled_by = kNoTask;  ///< Root failed task for cancellations.
};

/// Snapshot of a finished (or running) workflow's task graph and timings.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TaskTrace> tasks) : tasks_(std::move(tasks)) {}

  const std::vector<TaskTrace>& tasks() const { return tasks_; }

  /// Number of tasks per function name (the "circles per colour" of Fig. 3).
  std::map<std::string, std::size_t> counts_by_name() const;

  /// Total number of dependency edges.
  std::size_t edge_count() const;

  /// Wall-clock span from first task start to last task end, ns.
  std::int64_t makespan_ns() const;

  /// Sum of task execution times, ns (serial work).
  std::int64_t total_busy_ns() const;

  /// Fraction of `name_a` execution time overlapped with any `name_b`
  /// execution (the paper's simulation/analytics concurrency claim).
  double overlap_fraction(const std::string& name_a, const std::string& name_b) const;

  /// Busy fraction of each node over the makespan (node index -> [0,1]).
  std::map<int, double> node_utilization() const;

  /// Total execution time per function name, ns.
  std::map<std::string, std::int64_t> busy_ns_by_name() const;

  /// Graphviz DOT rendering: one node per task, coloured by function name
  /// (Figure 3 regeneration). Stable colour assignment in name order.
  std::string to_dot() const;

  /// CSV rows "id,name,node,start_us,end_us" for Gantt plotting.
  std::string to_gantt_csv() const;

 private:
  std::vector<TaskTrace> tasks_;
};

}  // namespace climate::taskrt

namespace climate::obs {
struct TrackEvent;
}

namespace climate::taskrt {

/// Converts a runtime trace into observability track events (one track per
/// executing node) so obs::chrome_trace_json can merge the task timeline
/// with the cross-layer spans. Tasks that never started are skipped.
std::vector<obs::TrackEvent> to_obs_track_events(const Trace& trace);

}  // namespace climate::taskrt
