// Core vocabulary of the task runtime (the PyCOMPSs / COMPSs-runtime
// equivalent, paper section 4.2.1): data handles with directionality,
// task options (failure policies, constraints, checkpoint keys) and
// node descriptions for the simulated cluster.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "common/status.hpp"

namespace climate::taskrt {

/// Identifier of a logical datum registered with the runtime.
using DataId = std::uint64_t;
/// Identifier of a submitted task (1-based; 0 is "no task").
using TaskId = std::uint64_t;

inline constexpr TaskId kNoTask = 0;

/// Parameter directionality, mirroring the @task decorator clauses: IN is
/// consumed, OUT is produced, INOUT is read and updated in place.
enum class Direction { kIn, kOut, kInOut };

const char* direction_name(Direction direction);

/// How the runtime verifier (directionality checking + graph lint) is armed:
/// kAuto follows the CLIMATE_VERIFY environment variable, kOn/kOff override
/// it per runtime (tests exercising deliberate misuse switch it off).
enum class VerifyMode { kAuto, kOn, kOff };

/// Thrown by TaskContext when a task accesses a parameter against its
/// declared direction (ctx.in() on OUT, ctx.set_out() on IN, bad index).
/// Carries a structured Status plus the offending parameter so the verifier
/// and callers get uniform, self-describing errors instead of bare
/// logic_error strings.
class DirectionalityError : public std::logic_error {
 public:
  DirectionalityError(common::Status status, std::string task_name, std::size_t param_index,
                      Direction direction)
      : std::logic_error("task '" + task_name + "' param " + std::to_string(param_index) + " (" +
                         direction_name(direction) + "): " + status.to_string()),
        status_(std::move(status)),
        task_name_(std::move(task_name)),
        param_index_(param_index),
        direction_(direction) {}

  const common::Status& status() const { return status_; }
  const std::string& task_name() const { return task_name_; }
  std::size_t param_index() const { return param_index_; }
  Direction direction() const { return direction_; }

 private:
  common::Status status_;
  std::string task_name_;
  std::size_t param_index_;
  Direction direction_;
};

/// Checked std::any casts with readable failure messages (expected vs held
/// type). These helpers — and the TaskContext/Runtime accessors built on
/// them — are the only sanctioned any-casts outside src/taskrt/; the repo
/// invariant is enforced by scripts/lint.sh (check_invariants.py).
template <typename T>
const T& any_ref(const std::any& value) {
  const T* typed = std::any_cast<T>(&value);
  if (typed == nullptr) {
    throw std::runtime_error(std::string("any_ref: expected ") + typeid(T).name() + ", holds " +
                             (value.has_value() ? value.type().name() : "(empty)"));
  }
  return *typed;
}

/// Value-returning variant of any_ref.
template <typename T>
T any_as(const std::any& value) {
  return any_ref<T>(value);
}

/// A lightweight reference to runtime-managed data. Copyable; all state
/// lives in the runtime's data store.
struct DataHandle {
  DataId id = 0;
  bool valid() const { return id != 0; }
  bool operator==(const DataHandle&) const = default;
  bool operator<(const DataHandle& other) const { return id < other.id; }
};

/// One task parameter: which datum and how the task accesses it.
struct Param {
  DataHandle handle;
  Direction direction = Direction::kIn;
};

inline Param In(DataHandle h) { return {h, Direction::kIn}; }
inline Param Out(DataHandle h) { return {h, Direction::kOut}; }
inline Param InOut(DataHandle h) { return {h, Direction::kInOut}; }

/// Behaviour applied when a task body throws, mirroring the COMPSs
/// task-failure management options (retry / ignore / cancel successors /
/// fail the whole workflow).
enum class FailurePolicy { kFail, kRetry, kIgnore, kCancelSuccessors };

const char* failure_policy_name(FailurePolicy policy);

/// Serializer pair used by task-level checkpointing: turns each output value
/// into bytes and back.
struct OutputCodec {
  std::function<std::string(const std::any&)> serialize;
  std::function<std::any(const std::string&)> deserialize;
  bool usable() const { return static_cast<bool>(serialize) && static_cast<bool>(deserialize); }
};

/// Per-task options (the decorator arguments of the Python original).
struct TaskOptions {
  FailurePolicy on_failure = FailurePolicy::kFail;
  int max_retries = 2;                 ///< Used when on_failure == kRetry.
  std::set<std::string> constraints;   ///< Node tags required (e.g. "gpu").
  std::string checkpoint_key;          ///< Stable key enabling checkpoint skip.
  OutputCodec codec;                   ///< Required for checkpointing outputs.

  /// Wall-clock limit of one execution attempt; a task running longer is
  /// treated as hung and routed through `on_failure` (0 disables). Node
  /// failures are handled separately and never consume `max_retries`.
  double deadline_ms = 0.0;

  /// Marks the task's outputs as living on reliable storage (filesystem,
  /// datacube service, ...) rather than in worker-node memory: a node crash
  /// does not invalidate them and they are never lineage-replayed. Use for
  /// tasks with external side effects or non-idempotent state (e.g. the
  /// chained ESM simulation mutating its model in place).
  bool durable_outputs = false;

  /// Opt-out from speculative straggler re-execution (only meaningful when
  /// RuntimeOptions::speculation is on).
  bool allow_speculation = true;
};

/// Description of one simulated compute node of the cluster.
struct NodeSpec {
  std::string name;
  int cores = 1;
  double memory_gb = 8.0;
  std::set<std::string> tags;  ///< Capabilities matched against constraints.
};

/// Final state of a task.
enum class TaskState { kPending, kReady, kRunning, kCompleted, kFailed, kCancelled };

const char* task_state_name(TaskState state);

/// Aggregate counters exposed by the runtime for benches and tests.
struct RuntimeStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;        ///< Bodies actually run (includes retries).
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_cancelled = 0;
  std::uint64_t tasks_from_checkpoint = 0;
  std::uint64_t retries = 0;
  std::uint64_t transfers = 0;             ///< Inter-node replica copies.
  std::uint64_t bytes_transferred = 0;
  std::uint64_t sync_transfers = 0;        ///< Replicas pulled to the master.
};

/// Per-run fault/recovery accounting (the resilience counterpart of
/// RuntimeStats). All counters are zero on a fault-free run.
struct RecoveryReport {
  std::uint64_t faults_injected = 0;       ///< Injector firings (all kinds).
  std::uint64_t node_failures = 0;         ///< Nodes declared dead.
  std::uint64_t tasks_rescheduled = 0;     ///< In-flight attempts lost to a dead node.
  std::uint64_t tasks_replayed = 0;        ///< Lineage re-executions of completed tasks.
  std::uint64_t checkpoint_restores = 0;   ///< Replays satisfied from a checkpoint.
  std::uint64_t data_versions_lost = 0;    ///< Ready versions homed only on a dead node.
  std::uint64_t data_versions_rematerialized = 0;  ///< Lost versions recomputed.
  std::uint64_t deadline_failures = 0;     ///< Attempts killed by TaskOptions::deadline_ms.
  std::uint64_t speculative_backups = 0;   ///< Straggler backup copies launched.
  std::uint64_t speculative_wins = 0;      ///< Backups that finished first.
  std::int64_t recovery_exec_ns = 0;       ///< Body time spent re-running replayed tasks
                                           ///< (the added-makespan estimate).

  bool any() const {
    return faults_injected || node_failures || tasks_rescheduled || tasks_replayed ||
           checkpoint_restores || data_versions_lost || deadline_failures ||
           speculative_backups;
  }
};

}  // namespace climate::taskrt
