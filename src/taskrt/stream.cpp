#include "taskrt/stream.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/strings.hpp"

namespace climate::taskrt {

namespace fs = std::filesystem;

void DataStream::publish(std::any item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw std::logic_error("DataStream::publish after close");
    queue_.push_back(std::move(item));
  }
  published_.fetch_add(1);
  cv_.notify_one();
}

void DataStream::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::optional<std::any> DataStream::next() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  std::any item = std::move(queue_.front());
  queue_.pop_front();
  consumed_.fetch_add(1);
  return item;
}

std::optional<std::any> DataStream::try_next() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  std::any item = std::move(queue_.front());
  queue_.pop_front();
  consumed_.fetch_add(1);
  return item;
}

bool DataStream::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && queue_.empty();
}

DirectoryWatcher::DirectoryWatcher(std::string directory, std::string suffix,
                                   std::function<void(const std::string&)> on_file,
                                   std::chrono::milliseconds poll_interval)
    : directory_(std::move(directory)),
      suffix_(std::move(suffix)),
      on_file_(std::move(on_file)),
      poll_interval_(poll_interval) {
  thread_ = std::thread([this] { run(); });
}

DirectoryWatcher::~DirectoryWatcher() { stop(); }

void DirectoryWatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_.store(true);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DirectoryWatcher::poll_once() {
  std::error_code ec;
  std::vector<std::string> fresh;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (ec) return;
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    if (!suffix_.empty() && !common::ends_with(path, suffix_)) continue;
    if (seen_.insert(path).second) fresh.push_back(path);
  }
  std::sort(fresh.begin(), fresh.end());
  for (const std::string& path : fresh) {
    on_file_(path);
    seen_count_.fetch_add(1);
  }
}

void DirectoryWatcher::run() {
  while (!stopping_.load()) {
    poll_once();
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait_for(lock, poll_interval_, [this] { return stopping_.load(); });
  }
  poll_once();  // final round: deliver files that appeared before stop()
}

}  // namespace climate::taskrt
