// Task-level checkpoint store (paper section 4.2.1: "a checkpointing
// mechanism at task level ... enables to recover a failed execution from the
// last checkpointed task").
//
// Each checkpointed task saves its serialized outputs under a stable key.
// Files are written to a temp name and renamed, so a key is either fully
// recorded or absent — a crashed writer never leaves a readable partial
// checkpoint.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::taskrt {

using common::Result;
using common::Status;

/// Durable map from task key to the task's serialized output values.
class CheckpointStore {
 public:
  /// Opens (creating if needed) a checkpoint directory.
  explicit CheckpointStore(std::string dir);

  /// True if outputs for `key` were fully recorded.
  bool contains(const std::string& key) const;

  /// Loads the serialized outputs recorded for `key`.
  Result<std::vector<std::string>> load(const std::string& key) const;

  /// Atomically records the outputs for `key` (overwrites).
  Status save(const std::string& key, const std::vector<std::string>& outputs) const;

  /// Removes every checkpoint in the directory.
  Status clear() const;

  /// Number of recorded keys.
  std::size_t size() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const std::string& key) const;

  std::string dir_;
};

}  // namespace climate::taskrt
