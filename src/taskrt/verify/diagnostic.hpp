// Diagnostic vocabulary of the taskrt verifier — the runtime's equivalent of
// the access-tracking reports COMPSs produces when a task's declared
// directionality disagrees with what the task actually did.
//
// Every violation the verifier (runtime directionality checking, see
// verifier.hpp) or the graph linter (DAG pathologies, see graph_lint.hpp)
// finds becomes one structured Diagnostic record: what kind of bug, how bad,
// which task/parameter/datum, a human message and a fix hint. Diagnostics
// never change runtime behaviour — they are routed through obs logging and a
// machine-readable JSON report so mis-annotated workflows are caught in CI
// instead of silently corrupting the dependency graph.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "taskrt/types.hpp"

namespace climate::taskrt::verify {

/// How bad a finding is. Notes are suspicious-but-legal patterns (e.g. an IN
/// parameter used only as an ordering edge); warnings are almost certainly
/// unintended (dead stores, pass-through INOUT); errors are annotation bugs
/// that corrupt results or the dependency graph.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity severity);

/// The catalogue of violation classes (DESIGN.md "Verification").
enum class DiagKind {
  // --- runtime directionality checks (per task execution) ---
  kOutReadBeforeWrite,   ///< ctx.in() on an OUT parameter.
  kWriteOnInParam,       ///< ctx.set_out() on an IN parameter.
  kOutNeverWritten,      ///< OUT declared but set_out() never called.
  kInOutNeverWritten,    ///< INOUT declared but never updated.
  kInNeverRead,          ///< IN declared but never read through the context.
  kAliasedParams,        ///< Same data handle bound to two params of one task.
  kSyncNeverWritten,     ///< sync() on a handle nothing wrote or will write.
  kCancelledByFailure,   ///< Task cancelled by an upstream failure (note;
                         ///< message carries the structured root cause).
  // --- graph lint (whole-DAG checks at sync/shutdown) ---
  kGraphCycle,           ///< Dependency cycle: the tasks can never run.
  kUnreachableTask,      ///< Task can never become ready (bad/cyclic deps).
  kOrphanOutput,         ///< Produced datum never read, synced or released.
  kWriteWriteRace,       ///< Two writers of a datum with no ordering path.
  kCheckpointGap,        ///< Checkpoint coverage holes (dup keys, no codec).
};

const char* diag_kind_name(DiagKind kind);

/// One verifier finding.
struct Diagnostic {
  DiagKind kind = DiagKind::kOutNeverWritten;
  Severity severity = Severity::kError;
  TaskId task = kNoTask;        ///< Offending task (kNoTask for data-level).
  std::string task_name;        ///< Function name the task was submitted under.
  int param_index = -1;         ///< Offending parameter, -1 if not applicable.
  DataId data = 0;              ///< Offending datum, 0 if not applicable.
  std::string message;          ///< What happened.
  std::string hint;             ///< How to fix the annotation.

  /// "error[out_never_written] task 7 'load_tmax' param 1: ..." rendering.
  std::string to_string() const;

  /// Machine-readable record for the JSON report.
  common::Json to_json() const;
};

/// Snapshot of every diagnostic a run produced, with severity roll-ups.
class Report {
 public:
  Report() = default;
  explicit Report(std::vector<Diagnostic> diagnostics)
      : diagnostics_(std::move(diagnostics)) {}

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  std::size_t count(Severity severity) const;
  /// Warnings + errors — the gate CI fails on (notes are advisory).
  std::size_t violation_count() const;

  /// {"diagnostics": [...], "notes": n, "warnings": n, "errors": n}.
  common::Json to_json() const;
  /// One to_string() line per diagnostic.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace climate::taskrt::verify
