// Thread-safe diagnostic collector of the taskrt verifier.
//
// One Verifier lives per Runtime when verification is on (RuntimeOptions::
// verify, or the CLIMATE_VERIFY environment variable). Worker threads add
// directionality findings while task bodies run; the master thread replaces
// the graph-lint findings at sync/shutdown. Every added diagnostic is routed
// through obs logging (component "taskrt.verify") and counted in the
// "taskrt.verify.diagnostics" metric; report() snapshots everything for
// programmatic consumption, and write_json_lines() appends the run's report
// to a machine-readable file (the CLIMATE_VERIFY_REPORT hook).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "taskrt/verify/diagnostic.hpp"

namespace climate::taskrt::verify {

class Verifier {
 public:
  Verifier() = default;
  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  /// Records one finding (worker threads; logs it and bumps the metric).
  void add(Diagnostic diagnostic);

  /// Replaces the graph-lint findings (master thread, at sync/shutdown);
  /// only newly appearing findings are logged, so repeated lint runs over a
  /// growing graph do not re-log what was already reported.
  void set_graph_diagnostics(std::vector<Diagnostic> diagnostics);

  /// Snapshot of every finding so far (access findings + last graph lint).
  Report report() const;

  std::size_t size() const;

  /// Appends the report as one JSON line to `path` (creates the file).
  common::Status write_json_lines(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Diagnostic> access_;  ///< Directionality findings, append-only.
  std::vector<Diagnostic> graph_;   ///< Last graph-lint result.
};

}  // namespace climate::taskrt::verify
