#include "taskrt/verify/diagnostic.hpp"

#include <sstream>

namespace climate::taskrt::verify {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* diag_kind_name(DiagKind kind) {
  switch (kind) {
    case DiagKind::kOutReadBeforeWrite: return "out_read_before_write";
    case DiagKind::kWriteOnInParam: return "write_on_in_param";
    case DiagKind::kOutNeverWritten: return "out_never_written";
    case DiagKind::kInOutNeverWritten: return "inout_never_written";
    case DiagKind::kInNeverRead: return "in_never_read";
    case DiagKind::kAliasedParams: return "aliased_params";
    case DiagKind::kSyncNeverWritten: return "sync_never_written";
    case DiagKind::kCancelledByFailure: return "cancelled_by_failure";
    case DiagKind::kGraphCycle: return "graph_cycle";
    case DiagKind::kUnreachableTask: return "unreachable_task";
    case DiagKind::kOrphanOutput: return "orphan_output";
    case DiagKind::kWriteWriteRace: return "write_write_race";
    case DiagKind::kCheckpointGap: return "checkpoint_gap";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << severity_name(severity) << "[" << diag_kind_name(kind) << "]";
  if (task != kNoTask) {
    out << " task " << task;
    if (!task_name.empty()) out << " '" << task_name << "'";
  }
  if (param_index >= 0) out << " param " << param_index;
  if (data != 0) out << " data " << data;
  out << ": " << message;
  if (!hint.empty()) out << " (hint: " << hint << ")";
  return out.str();
}

common::Json Diagnostic::to_json() const {
  common::Json record = common::Json::object();
  record["kind"] = diag_kind_name(kind);
  record["severity"] = severity_name(severity);
  record["task"] = static_cast<double>(task);
  record["task_name"] = task_name;
  record["param_index"] = param_index;
  record["data"] = static_cast<double>(data);
  record["message"] = message;
  record["hint"] = hint;
  return record;
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.severity == severity) ++n;
  }
  return n;
}

std::size_t Report::violation_count() const {
  return count(Severity::kWarning) + count(Severity::kError);
}

common::Json Report::to_json() const {
  common::Json doc = common::Json::object();
  common::Json records = common::Json::array();
  for (const Diagnostic& diagnostic : diagnostics_) records.push_back(diagnostic.to_json());
  doc["diagnostics"] = std::move(records);
  doc["notes"] = static_cast<double>(count(Severity::kNote));
  doc["warnings"] = static_cast<double>(count(Severity::kWarning));
  doc["errors"] = static_cast<double>(count(Severity::kError));
  return doc;
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += diagnostic.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace climate::taskrt::verify
