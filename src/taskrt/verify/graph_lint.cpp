#include "taskrt/verify/graph_lint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

namespace climate::taskrt::verify {

namespace {

/// Renders "task 3 'name'" for messages.
std::string task_label(const GraphNode& node) {
  std::ostringstream out;
  out << "task " << node.id;
  if (!node.name.empty()) out << " '" << node.name << "'";
  return out.str();
}

/// Cycle + unreachable detection: Kahn's algorithm over the dependency
/// edges; whatever never reaches indegree 0 sits on or behind a cycle.
void lint_cycles(const GraphView& graph, const std::map<TaskId, std::size_t>& index,
                 std::vector<Diagnostic>* out) {
  const std::size_t n = graph.nodes.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> successors(n);
  std::vector<bool> has_unknown_dep(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : graph.nodes[i].deps) {
      auto it = index.find(dep);
      if (it == index.end()) {
        has_unknown_dep[i] = true;
        continue;
      }
      ++indegree[i];
      successors[it->second].push_back(i);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!has_unknown_dep[i]) continue;
    Diagnostic diagnostic;
    diagnostic.kind = DiagKind::kUnreachableTask;
    diagnostic.severity = Severity::kError;
    diagnostic.task = graph.nodes[i].id;
    diagnostic.task_name = graph.nodes[i].name;
    diagnostic.message = task_label(graph.nodes[i]) + " depends on a task id not in the graph";
    diagnostic.hint = "every dependency must be a previously submitted task";
    out->push_back(std::move(diagnostic));
  }

  std::deque<std::size_t> ready;
  std::size_t settled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++settled;
    for (std::size_t succ : successors[i]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (settled == n) return;

  // Leftover nodes sit on a cycle or strictly downstream of one. Walk the
  // dependency chain from each unvisited leftover until a repeat identifies
  // the cycle itself; everything else is reported unreachable.
  std::vector<bool> leftover(n, false);
  for (std::size_t i = 0; i < n; ++i) leftover[i] = indegree[i] > 0;
  std::vector<bool> on_cycle(n, false);
  std::vector<bool> walked(n, false);
  for (std::size_t start = 0; start < n; ++start) {
    if (!leftover[start] || walked[start]) continue;
    std::vector<std::size_t> path;
    std::map<std::size_t, std::size_t> position;  // node -> index in path
    std::size_t current = start;
    while (true) {
      if (position.count(current)) {
        // Found a fresh cycle: everything from the first visit onward.
        std::ostringstream members;
        for (std::size_t p = position[current]; p < path.size(); ++p) {
          if (p > position[current]) members << " -> ";
          members << graph.nodes[path[p]].id;
          on_cycle[path[p]] = true;
        }
        members << " -> " << graph.nodes[current].id;
        Diagnostic diagnostic;
        diagnostic.kind = DiagKind::kGraphCycle;
        diagnostic.severity = Severity::kError;
        diagnostic.task = graph.nodes[current].id;
        diagnostic.task_name = graph.nodes[current].name;
        diagnostic.message = "dependency cycle: " + members.str();
        diagnostic.hint = "a cycle means none of these tasks can ever start";
        out->push_back(std::move(diagnostic));
        break;
      }
      if (walked[current]) break;  // merged into an already-reported walk
      walked[current] = true;
      position[current] = path.size();
      path.push_back(current);
      // Follow any leftover dependency; every leftover node has one.
      std::size_t next = current;
      for (TaskId dep : graph.nodes[current].deps) {
        auto it = index.find(dep);
        if (it != index.end() && leftover[it->second]) {
          next = it->second;
          break;
        }
      }
      if (next == current) break;
      current = next;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!leftover[i] || on_cycle[i]) continue;
    Diagnostic diagnostic;
    diagnostic.kind = DiagKind::kUnreachableTask;
    diagnostic.severity = Severity::kError;
    diagnostic.task = graph.nodes[i].id;
    diagnostic.task_name = graph.nodes[i].name;
    diagnostic.message = task_label(graph.nodes[i]) +
                         " can never become ready (transitively depends on a cycle)";
    diagnostic.hint = "break the dependency cycle upstream";
    out->push_back(std::move(diagnostic));
  }
}

/// Orphan outputs: data some task produces that no task reads and the master
/// never syncs or releases — dead stores in the dataflow graph.
void lint_orphans(const GraphView& graph, std::vector<Diagnostic>* out) {
  std::map<DataId, const GraphNode*> last_writer;
  std::set<DataId> read;
  for (const GraphNode& node : graph.nodes) {
    for (const GraphAccess& access : node.accesses) {
      if (access.direction != Direction::kOut) read.insert(access.data);
      if (access.direction != Direction::kIn) last_writer[access.data] = &node;
    }
  }
  for (const auto& [data, writer] : last_writer) {
    if (read.count(data) || graph.synced.count(data) || graph.released.count(data)) continue;
    Diagnostic diagnostic;
    diagnostic.kind = DiagKind::kOrphanOutput;
    diagnostic.severity = Severity::kWarning;
    diagnostic.task = writer->id;
    diagnostic.task_name = writer->name;
    diagnostic.data = data;
    diagnostic.message = task_label(*writer) + " produces data " + std::to_string(data) +
                         " which nothing reads, syncs or releases";
    diagnostic.hint = "drop the OUT parameter, or consume/sync the result";
    out->push_back(std::move(diagnostic));
  }
}

/// Write-write conflicts: consecutive writers of one datum must be ordered
/// by a dependency path, or the surviving value depends on scheduling.
void lint_write_write(const GraphView& graph, const std::map<TaskId, std::size_t>& index,
                      std::vector<Diagnostic>* out) {
  std::map<DataId, std::vector<std::pair<std::size_t, const GraphNode*>>> writers;
  for (const GraphNode& node : graph.nodes) {
    for (const GraphAccess& access : node.accesses) {
      if (access.direction == Direction::kIn) continue;
      writers[access.data].emplace_back(access.write_version, &node);
    }
  }
  // reaches(a, b): is a an ancestor of b through dependency edges?
  auto reaches = [&](TaskId ancestor, const GraphNode& from) {
    std::deque<const GraphNode*> frontier{&from};
    std::set<TaskId> seen;
    while (!frontier.empty()) {
      const GraphNode* node = frontier.front();
      frontier.pop_front();
      for (TaskId dep : node->deps) {
        if (dep == ancestor) return true;
        if (!seen.insert(dep).second) continue;
        auto it = index.find(dep);
        if (it != index.end()) frontier.push_back(&graph.nodes[it->second]);
      }
    }
    return false;
  };
  for (auto& [data, list] : writers) {
    if (list.size() < 2) continue;
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t w = 1; w < list.size(); ++w) {
      const GraphNode& earlier = *list[w - 1].second;
      const GraphNode& later = *list[w].second;
      if (earlier.id == later.id) continue;  // same task writes twice (aliasing pass)
      if (reaches(earlier.id, later)) continue;
      Diagnostic diagnostic;
      diagnostic.kind = DiagKind::kWriteWriteRace;
      diagnostic.severity = Severity::kError;
      diagnostic.task = later.id;
      diagnostic.task_name = later.name;
      diagnostic.data = data;
      diagnostic.message = task_label(later) + " and " + task_label(earlier) +
                           " both write data " + std::to_string(data) +
                           " with no ordering path between them";
      diagnostic.hint = "add a dependency (e.g. read the earlier version) or write distinct data";
      out->push_back(std::move(diagnostic));
    }
  }
}

/// Checkpoint coverage: key collisions restore the wrong outputs, keys
/// without codecs silently never save, and unkeyed producers of checkpointed
/// tasks make recovery re-execute the upstream anyway.
void lint_checkpoints(const GraphView& graph, std::vector<Diagnostic>* out) {
  if (!graph.checkpointing_enabled) return;
  std::map<std::string, const GraphNode*> keys;
  std::map<std::pair<DataId, std::size_t>, const GraphNode*> version_writer;
  for (const GraphNode& node : graph.nodes) {
    for (const GraphAccess& access : node.accesses) {
      if (access.direction != Direction::kIn) {
        version_writer[{access.data, access.write_version}] = &node;
      }
    }
  }
  for (const GraphNode& node : graph.nodes) {
    if (node.checkpoint_key.empty()) continue;
    auto [it, inserted] = keys.emplace(node.checkpoint_key, &node);
    if (!inserted) {
      Diagnostic diagnostic;
      diagnostic.kind = DiagKind::kCheckpointGap;
      diagnostic.severity = Severity::kError;
      diagnostic.task = node.id;
      diagnostic.task_name = node.name;
      diagnostic.message = task_label(node) + " reuses checkpoint key '" + node.checkpoint_key +
                           "' of " + task_label(*it->second) + "; restores would collide";
      diagnostic.hint = "checkpoint keys must be unique per task (e.g. suffix the year)";
      out->push_back(std::move(diagnostic));
      continue;
    }
    if (!node.checkpoint_codec_ok) {
      Diagnostic diagnostic;
      diagnostic.kind = DiagKind::kCheckpointGap;
      diagnostic.severity = Severity::kWarning;
      diagnostic.task = node.id;
      diagnostic.task_name = node.name;
      diagnostic.message = task_label(node) + " sets checkpoint key '" + node.checkpoint_key +
                           "' but has no usable codec; outputs are never saved";
      diagnostic.hint = "provide TaskOptions::codec with serialize and deserialize";
      out->push_back(std::move(diagnostic));
      continue;
    }
    for (const GraphAccess& access : node.accesses) {
      if (access.direction == Direction::kOut) continue;
      auto writer = version_writer.find({access.data, access.read_version});
      if (writer == version_writer.end()) continue;  // master-provided input
      if (!writer->second->checkpoint_key.empty()) continue;
      Diagnostic diagnostic;
      diagnostic.kind = DiagKind::kCheckpointGap;
      diagnostic.severity = Severity::kNote;
      diagnostic.task = writer->second->id;
      diagnostic.task_name = writer->second->name;
      diagnostic.data = access.data;
      diagnostic.message = task_label(*writer->second) + " feeds checkpointed " +
                           task_label(node) + " but is not checkpointed itself";
      diagnostic.hint = "recovery re-executes this producer; give it a checkpoint key too";
      out->push_back(std::move(diagnostic));
    }
  }
}

}  // namespace

std::vector<Diagnostic> lint_graph(const GraphView& graph) {
  std::vector<Diagnostic> diagnostics;
  std::map<TaskId, std::size_t> index;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) index[graph.nodes[i].id] = i;
  lint_cycles(graph, index, &diagnostics);
  lint_orphans(graph, &diagnostics);
  lint_write_write(graph, index, &diagnostics);
  lint_checkpoints(graph, &diagnostics);
  return diagnostics;
}

}  // namespace climate::taskrt::verify
