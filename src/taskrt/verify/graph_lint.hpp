// Whole-DAG lint passes over a constructed task graph.
//
// The linter operates on a GraphView — a runtime-independent snapshot of the
// task graph (nodes, dependency edges, per-parameter data accesses and the
// master-side sync/release/init sets) — so the passes are pure functions that
// tests can drive with synthetic graphs, and the Runtime can feed its real
// graph at sync/shutdown time. Checks:
//
//   - cycle detection (a cycle means the involved tasks can never run);
//   - unreachable tasks (dependencies on unknown nodes, or downstream of a
//     cycle — they would wait forever);
//   - orphan outputs (a datum some task produced that nothing ever reads,
//     syncs or releases: a dead store, usually a forgotten consumer or a
//     mis-declared OUT);
//   - write-write conflicts: two writers of the same datum with no ordering
//     path between them — with annotation-inferred dependencies this means
//     the final value depends on scheduling, the classic annotation race;
//   - checkpoint-coverage gaps when checkpointing is enabled: duplicate
//     checkpoint keys (restore collisions), keys without a usable codec
//     (silently never saved), and checkpointed tasks whose direct producers
//     are unkeyed (recovery re-executes the whole upstream anyway).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "taskrt/types.hpp"
#include "taskrt/verify/diagnostic.hpp"

namespace climate::taskrt::verify {

/// One parameter's data access as the graph sees it.
struct GraphAccess {
  DataId data = 0;
  Direction direction = Direction::kIn;
  std::size_t read_version = 0;   ///< Version consumed (IN/INOUT).
  std::size_t write_version = 0;  ///< Version produced (OUT/INOUT).
};

/// One task node of the graph snapshot.
struct GraphNode {
  TaskId id = kNoTask;
  std::string name;
  std::vector<TaskId> deps;          ///< Predecessor task ids.
  std::vector<GraphAccess> accesses; ///< One entry per declared parameter.
  std::string checkpoint_key;        ///< Empty when not checkpointed.
  bool checkpoint_codec_ok = false;  ///< Codec usable for the key.
};

/// Runtime-independent snapshot of a workflow graph.
struct GraphView {
  std::vector<GraphNode> nodes;
  std::set<DataId> synced;    ///< Data pulled to the master.
  std::set<DataId> released;  ///< Data explicitly released.
  bool checkpointing_enabled = false;
};

/// Runs every lint pass; diagnostics come back in pass order.
std::vector<Diagnostic> lint_graph(const GraphView& graph);

}  // namespace climate::taskrt::verify
