#include "taskrt/verify/verifier.hpp"

#include <fstream>
#include <set>

#include "common/log.hpp"
#include "obs/obs.hpp"

namespace climate::taskrt::verify {

namespace {
constexpr const char* kLogTag = "taskrt.verify";

void log_diagnostic(const Diagnostic& diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError:
      LOG_ERROR(kLogTag) << diagnostic.to_string();
      break;
    case Severity::kWarning:
      LOG_WARN(kLogTag) << diagnostic.to_string();
      break;
    case Severity::kNote:
      LOG_DEBUG(kLogTag) << diagnostic.to_string();
      break;
  }
  OBS_COUNTER_ADD("taskrt.verify.diagnostics", 1);
}
}  // namespace

void Verifier::add(Diagnostic diagnostic) {
  log_diagnostic(diagnostic);
  std::lock_guard<std::mutex> lock(mutex_);
  access_.push_back(std::move(diagnostic));
}

void Verifier::set_graph_diagnostics(std::vector<Diagnostic> diagnostics) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<std::string> known;
  for (const Diagnostic& diagnostic : graph_) known.insert(diagnostic.to_string());
  for (const Diagnostic& diagnostic : diagnostics) {
    if (!known.count(diagnostic.to_string())) log_diagnostic(diagnostic);
  }
  graph_ = std::move(diagnostics);
}

Report Verifier::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Diagnostic> all = access_;
  all.insert(all.end(), graph_.begin(), graph_.end());
  return Report(std::move(all));
}

std::size_t Verifier::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return access_.size() + graph_.size();
}

common::Status Verifier::write_json_lines(const std::string& path) const {
  const Report snapshot = report();
  std::ofstream out(path, std::ios::app);
  if (!out) return common::Status::Unavailable("cannot open verify report file: " + path);
  out << snapshot.to_json().dump() << "\n";
  if (!out) return common::Status::DataLoss("short write to verify report file: " + path);
  return common::Status::Ok();
}

}  // namespace climate::taskrt::verify
