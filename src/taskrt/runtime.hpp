// The task-based workflow runtime — this repository's equivalent of
// PyCOMPSs + the COMPSs runtime (paper section 4.2.1).
//
// Programming model
// -----------------
// The application (the "main program", running on the master thread)
// registers data with the runtime and submits tasks whose parameters are
// annotated with a direction:
//
//   Runtime rt(options);
//   DataHandle a = rt.create_data(std::any(42));
//   DataHandle b = rt.create_data();
//   rt.submit("double", {}, {In(a), Out(b)}, [](TaskContext& ctx) {
//     ctx.set_out(1, std::any(2 * ctx.in_as<int>(0)));
//   });
//   int result = rt.sync_as<int>(b);
//
// Exactly as in the original, every submission adds a node to a task graph;
// data dependencies are inferred from the declared directionality (true
// dependencies on the last writer, anti-dependencies of writers on earlier
// readers), independent tasks run concurrently on worker nodes, and values
// are synchronized back to the master only when requested.
//
// Cluster model
// -------------
// Worker "nodes" are threads with a NodeSpec (cores, memory, capability
// tags). The scheduler is locality-aware: it places each ready task on the
// eligible node already holding the largest share of its input bytes, and
// accounts replica copies (count + bytes, optionally time-delayed) when
// inputs must move — the runtime's "transfers data on-demand between the
// computing nodes" behaviour.
//
// Fault tolerance mirrors the COMPSs mechanisms: per-task failure policies
// (fail / retry / ignore / cancel successors) and task-level checkpointing
// through CheckpointStore.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "taskrt/checkpoint.hpp"
#include "taskrt/trace.hpp"
#include "taskrt/types.hpp"
#include "taskrt/verify/diagnostic.hpp"

namespace climate::taskrt {

namespace verify {
class Verifier;
struct GraphView;
}  // namespace verify

class Runtime;

/// Handed to every task body: typed access to the task's parameters and
/// output slots, plus placement metadata.
class TaskContext {
 public:
  /// Value of parameter `idx` (IN or INOUT). Throws DirectionalityError on
  /// OUT params (and records a verifier diagnostic when verification is on).
  const std::any& in(std::size_t idx) const;

  /// Typed convenience over in(); failures name the expected and held types.
  template <typename T>
  const T& in_as(std::size_t idx) const {
    return any_ref<T>(in(idx));
  }

  /// Sets the value produced for parameter `idx` (OUT or INOUT).
  /// `size_bytes` is the locality/transfer size hint (0 keeps the default).
  void set_out(std::size_t idx, std::any value, std::size_t size_bytes = 0);

  /// Node index this task is executing on.
  int node() const { return node_; }
  /// Runtime-wide task id.
  TaskId task_id() const { return task_id_; }
  /// Function name the task was submitted under.
  const std::string& name() const { return name_; }
  /// Current retry attempt, 0 on the first execution.
  int attempt() const { return attempt_; }

  /// Burns wall-clock time to model a compute phase of the given duration
  /// (used by benches to give tasks realistic, configurable costs).
  /// Returns early when the attempt is cancelled (deadline kill, losing
  /// speculative copy, node death) — see cancelled().
  void simulate_compute(std::chrono::nanoseconds duration) const;

  /// Whether the runtime asked this attempt to stop (its result would be
  /// discarded anyway). Long-running bodies may poll this to exit early;
  /// ignoring it is safe — stale results are dropped at commit.
  bool cancelled() const {
    return cancel_flag_ != nullptr && cancel_flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class Runtime;
  struct Slot {
    std::any value;
    std::size_t size_bytes = 0;
    bool written = false;
  };
  /// Per-parameter access record kept for the verifier (read/write sets).
  struct Access {
    bool read = false;
  };

  std::vector<Param> params_;
  std::vector<std::any> inputs_;   // indexed like params_; empty for OUT
  std::vector<Slot> outputs_;      // indexed like params_; used for OUT/INOUT
  mutable std::vector<Access> access_;  // indexed like params_; verifier only
  verify::Verifier* verifier_ = nullptr;  // non-null when verification is on
  std::shared_ptr<std::atomic<bool>> cancel_flag_;  // per-attempt stop request
  int node_ = -1;
  TaskId task_id_ = 0;
  std::string name_;
  int attempt_ = 0;
};

/// Task body signature.
using TaskFn = std::function<void(TaskContext&)>;

/// Runtime construction options.
struct RuntimeOptions {
  /// Explicit cluster description; when empty, `workers` homogeneous
  /// single-core nodes named "node<i>" are created.
  std::vector<NodeSpec> nodes;
  std::size_t workers = 4;

  /// Simulated interconnect cost applied when a task's inputs must be
  /// replicated to its executing node (0 disables the delay; counting
  /// happens regardless).
  double transfer_ns_per_byte = 0.0;

  /// Locality-aware placement (prefer the node already holding the task's
  /// input bytes). When false, ready tasks are placed round-robin — the
  /// ablation baseline measured by bench_a3_locality.
  bool locality_aware = true;

  /// Simulated container start-up cost paid before every task body —
  /// models running tasks inside Singularity-style images (the paper's
  /// future-work question on container impact; bench_a2_containers).
  double container_startup_ms = 0.0;

  /// Directory for task-level checkpoints; empty disables checkpointing.
  std::string checkpoint_dir;

  /// Default size hint in bytes for data without an explicit hint.
  std::size_t default_size_hint = 8;

  /// Arms the verifier: per-parameter read/write tracking against the
  /// declared directions plus a graph lint at sync/shutdown. kAuto follows
  /// the CLIMATE_VERIFY environment variable. Diagnostics never change
  /// execution; they surface through logs, metrics, verify_report() and the
  /// CLIMATE_VERIFY_REPORT JSON-lines file.
  VerifyMode verify = VerifyMode::kAuto;

  /// Fault injector driving the chaos hooks (task errors, node crashes,
  /// slowdowns). When null, the runtime arms one from the CLIMATE_FAULTS
  /// environment variable (unset = no injection).
  std::shared_ptr<common::fault::Injector> faults;

  /// Worker liveness: each idle worker stamps a heartbeat every
  /// `heartbeat_interval_ms`; a node whose heartbeat is older than
  /// `heartbeat_timeout_ms` with no task body in flight is declared dead
  /// and its in-flight work and node-local data are recovered.
  double heartbeat_interval_ms = 2.0;
  double heartbeat_timeout_ms = 25.0;

  /// Speculative straggler re-execution: a task running longer than
  /// `speculation_factor` x the function's trailing mean (and at least
  /// `speculation_min_ms`, with `speculation_min_samples` prior completions
  /// of the function) gets a backup copy on another node; the first
  /// finisher wins and the loser's attempt is cancelled.
  bool speculation = false;
  double speculation_factor = 3.0;
  double speculation_min_ms = 5.0;
  int speculation_min_samples = 3;
};

/// Thrown by sync()/wait_all() when the workflow failed (a task with the
/// kFail policy threw, or a synced datum's producer was cancelled).
class WorkflowError : public std::runtime_error {
 public:
  explicit WorkflowError(const std::string& what) : std::runtime_error(what) {}
};

/// The workflow runtime. Thread-safety: create_data/submit/sync/wait_all are
/// master-thread operations (submission from inside task bodies is not
/// supported, matching the master-worker model of the original).
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  /// Waits for all tasks, then stops the worker nodes.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a datum. If `initial` has a value the datum starts ready on
  /// the master; otherwise the first writer task produces version 1.
  DataHandle create_data(std::any initial = {}, std::size_t size_bytes = 0);

  /// Submits a task. Dependencies are inferred from `params` directions.
  /// Returns the task id (also the node label in the exported graph).
  TaskId submit(const std::string& name, const TaskOptions& options,
                const std::vector<Param>& params, TaskFn fn);

  /// Convenience overload with default options.
  TaskId submit(const std::string& name, const std::vector<Param>& params, TaskFn fn) {
    return submit(name, TaskOptions{}, params, std::move(fn));
  }

  /// Blocks until the latest version of `handle` (as of this call) is
  /// produced, then returns its value (synchronized to the master).
  std::any sync(DataHandle handle);

  /// Typed convenience over sync(); failures name the expected and held types.
  template <typename T>
  T sync_as(DataHandle handle) {
    return any_as<T>(sync(handle));
  }

  /// Blocks until every submitted task reached a terminal state. Throws
  /// WorkflowError if a kFail task failed permanently.
  void wait_all();

  /// Drops the stored values of every version of `handle`, freeing memory.
  /// Only legal once all submitted readers and writers of the datum are
  /// terminal; later reads of the released datum throw. Returns the number
  /// of bytes (size hints) released.
  std::size_t release_data(DataHandle handle);

  /// Number of worker nodes.
  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }

  /// Counters snapshot.
  RuntimeStats stats() const;

  /// Fault/recovery accounting for this run (node failures, replays,
  /// deadline kills, speculation). faults_injected reflects the attached
  /// injector's log, all kinds included.
  RecoveryReport recovery() const;

  /// The armed fault injector (null when chaos is off).
  const std::shared_ptr<common::fault::Injector>& fault_injector() const { return faults_; }

  /// Chaos/test hook: marks a node as crashed, as if the fault injector had
  /// fired on it — its workers stop draining, the in-flight attempts and
  /// node-local data are lost, and the heartbeat monitor recovers them.
  void crash_node(std::size_t node_index);

  /// Trace/graph snapshot (callable at any time; complete after wait_all).
  Trace trace() const;

  /// State of one task.
  TaskState task_state(TaskId id) const;

  /// Whether the verifier is armed for this runtime.
  bool verify_enabled() const { return verifier_ != nullptr; }

  /// Snapshot of every verifier finding so far (empty when verification is
  /// off). Complete after wait_all(), which runs the graph lint.
  verify::Report verify_report() const;

  /// Runs the graph lint passes over the current task graph on demand,
  /// regardless of the verify mode (wait_all runs this automatically when
  /// verification is armed).
  std::vector<verify::Diagnostic> lint_graph() const;

 private:
  struct VersionRecord {
    // Shared so tasks can reference values without copying; versions are
    // immutable once ready (writes always create new versions).
    std::shared_ptr<std::any> value;
    std::size_t size_bytes = 0;
    bool ready = false;
    bool cancelled = false;
    TaskId writer = kNoTask;          // task producing this version
    std::set<int> replicas;           // node indices holding it; -1 = master
  };

  struct DataRecord {
    std::vector<VersionRecord> versions;
    std::vector<TaskId> readers_since_write;  // for WAR dependencies
  };

  struct ParamBinding {
    DataId data = 0;
    Direction direction = Direction::kIn;
    std::size_t read_version = 0;   // valid for IN/INOUT
    std::size_t write_version = 0;  // valid for OUT/INOUT
  };

  /// One in-flight execution attempt of a task. Several can be live at once
  /// (speculative backups); the first non-superseded finisher commits.
  struct AttemptInfo {
    std::shared_ptr<std::atomic<bool>> cancel;  // stop request seen by the body
    int node = -1;                              // executing node
    std::int64_t start_ns = -1;                 // pickup stamp (deadline base)
    bool backup = false;                        // speculative copy
  };

  struct TaskRecord {
    TaskId id = 0;
    std::string name;
    TaskOptions options;
    TaskFn fn;
    std::vector<ParamBinding> bindings;
    std::vector<Param> original_params;
    std::set<TaskId> deps;         // predecessor tasks still incomplete at submit
    std::set<TaskId> trace_deps;   // all data predecessors, even if already
                                   // complete — keeps the exported task graph
                                   // independent of execution timing
    std::size_t pending = 0;       // unfinished predecessors
    std::vector<TaskId> successors;
    TaskState state = TaskState::kPending;
    int attempts = 0;
    int node = -1;
    std::map<int, AttemptInfo> live_attempts;  // attempt index -> in-flight info
    int node_failures = 0;         // attempts lost to dead nodes (not retries)
    bool backup_pending = false;   // queued speculative copy awaiting pickup
    bool speculated = false;       // a backup was ever launched
    bool replaying = false;        // re-executing for data recovery
    TaskId cancelled_by = kNoTask; // root failed task for cancellations
    std::int64_t submit_ns = 0;
    std::int64_t ready_ns = -1;      // dependencies satisfied (first time)
    std::int64_t queued_ns = -1;     // pushed onto a ready queue (re-stamped on retry)
    std::int64_t start_ns = -1;
    std::int64_t end_ns = -1;
    std::int64_t transfer_ns = 0;    // input staging + simulated interconnect
    std::int64_t exec_ns = 0;        // task body time, summed over attempts
    std::int64_t checkpoint_ns = 0;  // checkpoint save time (after end_ns)
    bool from_checkpoint = false;
    std::string error;
  };

  /// Per-node liveness and chaos state (all fields guarded by mutex_; the
  /// workers hold the lock whenever they touch them).
  struct NodeRuntime {
    std::int64_t heartbeat_ns = 0;  // last idle-loop stamp
    bool crashed = false;           // injected crash: workers stop draining
    bool dead = false;              // death detected and recovery done
    int executing = 0;              // task bodies in flight on this node
    std::int64_t pickups = 0;       // pickup ordinal (fault decision key)
  };

  // --- scheduling internals (mutex_ held unless stated) ---
  void enqueue_ready(TaskId id);
  void worker_loop(int node_index);
  void monitor_loop();
  void execute_task(TaskId id, int node_index, bool backup);
  void finish_task(TaskId id, int attempt, int node_index, bool success, const std::string& error,
                   std::vector<TaskContext::Slot> outputs, std::int64_t transfer_add_ns,
                   std::int64_t body_ns);
  void fail_task_locked(TaskRecord& task, const std::string& error);
  void complete_locked(TaskRecord& task);
  void cancel_locked(TaskRecord& task, TaskId cause, const std::string& reason);
  void cancel_successors(TaskId id, const std::string& reason);
  void commit_outputs_from_checkpoint(TaskRecord& task, const std::vector<std::string>& blobs);
  int pick_node(const TaskRecord& task);
  bool node_eligible(int node_index, const TaskRecord& task) const;
  bool node_alive_locked(std::size_t node_index) const {
    return !node_runtime_[node_index]->crashed && !node_runtime_[node_index]->dead;
  }
  // --- node-failure recovery (mutex_ held) ---
  void handle_node_death_locked(std::size_t node_index);
  /// Restarts a completed task whose outputs were lost (checkpoint restore
  /// or lineage re-execution, recursing into lost inputs). No-op unless the
  /// task is kCompleted.
  void replay_task_locked(TaskId id);
  /// Re-blocks a task whose inputs are no longer ready: back to kPending,
  /// producers replayed and re-registered as dependencies.
  void reblock_on_lost_inputs_locked(TaskRecord& task);
  std::int64_t now_ns() const;
  verify::GraphView build_graph_view_locked() const;
  void lint_graph_locked(bool force = false);

  RuntimeOptions options_;
  std::vector<NodeSpec> nodes_;
  std::optional<CheckpointStore> checkpoints_;
  std::shared_ptr<common::fault::Injector> faults_;  // null = chaos off

  mutable std::mutex mutex_;
  std::condition_variable scheduler_cv_;   // wakes workers
  std::condition_variable completion_cv_;  // wakes sync/wait_all
  bool stopping_ = false;

  std::map<DataId, DataRecord> data_;
  std::vector<std::unique_ptr<TaskRecord>> tasks_;  // index = id - 1
  std::vector<std::deque<TaskId>> node_queues_;     // per-node ready queues
  std::size_t terminal_tasks_ = 0;
  std::string fatal_error_;

  DataId next_data_id_ = 1;
  std::size_t round_robin_cursor_ = 0;  // used when locality_aware is off
  RuntimeStats stats_;
  RecoveryReport recovery_;
  std::vector<std::unique_ptr<NodeRuntime>> node_runtime_;  // index = node
  /// Trailing per-function body-time mean (speculation straggler baseline).
  struct FnStat {
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
  };
  std::map<std::string, FnStat> fn_stats_;
  std::vector<std::thread> workers_;
  std::thread monitor_;                    // heartbeat/deadline/straggler watchdog
  std::condition_variable monitor_cv_;     // wakes the monitor early

  // --- verifier state (null/empty when verification is off) ---
  std::unique_ptr<verify::Verifier> verifier_;
  std::set<DataId> synced_data_;    // data the master pulled via sync()
  std::set<DataId> released_data_;  // data explicitly released
  std::size_t linted_tasks_ = 0;    // graph size at the last lint run
};

}  // namespace climate::taskrt
