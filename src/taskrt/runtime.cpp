#include "taskrt/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "obs/obs.hpp"
#include "taskrt/verify/graph_lint.hpp"
#include "taskrt/verify/verifier.hpp"

namespace climate::taskrt {

namespace {
constexpr const char* kLogTag = "taskrt";

// CLIMATE_VERIFY=1/true/on enables the verifier; unset/0/false/off disables.
bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !(value.empty() || value == "0" || value == "false" || value == "off" || value == "no");
}

bool verify_armed(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOn: return true;
    case VerifyMode::kOff: return false;
    case VerifyMode::kAuto: return env_flag("CLIMATE_VERIFY");
  }
  return false;
}
}  // namespace

const char* direction_name(Direction direction) {
  switch (direction) {
    case Direction::kIn: return "IN";
    case Direction::kOut: return "OUT";
    case Direction::kInOut: return "INOUT";
  }
  return "?";
}

const char* failure_policy_name(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFail: return "fail";
    case FailurePolicy::kRetry: return "retry";
    case FailurePolicy::kIgnore: return "ignore";
    case FailurePolicy::kCancelSuccessors: return "cancel_successors";
  }
  return "?";
}

const char* task_state_name(TaskState state) {
  switch (state) {
    case TaskState::kPending: return "pending";
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kCompleted: return "completed";
    case TaskState::kFailed: return "failed";
    case TaskState::kCancelled: return "cancelled";
  }
  return "?";
}

// ------------------------------------------------------------- TaskContext

const std::any& TaskContext::in(std::size_t idx) const {
  if (idx >= params_.size()) throw std::out_of_range("TaskContext::in: bad parameter index");
  if (params_[idx].direction == Direction::kOut) {
    if (verifier_ != nullptr) {
      verify::Diagnostic diag;
      diag.kind = verify::DiagKind::kOutReadBeforeWrite;
      diag.severity = verify::Severity::kError;
      diag.task = task_id_;
      diag.task_name = name_;
      diag.param_index = static_cast<int>(idx);
      diag.data = params_[idx].handle.id;
      diag.message = "ctx.in() on an OUT parameter";
      diag.hint = "OUT slots have no input value; declare the parameter INOUT if the task "
                  "must read the previous version";
      verifier_->add(std::move(diag));
    }
    throw DirectionalityError(
        common::Status::FailedPrecondition("TaskContext::in on an OUT parameter"), name_, idx,
        Direction::kOut);
  }
  if (idx < access_.size()) access_[idx].read = true;
  return inputs_[idx];
}

void TaskContext::set_out(std::size_t idx, std::any value, std::size_t size_bytes) {
  if (idx >= params_.size()) throw std::out_of_range("TaskContext::set_out: bad parameter index");
  if (params_[idx].direction == Direction::kIn) {
    if (verifier_ != nullptr) {
      verify::Diagnostic diag;
      diag.kind = verify::DiagKind::kWriteOnInParam;
      diag.severity = verify::Severity::kError;
      diag.task = task_id_;
      diag.task_name = name_;
      diag.param_index = static_cast<int>(idx);
      diag.data = params_[idx].handle.id;
      diag.message = "ctx.set_out() on an IN parameter";
      diag.hint = "declare the parameter OUT (fresh value) or INOUT (update in place) so the "
                  "runtime versions the datum and orders downstream readers";
      verifier_->add(std::move(diag));
    }
    throw DirectionalityError(
        common::Status::FailedPrecondition("TaskContext::set_out on an IN parameter"), name_, idx,
        Direction::kIn);
  }
  outputs_[idx].value = std::move(value);
  outputs_[idx].size_bytes = size_bytes;
  outputs_[idx].written = true;
}

void TaskContext::simulate_compute(std::chrono::nanoseconds duration) const {
  const auto deadline = std::chrono::steady_clock::now() + duration;
  // Busy-wait in small sleeps: sleeping models blocking I/O well enough and
  // does not oversubscribe the (possibly single-core) host. A cancelled
  // attempt (deadline kill, losing speculative copy) stops early — its
  // result is discarded at commit anyway.
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancelled()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

// ------------------------------------------------------------------ Runtime

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  // Prometheus # HELP text for the runtime's metrics (idempotent).
  auto& registry = obs::MetricsRegistry::global();
  registry.set_help("taskrt.tasks_submitted", "Tasks submitted to the runtime");
  registry.set_help("taskrt.transfers", "Inter-node input replica copies");
  registry.set_help("taskrt.bytes_transferred", "Bytes moved between nodes for input staging");
  registry.set_help("taskrt.steals", "Ready tasks stolen from another node's queue");
  registry.set_help("taskrt.ready_queue_depth", "Tasks currently sitting in ready queues");
  registry.set_help("taskrt.dep_wait_ns", "Submit-to-ready latency (dependency wait)");
  registry.set_help("taskrt.queue_wait_ns", "Enqueue-to-dequeue latency (ready-queue wait)");
  registry.set_help("taskrt.checkpoint_save_ns", "Time spent saving task checkpoints");
  registry.set_help("taskrt.node_failures", "Worker nodes declared dead");
  registry.set_help("taskrt.tasks_replayed", "Completed tasks re-executed for data recovery");
  faults_ = options_.faults ? options_.faults : common::fault::Injector::from_env();
  if (options_.nodes.empty()) {
    const std::size_t n = std::max<std::size_t>(1, options_.workers);
    for (std::size_t i = 0; i < n; ++i) {
      NodeSpec spec;
      spec.name = "node" + std::to_string(i);
      spec.cores = 1;
      nodes_.push_back(std::move(spec));
    }
  } else {
    nodes_ = options_.nodes;
  }
  if (!options_.checkpoint_dir.empty()) checkpoints_.emplace(options_.checkpoint_dir);
  if (verify_armed(options_.verify)) {
    verifier_ = std::make_unique<verify::Verifier>();
    LOG_DEBUG(kLogTag) << "verifier armed (directionality checks + graph lint)";
  }

  node_queues_.resize(nodes_.size());
  const std::int64_t boot_ns = now_ns();
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    node_runtime_.push_back(std::make_unique<NodeRuntime>());
    node_runtime_.back()->heartbeat_ns = boot_ns;
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const int cores = std::max(1, nodes_[n].cores);
    for (int c = 0; c < cores; ++c) {
      workers_.emplace_back([this, n] { worker_loop(static_cast<int>(n)); });
    }
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Runtime::~Runtime() {
  try {
    wait_all();
  } catch (const WorkflowError&) {
    // Destructor must not throw; the failure was observable via sync/wait.
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  scheduler_cv_.notify_all();
  monitor_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (monitor_.joinable()) monitor_.join();

  if (verifier_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Final lint: refresh findings with the complete sync/release picture
      // (wait_all lints too, but syncs may have happened since).
      lint_graph_locked(/*force=*/true);
    }
    if (const char* report_path = std::getenv("CLIMATE_VERIFY_REPORT")) {
      const Status st = verifier_->write_json_lines(report_path);
      if (!st.ok()) {
        LOG_WARN(kLogTag) << "verify report write failed: " << st.to_string();
      }
    }
  }
}

std::int64_t Runtime::now_ns() const {
  // The observability clock (ns since the process-wide obs epoch) rather
  // than a per-runtime epoch: all trace records, spans and metrics then
  // share one timeline and merge into a single Perfetto view.
  return obs::now_ns();
}

DataHandle Runtime::create_data(std::any initial, std::size_t size_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const DataId id = next_data_id_++;
  DataRecord& record = data_[id];
  VersionRecord version;
  version.ready = initial.has_value();
  version.value = std::make_shared<std::any>(std::move(initial));
  version.size_bytes = size_bytes ? size_bytes : options_.default_size_hint;
  if (version.ready) version.replicas.insert(-1);  // lives on the master
  record.versions.push_back(std::move(version));
  return DataHandle{id};
}

TaskId Runtime::submit(const std::string& name, const TaskOptions& options,
                       const std::vector<Param>& params, TaskFn fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!fatal_error_.empty()) {
    throw WorkflowError("submit after workflow failure: " + fatal_error_);
  }
  const TaskId id = static_cast<TaskId>(tasks_.size()) + 1;
  auto task = std::make_unique<TaskRecord>();
  task->id = id;
  task->name = name;
  task->options = options;
  task->fn = std::move(fn);
  task->original_params = params;
  task->submit_ns = now_ns();

  for (const Param& param : params) {
    auto it = data_.find(param.handle.id);
    if (it == data_.end()) {
      throw std::logic_error("submit('" + name + "'): unknown data handle");
    }
    DataRecord& record = it->second;
    ParamBinding binding;
    binding.data = param.handle.id;
    binding.direction = param.direction;

    auto add_dep = [&](TaskId dep) {
      if (dep == kNoTask || dep == id) return;
      task->trace_deps.insert(dep);
      const TaskRecord& dep_task = *tasks_[dep - 1];
      if (dep_task.state == TaskState::kCompleted) return;
      task->deps.insert(dep);
    };

    if (param.direction == Direction::kIn || param.direction == Direction::kInOut) {
      const std::size_t latest = record.versions.size() - 1;
      const VersionRecord& version = record.versions[latest];
      if (!version.ready && version.writer == kNoTask) {
        throw std::logic_error("submit('" + name + "'): IN parameter reads data never written");
      }
      if (!version.ready && version.cancelled &&
          version.writer != kNoTask &&
          tasks_[version.writer - 1]->state == TaskState::kCompleted) {
        throw std::logic_error("submit('" + name + "'): IN parameter reads released data");
      }
      binding.read_version = latest;
      // Record the provenance edge even when the writer already completed
      // (no scheduling dep needed, but the trace graph must not depend on
      // execution timing).
      add_dep(version.writer);
    }
    if (param.direction == Direction::kOut || param.direction == Direction::kInOut) {
      // Anti-dependencies: a writer must wait for earlier readers of the
      // version it supersedes, and for the previous writer.
      for (TaskId reader : record.readers_since_write) add_dep(reader);
      add_dep(record.versions.back().writer);
      record.readers_since_write.clear();

      VersionRecord version;
      version.writer = id;
      version.value = std::make_shared<std::any>();
      version.size_bytes = record.versions.back().size_bytes;
      record.versions.push_back(std::move(version));
      binding.write_version = record.versions.size() - 1;
    }
    if (param.direction == Direction::kIn) {
      record.readers_since_write.push_back(id);
    }
    task->bindings.push_back(binding);
  }

  if (verifier_) {
    // Same handle bound to several parameters: two reads are merely redundant
    // (note), but once a write is involved the in-task view is ambiguous —
    // the read slot holds the pre-task version while the write creates a new
    // one, which rarely matches what the author meant.
    std::map<DataId, std::size_t> first_use;
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto [it, inserted] = first_use.emplace(params[i].handle.id, i);
      if (inserted) continue;
      const bool write_involved = params[it->second].direction != Direction::kIn ||
                                  params[i].direction != Direction::kIn;
      verify::Diagnostic diag;
      diag.kind = verify::DiagKind::kAliasedParams;
      diag.severity = write_involved ? verify::Severity::kError : verify::Severity::kNote;
      diag.task = id;
      diag.task_name = name;
      diag.param_index = static_cast<int>(i);
      diag.data = params[i].handle.id;
      diag.message = "parameter aliases param " + std::to_string(it->second) + " (" +
                     direction_name(params[it->second].direction) + " + " +
                     direction_name(params[i].direction) + " on the same datum)";
      diag.hint = write_involved
                      ? "bind the datum once (INOUT reads and updates in place)"
                      : "bind the datum once; duplicate IN parameters add no information";
      verifier_->add(std::move(diag));
    }
  }

  ++stats_.tasks_submitted;
  OBS_COUNTER_ADD("taskrt.tasks_submitted", 1);

  // Checkpoint skip: a previously recorded task is completed immediately
  // from its stored outputs, regardless of dependencies (recovery semantics).
  if (checkpoints_ && !options.checkpoint_key.empty() && options.codec.usable() &&
      checkpoints_->contains(options.checkpoint_key)) {
    auto blobs = checkpoints_->load(options.checkpoint_key);
    if (blobs.ok()) {
      task->from_checkpoint = true;
      tasks_.push_back(std::move(task));
      commit_outputs_from_checkpoint(*tasks_.back(), *blobs);
      completion_cv_.notify_all();
      scheduler_cv_.notify_all();
      return id;
    }
    LOG_WARN(kLogTag) << "checkpoint load failed for key '" << options.checkpoint_key
                      << "': " << blobs.status().to_string() << "; re-executing";
  }

  // A dependency that already failed or was cancelled poisons this task.
  TaskId poisoned_by = kNoTask;
  for (TaskId dep : task->deps) {
    const TaskState dep_state = tasks_[dep - 1]->state;
    if (dep_state == TaskState::kFailed || dep_state == TaskState::kCancelled) {
      poisoned_by = dep;
      break;
    }
  }
  tasks_.push_back(std::move(task));
  TaskRecord& record = *tasks_.back();
  if (poisoned_by != kNoTask) {
    // Name the ROOT failed task in the reason, not an intermediate
    // cancellation: "poisoned by a cancelled task" is itself transitive.
    TaskId root = poisoned_by;
    if (tasks_[root - 1]->cancelled_by != kNoTask) root = tasks_[root - 1]->cancelled_by;
    cancel_locked(record, poisoned_by,
                  "cancelled by failure of task " + std::to_string(root) + " ('" +
                      tasks_[root - 1]->name + "')");
    completion_cv_.notify_all();
    return id;
  }

  record.pending = 0;
  for (TaskId dep : record.deps) {
    TaskRecord& dep_task = *tasks_[dep - 1];
    if (dep_task.state == TaskState::kCompleted || dep_task.state == TaskState::kFailed ||
        dep_task.state == TaskState::kCancelled) {
      continue;
    }
    dep_task.successors.push_back(id);
    ++record.pending;
  }
  if (record.pending == 0) {
    enqueue_ready(id);
  }
  return id;
}

void Runtime::enqueue_ready(TaskId id) {
  TaskRecord& task = *tasks_[id - 1];
  task.state = TaskState::kReady;
  // Lifecycle stamps: ready (dependencies satisfied) once, queued on every
  // enqueue so retries re-measure their queue wait.
  const std::int64_t now = now_ns();
  if (task.ready_ns < 0) task.ready_ns = now;
  task.queued_ns = now;
  const int node = pick_node(task);
  if (node < 0) {
    // No live node satisfies the constraints: unschedulable, treat as failed.
    task.state = TaskState::kFailed;
    task.end_ns = now_ns();
    task.error = "no node satisfies constraints";
    ++stats_.tasks_failed;
    ++terminal_tasks_;
    cancel_successors(id, "cancelled by failure of task " + std::to_string(id) + " ('" +
                              task.name + "': unschedulable)");
    if (task.options.on_failure == FailurePolicy::kFail) {
      fatal_error_ = "task '" + task.name + "' unschedulable";
    }
    completion_cv_.notify_all();
    return;
  }
  node_queues_[static_cast<std::size_t>(node)].push_back(id);
  OBS_GAUGE_ADD("taskrt.ready_queue_depth", 1);
  scheduler_cv_.notify_all();
}

bool Runtime::node_eligible(int node_index, const TaskRecord& task) const {
  const NodeSpec& node = nodes_[static_cast<std::size_t>(node_index)];
  for (const std::string& tag : task.options.constraints) {
    if (node.tags.find(tag) == node.tags.end()) return false;
  }
  return true;
}

int Runtime::pick_node(const TaskRecord& task) {
  if (!options_.locality_aware) {
    // Round-robin over eligible nodes (ablation baseline).
    for (std::size_t probe = 0; probe < nodes_.size(); ++probe) {
      const std::size_t n = (round_robin_cursor_ + probe) % nodes_.size();
      if (node_alive_locked(n) && node_eligible(static_cast<int>(n), task)) {
        round_robin_cursor_ = n + 1;
        return static_cast<int>(n);
      }
    }
    return -1;
  }
  int best = -1;
  std::int64_t best_score = -1;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!node_alive_locked(n)) continue;
    if (!node_eligible(static_cast<int>(n), task)) continue;
    // Locality score: bytes of the task's inputs already resident here,
    // minus a queue-length penalty to keep load balanced.
    std::int64_t local_bytes = 0;
    for (const ParamBinding& binding : task.bindings) {
      if (binding.direction == Direction::kOut) continue;
      const VersionRecord& version = data_.at(binding.data).versions[binding.read_version];
      if (version.replicas.count(static_cast<int>(n))) {
        local_bytes += static_cast<std::int64_t>(version.size_bytes);
      }
    }
    const std::int64_t penalty =
        static_cast<std::int64_t>(node_queues_[n].size()) * 1024;  // ~1KB per queued task
    const std::int64_t score = local_bytes - penalty;
    if (best < 0 || score > best_score) {
      best = static_cast<int>(n);
      best_score = score;
    }
  }
  return best;
}

void Runtime::worker_loop(int node_index) {
  NodeRuntime& self = *node_runtime_[static_cast<std::size_t>(node_index)];
  // A task is claimable when ready, or when it is a running straggler with a
  // queued speculative backup copy.
  const auto claimable = [&](const TaskRecord& task) {
    return task.state == TaskState::kReady ||
           (task.state == TaskState::kRunning && task.backup_pending);
  };
  const auto heartbeat_interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(std::max(0.5, options_.heartbeat_interval_ms) * 1e6));

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Liveness stamp: an idle worker proves its node alive every loop turn.
    // During a long task body no stamps happen, which is why the monitor only
    // declares death when the node also has no body in flight.
    self.heartbeat_ns = now_ns();
    if (stopping_) return;
    if (self.crashed) return;  // injected node failure: stop draining

    TaskId task_id = kNoTask;
    bool backup = false;
    auto& own = node_queues_[static_cast<std::size_t>(node_index)];
    while (!own.empty() && task_id == kNoTask) {
      const TaskId candidate = own.front();
      own.pop_front();
      OBS_GAUGE_ADD("taskrt.ready_queue_depth", -1);
      TaskRecord& task = *tasks_[candidate - 1];
      if (claimable(task)) {
        task_id = candidate;
        backup = task.state == TaskState::kRunning;
        if (backup) task.backup_pending = false;
      }
    }
    if (task_id == kNoTask) {
      // Steal from the longest eligible queue.
      std::size_t victim = node_queues_.size();
      std::size_t victim_len = 0;
      for (std::size_t n = 0; n < node_queues_.size(); ++n) {
        if (n == static_cast<std::size_t>(node_index)) continue;
        if (node_queues_[n].size() <= victim_len) continue;
        bool has_eligible = false;
        for (TaskId id : node_queues_[n]) {
          if (claimable(*tasks_[id - 1]) && node_eligible(node_index, *tasks_[id - 1])) {
            has_eligible = true;
            break;
          }
        }
        if (has_eligible) {
          victim = n;
          victim_len = node_queues_[n].size();
        }
      }
      if (victim < node_queues_.size()) {
        auto& q = node_queues_[victim];
        for (auto it = q.begin(); it != q.end(); ++it) {
          TaskRecord& task = *tasks_[*it - 1];
          if (claimable(task) && node_eligible(node_index, task)) {
            task_id = *it;
            backup = task.state == TaskState::kRunning;
            if (backup) task.backup_pending = false;
            q.erase(it);
            OBS_GAUGE_ADD("taskrt.ready_queue_depth", -1);
            OBS_COUNTER_ADD("taskrt.steals", 1);
            break;
          }
        }
      }
    }
    if (task_id == kNoTask) {
      // Bounded wait instead of a bare cv wait: the timeout doubles as the
      // heartbeat cadence.
      scheduler_cv_.wait_for(lock, heartbeat_interval);
      continue;
    }

    lock.unlock();
    execute_task(task_id, node_index, backup);
    lock.lock();
  }
}

void Runtime::execute_task(TaskId id, int node_index, bool backup) {
  TaskContext ctx;
  std::int64_t transfer_bytes = 0;
  std::int64_t stage_begin_ns = 0;
  int attempt = -1;
  bool inject_error = false;
  double slowdown_ms = 0.0;
  // Resolved under the lock below, then used outside it while the task body
  // runs: the record's address is stable (unique_ptr), but indexing tasks_
  // unlocked would race with submit() reallocating the vector.
  TaskRecord* running = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TaskRecord& task = *tasks_[id - 1];
    NodeRuntime& node = *node_runtime_[static_cast<std::size_t>(node_index)];
    if (!node_alive_locked(static_cast<std::size_t>(node_index))) {
      // The node crashed between claim and pickup: give the task back.
      if (task.state == TaskState::kReady) enqueue_ready(id);
      return;
    }
    if (backup) {
      // A speculative copy only makes sense while the primary is in flight.
      if (task.state != TaskState::kRunning || task.live_attempts.empty()) return;
    } else if (task.state != TaskState::kReady) {
      return;
    }

    // Injected node crash, decided at task pickup BEFORE any attempt
    // bookkeeping: no retry budget is consumed and no side effects leak —
    // a crash is a property of the node, not a body failure.
    const std::int64_t pickup_key = node.pickups++;
    if (faults_ && faults_->fire(common::fault::Kind::kNodeCrash,
                                 nodes_[static_cast<std::size_t>(node_index)].name, pickup_key)) {
      node.crashed = true;
      OBS_COUNTER_ADD("fault.injected.taskrt.node_crash", 1);
      obs::Span span("fault", "inject:node_crash");
      if (!backup) enqueue_ready(id);  // re-home the popped task
      scheduler_cv_.notify_all();
      monitor_cv_.notify_all();
      return;
    }
    if (faults_) {
      if (auto slow = faults_->fire(common::fault::Kind::kNodeSlowdown,
                                    nodes_[static_cast<std::size_t>(node_index)].name, pickup_key)) {
        slowdown_ms = slow->delay_ms;
        OBS_COUNTER_ADD("fault.injected.taskrt.node_slowdown", 1);
      }
    }

    // Input readiness re-check: a version can lose its value between
    // enqueue and pickup when its only replica died with a node. Block the
    // task again and replay the producers (lazy lineage recovery).
    for (const ParamBinding& binding : task.bindings) {
      if (binding.direction == Direction::kOut) continue;
      if (!data_.at(binding.data).versions[binding.read_version].ready) {
        if (!backup) {
          reblock_on_lost_inputs_locked(task);
          scheduler_cv_.notify_all();
        }
        return;
      }
    }

    running = &task;
    const std::int64_t dequeue_ns = now_ns();
    attempt = task.attempts++;
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    task.live_attempts[attempt] = AttemptInfo{cancel, node_index, dequeue_ns, backup};
    ++node.executing;
    ++stats_.tasks_executed;
    if (!backup) {
      task.state = TaskState::kRunning;
      task.node = node_index;
      // Re-stamped on every primary dequeue (like queued_ns on every
      // enqueue) so queue-wait attribution covers the attempt that ran last.
      task.start_ns = dequeue_ns;
      if (task.queued_ns >= 0) {
        obs::observe_histogram("taskrt.queue_wait_ns", static_cast<double>(dequeue_ns - task.queued_ns));
      }
      if (task.ready_ns >= 0 && attempt == 0) {
        obs::observe_histogram("taskrt.dep_wait_ns", static_cast<double>(task.ready_ns - task.submit_ns));
      }
    }
    ctx.params_ = task.original_params;
    ctx.inputs_.resize(task.bindings.size());
    ctx.outputs_.resize(task.bindings.size());
    ctx.access_.resize(task.bindings.size());
    ctx.verifier_ = verifier_.get();
    ctx.cancel_flag_ = cancel;
    ctx.node_ = node_index;
    ctx.task_id_ = id;
    ctx.name_ = task.name;
    ctx.attempt_ = attempt;

    // Injected task-body exception: decided per (task, attempt) so a retry
    // draws a fresh decision instead of repeating the same verdict.
    if (faults_ && faults_->fire(common::fault::Kind::kTaskError, task.name,
                                 static_cast<std::int64_t>(id) * 131 + attempt)) {
      inject_error = true;
    }

    // Transfer phase begins: input staging (value copies onto this node)
    // plus the simulated interconnect delay below.
    stage_begin_ns = now_ns();
    for (std::size_t i = 0; i < task.bindings.size(); ++i) {
      const ParamBinding& binding = task.bindings[i];
      if (binding.direction == Direction::kOut) continue;
      VersionRecord& version = data_.at(binding.data).versions[binding.read_version];
      ctx.inputs_[i] = *version.value;
      if (!version.replicas.count(node_index)) {
        version.replicas.insert(node_index);
        ++stats_.transfers;
        stats_.bytes_transferred += version.size_bytes;
        transfer_bytes += static_cast<std::int64_t>(version.size_bytes);
        OBS_COUNTER_ADD("taskrt.transfers", 1);
        OBS_COUNTER_ADD("taskrt.bytes_transferred", version.size_bytes);
      }
    }
  }

  // Simulated interconnect: pay for the replica copies outside the lock.
  if (options_.transfer_ns_per_byte > 0 && transfer_bytes > 0) {
    const auto delay = std::chrono::nanoseconds(
        static_cast<std::int64_t>(options_.transfer_ns_per_byte * static_cast<double>(transfer_bytes)));
    std::this_thread::sleep_for(delay);
  }
  const std::int64_t transfer_done_ns = now_ns();
  // Simulated container start-up (image instantiation before the task body).
  if (options_.container_startup_ms > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        static_cast<std::int64_t>(options_.container_startup_ms * 1e6)));
  }
  if (slowdown_ms > 0) {
    // Injected node slowdown: the straggler stimulus for speculation.
    obs::Span span("fault", "inject:node_slowdown");
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<std::int64_t>(slowdown_ms * 1e6)));
  }

  std::string error;
  bool success = true;
  std::int64_t body_ns = 0;
  {
    // Per-function latency histogram + one span per task body so the merged
    // Perfetto trace can show the task timeline alongside the other layers.
    obs::Span span("taskrt", ctx.name_);
    const std::int64_t fn_start = obs::now_ns();
    if (inject_error) {
      obs::Span fault_span("fault", "inject:task_error");
      OBS_COUNTER_ADD("fault.injected.taskrt.task_error", 1);
      success = false;
      error = "injected task-body fault";
    } else {
      try {
        running->fn(ctx);  // fn immutable while the task is running
      } catch (const std::exception& e) {
        success = false;
        error = e.what();
      } catch (...) {
        success = false;
        error = "unknown exception";
      }
    }
    body_ns = obs::now_ns() - fn_start;
    obs::observe_histogram("taskrt.task_ns." + ctx.name_, static_cast<double>(body_ns));
  }

  if (verifier_ && success) {
    // Post-body audit of the recorded read/write sets against the declared
    // directions. An unwritten OUT is an error — downstream readers would see
    // an empty value, the classic symptom of writing through a captured
    // reference instead of set_out(). An untouched INOUT silently forwards
    // the previous version (warning), and an unread IN is advisory only: it
    // may be a deliberate ordering-only edge (note).
    for (std::size_t i = 0; i < ctx.params_.size(); ++i) {
      const Direction direction = ctx.params_[i].direction;
      verify::Diagnostic diag;
      diag.task = id;
      diag.task_name = ctx.name_;
      diag.param_index = static_cast<int>(i);
      diag.data = ctx.params_[i].handle.id;
      if (direction != Direction::kIn && !ctx.outputs_[i].written) {
        diag.kind = direction == Direction::kOut ? verify::DiagKind::kOutNeverWritten
                                                 : verify::DiagKind::kInOutNeverWritten;
        diag.severity = direction == Direction::kOut ? verify::Severity::kError
                                                     : verify::Severity::kWarning;
        diag.message = std::string("declared ") + direction_name(direction) +
                       " but the task body never called set_out()";
        diag.hint = direction == Direction::kOut
                        ? "readers will see an empty value; call ctx.set_out(), or check for a "
                          "write through a captured reference that bypasses the runtime"
                        : "the previous version is forwarded unchanged; declare IN if the task "
                          "only reads";
        verifier_->add(std::move(diag));
      } else if (direction == Direction::kIn && !ctx.access_[i].read) {
        diag.kind = verify::DiagKind::kInNeverRead;
        diag.severity = verify::Severity::kNote;
        diag.message = "declared IN but the task body never called in()";
        diag.hint = "drop the parameter, or keep it only if the dependency edge itself is the "
                    "point (ordering-only input)";
        verifier_->add(std::move(diag));
      }
    }
  }

  finish_task(id, attempt, node_index, success, error, std::move(ctx.outputs_),
              transfer_done_ns - stage_begin_ns, body_ns);
}

void Runtime::commit_outputs_from_checkpoint(TaskRecord& task,
                                             const std::vector<std::string>& blobs) {
  std::size_t blob_index = 0;
  for (const ParamBinding& binding : task.bindings) {
    if (binding.direction == Direction::kIn) continue;
    VersionRecord& version = data_[binding.data].versions[binding.write_version];
    std::any value;
    if (blob_index < blobs.size()) {
      value = task.options.codec.deserialize(blobs[blob_index]);
    }
    ++blob_index;
    version.value = std::make_shared<std::any>(std::move(value));
    version.ready = true;
    version.replicas.insert(-1);
  }
  task.state = TaskState::kCompleted;
  task.start_ns = task.end_ns = now_ns();
  task.ready_ns = task.queued_ns = task.start_ns;  // zero-wait lifecycle
  ++stats_.tasks_from_checkpoint;
  ++stats_.tasks_completed;
  ++terminal_tasks_;
}

void Runtime::finish_task(TaskId id, int attempt, int node_index, bool success,
                          const std::string& error, std::vector<TaskContext::Slot> outputs,
                          std::int64_t transfer_add_ns, std::int64_t body_ns) {
  std::vector<std::string> checkpoint_blobs;
  std::string checkpoint_key;
  bool want_checkpoint = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TaskRecord& task = *tasks_[id - 1];
    NodeRuntime& node = *node_runtime_[static_cast<std::size_t>(node_index)];
    --node.executing;
    // Attribution accumulates over attempts (retries and speculative copies
    // add up), even when this attempt's result is discarded below.
    task.transfer_ns += transfer_add_ns;
    task.exec_ns += body_ns;
    if (task.replaying) recovery_.recovery_exec_ns += body_ns;

    auto it = task.live_attempts.find(attempt);
    if (it == task.live_attempts.end()) {
      // Superseded: a deadline kill, a faster speculative copy or a workflow
      // abort already discarded this attempt; only its timing was kept.
      scheduler_cv_.notify_all();
      return;
    }
    if (node.crashed) {
      // Physical consistency: a result computed on a crashed node is lost
      // with the node. Drop the attempt without consuming the retry budget;
      // the death handler reschedules the task.
      task.live_attempts.erase(it);
      --task.attempts;
      ++task.node_failures;
      ++recovery_.tasks_rescheduled;
      monitor_cv_.notify_all();
      return;
    }
    const bool was_backup = it->second.backup;
    task.live_attempts.erase(it);
    if (task.state != TaskState::kRunning) return;

    if (!success) {
      for (auto& [index, info] : task.live_attempts) info.cancel->store(true);
      task.live_attempts.clear();
      fail_task_locked(task, error);
      return;
    }

    // First healthy finisher commits; slower concurrent attempts are
    // cancelled and their late results discarded via the live_attempts miss.
    if (was_backup) ++recovery_.speculative_wins;
    for (auto& [index, info] : task.live_attempts) info.cancel->store(true);
    task.live_attempts.clear();
    task.node = node_index;
    FnStat& fn_stat = fn_stats_[task.name];
    fn_stat.total_ns += body_ns;
    ++fn_stat.count;

    // Publish outputs.
    for (std::size_t i = 0; i < task.bindings.size(); ++i) {
      const ParamBinding& binding = task.bindings[i];
      if (binding.direction == Direction::kIn) continue;
      auto& versions = data_[binding.data].versions;
      VersionRecord& version = versions[binding.write_version];
      TaskContext::Slot& slot = outputs[i];
      if (slot.written) {
        version.value = std::make_shared<std::any>(std::move(slot.value));
        if (slot.size_bytes) version.size_bytes = slot.size_bytes;
      } else if (binding.direction == Direction::kInOut) {
        version.value = versions[binding.read_version].value;  // unchanged
      } else {
        version.value = std::make_shared<std::any>();  // OUT never set: empty
      }
      version.ready = true;
      version.cancelled = false;
      version.replicas.insert(node_index);
      // Durable outputs also live on reliable storage (-1 = master/storage
      // home): losing the node does not lose them.
      if (task.options.durable_outputs) version.replicas.insert(-1);
    }
    if (checkpoints_ && !task.options.checkpoint_key.empty() && task.options.codec.usable()) {
      want_checkpoint = true;
      checkpoint_key = task.options.checkpoint_key;
      for (std::size_t i = 0; i < task.bindings.size(); ++i) {
        if (task.bindings[i].direction == Direction::kIn) continue;
        const VersionRecord& version = data_[task.bindings[i].data].versions[task.bindings[i].write_version];
        checkpoint_blobs.push_back(task.options.codec.serialize(*version.value));
      }
    }
    complete_locked(task);
  }
  if (want_checkpoint) {
    // checkpoint_key was copied under the lock: indexing tasks_ here would
    // race with submit() growing the vector.
    const std::int64_t save_begin_ns = now_ns();
    const Status st = checkpoints_->save(checkpoint_key, checkpoint_blobs);
    if (!st.ok()) {
      LOG_WARN(kLogTag) << "checkpoint save failed for '" << checkpoint_key
                        << "': " << st.to_string();
    }
    const std::int64_t save_ns = now_ns() - save_begin_ns;
    obs::observe_histogram("taskrt.checkpoint_save_ns", static_cast<double>(save_ns));
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_[id - 1]->checkpoint_ns += save_ns;
  }
}

void Runtime::fail_task_locked(TaskRecord& task, const std::string& error) {
  const FailurePolicy policy = task.options.on_failure;
  LOG_DEBUG(kLogTag) << "task " << task.id << " ('" << task.name << "') failed (attempt "
                     << task.attempts << ", policy " << failure_policy_name(policy)
                     << "): " << error;
  if (policy == FailurePolicy::kRetry && task.attempts <= task.options.max_retries) {
    ++stats_.retries;
    enqueue_ready(task.id);  // re-stamps queued_ns: the retry's queue wait
    return;
  }
  if (policy == FailurePolicy::kIgnore) {
    // Continue the workflow: outputs fall back to the superseded version's
    // value (or stay empty), successors run.
    ++stats_.tasks_failed;
    task.error = error;
    for (std::size_t i = 0; i < task.bindings.size(); ++i) {
      const ParamBinding& binding = task.bindings[i];
      if (binding.direction == Direction::kIn) continue;
      auto& versions = data_[binding.data].versions;
      VersionRecord& version = versions[binding.write_version];
      version.value = versions[binding.write_version - 1].value;
      version.size_bytes = versions[binding.write_version - 1].size_bytes;
      version.ready = true;
      version.replicas = versions[binding.write_version - 1].replicas;
    }
    complete_locked(task);
    return;
  }
  // kFail or kRetry exhausted or kCancelSuccessors.
  task.state = TaskState::kFailed;
  task.error = error;
  task.end_ns = now_ns();
  ++stats_.tasks_failed;
  ++terminal_tasks_;
  for (const ParamBinding& binding : task.bindings) {
    if (binding.direction != Direction::kIn) {
      data_[binding.data].versions[binding.write_version].cancelled = true;
    }
  }
  cancel_successors(task.id, "cancelled by failure of task " + std::to_string(task.id) + " ('" +
                                 task.name + "')");
  if (policy == FailurePolicy::kFail || policy == FailurePolicy::kRetry) {
    // Retry exhaustion is fatal too: the task's result is required.
    fatal_error_ = "task '" + task.name + "' failed: " + error;
    // Cancel everything not yet running so the workflow drains.
    for (auto& other : tasks_) {
      if (other->state == TaskState::kPending || other->state == TaskState::kReady) {
        cancel_locked(*other, task.id,
                      "cancelled: workflow aborted by failure of task " +
                          std::to_string(task.id) + " ('" + task.name + "')");
      }
    }
  }
  completion_cv_.notify_all();
  scheduler_cv_.notify_all();
}

void Runtime::complete_locked(TaskRecord& task) {
  task.state = TaskState::kCompleted;
  task.end_ns = now_ns();
  task.replaying = false;
  ++stats_.tasks_completed;
  ++terminal_tasks_;
  for (TaskId succ : task.successors) {
    TaskRecord& successor = *tasks_[succ - 1];
    if (successor.state != TaskState::kPending) continue;
    if (--successor.pending == 0) enqueue_ready(succ);
  }
  completion_cv_.notify_all();
  scheduler_cv_.notify_all();
}

void Runtime::cancel_locked(TaskRecord& task, TaskId cause, const std::string& reason) {
  if (task.state == TaskState::kCompleted || task.state == TaskState::kFailed ||
      task.state == TaskState::kCancelled) {
    return;
  }
  // Resolve the root cause so every transitively cancelled task names the
  // originally failed task, not the intermediate cancellation.
  TaskId root = cause;
  if (cause != kNoTask && tasks_[cause - 1]->cancelled_by != kNoTask) {
    root = tasks_[cause - 1]->cancelled_by;
  }
  task.state = TaskState::kCancelled;
  task.end_ns = now_ns();
  task.error = reason;
  task.cancelled_by = root;
  ++stats_.tasks_cancelled;
  ++terminal_tasks_;
  for (const ParamBinding& binding : task.bindings) {
    if (binding.direction != Direction::kIn) {
      data_[binding.data].versions[binding.write_version].cancelled = true;
    }
  }
  for (auto& [index, info] : task.live_attempts) info.cancel->store(true);
  task.live_attempts.clear();
  if (verifier_) {
    verify::Diagnostic diag;
    diag.kind = verify::DiagKind::kCancelledByFailure;
    diag.severity = verify::Severity::kNote;
    diag.task = task.id;
    diag.task_name = task.name;
    diag.message = reason;
    verifier_->add(std::move(diag));
  }
  for (TaskId succ : task.successors) cancel_locked(*tasks_[succ - 1], task.id, reason);
}

void Runtime::cancel_successors(TaskId id, const std::string& reason) {
  for (TaskId succ : tasks_[id - 1]->successors) {
    cancel_locked(*tasks_[succ - 1], id, reason);
  }
}

// ------------------------------------------------ node failure and recovery

void Runtime::monitor_loop() {
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(std::max(0.5, options_.heartbeat_interval_ms) * 1e6));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const std::int64_t now = now_ns();

    // Deadline enforcement: a task whose earliest live attempt has run past
    // deadline_ms is treated as hung and routed through its failure policy.
    for (auto& task_ptr : tasks_) {
      TaskRecord& task = *task_ptr;
      if (task.state != TaskState::kRunning || task.options.deadline_ms <= 0 ||
          task.live_attempts.empty()) {
        continue;
      }
      std::int64_t earliest_ns = task.live_attempts.begin()->second.start_ns;
      for (const auto& [index, info] : task.live_attempts) {
        earliest_ns = std::min(earliest_ns, info.start_ns);
      }
      const double elapsed_ms = static_cast<double>(now - earliest_ns) / 1e6;
      if (elapsed_ms <= task.options.deadline_ms) continue;
      for (auto& [index, info] : task.live_attempts) info.cancel->store(true);
      task.live_attempts.clear();
      ++recovery_.deadline_failures;
      fail_task_locked(task, "deadline of " + std::to_string(task.options.deadline_ms) +
                                 " ms exceeded (hung-task detection)");
    }

    // Speculative straggler re-execution: a task running much longer than
    // its function's trailing mean gets a backup copy on another node; the
    // first finisher wins and the loser is cancelled at commit.
    if (options_.speculation) {
      for (auto& task_ptr : tasks_) {
        TaskRecord& task = *task_ptr;
        if (task.state != TaskState::kRunning || task.live_attempts.size() != 1 ||
            task.backup_pending || task.speculated || !task.options.allow_speculation) {
          continue;
        }
        const auto stat_it = fn_stats_.find(task.name);
        if (stat_it == fn_stats_.end() ||
            stat_it->second.count < options_.speculation_min_samples) {
          continue;
        }
        const double mean_ms = static_cast<double>(stat_it->second.total_ns) /
                               static_cast<double>(stat_it->second.count) / 1e6;
        const AttemptInfo& primary = task.live_attempts.begin()->second;
        const double elapsed_ms = static_cast<double>(now - primary.start_ns) / 1e6;
        const double threshold_ms =
            std::max(options_.speculation_factor * mean_ms, options_.speculation_min_ms);
        if (elapsed_ms <= threshold_ms) continue;
        int target = -1;
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
          if (static_cast<int>(n) == primary.node) continue;
          if (node_alive_locked(n) && node_eligible(static_cast<int>(n), task)) {
            target = static_cast<int>(n);
            break;
          }
        }
        if (target < 0) continue;  // nowhere to run a backup
        task.backup_pending = true;
        task.speculated = true;
        ++recovery_.speculative_backups;
        node_queues_[static_cast<std::size_t>(target)].push_back(task.id);
        OBS_GAUGE_ADD("taskrt.ready_queue_depth", 1);
        OBS_COUNTER_ADD("taskrt.speculative_backups", 1);
        scheduler_cv_.notify_all();
      }
    }

    // Node death: a crashed node is declared dead once its heartbeat is
    // stale AND no body is still in flight there (a finisher first drops its
    // now-lost result in finish_task).
    const auto timeout_ns =
        static_cast<std::int64_t>(std::max(1.0, options_.heartbeat_timeout_ms) * 1e6);
    for (std::size_t n = 0; n < node_runtime_.size(); ++n) {
      NodeRuntime& node = *node_runtime_[n];
      if (node.dead || !node.crashed || node.executing > 0) continue;
      if (now - node.heartbeat_ns < timeout_ns) continue;
      handle_node_death_locked(n);
    }

    monitor_cv_.wait_for(lock, interval);
  }
}

void Runtime::handle_node_death_locked(std::size_t node_index) {
  NodeRuntime& node = *node_runtime_[node_index];
  node.dead = true;
  ++recovery_.node_failures;
  OBS_COUNTER_ADD("taskrt.node_failures", 1);
  obs::Span span("fault", "node_death:" + nodes_[node_index].name);
  LOG_WARN(kLogTag) << "node " << nodes_[node_index].name
                    << " declared dead (missed heartbeats); recovering";

  // Re-home the dead node's queued work.
  std::deque<TaskId> orphaned;
  orphaned.swap(node_queues_[node_index]);
  for (TaskId id : orphaned) {
    OBS_GAUGE_ADD("taskrt.ready_queue_depth", -1);
    TaskRecord& task = *tasks_[id - 1];
    if (task.state == TaskState::kReady) {
      enqueue_ready(id);
    } else if (task.state == TaskState::kRunning && task.backup_pending) {
      // Queued speculative copy: re-home it onto a surviving node.
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (n == node_index || !node_alive_locked(n) ||
            !node_eligible(static_cast<int>(n), task)) {
          continue;
        }
        node_queues_[n].push_back(id);
        OBS_GAUGE_ADD("taskrt.ready_queue_depth", 1);
        break;
      }
    }
  }

  // Reschedule in-flight attempts lost with the node. Failed-by-node is NOT
  // a body failure: the retry budget is untouched (attempts is rolled back).
  for (auto& task_ptr : tasks_) {
    TaskRecord& task = *task_ptr;
    if (task.state != TaskState::kRunning) continue;
    bool lost = false;
    for (auto it = task.live_attempts.begin(); it != task.live_attempts.end();) {
      if (it->second.node != static_cast<int>(node_index)) {
        ++it;
        continue;
      }
      it->second.cancel->store(true);
      it = task.live_attempts.erase(it);
      --task.attempts;
      ++task.node_failures;
      ++recovery_.tasks_rescheduled;
      lost = true;
    }
    if (task.live_attempts.empty()) {
      enqueue_ready(task.id);
    } else if (lost) {
      task.node = task.live_attempts.begin()->second.node;  // surviving attempt
    }
  }

  // Invalidate data versions homed only on the dead node. Tasks that later
  // try to read them re-block and replay the producers (lazy recovery);
  // durable outputs live on reliable storage and survive.
  for (auto& [data_id, record] : data_) {
    for (VersionRecord& version : record.versions) {
      if (version.replicas.erase(static_cast<int>(node_index)) == 0) continue;
      if (!version.ready || !version.replicas.empty()) continue;
      if (version.writer == kNoTask) continue;
      if (tasks_[version.writer - 1]->options.durable_outputs) {
        version.replicas.insert(-1);
        continue;
      }
      version.ready = false;
      version.value = std::make_shared<std::any>();
      ++recovery_.data_versions_lost;
    }
  }

  bool any_alive = false;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (node_alive_locked(n)) {
      any_alive = true;
      break;
    }
  }
  if (!any_alive && fatal_error_.empty()) {
    fatal_error_ = "all nodes failed";
    for (auto& other : tasks_) {
      if (other->state == TaskState::kPending || other->state == TaskState::kReady) {
        cancel_locked(*other, kNoTask, "cancelled: all nodes failed");
      }
    }
  }
  scheduler_cv_.notify_all();
  completion_cv_.notify_all();
}

void Runtime::replay_task_locked(TaskId id) {
  TaskRecord& task = *tasks_[id - 1];
  if (task.state != TaskState::kCompleted) return;  // already replaying or live
  if (task.options.durable_outputs) return;  // outputs survive on reliable storage

  // Checkpoint fast path: restore the stored outputs instead of re-running.
  if (checkpoints_ && !task.options.checkpoint_key.empty() && task.options.codec.usable() &&
      checkpoints_->contains(task.options.checkpoint_key)) {
    auto blobs = checkpoints_->load(task.options.checkpoint_key);
    if (blobs.ok()) {
      std::size_t blob_index = 0;
      for (const ParamBinding& binding : task.bindings) {
        if (binding.direction == Direction::kIn) continue;
        VersionRecord& version = data_[binding.data].versions[binding.write_version];
        std::any value;
        if (blob_index < blobs->size()) {
          value = task.options.codec.deserialize((*blobs)[blob_index]);
        }
        ++blob_index;
        if (!version.ready) ++recovery_.data_versions_rematerialized;
        version.value = std::make_shared<std::any>(std::move(value));
        version.ready = true;
        version.cancelled = false;
        version.replicas.insert(-1);
      }
      ++recovery_.tasks_replayed;
      ++recovery_.checkpoint_restores;
      OBS_COUNTER_ADD("taskrt.tasks_replayed", 1);
      LOG_INFO(kLogTag) << "task " << id << " ('" << task.name
                        << "') restored from checkpoint after data loss";
      completion_cv_.notify_all();
      scheduler_cv_.notify_all();
      return;
    }
  }

  // Lineage re-execution: back to pending, outputs reset, lost producers
  // replayed recursively with the dependency edges re-registered.
  ++recovery_.tasks_replayed;
  OBS_COUNTER_ADD("taskrt.tasks_replayed", 1);
  LOG_INFO(kLogTag) << "task " << id << " ('" << task.name
                    << "') re-executed to recover lost data (lineage replay)";
  --terminal_tasks_;
  --stats_.tasks_completed;
  task.replaying = true;
  task.from_checkpoint = false;
  for (const ParamBinding& binding : task.bindings) {
    if (binding.direction == Direction::kIn) continue;
    VersionRecord& version = data_[binding.data].versions[binding.write_version];
    if (!version.ready) ++recovery_.data_versions_rematerialized;
    version.ready = false;
    version.cancelled = false;
    version.value = std::make_shared<std::any>();
    version.replicas.clear();
  }
  reblock_on_lost_inputs_locked(task);
}

void Runtime::reblock_on_lost_inputs_locked(TaskRecord& task) {
  task.state = TaskState::kPending;
  task.pending = 0;
  for (const ParamBinding& binding : task.bindings) {
    if (binding.direction == Direction::kOut) continue;
    VersionRecord& version = data_.at(binding.data).versions[binding.read_version];
    if (version.ready) continue;
    if (version.writer == kNoTask || version.cancelled) {
      // Initial data lost with a node, or a released datum: unrecoverable.
      if (fatal_error_.empty()) {
        fatal_error_ = "recovery failed: input of task '" + task.name + "' is unrecoverable";
      }
      completion_cv_.notify_all();
      return;
    }
    replay_task_locked(version.writer);
    if (!version.ready) {
      TaskRecord& producer = *tasks_[version.writer - 1];
      if (std::find(producer.successors.begin(), producer.successors.end(), task.id) ==
          producer.successors.end()) {
        producer.successors.push_back(task.id);
      }
      ++task.pending;
    }
  }
  if (task.pending == 0) enqueue_ready(task.id);
}

void Runtime::crash_node(std::size_t node_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node_index >= node_runtime_.size()) throw std::out_of_range("crash_node: bad node index");
  node_runtime_[node_index]->crashed = true;
  scheduler_cv_.notify_all();
  monitor_cv_.notify_all();
}

RecoveryReport Runtime::recovery() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RecoveryReport report = recovery_;
  if (faults_) report.faults_injected = faults_->injected_count();
  return report;
}

std::any Runtime::sync(DataHandle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = data_.find(handle.id);
  if (it == data_.end()) throw std::logic_error("sync: unknown data handle");
  const std::size_t latest = it->second.versions.size() - 1;
  {
    // A datum with no initial value and no submitted writer can never become
    // ready — waiting would deadlock the master forever. Fail loudly instead.
    const VersionRecord& version = it->second.versions[latest];
    if (!version.ready && !version.cancelled && version.writer == kNoTask) {
      if (verifier_) {
        verify::Diagnostic diag;
        diag.kind = verify::DiagKind::kSyncNeverWritten;
        diag.severity = verify::Severity::kError;
        diag.data = handle.id;
        diag.message = "sync() on a datum with no initial value and no producer task";
        diag.hint = "submit the producing task before sync(), or create the datum with an "
                    "initial value";
        verifier_->add(std::move(diag));
      }
      throw WorkflowError("sync: data " + std::to_string(handle.id) +
                          " was never written and has no producer task");
    }
  }
  synced_data_.insert(handle.id);
  // Manual wait loop instead of a predicate wait: a synced version can
  // transition ready -> lost (its only replica died with a node) while the
  // master sleeps. Re-trigger the lineage replay of its completed producer.
  while (true) {
    const VersionRecord& version = it->second.versions[latest];
    if (version.ready || version.cancelled || !fatal_error_.empty()) break;
    if (version.writer != kNoTask &&
        tasks_[version.writer - 1]->state == TaskState::kCompleted) {
      replay_task_locked(version.writer);
      continue;  // replay may have restored it synchronously (checkpoint)
    }
    completion_cv_.wait(lock);
  }
  VersionRecord& version = it->second.versions[latest];
  if (!version.ready) {
    if (!fatal_error_.empty()) throw WorkflowError(fatal_error_);
    throw WorkflowError("sync: producing task was cancelled");
  }
  if (!version.replicas.count(-1)) {
    version.replicas.insert(-1);
    ++stats_.sync_transfers;
    stats_.bytes_transferred += version.size_bytes;
  }
  return *version.value;
}

void Runtime::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  completion_cv_.wait(lock, [&] { return terminal_tasks_ == tasks_.size(); });
  if (verifier_) lint_graph_locked();  // before the throw: findings survive failure
  if (!fatal_error_.empty()) throw WorkflowError(fatal_error_);
}

std::size_t Runtime::release_data(DataHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = data_.find(handle.id);
  if (it == data_.end()) throw std::logic_error("release_data: unknown data handle");
  // Every task touching this datum must be terminal: a version still being
  // produced or read would lose its value mid-flight.
  for (const VersionRecord& version : it->second.versions) {
    if (version.writer != kNoTask) {
      const TaskState state = tasks_[version.writer - 1]->state;
      if (state != TaskState::kCompleted && state != TaskState::kFailed &&
          state != TaskState::kCancelled) {
        throw std::logic_error("release_data: a producing task is still active");
      }
    }
  }
  for (TaskId reader : it->second.readers_since_write) {
    const TaskState state = tasks_[reader - 1]->state;
    if (state != TaskState::kCompleted && state != TaskState::kFailed &&
        state != TaskState::kCancelled) {
      throw std::logic_error("release_data: a reading task is still active");
    }
  }
  std::size_t released = 0;
  for (VersionRecord& version : it->second.versions) {
    if (version.value && version.value->has_value()) {
      released += version.size_bytes;
      version.value = std::make_shared<std::any>();
      version.ready = false;  // later reads fail loudly instead of seeing empty
      version.cancelled = true;
      version.replicas.clear();
    }
  }
  released_data_.insert(handle.id);
  return released;
}

RuntimeStats Runtime::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TaskState Runtime::task_state(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNoTask || id > tasks_.size()) throw std::out_of_range("task_state: bad id");
  return tasks_[id - 1]->state;
}

verify::GraphView Runtime::build_graph_view_locked() const {
  verify::GraphView view;
  view.nodes.reserve(tasks_.size());
  for (const auto& task : tasks_) {
    verify::GraphNode node;
    node.id = task->id;
    node.name = task->name;
    node.deps.assign(task->trace_deps.begin(), task->trace_deps.end());
    node.accesses.reserve(task->bindings.size());
    for (const ParamBinding& binding : task->bindings) {
      verify::GraphAccess access;
      access.data = binding.data;
      access.direction = binding.direction;
      access.read_version = binding.read_version;
      access.write_version = binding.write_version;
      node.accesses.push_back(access);
    }
    node.checkpoint_key = task->options.checkpoint_key;
    node.checkpoint_codec_ok = task->options.codec.usable();
    view.nodes.push_back(std::move(node));
  }
  view.synced = synced_data_;
  view.released = released_data_;
  view.checkpointing_enabled = checkpoints_.has_value();
  return view;
}

void Runtime::lint_graph_locked(bool force) {
  if (!verifier_ || (!force && tasks_.size() == linted_tasks_)) return;
  verifier_->set_graph_diagnostics(verify::lint_graph(build_graph_view_locked()));
  linted_tasks_ = tasks_.size();
}

verify::Report Runtime::verify_report() const {
  if (!verifier_) return verify::Report();
  return verifier_->report();
}

std::vector<verify::Diagnostic> Runtime::lint_graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return verify::lint_graph(build_graph_view_locked());
}

Trace Runtime::trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TaskTrace> traces;
  traces.reserve(tasks_.size());
  for (const auto& task : tasks_) {
    TaskTrace t;
    t.id = task->id;
    t.name = task->name;
    t.state = task->state;
    t.node = task->node;
    t.submit_ns = task->submit_ns;
    t.ready_ns = task->ready_ns;
    t.queued_ns = task->queued_ns;
    t.start_ns = task->start_ns;
    t.end_ns = task->end_ns;
    t.transfer_ns = task->transfer_ns;
    t.exec_ns = task->exec_ns;
    t.checkpoint_ns = task->checkpoint_ns;
    t.deps.assign(task->trace_deps.begin(), task->trace_deps.end());
    t.from_checkpoint = task->from_checkpoint;
    t.attempts = task->attempts;
    t.node_failures = task->node_failures;
    t.speculated = task->speculated;
    t.error = task->error;
    t.cancelled_by = task->cancelled_by;
    traces.push_back(std::move(t));
  }
  return Trace(std::move(traces));
}

}  // namespace climate::taskrt
