#include "taskrt/trace.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/export.hpp"

namespace climate::taskrt {
namespace {

// Palette roughly matching the qualitative colours of Figure 3.
const char* kPalette[] = {"#4C72B0", "#DD8452", "#55A868", "#C44E52", "#8172B3",
                          "#937860", "#DA8BC3", "#8C8C8C", "#CCB974", "#64B5CD",
                          "#2F4B7C", "#FFA600", "#A05195", "#F95D6A", "#665191"};

}  // namespace

std::map<std::string, std::size_t> Trace::counts_by_name() const {
  std::map<std::string, std::size_t> counts;
  for (const TaskTrace& t : tasks_) ++counts[t.name];
  return counts;
}

std::size_t Trace::edge_count() const {
  std::size_t edges = 0;
  for (const TaskTrace& t : tasks_) edges += t.deps.size();
  return edges;
}

std::int64_t Trace::makespan_ns() const {
  std::int64_t first = -1;
  std::int64_t last = -1;
  for (const TaskTrace& t : tasks_) {
    if (t.start_ns < 0 || t.end_ns < 0) continue;
    if (first < 0 || t.start_ns < first) first = t.start_ns;
    last = std::max(last, t.end_ns);
  }
  if (first < 0) return 0;
  return last - first;
}

std::int64_t Trace::total_busy_ns() const {
  std::int64_t busy = 0;
  for (const TaskTrace& t : tasks_) {
    if (t.start_ns >= 0 && t.end_ns >= t.start_ns) busy += t.end_ns - t.start_ns;
  }
  return busy;
}

double Trace::overlap_fraction(const std::string& name_a, const std::string& name_b) const {
  // Collect the execution intervals of b, then measure what portion of a's
  // intervals intersects their union.
  std::vector<std::pair<std::int64_t, std::int64_t>> b_intervals;
  for (const TaskTrace& t : tasks_) {
    if (t.name == name_b && t.start_ns >= 0 && t.end_ns > t.start_ns) {
      b_intervals.emplace_back(t.start_ns, t.end_ns);
    }
  }
  std::sort(b_intervals.begin(), b_intervals.end());
  // Merge into disjoint intervals.
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& iv : b_intervals) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  std::int64_t a_total = 0;
  std::int64_t a_overlap = 0;
  for (const TaskTrace& t : tasks_) {
    if (t.name != name_a || t.start_ns < 0 || t.end_ns <= t.start_ns) continue;
    a_total += t.end_ns - t.start_ns;
    for (const auto& iv : merged) {
      const std::int64_t lo = std::max(t.start_ns, iv.first);
      const std::int64_t hi = std::min(t.end_ns, iv.second);
      if (hi > lo) a_overlap += hi - lo;
    }
  }
  if (a_total == 0) return 0.0;
  return static_cast<double>(a_overlap) / static_cast<double>(a_total);
}

std::map<int, double> Trace::node_utilization() const {
  const std::int64_t span = makespan_ns();
  std::map<int, double> busy;
  for (const TaskTrace& t : tasks_) {
    if (t.node < 0 || t.start_ns < 0 || t.end_ns <= t.start_ns) continue;
    busy[t.node] += static_cast<double>(t.end_ns - t.start_ns);
  }
  if (span > 0) {
    for (auto& [node, ns] : busy) ns /= static_cast<double>(span);
  }
  return busy;
}

std::map<std::string, std::int64_t> Trace::busy_ns_by_name() const {
  std::map<std::string, std::int64_t> busy;
  for (const TaskTrace& t : tasks_) {
    if (t.start_ns >= 0 && t.end_ns > t.start_ns) busy[t.name] += t.end_ns - t.start_ns;
  }
  return busy;
}

std::string Trace::to_dot() const {
  // Assign colours per function name in first-appearance order so the graph
  // is stable across runs of the same workflow.
  std::map<std::string, std::size_t> colour_of;
  std::vector<std::string> order;
  for (const TaskTrace& t : tasks_) {
    if (colour_of.emplace(t.name, colour_of.size()).second) order.push_back(t.name);
  }
  constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

  std::string dot = "digraph workflow {\n  rankdir=TB;\n  node [shape=circle, style=filled, fontsize=9];\n";
  for (const TaskTrace& t : tasks_) {
    const char* colour = kPalette[colour_of[t.name] % kPaletteSize];
    dot += common::format("  t%llu [label=\"%llu\", fillcolor=\"%s\", tooltip=\"%s\"];\n",
                          static_cast<unsigned long long>(t.id),
                          static_cast<unsigned long long>(t.id), colour, t.name.c_str());
  }
  for (const TaskTrace& t : tasks_) {
    for (TaskId dep : t.deps) {
      dot += common::format("  t%llu -> t%llu;\n", static_cast<unsigned long long>(dep),
                            static_cast<unsigned long long>(t.id));
    }
  }
  dot += "  // legend\n";
  for (const std::string& name : order) {
    dot += common::format("  // %s -> %s\n", name.c_str(),
                          kPalette[colour_of[name] % kPaletteSize]);
  }
  dot += "}\n";
  return dot;
}

std::string Trace::to_gantt_csv() const {
  std::string csv = "id,name,node,start_us,end_us\n";
  for (const TaskTrace& t : tasks_) {
    if (t.start_ns < 0) continue;
    csv += common::format("%llu,%s,%d,%.1f,%.1f\n", static_cast<unsigned long long>(t.id),
                          t.name.c_str(), t.node, static_cast<double>(t.start_ns) / 1e3,
                          static_cast<double>(t.end_ns) / 1e3);
  }
  return csv;
}

std::vector<obs::TrackEvent> to_obs_track_events(const Trace& trace) {
  std::vector<obs::TrackEvent> events;
  events.reserve(trace.tasks().size());
  for (const TaskTrace& t : trace.tasks()) {
    if (t.start_ns < 0 || t.end_ns < t.start_ns) continue;
    obs::TrackEvent ev;
    ev.track = common::format("node%d", t.node);
    ev.name = t.name;
    ev.category = "taskrt.task";
    ev.start_ns = t.start_ns;
    ev.end_ns = t.end_ns;
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace climate::taskrt
