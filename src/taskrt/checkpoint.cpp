#include "taskrt/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/strings.hpp"

namespace climate::taskrt {

namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

std::string CheckpointStore::path_for(const std::string& key) const {
  return dir_ + "/" + common::hex64(common::fnv1a64(key)) + ".ckpt";
}

bool CheckpointStore::contains(const std::string& key) const {
  std::error_code ec;
  return fs::exists(path_for(key), ec);
}

Result<std::vector<std::string>> CheckpointStore::load(const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return Status::NotFound("no checkpoint for key '" + key + "'");
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::DataLoss("corrupt checkpoint for '" + key + "'");
  std::vector<std::string> outputs;
  outputs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in) return Status::DataLoss("corrupt checkpoint for '" + key + "'");
    std::string blob(len, '\0');
    in.read(blob.data(), static_cast<std::streamsize>(len));
    if (!in) return Status::DataLoss("corrupt checkpoint for '" + key + "'");
    outputs.push_back(std::move(blob));
  }
  return outputs;
}

Status CheckpointStore::save(const std::string& key, const std::vector<std::string>& outputs) const {
  const std::string final_path = path_for(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Unavailable("cannot write checkpoint " + tmp_path);
    const auto count = static_cast<std::uint32_t>(outputs.size());
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const std::string& blob : outputs) {
      const auto len = static_cast<std::uint64_t>(blob.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    if (!out) return Status::DataLoss("short checkpoint write for '" + key + "'");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) return Status::Internal("checkpoint rename failed: " + ec.message());
  return Status::Ok();
}

Status CheckpointStore::clear() const {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".ckpt") fs::remove(entry.path(), ec);
  }
  if (ec) return Status::Internal("checkpoint clear failed: " + ec.message());
  return Status::Ok();
}

std::size_t CheckpointStore::size() const {
  std::error_code ec;
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".ckpt") ++count;
  }
  return count;
}

}  // namespace climate::taskrt
