// Streaming interface of the runtime (paper section 5.2: "a streaming
// interface available in PyCOMPSs has been leveraged to monitor the file
// production progress and detect when a (full) new year of data is
// available").
//
// Two pieces:
//  - DataStream: a closeable multi-producer/multi-consumer FIFO of std::any
//    items, the generic producer/consumer channel between tasks;
//  - DirectoryWatcher: a polling watcher that publishes file paths appearing
//    in a directory, used to detect the ESM's daily NetCDF output.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

namespace climate::taskrt {

/// A closeable FIFO channel of type-erased items.
class DataStream {
 public:
  /// Appends an item. Publishing after close() throws.
  void publish(std::any item);

  /// Marks the stream finished; consumers drain the remaining items and then
  /// observe end-of-stream.
  void close();

  /// Blocks for the next item; returns nullopt once the stream is closed and
  /// drained.
  std::optional<std::any> next();

  /// Non-blocking variant; returns nullopt when currently empty (check
  /// `finished()` to distinguish exhaustion from emptiness).
  std::optional<std::any> try_next();

  /// True once close() was called and every item has been consumed.
  bool finished() const;

  /// Items published so far.
  std::size_t published() const { return published_.load(); }

  /// Items consumed so far.
  std::size_t consumed() const { return consumed_.load(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::any> queue_;
  bool closed_ = false;
  std::atomic<std::size_t> published_{0};
  std::atomic<std::size_t> consumed_{0};
};

/// Polls a directory and publishes paths of files ending in `suffix`, each
/// exactly once, in lexicographic order within a poll round. Files appearing
/// while the watcher runs are picked up on a later round — the mechanism the
/// workflow uses to notice each completed day/year of simulation output.
class DirectoryWatcher {
 public:
  /// Starts watching immediately. `on_file` runs on the watcher thread.
  DirectoryWatcher(std::string directory, std::string suffix,
                   std::function<void(const std::string&)> on_file,
                   std::chrono::milliseconds poll_interval = std::chrono::milliseconds(5));

  /// Stops after one final poll round, so files present at stop time are
  /// never missed.
  ~DirectoryWatcher();

  DirectoryWatcher(const DirectoryWatcher&) = delete;
  DirectoryWatcher& operator=(const DirectoryWatcher&) = delete;

  /// Requests shutdown and joins the watcher thread (idempotent).
  void stop();

  /// Number of files reported so far.
  std::size_t seen() const { return seen_count_.load(); }

 private:
  void poll_once();
  void run();

  std::string directory_;
  std::string suffix_;
  std::function<void(const std::string&)> on_file_;
  std::chrono::milliseconds poll_interval_;
  std::set<std::string> seen_;
  std::atomic<std::size_t> seen_count_{0};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;  // interrupts the inter-poll sleep
  std::thread thread_;
};

}  // namespace climate::taskrt
