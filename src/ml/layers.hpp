// Neural-network layers with forward and backward passes. Implemented
// directly (no BLAS) — model sizes in this repository are small (the TC
// localizer runs on 16x16 patches), so clarity wins over blocking tricks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace climate::ml {

/// A learnable parameter with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
};

/// Layer interface: forward caches what backward needs; backward returns the
/// gradient w.r.t. the layer input and accumulates parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& input, bool training) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::string name() const = 0;
};

/// 2D convolution, stride 1, zero padding to preserve H and W (odd kernels).
/// Input [B, C, H, W], output [B, F, H, W].
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel, common::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "conv2d"; }

 private:
  std::size_t in_channels_, out_channels_, kernel_, pad_;
  Parameter weight_;  // [F, C, K, K]
  Parameter bias_;    // [F]
  Tensor input_cache_;
};

/// 2x2 max pooling with stride 2. Input [B, C, H, W] (H, W even).
class MaxPool2 : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2"; }

 private:
  Tensor input_cache_;
  std::vector<std::size_t> argmax_;
};

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor input_cache_;
};

/// Flattens [B, ...] to [B, N].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

/// Fully connected layer [B, N] -> [B, M].
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "dense"; }

 private:
  std::size_t in_features_, out_features_;
  Parameter weight_;  // [N, M]
  Parameter bias_;    // [M]
  Tensor input_cache_;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "sigmoid"; }

 private:
  Tensor output_cache_;
};

}  // namespace climate::ml
