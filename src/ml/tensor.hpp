// Dense float tensor used by the from-scratch neural network stack (the
// Keras/TensorFlow substitute for the TC localization CNN of section 5.4).
// Row-major storage, leading batch dimension by convention.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace climate::ml {

/// An N-dimensional row-major float tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }

  /// He-uniform initialization with fan-in scaling (for conv/dense weights).
  static Tensor he_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                           common::Rng& rng);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Typed accessors for the common ranks.
  float& at2(std::size_t a, std::size_t b) { return data_[a * shape_[1] + b]; }
  float at2(std::size_t a, std::size_t b) const { return data_[a * shape_[1] + b]; }
  float& at4(std::size_t a, std::size_t b, std::size_t c, std::size_t d) {
    return data_[((a * shape_[1] + b) * shape_[2] + c) * shape_[3] + d];
  }
  float at4(std::size_t a, std::size_t b, std::size_t c, std::size_t d) const {
    return data_[((a * shape_[1] + b) * shape_[2] + c) * shape_[3] + d];
  }

  void fill(float value) { data_.assign(data_.size(), value); }

  /// Reshapes in place; total size must be preserved.
  void reshape(std::vector<std::size_t> shape);

  /// "[2x3x4]" rendering for diagnostics.
  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace climate::ml
