// Sequential network container, losses, optimizers, and weight persistence —
// the training/inference core of the TC localizer.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/layers.hpp"

namespace climate::obs {
class Histogram;
}

namespace climate::ml {

using common::Result;
using common::Status;

/// A feed-forward stack of layers.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer (builder style).
  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Forward pass. training=true caches activations for backward().
  Tensor forward(const Tensor& input, bool training = false);

  /// Backpropagates dLoss/dOutput through every layer.
  void backward(const Tensor& grad_output);

  /// All learnable parameters.
  std::vector<Parameter*> parameters();

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Total learnable scalar count.
  std::size_t parameter_count();

  /// Saves / loads all parameter values (binary, shape-checked on load).
  Status save_weights(const std::string& path);
  Status load_weights(const std::string& path);

  std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Per-layer forward-latency histograms ("ml.layer_forward_ns.L<i>_<name>"),
  // resolved lazily on the first instrumented forward pass. Registry handles
  // are stable for the process lifetime, so raw pointers are safe to cache.
  // Inference may run from several runtime workers at once, so the lazy init
  // is double-checked: hists_ready_ holds the layer count the cache was built
  // for (acquire/release pairs with the build under hists_mutex_).
  std::vector<obs::Histogram*> layer_hists_;
  std::atomic<std::size_t> hists_ready_{0};
  std::mutex hists_mutex_;
};

/// Binary cross-entropy over sigmoid outputs in (0,1). Returns the mean loss
/// and writes dLoss/dPred into `grad` (same shape as pred).
float bce_loss(const Tensor& pred, const Tensor& target, Tensor* grad);

/// Mean squared error; per-element mask (same shape) scales both loss and
/// gradient (used to train offsets only on positive patches).
float mse_loss(const Tensor& pred, const Tensor& target, const Tensor& mask, Tensor* grad);

/// Adam optimizer.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(std::vector<Parameter*> params, float lr = 1e-3f, float beta1 = 0.9f,
                         float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update from the accumulated gradients.
  void step();

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<std::vector<float>> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
};

/// Plain SGD with momentum (kept as the ablation baseline).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(std::vector<Parameter*> params, float lr = 1e-2f, float momentum = 0.9f);
  void step();

 private:
  std::vector<Parameter*> params_;
  std::vector<std::vector<float>> velocity_;
  float lr_, momentum_;
};

}  // namespace climate::ml
