// The ML tropical-cyclone localization pipeline of paper section 5.4:
//  (i)  post-processing of model output — regridding, tiling into
//       non-overlapping patches, feature scaling;
//  (ii) inference through a pre-trained CNN that detects TC presence in a
//       patch and regresses the centre ("eye") position;
//  (iii) geo-referencing of predicted centres back onto the global map.
//
// The CNN consumes four channels (sea-level pressure, wind speed, relative
// vorticity, temperature), mirroring the paper's input variable list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/grid.hpp"
#include "common/status.hpp"
#include "ml/network.hpp"

namespace climate::ml {

using common::Field;
using common::LatLonGrid;
using common::Result;
using common::Status;

/// Number of input channels (psl, wspd, vort850, tas).
inline constexpr std::size_t kTcChannels = 4;

/// One tile of the global grid prepared for the CNN.
struct TcPatch {
  std::size_t row0 = 0;  ///< Patch origin (grid row).
  std::size_t col0 = 0;  ///< Patch origin (grid column).
  Tensor features;       ///< [kTcChannels, P, P], feature-scaled.

  // Training labels (from ground truth).
  bool has_tc = false;
  float center_row_frac = 0.5f;  ///< TC centre within the patch, [0,1].
  float center_col_frac = 0.5f;
};

/// A geo-referenced detection.
struct TcDetection {
  double lat = 0.0;
  double lon = 0.0;
  double confidence = 0.0;  ///< CNN presence probability.
};

/// Per-channel affine feature scaling (fixed climatological constants so
/// training and inference apply identical transforms).
float scale_feature(std::size_t channel, float raw);

/// Tiles four global fields into non-overlapping PxP patches (rows/cols not
/// covered by a full patch are dropped, as in the paper's tiling step).
std::vector<TcPatch> make_patches(const Field& psl, const Field& wspd, const Field& vort,
                                  const Field& tas, std::size_t patch);

/// The CNN-based localizer.
class TcLocalizer {
 public:
  /// Builds the (untrained) network for PxP patches.
  explicit TcLocalizer(std::size_t patch = 16, std::uint64_t seed = 7);

  /// One training epoch over labeled patches (mini-batch Adam); returns the
  /// mean combined loss (BCE presence + masked MSE offsets).
  float train_epoch(const std::vector<TcPatch>& patches, std::size_t batch_size = 16);

  /// Raw per-patch outputs: {presence prob, row frac, col frac}.
  struct Output {
    float presence = 0.0f;
    float row_frac = 0.5f;
    float col_frac = 0.5f;
  };
  std::vector<Output> infer(const std::vector<TcPatch>& patches);

  /// Full pipeline on one time step's fields: optional regrid to
  /// (infer_nlat, infer_nlon) (0 keeps the native grid), tile, scale, infer,
  /// geo-reference detections above `threshold`.
  std::vector<TcDetection> detect(const Field& psl, const Field& wspd, const Field& vort,
                                  const Field& tas, const LatLonGrid& grid,
                                  double threshold = 0.5, std::size_t infer_nlat = 0,
                                  std::size_t infer_nlon = 0);

  Status save(const std::string& path) { return net_.save_weights(path); }
  Status load(const std::string& path) { return net_.load_weights(path); }

  std::size_t patch() const { return patch_; }
  Sequential& net() { return net_; }

 private:
  std::size_t patch_;
  common::Rng rng_;
  Sequential net_;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

/// Labels patches against ground-truth cyclone centres (grid coordinates):
/// a patch is positive if a centre falls inside it.
void label_patches(std::vector<TcPatch>& patches, std::size_t patch,
                   const std::vector<std::pair<double, double>>& centers_rowcol);

}  // namespace climate::ml
