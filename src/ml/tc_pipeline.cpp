#include "ml/tc_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace climate::ml {

float scale_feature(std::size_t channel, float raw) {
  switch (channel) {
    case 0: return (raw - 1013.0f) / 20.0f;  // psl [hPa]
    case 1: return raw / 30.0f;              // wind speed [m/s]
    case 2: return raw / 10.0f;              // vorticity [1e-5/s]
    case 3: return (raw - 15.0f) / 20.0f;    // temperature [degC]
  }
  return raw;
}

std::vector<TcPatch> make_patches(const Field& psl, const Field& wspd, const Field& vort,
                                  const Field& tas, std::size_t patch) {
  const std::size_t nlat = psl.nlat();
  const std::size_t nlon = psl.nlon();
  const std::size_t rows = nlat / patch;
  const std::size_t cols = nlon / patch;
  std::vector<TcPatch> patches;
  patches.reserve(rows * cols);
  const Field* channels[kTcChannels] = {&psl, &wspd, &vort, &tas};
  for (std::size_t pr = 0; pr < rows; ++pr) {
    for (std::size_t pc = 0; pc < cols; ++pc) {
      TcPatch p;
      p.row0 = pr * patch;
      p.col0 = pc * patch;
      p.features = Tensor({kTcChannels, patch, patch});
      for (std::size_t c = 0; c < kTcChannels; ++c) {
        for (std::size_t y = 0; y < patch; ++y) {
          for (std::size_t x = 0; x < patch; ++x) {
            p.features[(c * patch + y) * patch + x] =
                scale_feature(c, channels[c]->at(p.row0 + y, p.col0 + x));
          }
        }
      }
      patches.push_back(std::move(p));
    }
  }
  return patches;
}

void label_patches(std::vector<TcPatch>& patches, std::size_t patch,
                   const std::vector<std::pair<double, double>>& centers_rowcol) {
  for (TcPatch& p : patches) {
    p.has_tc = false;
    p.center_row_frac = 0.5f;
    p.center_col_frac = 0.5f;
    for (const auto& [row, col] : centers_rowcol) {
      if (row >= static_cast<double>(p.row0) && row < static_cast<double>(p.row0 + patch) &&
          col >= static_cast<double>(p.col0) && col < static_cast<double>(p.col0 + patch)) {
        p.has_tc = true;
        p.center_row_frac = static_cast<float>((row - static_cast<double>(p.row0)) /
                                               static_cast<double>(patch));
        p.center_col_frac = static_cast<float>((col - static_cast<double>(p.col0)) /
                                               static_cast<double>(patch));
        break;
      }
    }
  }
}

TcLocalizer::TcLocalizer(std::size_t patch, std::uint64_t seed) : patch_(patch), rng_(seed) {
  // Patch is halved twice by pooling; require divisibility.
  const std::size_t after_pool = patch / 4;
  net_.add(std::make_unique<Conv2D>(kTcChannels, 8, 3, rng_))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Conv2D>(8, 16, 3, rng_))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(16 * after_pool * after_pool, 64, rng_))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(64, 3, rng_))
      .add(std::make_unique<Sigmoid>());
  optimizer_ = std::make_unique<AdamOptimizer>(net_.parameters(), 2e-3f);
}

float TcLocalizer::train_epoch(const std::vector<TcPatch>& patches, std::size_t batch_size) {
  if (patches.empty()) return 0.0f;
  OBS_SPAN("ml", "train_epoch");
  OBS_SCOPED_LATENCY("ml.train_epoch_ns");
  // Shuffled index order for this epoch.
  std::vector<std::size_t> order(patches.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i-- > 1;) {
    std::swap(order[i], order[rng_.uniform_index(i + 1)]);
  }

  float total_loss = 0.0f;
  std::size_t batches = 0;
  for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
    const std::size_t end = std::min(order.size(), begin + batch_size);
    const std::size_t B = end - begin;
    Tensor batch({B, kTcChannels, patch_, patch_});
    Tensor target({B, 3});
    Tensor mask({B, 3});
    for (std::size_t b = 0; b < B; ++b) {
      const TcPatch& p = patches[order[begin + b]];
      std::copy(p.features.data(), p.features.data() + p.features.size(),
                batch.data() + b * p.features.size());
      target.at2(b, 0) = p.has_tc ? 1.0f : 0.0f;
      target.at2(b, 1) = p.center_row_frac;
      target.at2(b, 2) = p.center_col_frac;
      mask.at2(b, 0) = 0.0f;                       // presence handled by BCE
      mask.at2(b, 1) = p.has_tc ? 1.0f : 0.0f;     // offsets only on positives
      mask.at2(b, 2) = p.has_tc ? 1.0f : 0.0f;
    }

    net_.zero_grad();
    Tensor pred = net_.forward(batch, /*training=*/true);

    // Combined loss: BCE on column 0, masked MSE on columns 1-2.
    Tensor presence_pred({B, 1}), presence_target({B, 1});
    for (std::size_t b = 0; b < B; ++b) {
      presence_pred.at2(b, 0) = pred.at2(b, 0);
      presence_target.at2(b, 0) = target.at2(b, 0);
    }
    Tensor bce_grad;
    const float presence_loss = bce_loss(presence_pred, presence_target, &bce_grad);
    Tensor mse_grad;
    const float offset_loss = mse_loss(pred, target, mask, &mse_grad);

    Tensor grad({B, 3});
    for (std::size_t b = 0; b < B; ++b) {
      grad.at2(b, 0) = bce_grad.at2(b, 0) + mse_grad.at2(b, 0);
      grad.at2(b, 1) = mse_grad.at2(b, 1);
      grad.at2(b, 2) = mse_grad.at2(b, 2);
    }
    net_.backward(grad);
    optimizer_->step();

    total_loss += presence_loss + offset_loss;
    ++batches;
  }
  return batches ? total_loss / static_cast<float>(batches) : 0.0f;
}

std::vector<TcLocalizer::Output> TcLocalizer::infer(const std::vector<TcPatch>& patches) {
  OBS_SPAN("ml", "tc_inference");
  OBS_SCOPED_LATENCY("ml.infer_ns");
  OBS_COUNTER_ADD("ml.patches_inferred", patches.size());
  std::vector<Output> outputs;
  outputs.reserve(patches.size());
  constexpr std::size_t kChunk = 64;
  for (std::size_t begin = 0; begin < patches.size(); begin += kChunk) {
    const std::size_t end = std::min(patches.size(), begin + kChunk);
    const std::size_t B = end - begin;
    Tensor batch({B, kTcChannels, patch_, patch_});
    for (std::size_t b = 0; b < B; ++b) {
      const TcPatch& p = patches[begin + b];
      std::copy(p.features.data(), p.features.data() + p.features.size(),
                batch.data() + b * p.features.size());
    }
    Tensor pred = net_.forward(batch, /*training=*/false);
    for (std::size_t b = 0; b < B; ++b) {
      outputs.push_back({pred.at2(b, 0), pred.at2(b, 1), pred.at2(b, 2)});
    }
  }
  return outputs;
}

std::vector<TcDetection> TcLocalizer::detect(const Field& psl, const Field& wspd,
                                             const Field& vort, const Field& tas,
                                             const LatLonGrid& grid, double threshold,
                                             std::size_t infer_nlat, std::size_t infer_nlon) {
  OBS_SPAN("ml", "tc_detect");
  OBS_SCOPED_LATENCY("ml.detect_ns");
  const Field* use_psl = &psl;
  const Field* use_wspd = &wspd;
  const Field* use_vort = &vort;
  const Field* use_tas = &tas;
  Field rg_psl, rg_wspd, rg_vort, rg_tas;
  std::size_t nlat = grid.nlat();
  std::size_t nlon = grid.nlon();
  if (infer_nlat != 0 && infer_nlon != 0 && (infer_nlat != nlat || infer_nlon != nlon)) {
    rg_psl = common::regrid_bilinear(psl, infer_nlat, infer_nlon);
    rg_wspd = common::regrid_bilinear(wspd, infer_nlat, infer_nlon);
    rg_vort = common::regrid_bilinear(vort, infer_nlat, infer_nlon);
    rg_tas = common::regrid_bilinear(tas, infer_nlat, infer_nlon);
    use_psl = &rg_psl;
    use_wspd = &rg_wspd;
    use_vort = &rg_vort;
    use_tas = &rg_tas;
    nlat = infer_nlat;
    nlon = infer_nlon;
  }

  std::vector<TcPatch> patches = make_patches(*use_psl, *use_wspd, *use_vort, *use_tas, patch_);
  const std::vector<Output> outputs = infer(patches);

  std::vector<TcDetection> detections;
  for (std::size_t i = 0; i < patches.size(); ++i) {
    if (outputs[i].presence < threshold) continue;
    // Geo-referencing: fractional position within the (possibly regridded)
    // patch back to global latitude/longitude.
    const double row = static_cast<double>(patches[i].row0) +
                       static_cast<double>(outputs[i].row_frac) * static_cast<double>(patch_);
    const double col = static_cast<double>(patches[i].col0) +
                       static_cast<double>(outputs[i].col_frac) * static_cast<double>(patch_);
    const double lat = -90.0 + (row + 0.5) * 180.0 / static_cast<double>(nlat);
    const double lon = (col + 0.5) * 360.0 / static_cast<double>(nlon);
    detections.push_back({lat, lon, outputs[i].presence});
  }
  return detections;
}

}  // namespace climate::ml
