#include "ml/tensor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace climate::ml {

Tensor::Tensor(std::vector<std::size_t> shape, float fill) : shape_(std::move(shape)) {
  std::size_t total = 1;
  for (std::size_t d : shape_) total *= d;
  data_.assign(total, fill);
}

Tensor Tensor::he_uniform(std::vector<std::size_t> shape, std::size_t fan_in, common::Rng& rng) {
  Tensor t(std::move(shape));
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in == 0 ? 1 : fan_in));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  std::size_t total = 1;
  for (std::size_t d : shape) total *= d;
  if (total != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch (" + std::to_string(total) +
                                " vs " + std::to_string(data_.size()) + ")");
  }
  shape_ = std::move(shape);
}

std::string Tensor::shape_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(shape_[i]);
  }
  return out + "]";
}

}  // namespace climate::ml
