#include "ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace climate::ml {

// --------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               common::Rng& rng)
    : in_channels_(in_channels), out_channels_(out_channels), kernel_(kernel),
      pad_(kernel / 2) {
  if (kernel % 2 == 0) throw std::invalid_argument("Conv2D: kernel must be odd");
  const std::size_t fan_in = in_channels * kernel * kernel;
  weight_ = {"conv.w", Tensor::he_uniform({out_channels, in_channels, kernel, kernel}, fan_in, rng),
             Tensor::zeros({out_channels, in_channels, kernel, kernel})};
  bias_ = {"conv.b", Tensor::zeros({out_channels}), Tensor::zeros({out_channels})};
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const std::size_t B = input.dim(0), C = input.dim(1), H = input.dim(2), W = input.dim(3);
  if (C != in_channels_) throw std::invalid_argument("Conv2D: channel mismatch");
  Tensor out({B, out_channels_, H, W});
  const long k = static_cast<long>(kernel_);
  const long p = static_cast<long>(pad_);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t y = 0; y < H; ++y) {
        for (std::size_t x = 0; x < W; ++x) {
          float acc = bias_.value[f];
          for (std::size_t c = 0; c < C; ++c) {
            for (long ky = 0; ky < k; ++ky) {
              const long iy = static_cast<long>(y) + ky - p;
              if (iy < 0 || iy >= static_cast<long>(H)) continue;
              for (long kx = 0; kx < k; ++kx) {
                const long ix = static_cast<long>(x) + kx - p;
                if (ix < 0 || ix >= static_cast<long>(W)) continue;
                acc += input.at4(b, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix)) *
                       weight_.value.at4(f, c, static_cast<std::size_t>(ky),
                                         static_cast<std::size_t>(kx));
              }
            }
          }
          out.at4(b, f, y, x) = acc;
        }
      }
    }
  }
  if (training) input_cache_ = input;
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  const std::size_t B = input.dim(0), C = input.dim(1), H = input.dim(2), W = input.dim(3);
  Tensor grad_input(input.shape());
  const long k = static_cast<long>(kernel_);
  const long p = static_cast<long>(pad_);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t y = 0; y < H; ++y) {
        for (std::size_t x = 0; x < W; ++x) {
          const float g = grad_output.at4(b, f, y, x);
          if (g == 0.0f) continue;
          bias_.grad[f] += g;
          for (std::size_t c = 0; c < C; ++c) {
            for (long ky = 0; ky < k; ++ky) {
              const long iy = static_cast<long>(y) + ky - p;
              if (iy < 0 || iy >= static_cast<long>(H)) continue;
              for (long kx = 0; kx < k; ++kx) {
                const long ix = static_cast<long>(x) + kx - p;
                if (ix < 0 || ix >= static_cast<long>(W)) continue;
                const std::size_t uy = static_cast<std::size_t>(iy);
                const std::size_t ux = static_cast<std::size_t>(ix);
                weight_.grad.at4(f, c, static_cast<std::size_t>(ky), static_cast<std::size_t>(kx)) +=
                    g * input.at4(b, c, uy, ux);
                grad_input.at4(b, c, uy, ux) +=
                    g * weight_.value.at4(f, c, static_cast<std::size_t>(ky),
                                          static_cast<std::size_t>(kx));
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ------------------------------------------------------------- MaxPool2

Tensor MaxPool2::forward(const Tensor& input, bool training) {
  const std::size_t B = input.dim(0), C = input.dim(1), H = input.dim(2), W = input.dim(3);
  const std::size_t OH = H / 2, OW = W / 2;
  Tensor out({B, C, OH, OW});
  // Layer state is only mutated when training, so concurrent inference
  // through a shared network is safe.
  if (training) argmax_.assign(out.size(), 0);
  std::size_t idx = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t y = 0; y < OH; ++y) {
        for (std::size_t x = 0; x < OW; ++x) {
          float best = -1e30f;
          std::size_t best_pos = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t iy = 2 * y + dy, ix = 2 * x + dx;
              const float v = input.at4(b, c, iy, ix);
              if (v > best) {
                best = v;
                best_pos = ((b * C + c) * H + iy) * W + ix;
              }
            }
          }
          out.at4(b, c, y, x) = best;
          if (training) argmax_[idx++] = best_pos;
        }
      }
    }
  }
  if (training) input_cache_ = input;
  return out;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  Tensor grad_input(input_cache_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

// ----------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  if (training) input_cache_ = input;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (input_cache_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

// -------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) input_shape_ = input.shape();
  Tensor out = input;
  out.reshape({input.dim(0), input.size() / input.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  grad.reshape(input_shape_);
  return grad;
}

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = {"dense.w", Tensor::he_uniform({in_features, out_features}, in_features, rng),
             Tensor::zeros({in_features, out_features})};
  bias_ = {"dense.b", Tensor::zeros({out_features}), Tensor::zeros({out_features})};
}

Tensor Dense::forward(const Tensor& input, bool training) {
  const std::size_t B = input.dim(0);
  if (input.dim(1) != in_features_) throw std::invalid_argument("Dense: feature mismatch");
  Tensor out({B, out_features_});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t m = 0; m < out_features_; ++m) out.at2(b, m) = bias_.value[m];
    for (std::size_t n = 0; n < in_features_; ++n) {
      const float x = input.at2(b, n);
      if (x == 0.0f) continue;
      for (std::size_t m = 0; m < out_features_; ++m) {
        out.at2(b, m) += x * weight_.value.at2(n, m);
      }
    }
  }
  if (training) input_cache_ = input;
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t B = input_cache_.dim(0);
  Tensor grad_input({B, in_features_});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t m = 0; m < out_features_; ++m) {
      const float g = grad_output.at2(b, m);
      if (g == 0.0f) continue;
      bias_.grad[m] += g;
      for (std::size_t n = 0; n < in_features_; ++n) {
        weight_.grad.at2(n, m) += g * input_cache_.at2(b, n);
        grad_input.at2(b, n) += g * weight_.value.at2(n, m);
      }
    }
  }
  return grad_input;
}

// -------------------------------------------------------------- Sigmoid

Tensor Sigmoid::forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  if (training) output_cache_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float s = output_cache_[i];
    grad[i] *= s * (1.0f - s);
  }
  return grad;
}

}  // namespace climate::ml
