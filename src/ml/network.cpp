#include "ml/network.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "obs/obs.hpp"

namespace climate::ml {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
#if !defined(CLIMATE_OBS_DISABLED)
  if (obs::enabled()) {
    const std::size_t nlayers = layers_.size();
    if (hists_ready_.load(std::memory_order_acquire) != nlayers) {
      std::lock_guard<std::mutex> lock(hists_mutex_);
      if (hists_ready_.load(std::memory_order_relaxed) != nlayers) {
        layer_hists_.clear();
        for (std::size_t i = 0; i < nlayers; ++i) {
          layer_hists_.push_back(obs::MetricsRegistry::global().histogram(
              "ml.layer_forward_ns.L" + std::to_string(i) + "_" + layers_[i]->name()));
        }
        hists_ready_.store(nlayers, std::memory_order_release);
      }
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      const std::int64_t t0 = obs::now_ns();
      x = layers_[i]->forward(x, training);
      layer_hists_[i]->observe(static_cast<double>(obs::now_ns() - t0));
    }
    return x;
  }
#endif
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

void Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->grad.fill(0.0f);
}

std::size_t Sequential::parameter_count() {
  std::size_t count = 0;
  for (Parameter* p : parameters()) count += p->value.size();
  return count;
}

Status Sequential::save_weights(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot write " + path);
  const auto params = parameters();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    const auto n = static_cast<std::uint64_t>(p->value.size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!out) return Status::DataLoss("short weight write to " + path);
  return Status::Ok();
}

Status Sequential::load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto params = parameters();
  if (count != params.size()) {
    return Status::InvalidArgument("weight file has " + std::to_string(count) +
                                   " tensors, model expects " + std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != p->value.size()) {
      return Status::InvalidArgument("weight tensor size mismatch for " + p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) return Status::DataLoss("truncated weight file " + path);
  }
  return Status::Ok();
}

float bce_loss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  *grad = Tensor(pred.shape());
  float loss = 0.0f;
  const float eps = 1e-7f;
  const auto n = static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float p = std::min(1.0f - eps, std::max(eps, pred[i]));
    const float y = target[i];
    loss += -(y * std::log(p) + (1.0f - y) * std::log(1.0f - p));
    (*grad)[i] = (p - y) / (p * (1.0f - p)) / n;
  }
  return loss / n;
}

float mse_loss(const Tensor& pred, const Tensor& target, const Tensor& mask, Tensor* grad) {
  *grad = Tensor(pred.shape());
  float loss = 0.0f;
  const auto n = static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = (pred[i] - target[i]) * mask[i];
    loss += d * d;
    (*grad)[i] = 2.0f * d * mask[i] / n;
  }
  return loss / n;
}

AdamOptimizer::AdamOptimizer(std::vector<Parameter*> params, float lr, float beta1, float beta2,
                             float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void AdamOptimizer::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.size(), 0.0f);
}

void SgdOptimizer::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      velocity_[k][i] = momentum_ * velocity_[k][i] - lr_ * p->grad[i];
      p->value[i] += velocity_[k][i];
    }
  }
}

}  // namespace climate::ml
