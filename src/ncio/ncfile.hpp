// CDF-lite: a self-describing binary array format standing in for NetCDF.
//
// The real workflow exchanges every dataset as NetCDF (model output, index
// maps, baselines); NetCDF itself is not available offline, so this module
// implements the subset of the data model the paper's pipeline relies on:
//   - named dimensions with fixed lengths,
//   - multidimensional variables (float32/float64/int32/int64) over those
//     dimensions, stored row-major,
//   - global and per-variable attributes (int64/double/string),
//   - whole-variable and hyperslab (start/count) reads and writes.
//
// On-disk layout (little-endian, as on every supported platform):
//   magic "CDFL" | u32 version | header (dims, global attrs, vars) | data
// Each variable records its absolute data offset, so readers can seek
// directly and hyperslab reads touch only the requested byte ranges.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace climate::ncio {

using common::Result;
using common::Status;

/// Element type of a variable.
enum class DType : std::uint8_t { kFloat32 = 0, kFloat64 = 1, kInt32 = 2, kInt64 = 3 };

/// Size in bytes of one element of `dtype`.
std::size_t dtype_size(DType dtype);

/// Human-readable dtype name ("float32", ...).
const char* dtype_name(DType dtype);

/// Attribute value: integer, real or string.
using AttrValue = std::variant<std::int64_t, double, std::string>;

/// A named dimension.
struct Dim {
  std::string name;
  std::uint64_t length = 0;
};

/// Metadata of one variable.
struct VarInfo {
  std::string name;
  DType dtype = DType::kFloat32;
  std::vector<std::uint32_t> dim_ids;          ///< Indices into the file's dim table.
  std::map<std::string, AttrValue> attrs;
  std::uint64_t data_offset = 0;               ///< Absolute byte offset of the data.
  std::uint64_t element_count = 0;             ///< Product of dimension lengths.

  std::uint64_t byte_size() const { return element_count * dtype_size(dtype); }
};

/// Write-side handle. Usage: create() -> def_dim/def_var/put_attr ->
/// end_def() -> put_var/put_slab -> close(). All def_* calls must precede
/// end_def(); all data writes must follow it.
class FileWriter {
 public:
  /// Creates (truncates) the file at `path`.
  static Result<FileWriter> create(const std::string& path);

  FileWriter(FileWriter&&) = default;
  FileWriter& operator=(FileWriter&&) = default;

  /// Defines a dimension; returns its id.
  Result<std::uint32_t> def_dim(const std::string& name, std::uint64_t length);

  /// Defines a variable over previously defined dimensions; returns its id.
  Result<std::uint32_t> def_var(const std::string& name, DType dtype,
                                const std::vector<std::string>& dim_names);

  /// Attaches a global attribute (var_name empty) or a variable attribute.
  Status put_attr(const std::string& var_name, const std::string& attr_name, AttrValue value);

  /// Freezes the schema, computes data offsets and writes the header.
  Status end_def();

  /// Writes a full variable. Element count must match the definition.
  Status put_var(const std::string& name, const float* data, std::size_t count);
  Status put_var(const std::string& name, const double* data, std::size_t count);
  Status put_var(const std::string& name, const std::int32_t* data, std::size_t count);
  Status put_var(const std::string& name, const std::int64_t* data, std::size_t count);

  /// Writes a hyperslab: `start`/`count` give per-dimension origin and shape.
  Status put_slab(const std::string& name, const std::vector<std::uint64_t>& start,
                  const std::vector<std::uint64_t>& count, const float* data);

  /// Flushes and closes; afterwards the writer is unusable.
  Status close();

  /// Total bytes the file will occupy once closed (valid after end_def()).
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  FileWriter() = default;

  Status put_raw(const std::string& name, DType dtype, const void* data, std::size_t count);
  const VarInfo* find_var(const std::string& name) const;

  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  std::vector<Dim> dims_;
  std::map<std::string, AttrValue> global_attrs_;
  std::vector<VarInfo> vars_;
  bool defs_done_ = false;
  std::uint64_t total_bytes_ = 0;
};

/// Read-side handle; header is parsed on open, data on demand.
class FileReader {
 public:
  /// Opens and validates an existing CDF-lite file.
  static Result<FileReader> open(const std::string& path);

  FileReader(FileReader&&) = default;
  FileReader& operator=(FileReader&&) = default;

  const std::vector<Dim>& dims() const { return dims_; }
  const std::vector<VarInfo>& vars() const { return vars_; }
  const std::map<std::string, AttrValue>& global_attrs() const { return global_attrs_; }

  /// Looks up a dimension length by name.
  Result<std::uint64_t> dim_length(const std::string& name) const;

  /// Looks up a variable's metadata by name.
  Result<VarInfo> var_info(const std::string& name) const;

  /// Shape of a variable (dimension lengths, outermost first).
  Result<std::vector<std::uint64_t>> var_shape(const std::string& name) const;

  /// Reads a whole variable converted to float.
  Result<std::vector<float>> read_floats(const std::string& name);

  /// Reads a whole variable converted to double.
  Result<std::vector<double>> read_doubles(const std::string& name);

  /// Reads a hyperslab of a float32 variable.
  Result<std::vector<float>> read_slab(const std::string& name,
                                       const std::vector<std::uint64_t>& start,
                                       const std::vector<std::uint64_t>& count);

  /// Variable attribute lookup (empty var_name -> global attribute).
  Result<AttrValue> attr(const std::string& var_name, const std::string& attr_name) const;

 private:
  FileReader() = default;

  std::string path_;
  std::unique_ptr<std::ifstream> in_;
  std::vector<Dim> dims_;
  std::map<std::string, AttrValue> global_attrs_;
  std::vector<VarInfo> vars_;
};

}  // namespace climate::ncio
