#include "ncio/ncfile.hpp"

#include <algorithm>
#include <cstring>

namespace climate::ncio {
namespace {

constexpr char kMagic[4] = {'C', 'D', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;

// --- serialization primitives (little-endian native) ---

void write_u32(std::string& buf, std::uint32_t v) { buf.append(reinterpret_cast<const char*>(&v), 4); }
void write_u64(std::string& buf, std::uint64_t v) { buf.append(reinterpret_cast<const char*>(&v), 8); }
void write_f64(std::string& buf, double v) { buf.append(reinterpret_cast<const char*>(&v), 8); }

void write_string(std::string& buf, const std::string& s) {
  write_u32(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

void write_attr(std::string& buf, const std::string& name, const AttrValue& value) {
  write_string(buf, name);
  if (std::holds_alternative<std::int64_t>(value)) {
    buf.push_back(0);
    write_u64(buf, static_cast<std::uint64_t>(std::get<std::int64_t>(value)));
  } else if (std::holds_alternative<double>(value)) {
    buf.push_back(1);
    write_f64(buf, std::get<double>(value));
  } else {
    buf.push_back(2);
    write_string(buf, std::get<std::string>(value));
  }
}

class HeaderParser {
 public:
  HeaderParser(const std::string& bytes) : bytes_(bytes) {}

  Status read_u32(std::uint32_t& v) { return read_raw(&v, 4); }
  Status read_u64(std::uint64_t& v) { return read_raw(&v, 8); }
  Status read_f64(double& v) { return read_raw(&v, 8); }
  Status read_u8(std::uint8_t& v) { return read_raw(&v, 1); }

  Status read_string(std::string& out) {
    std::uint32_t len = 0;
    CLIMATE_RETURN_IF_ERROR(read_u32(len));
    if (pos_ + len > bytes_.size()) return Status::DataLoss("truncated string");
    out.assign(bytes_, pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  Status read_attr(std::string& name, AttrValue& value) {
    CLIMATE_RETURN_IF_ERROR(read_string(name));
    std::uint8_t kind = 0;
    CLIMATE_RETURN_IF_ERROR(read_u8(kind));
    switch (kind) {
      case 0: {
        std::uint64_t v = 0;
        CLIMATE_RETURN_IF_ERROR(read_u64(v));
        value = static_cast<std::int64_t>(v);
        return Status::Ok();
      }
      case 1: {
        double v = 0;
        CLIMATE_RETURN_IF_ERROR(read_f64(v));
        value = v;
        return Status::Ok();
      }
      case 2: {
        std::string v;
        CLIMATE_RETURN_IF_ERROR(read_string(v));
        value = std::move(v);
        return Status::Ok();
      }
      default:
        return Status::DataLoss("unknown attribute kind");
    }
  }

 private:
  Status read_raw(void* out, std::size_t n) {
    if (pos_ + n > bytes_.size()) return Status::DataLoss("truncated header");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

template <typename From>
std::vector<float> to_floats(const std::vector<char>& raw) {
  const std::size_t n = raw.size() / sizeof(From);
  std::vector<float> out(n);
  const From* src = reinterpret_cast<const From*>(raw.data());
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(src[i]);
  return out;
}

template <typename From>
std::vector<double> to_doubles(const std::vector<char>& raw) {
  const std::size_t n = raw.size() / sizeof(From);
  std::vector<double> out(n);
  const From* src = reinterpret_cast<const From*>(raw.data());
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(src[i]);
  return out;
}

}  // namespace

std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
    case DType::kInt32: return 4;
    case DType::kInt64: return 8;
  }
  return 0;
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
  }
  return "?";
}

// ---------------------------------------------------------------- FileWriter

Result<FileWriter> FileWriter::create(const std::string& path) {
  FileWriter writer;
  writer.path_ = path;
  writer.out_ = std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc);
  if (!*writer.out_) return Status::Unavailable("cannot create " + path);
  return writer;
}

Result<std::uint32_t> FileWriter::def_dim(const std::string& name, std::uint64_t length) {
  if (defs_done_) return Status::FailedPrecondition("def_dim after end_def");
  if (length == 0) return Status::InvalidArgument("dimension '" + name + "' has zero length");
  for (const Dim& d : dims_) {
    if (d.name == name) return Status::AlreadyExists("dimension '" + name + "'");
  }
  dims_.push_back({name, length});
  return static_cast<std::uint32_t>(dims_.size() - 1);
}

Result<std::uint32_t> FileWriter::def_var(const std::string& name, DType dtype,
                                          const std::vector<std::string>& dim_names) {
  if (defs_done_) return Status::FailedPrecondition("def_var after end_def");
  if (find_var(name) != nullptr) return Status::AlreadyExists("variable '" + name + "'");
  VarInfo var;
  var.name = name;
  var.dtype = dtype;
  var.element_count = 1;
  for (const std::string& dim_name : dim_names) {
    bool found = false;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (dims_[i].name == dim_name) {
        var.dim_ids.push_back(static_cast<std::uint32_t>(i));
        var.element_count *= dims_[i].length;
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("dimension '" + dim_name + "' for variable '" + name + "'");
  }
  vars_.push_back(std::move(var));
  return static_cast<std::uint32_t>(vars_.size() - 1);
}

Status FileWriter::put_attr(const std::string& var_name, const std::string& attr_name,
                            AttrValue value) {
  if (defs_done_) return Status::FailedPrecondition("put_attr after end_def");
  if (var_name.empty()) {
    global_attrs_[attr_name] = std::move(value);
    return Status::Ok();
  }
  for (VarInfo& var : vars_) {
    if (var.name == var_name) {
      var.attrs[attr_name] = std::move(value);
      return Status::Ok();
    }
  }
  return Status::NotFound("variable '" + var_name + "'");
}

Status FileWriter::end_def() {
  if (defs_done_) return Status::FailedPrecondition("end_def called twice");
  defs_done_ = true;

  // Serialize the header with placeholder offsets first to learn its size,
  // then assign real offsets and re-serialize: offsets are fixed-width so the
  // header size does not change between passes.
  for (int pass = 0; pass < 2; ++pass) {
    std::string header;
    header.append(kMagic, 4);
    write_u32(header, kVersion);
    write_u32(header, static_cast<std::uint32_t>(dims_.size()));
    for (const Dim& dim : dims_) {
      write_string(header, dim.name);
      write_u64(header, dim.length);
    }
    write_u32(header, static_cast<std::uint32_t>(global_attrs_.size()));
    for (const auto& [name, value] : global_attrs_) write_attr(header, name, value);
    write_u32(header, static_cast<std::uint32_t>(vars_.size()));
    for (const VarInfo& var : vars_) {
      write_string(header, var.name);
      header.push_back(static_cast<char>(var.dtype));
      write_u32(header, static_cast<std::uint32_t>(var.dim_ids.size()));
      for (std::uint32_t id : var.dim_ids) write_u32(header, id);
      write_u32(header, static_cast<std::uint32_t>(var.attrs.size()));
      for (const auto& [name, value] : var.attrs) write_attr(header, name, value);
      write_u64(header, var.data_offset);
    }
    if (pass == 0) {
      std::uint64_t offset = header.size();
      for (VarInfo& var : vars_) {
        var.data_offset = offset;
        offset += var.byte_size();
      }
      total_bytes_ = offset;
    } else {
      out_->write(header.data(), static_cast<std::streamsize>(header.size()));
      if (!*out_) return Status::DataLoss("header write failed for " + path_);
    }
  }
  return Status::Ok();
}

const VarInfo* FileWriter::find_var(const std::string& name) const {
  for (const VarInfo& var : vars_) {
    if (var.name == name) return &var;
  }
  return nullptr;
}

Status FileWriter::put_raw(const std::string& name, DType dtype, const void* data,
                           std::size_t count) {
  if (!defs_done_) return Status::FailedPrecondition("put_var before end_def");
  const VarInfo* var = find_var(name);
  if (var == nullptr) return Status::NotFound("variable '" + name + "'");
  if (var->dtype != dtype) {
    return Status::InvalidArgument("variable '" + name + "' is " + dtype_name(var->dtype) +
                                   ", got " + dtype_name(dtype));
  }
  if (count != var->element_count) {
    return Status::InvalidArgument("variable '" + name + "' expects " +
                                   std::to_string(var->element_count) + " elements, got " +
                                   std::to_string(count));
  }
  out_->seekp(static_cast<std::streamoff>(var->data_offset));
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(count * dtype_size(dtype)));
  if (!*out_) return Status::DataLoss("data write failed for " + path_);
  return Status::Ok();
}

Status FileWriter::put_var(const std::string& name, const float* data, std::size_t count) {
  return put_raw(name, DType::kFloat32, data, count);
}
Status FileWriter::put_var(const std::string& name, const double* data, std::size_t count) {
  return put_raw(name, DType::kFloat64, data, count);
}
Status FileWriter::put_var(const std::string& name, const std::int32_t* data, std::size_t count) {
  return put_raw(name, DType::kInt32, data, count);
}
Status FileWriter::put_var(const std::string& name, const std::int64_t* data, std::size_t count) {
  return put_raw(name, DType::kInt64, data, count);
}

Status FileWriter::put_slab(const std::string& name, const std::vector<std::uint64_t>& start,
                            const std::vector<std::uint64_t>& count, const float* data) {
  if (!defs_done_) return Status::FailedPrecondition("put_slab before end_def");
  const VarInfo* var = find_var(name);
  if (var == nullptr) return Status::NotFound("variable '" + name + "'");
  if (var->dtype != DType::kFloat32) return Status::InvalidArgument("put_slab supports float32 only");
  const std::size_t rank = var->dim_ids.size();
  if (start.size() != rank || count.size() != rank) {
    return Status::InvalidArgument("put_slab rank mismatch for '" + name + "'");
  }
  std::vector<std::uint64_t> shape(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    shape[d] = dims_[var->dim_ids[d]].length;
    if (count[d] == 0 || start[d] + count[d] > shape[d]) {
      return Status::OutOfRange("put_slab out of range on dim " + std::to_string(d));
    }
  }
  // Strides in elements, outermost first.
  std::vector<std::uint64_t> stride(rank, 1);
  for (std::size_t d = rank; d-- > 1;) stride[d - 1] = stride[d] * shape[d];

  // Iterate over all but the innermost dimension; each inner run is
  // contiguous on disk.
  const std::uint64_t inner = rank == 0 ? 1 : count[rank - 1];
  std::vector<std::uint64_t> idx(rank, 0);
  auto advance = [&]() -> bool {  // odometer over dims [0, rank-1)
    for (std::size_t d = rank - 1; d-- > 0;) {
      if (++idx[d] < count[d]) return true;
      idx[d] = 0;
    }
    return false;
  };
  std::uint64_t src_pos = 0;
  while (true) {
    std::uint64_t offset_elems = 0;
    for (std::size_t d = 0; d < rank; ++d) offset_elems += (start[d] + idx[d]) * stride[d];
    out_->seekp(static_cast<std::streamoff>(var->data_offset + offset_elems * sizeof(float)));
    out_->write(reinterpret_cast<const char*>(data + src_pos),
                static_cast<std::streamsize>(inner * sizeof(float)));
    if (!*out_) return Status::DataLoss("slab write failed for " + path_);
    src_pos += inner;
    if (rank <= 1 || !advance()) break;
  }
  return Status::Ok();
}

Status FileWriter::close() {
  if (!out_) return Status::FailedPrecondition("writer already closed");
  out_->flush();
  const bool good = static_cast<bool>(*out_);
  out_->close();
  out_.reset();
  if (!good) return Status::DataLoss("flush failed for " + path_);
  return Status::Ok();
}

// ---------------------------------------------------------------- FileReader

Result<FileReader> FileReader::open(const std::string& path) {
  FileReader reader;
  reader.path_ = path;
  reader.in_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*reader.in_) return Status::NotFound("cannot open " + path);

  // Read the whole header region: we do not know its size up front, so read
  // a generous prefix (headers are tiny compared to data).
  reader.in_->seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(reader.in_->tellg());
  reader.in_->seekg(0);
  const std::uint64_t prefix = std::min<std::uint64_t>(file_size, 1 << 20);
  std::string bytes(prefix, '\0');
  reader.in_->read(bytes.data(), static_cast<std::streamsize>(prefix));
  if (!*reader.in_) return Status::DataLoss("cannot read header of " + path);

  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument(path + " is not a CDF-lite file");
  }
  HeaderParser parser(bytes);
  std::uint32_t magic_and_version[2];
  CLIMATE_RETURN_IF_ERROR(parser.read_u32(magic_and_version[0]));
  CLIMATE_RETURN_IF_ERROR(parser.read_u32(magic_and_version[1]));
  if (magic_and_version[1] != kVersion) return Status::InvalidArgument("unsupported version");

  std::uint32_t ndims = 0;
  CLIMATE_RETURN_IF_ERROR(parser.read_u32(ndims));
  for (std::uint32_t i = 0; i < ndims; ++i) {
    Dim dim;
    CLIMATE_RETURN_IF_ERROR(parser.read_string(dim.name));
    CLIMATE_RETURN_IF_ERROR(parser.read_u64(dim.length));
    reader.dims_.push_back(std::move(dim));
  }
  std::uint32_t nattrs = 0;
  CLIMATE_RETURN_IF_ERROR(parser.read_u32(nattrs));
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    std::string name;
    AttrValue value;
    CLIMATE_RETURN_IF_ERROR(parser.read_attr(name, value));
    reader.global_attrs_[std::move(name)] = std::move(value);
  }
  std::uint32_t nvars = 0;
  CLIMATE_RETURN_IF_ERROR(parser.read_u32(nvars));
  for (std::uint32_t i = 0; i < nvars; ++i) {
    VarInfo var;
    CLIMATE_RETURN_IF_ERROR(parser.read_string(var.name));
    std::uint8_t dtype = 0;
    CLIMATE_RETURN_IF_ERROR(parser.read_u8(dtype));
    if (dtype > 3) return Status::DataLoss("bad dtype");
    var.dtype = static_cast<DType>(dtype);
    std::uint32_t var_ndims = 0;
    CLIMATE_RETURN_IF_ERROR(parser.read_u32(var_ndims));
    var.element_count = 1;
    for (std::uint32_t d = 0; d < var_ndims; ++d) {
      std::uint32_t id = 0;
      CLIMATE_RETURN_IF_ERROR(parser.read_u32(id));
      if (id >= reader.dims_.size()) return Status::DataLoss("bad dim id");
      var.dim_ids.push_back(id);
      var.element_count *= reader.dims_[id].length;
    }
    std::uint32_t var_nattrs = 0;
    CLIMATE_RETURN_IF_ERROR(parser.read_u32(var_nattrs));
    for (std::uint32_t a = 0; a < var_nattrs; ++a) {
      std::string name;
      AttrValue value;
      CLIMATE_RETURN_IF_ERROR(parser.read_attr(name, value));
      var.attrs[std::move(name)] = std::move(value);
    }
    CLIMATE_RETURN_IF_ERROR(parser.read_u64(var.data_offset));
    if (var.data_offset + var.byte_size() > file_size) {
      return Status::DataLoss("variable '" + var.name + "' extends past end of file");
    }
    reader.vars_.push_back(std::move(var));
  }
  return reader;
}

Result<std::uint64_t> FileReader::dim_length(const std::string& name) const {
  for (const Dim& dim : dims_) {
    if (dim.name == name) return dim.length;
  }
  return Status::NotFound("dimension '" + name + "'");
}

Result<VarInfo> FileReader::var_info(const std::string& name) const {
  for (const VarInfo& var : vars_) {
    if (var.name == name) return var;
  }
  return Status::NotFound("variable '" + name + "'");
}

Result<std::vector<std::uint64_t>> FileReader::var_shape(const std::string& name) const {
  Result<VarInfo> info = var_info(name);
  if (!info.ok()) return info.status();
  std::vector<std::uint64_t> shape;
  for (std::uint32_t id : info->dim_ids) shape.push_back(dims_[id].length);
  return shape;
}

Result<std::vector<float>> FileReader::read_floats(const std::string& name) {
  Result<VarInfo> info = var_info(name);
  if (!info.ok()) return info.status();
  std::vector<char> raw(info->byte_size());
  in_->seekg(static_cast<std::streamoff>(info->data_offset));
  in_->read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (!*in_) return Status::DataLoss("read failed for variable '" + name + "'");
  switch (info->dtype) {
    case DType::kFloat32: return to_floats<float>(raw);
    case DType::kFloat64: return to_floats<double>(raw);
    case DType::kInt32: return to_floats<std::int32_t>(raw);
    case DType::kInt64: return to_floats<std::int64_t>(raw);
  }
  return Status::Internal("unreachable");
}

Result<std::vector<double>> FileReader::read_doubles(const std::string& name) {
  Result<VarInfo> info = var_info(name);
  if (!info.ok()) return info.status();
  std::vector<char> raw(info->byte_size());
  in_->seekg(static_cast<std::streamoff>(info->data_offset));
  in_->read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (!*in_) return Status::DataLoss("read failed for variable '" + name + "'");
  switch (info->dtype) {
    case DType::kFloat32: return to_doubles<float>(raw);
    case DType::kFloat64: return to_doubles<double>(raw);
    case DType::kInt32: return to_doubles<std::int32_t>(raw);
    case DType::kInt64: return to_doubles<std::int64_t>(raw);
  }
  return Status::Internal("unreachable");
}

Result<std::vector<float>> FileReader::read_slab(const std::string& name,
                                                 const std::vector<std::uint64_t>& start,
                                                 const std::vector<std::uint64_t>& count) {
  Result<VarInfo> info_result = var_info(name);
  if (!info_result.ok()) return info_result.status();
  const VarInfo& var = *info_result;
  if (var.dtype != DType::kFloat32) return Status::InvalidArgument("read_slab supports float32 only");
  const std::size_t rank = var.dim_ids.size();
  if (start.size() != rank || count.size() != rank) {
    return Status::InvalidArgument("read_slab rank mismatch for '" + name + "'");
  }
  std::vector<std::uint64_t> shape(rank);
  std::uint64_t total = 1;
  for (std::size_t d = 0; d < rank; ++d) {
    shape[d] = dims_[var.dim_ids[d]].length;
    if (count[d] == 0 || start[d] + count[d] > shape[d]) {
      return Status::OutOfRange("read_slab out of range on dim " + std::to_string(d));
    }
    total *= count[d];
  }
  std::vector<std::uint64_t> stride(rank, 1);
  for (std::size_t d = rank; d-- > 1;) stride[d - 1] = stride[d] * shape[d];

  std::vector<float> out(total);
  const std::uint64_t inner = rank == 0 ? 1 : count[rank - 1];
  std::vector<std::uint64_t> idx(rank, 0);
  auto advance = [&]() -> bool {  // odometer over dims [0, rank-1)
    for (std::size_t d = rank - 1; d-- > 0;) {
      if (++idx[d] < count[d]) return true;
      idx[d] = 0;
    }
    return false;
  };
  std::uint64_t dst_pos = 0;
  while (true) {
    std::uint64_t offset_elems = 0;
    for (std::size_t d = 0; d < rank; ++d) offset_elems += (start[d] + idx[d]) * stride[d];
    in_->seekg(static_cast<std::streamoff>(var.data_offset + offset_elems * sizeof(float)));
    in_->read(reinterpret_cast<char*>(out.data() + dst_pos),
              static_cast<std::streamsize>(inner * sizeof(float)));
    if (!*in_) return Status::DataLoss("slab read failed for '" + name + "'");
    dst_pos += inner;
    if (rank <= 1 || !advance()) break;
  }
  return out;
}

Result<AttrValue> FileReader::attr(const std::string& var_name, const std::string& attr_name) const {
  if (var_name.empty()) {
    auto it = global_attrs_.find(attr_name);
    if (it == global_attrs_.end()) return Status::NotFound("global attribute '" + attr_name + "'");
    return it->second;
  }
  Result<VarInfo> info = var_info(var_name);
  if (!info.ok()) return info.status();
  auto it = info->attrs.find(attr_name);
  if (it == info->attrs.end()) {
    return Status::NotFound("attribute '" + attr_name + "' on '" + var_name + "'");
  }
  return it->second;
}

}  // namespace climate::ncio
