// Domain-decomposed execution of CMCC-CM3-lite over the message-passing
// layer: latitude bands across ranks, per-day halo exchange of the
// prognostic anomaly field, and a gather of the daily output to rank 0
// (the model's "running in parallel (i.e., using MPI and OpenMP)" of
// section 3, scaled to in-process ranks).
//
// Because all stochastic terms are counter-mode hashes, a decomposed run
// reproduces the serial model bit-for-bit — tested in tests/esm.
#pragma once

#include <functional>

#include "esm/model.hpp"

namespace climate::esm {

/// Runs the model across `ranks` latitude bands.
class ParallelEsmDriver {
 public:
  ParallelEsmDriver(const EsmConfig& config, const ForcingTable& forcing, int ranks);

  /// Simulates `days` days. For each day, `on_day` is invoked (on the rank-0
  /// thread) with the fully gathered output.
  void run(int days, const std::function<void(const DailyFields&)>& on_day);

  /// Ground-truth log from the run (identical on every rank; captured from
  /// rank 0). Valid after run().
  const EventLog& events() const { return events_; }

  /// Coupler diagnostics summed over all ranks. Valid after run().
  const CouplerDiagnostics& coupler() const { return coupler_; }

 private:
  EsmConfig config_;
  ForcingTable forcing_;
  int ranks_;
  EventLog events_;
  CouplerDiagnostics coupler_;
};

}  // namespace climate::esm
