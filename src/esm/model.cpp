#include "esm/model.hpp"

#include <algorithm>
#include <cmath>

#include "esm/climatology.hpp"
#include "obs/obs.hpp"

namespace climate::esm {
namespace {

/// Coarse-grid cell size for coherent noise (in grid cells).
constexpr std::size_t kNoiseCoarse = 6;

Field make_field(const LatLonGrid& grid, float fill = 0.0f) { return Field(grid, fill); }

}  // namespace

EsmModel::EsmModel(const EsmConfig& config, const ForcingTable& forcing)
    : EsmModel(config, forcing, 0, config.nlat) {}

EsmModel::EsmModel(const EsmConfig& config, const ForcingTable& forcing, std::size_t row_begin,
                   std::size_t row_end)
    : config_(config),
      forcing_(forcing),
      grid_(config.nlat, config.nlon),
      row_begin_(row_begin),
      row_end_(row_end),
      t_anom_(grid_),
      sst_(grid_),
      cyclones_(config) {
  // Initialize the slab ocean at its day-0 climatology (all rows so the halo
  // region is sane too; only owned rows evolve).
  for (std::size_t i = 0; i < grid_.nlat(); ++i) {
    const float sst0 = static_cast<float>(baseline_sst_c(grid_.lat(i), 0, config_.days_per_year));
    for (std::size_t j = 0; j < grid_.nlon(); ++j) sst_.at(i, j) = sst0;
  }
}

double EsmModel::coherent_noise(std::uint64_t tag, int t, std::size_t i, std::size_t j) const {
  // Bilinear interpolation of hash noise on a coarse grid; periodic in
  // longitude, clamped in latitude. Pure function of its arguments.
  const std::size_t coarse_lon = (grid_.nlon() + kNoiseCoarse - 1) / kNoiseCoarse;
  const double fi = static_cast<double>(i) / kNoiseCoarse;
  const double fj = static_cast<double>(j) / kNoiseCoarse;
  const std::size_t i0 = static_cast<std::size_t>(fi);
  const std::size_t j0 = static_cast<std::size_t>(fj);
  const double wi = fi - static_cast<double>(i0);
  const double wj = fj - static_cast<double>(j0);
  const std::size_t coarse_lat = (grid_.nlat() + kNoiseCoarse - 1) / kNoiseCoarse;
  auto node = [&](std::size_t ci, std::size_t cj) {
    ci = std::min(ci, coarse_lat);  // clamp at the pole
    cj = cj % (coarse_lon + 1);
    return hash_normal(config_.seed, tag, static_cast<std::uint64_t>(t),
                       ci * 100003ull + cj);
  };
  const double v00 = node(i0, j0);
  const double v01 = node(i0, j0 + 1);
  const double v10 = node(i0 + 1, j0);
  const double v11 = node(i0 + 1, j0 + 1);
  return (v00 * (1 - wj) + v01 * wj) * (1 - wi) + (v10 * (1 - wj) + v11 * wj) * wi;
}

void EsmModel::spawn_thermal_events(int day) {
  const int doy = day % config_.days_per_year;
  for (int warm = 0; warm < 2; ++warm) {
    const double mean =
        warm ? config_.heatwave_spawn_per_day : config_.coldwave_spawn_per_day;
    const int count = hash_poisson(mean, config_.seed, 0xB70B + static_cast<std::uint64_t>(warm),
                                   static_cast<std::uint64_t>(day), 0);
    for (int k = 0; k < count; ++k) {
      const std::uint64_t key =
          hash_mix(config_.seed, 0xB10C + static_cast<std::uint64_t>(warm),
                   static_cast<std::uint64_t>(day), static_cast<std::uint64_t>(k));
      ThermalEvent event;
      event.warm = warm != 0;
      const double u1 = hash_uniform(key, 1, 0, 0);
      const double u2 = hash_uniform(key, 2, 0, 0);
      const double u3 = hash_uniform(key, 3, 0, 0);
      const double u4 = hash_uniform(key, 4, 0, 0);
      // Blocking highs favour mid-latitudes; bias warm events to the summer
      // hemisphere so heat waves cluster seasonally like the real ones.
      const bool northern_summer = seasonal_phase(45.0, doy, config_.days_per_year) > 0;
      const bool northern = u1 < (northern_summer == event.warm ? 0.75 : 0.25);
      event.lat = (northern ? 1.0 : -1.0) * (25.0 + 40.0 * u2);
      event.lon = 360.0 * u3;
      event.amplitude_c = (event.warm ? 1.0 : -1.0) * (6.0 + 5.0 * u4);
      event.radius_deg = 9.0 + 9.0 * hash_uniform(key, 5, 0, 0);
      event.start_day = day;
      event.duration_days = 4 + static_cast<int>(11.0 * hash_uniform(key, 6, 0, 0));
      thermal_events_.push_back(event);
      log_.thermal_events.push_back(event);
    }
  }
  // Forget long-finished events to keep the active scan short.
  thermal_events_.erase(
      std::remove_if(thermal_events_.begin(), thermal_events_.end(),
                     [day](const ThermalEvent& e) { return day >= e.start_day + e.duration_days; }),
      thermal_events_.end());
}

double EsmModel::thermal_anomaly(double lat, double lon, int day) const {
  double anomaly = 0.0;
  for (const ThermalEvent& event : thermal_events_) {
    if (!event.active(day)) continue;
    const double r = angular_distance_deg(lat, lon, event.lat, event.lon);
    if (r > 3.0 * event.radius_deg) continue;
    const double scale = r / event.radius_deg;
    // Plateau profile: blocking events are broad, not sharp Gaussians.
    anomaly += event.amplitude_c * std::exp(-scale * scale * scale * scale);
  }
  return anomaly;
}

void EsmModel::wind_at(std::size_t i, std::size_t j, int step, double* u, double* v) const {
  const double lat = grid_.lat(i);
  const double lon = grid_.lon(j);
  double du = 0.0, dv = 0.0;
  cyclones_.wind_anomaly_ms(lat, lon, &du, &dv);
  *u = background_u_ms(lat) + du + 1.5 * coherent_noise(0x0AED, step, i, j);
  *v = background_v_ms(lat) + dv + 1.5 * coherent_noise(0x0AEE, step, i, j);
}

void EsmModel::update_anomaly(int day) {
  // Daily AR(1) update with zonal advection and lateral diffusion. Stencil
  // uses rows [row_begin-1, row_end] (halo rows in band mode).
  const std::size_t nlat = grid_.nlat();
  const std::size_t nlon = grid_.nlon();
  Field next = t_anom_;
  const double rho = config_.anomaly_persistence;
  const double sigma = config_.anomaly_noise_c;
  const double c = config_.advection_cells_per_step;
  const double k = config_.diffusion;
  for (std::size_t i = row_begin_; i < row_end_; ++i) {
    const std::size_t north = i + 1 < nlat ? i + 1 : i;
    const std::size_t south = i > 0 ? i - 1 : i;
    for (std::size_t j = 0; j < nlon; ++j) {
      const std::size_t west = grid_.wrap_lon(static_cast<long>(j) - 1);
      const std::size_t east = grid_.wrap_lon(static_cast<long>(j) + 1);
      const double here = t_anom_.at(i, j);
      const double advected = (1.0 - c) * here + c * t_anom_.at(i, west);
      const double laplacian = t_anom_.at(north, j) + t_anom_.at(south, j) +
                               t_anom_.at(i, west) + t_anom_.at(i, east) - 4.0 * here;
      const double noise = sigma * coherent_noise(0xA40A, day, i, j);
      next.at(i, j) = static_cast<float>(rho * advected + k * 0.25 * laplacian + noise);
    }
  }
  t_anom_ = std::move(next);
}

void EsmModel::begin_day(int day) {
  const int steps = config_.steps_per_day;
  today_ = DailyFields{};
  today_.day_of_run = day;
  today_.day_of_year = day % config_.days_per_year;
  today_.year = config_.start_year + day / config_.days_per_year;
  today_.co2_ppm = forcing_.co2_ppm(today_.year);
  today_.psl.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.ua850.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.va850.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.wspd.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.vort850.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.pr6h.assign(static_cast<std::size_t>(steps), make_field(grid_));
  today_.tas = make_field(grid_);
  today_.tasmin = make_field(grid_, 1e30f);
  today_.tasmax = make_field(grid_, -1e30f);
  today_.pr = make_field(grid_);
  today_.sst = make_field(grid_);
  today_.sic = make_field(grid_);
  today_.ts = make_field(grid_);
  today_.hfls = make_field(grid_);
  today_.hfss = make_field(grid_);
  today_.clt = make_field(grid_);
  today_.rh = make_field(grid_);
  today_.zg500 = make_field(grid_);
  today_.uas = make_field(grid_);
  today_.vas = make_field(grid_);
  day_open_ = true;
}

void EsmModel::step() {
  OBS_SCOPED_LATENCY("esm.step_ns");
  const int step = step_count_;
  const int steps = config_.steps_per_day;
  const int day = step / steps;
  const int step_of_day = step % steps;
  const int doy = day % config_.days_per_year;
  const int year = config_.start_year + day / config_.days_per_year;

  if (step_of_day == 0) {
    spawn_thermal_events(day);
    update_anomaly(day);
    begin_day(day);
  }

  cyclones_.step(step);

  const double warming = forcing_.warming_c(year, config_.climate_sensitivity_c);
  const double diurnal = diurnal_cycle_c(step_of_day, steps);
  const double inv_steps = 1.0 / static_cast<double>(steps);

  // Coupler exchange accumulators for this step.
  double heat_integral = 0.0;
  double momentum_integral = 0.0;
  double freshwater_integral = 0.0;

  const std::size_t nlon = grid_.nlon();
  for (std::size_t i = row_begin_; i < row_end_; ++i) {
    const double lat = grid_.lat(i);
    const double weight = grid_.area_weight(i);
    const double t_base = baseline_temperature_c(lat, doy, config_.days_per_year);
    const double psl_base = baseline_psl_hpa(lat);
    const double pr_base = baseline_precip_mmday(lat, doy, config_.days_per_year);
    const double sst_clim = baseline_sst_c(lat, doy, config_.days_per_year);
    for (std::size_t j = 0; j < nlon; ++j) {
      const double lon = grid_.lon(j);

      // --- atmosphere instantaneous state ---
      const double blob = thermal_anomaly(lat, lon, day);
      const double warm_core = cyclones_.warm_core_c(lat, lon);
      const double temp = t_base + diurnal + warming + t_anom_.at(i, j) + blob + warm_core;
      const double psl = psl_base + cyclones_.psl_anomaly_hpa(lat, lon) -
                         0.45 * t_anom_.at(i, j) + 2.2 * coherent_noise(0x9811, step, i, j);
      double u, v;
      wind_at(i, j, step, &u, &v);
      const double convective = std::max(0.0, t_anom_.at(i, j) + blob - 2.0) * 1.3;
      const double pr_rate = std::max(
          0.0, pr_base * (1.0 + 0.35 * coherent_noise(0x9812, step, i, j)) + convective +
                   cyclones_.precip_mmday(lat, lon));

      // Vorticity from pointwise wind evaluation at neighbours (units 1e-5/s
      // with the grid spacing absorbed into the scale).
      double un, us, ve, vw;
      {
        double tmp_v;
        const std::size_t north = i + 1 < grid_.nlat() ? i + 1 : i;
        const std::size_t south = i > 0 ? i - 1 : i;
        wind_at(north, j, step, &un, &tmp_v);
        wind_at(south, j, step, &us, &tmp_v);
        double tmp_u;
        wind_at(i, grid_.wrap_lon(static_cast<long>(j) + 1), step, &tmp_u, &ve);
        wind_at(i, grid_.wrap_lon(static_cast<long>(j) - 1), step, &tmp_u, &vw);
      }
      const double cell_km = 111.0 * grid_.dlat();
      const double vort = ((ve - vw) - (un - us)) / (2.0 * cell_km * 1000.0) * 1e5;

      // --- coupler: atmosphere -> ocean fluxes ---
      const double heat_flux = 12.0 * (temp - sst_.at(i, j));  // W/m2
      const double momentum_flux = 0.02 * std::sqrt(u * u + v * v);
      heat_integral += weight * heat_flux;
      momentum_integral += weight * momentum_flux;
      freshwater_integral += weight * pr_rate;

      // --- ocean step (receives exactly the flux that was sent) ---
      const double dt_frac = inv_steps;
      double sst = sst_.at(i, j);
      sst += dt_frac * (heat_flux / 400.0 - 0.08 * (sst - sst_clim));
      if (sst < -1.8) sst = -1.8;
      sst_.at(i, j) = static_cast<float>(sst);
      const double ice = std::clamp((-0.5 - sst) / 1.3, 0.0, 1.0);

      // --- daily aggregation ---
      Field& psl_f = today_.psl[static_cast<std::size_t>(step_of_day)];
      psl_f.at(i, j) = static_cast<float>(psl);
      today_.ua850[static_cast<std::size_t>(step_of_day)].at(i, j) = static_cast<float>(u);
      today_.va850[static_cast<std::size_t>(step_of_day)].at(i, j) = static_cast<float>(v);
      today_.wspd[static_cast<std::size_t>(step_of_day)].at(i, j) =
          static_cast<float>(std::sqrt(u * u + v * v));
      today_.vort850[static_cast<std::size_t>(step_of_day)].at(i, j) = static_cast<float>(vort);
      today_.pr6h[static_cast<std::size_t>(step_of_day)].at(i, j) = static_cast<float>(pr_rate);

      today_.tas.at(i, j) += static_cast<float>(temp * inv_steps);
      today_.tasmin.at(i, j) = std::min(today_.tasmin.at(i, j), static_cast<float>(temp));
      today_.tasmax.at(i, j) = std::max(today_.tasmax.at(i, j), static_cast<float>(temp));
      today_.pr.at(i, j) += static_cast<float>(pr_rate * inv_steps);
      today_.sst.at(i, j) = static_cast<float>(sst);
      today_.sic.at(i, j) = static_cast<float>(ice);
      today_.ts.at(i, j) = static_cast<float>(0.3 * temp + 0.7 * sst);
      today_.hfls.at(i, j) = static_cast<float>(std::max(0.0, 0.6 * heat_flux));
      today_.hfss.at(i, j) = static_cast<float>(0.4 * heat_flux);
      today_.clt.at(i, j) = static_cast<float>(std::clamp(pr_rate / 12.0, 0.02, 0.98));
      today_.rh.at(i, j) = static_cast<float>(std::clamp(0.45 + pr_rate / 25.0, 0.05, 1.0));
      today_.zg500.at(i, j) = static_cast<float>(5500.0 + 8.0 * (psl - 1013.0) + 1.8 * temp);
      today_.uas.at(i, j) = static_cast<float>(0.8 * u);
      today_.vas.at(i, j) = static_cast<float>(0.8 * v);
    }
  }

  // Coupler bookkeeping (exchange happens every coupling_interval_steps).
  if (step % std::max(1, config_.coupling_interval_steps) == 0) {
    ++coupler_.exchanges;
    coupler_.heat_sent_atm += heat_integral;
    coupler_.heat_received_ocean += heat_integral;  // conservative by construction
    coupler_.momentum_sent_atm += momentum_integral;
    coupler_.momentum_received_ocean += momentum_integral;
    coupler_.freshwater_sent_atm += freshwater_integral;
    coupler_.freshwater_received_ocean += freshwater_integral;
  }

  ++step_count_;
}

DailyFields EsmModel::run_day() {
  OBS_SPAN("esm", "run_day");
  OBS_COUNTER_ADD("esm.days_simulated", 1);
  const int steps = config_.steps_per_day;
  for (int s = 0; s < steps; ++s) step();
  day_open_ = false;
  return std::move(today_);
}

std::vector<float> EsmModel::export_anomaly_row(std::size_t row) const {
  std::vector<float> values(grid_.nlon());
  for (std::size_t j = 0; j < grid_.nlon(); ++j) values[j] = t_anom_.at(row, j);
  return values;
}

void EsmModel::import_anomaly_row(std::size_t row, const std::vector<float>& values) {
  for (std::size_t j = 0; j < grid_.nlon() && j < values.size(); ++j) {
    t_anom_.at(row, j) = values[j];
  }
}

}  // namespace climate::esm
