// Configuration of the CMCC-CM3-lite coupled model (the paper's ESM,
// substituted per DESIGN.md by a reduced-physics coupled simulator that
// preserves the workflow-relevant behaviour: long iterative runs, one
// NetCDF-like file per simulated day with ~20 variables on a lat/lon grid
// with 4 six-hourly steps, coupling between atmosphere and ocean, GHG
// forcing read through I/O, and embedded heat waves / tropical cyclones
// with recorded ground truth).
#pragma once

#include <cstdint>
#include <string>

namespace climate::esm {

/// GHG concentration pathway (historical + two plausible projections, the
/// "future plausible projections" of section 4.2.3).
enum class Scenario { kHistorical, kSsp245, kSsp585 };

const char* scenario_name(Scenario scenario);

/// Model configuration. Paper-scale values are nlat=768, nlon=1152; the
/// scaled default keeps the 2:3 aspect ratio at 1/8 resolution.
struct EsmConfig {
  std::size_t nlat = 96;
  std::size_t nlon = 144;
  int steps_per_day = 4;            ///< 6-hourly output steps.
  int days_per_year = 365;
  int coupling_interval_steps = 1;  ///< Atmosphere/ocean exchange cadence.
  int start_year = 2015;
  Scenario scenario = Scenario::kSsp585;
  std::uint64_t seed = 42;

  // Physics tuning (kept visible for ablation benches).
  double climate_sensitivity_c = 3.0;   ///< Warming per CO2 doubling [degC].
  double anomaly_persistence = 0.90;    ///< AR(1) coefficient of T anomaly.
  double anomaly_noise_c = 0.9;         ///< Daily noise stddev [degC].
  double diffusion = 0.12;              ///< Lateral mixing of anomalies.
  double advection_cells_per_step = 0.4;///< Zonal anomaly transport.

  // Event seeding.
  double heatwave_spawn_per_day = 0.9;  ///< Expected new blocking events/day.
  double coldwave_spawn_per_day = 0.5;
  double tc_spawn_per_day = 0.35;       ///< Expected new TC seeds/day (season-scaled).

  /// Total six-hourly steps in one year.
  int steps_per_year() const { return steps_per_day * days_per_year; }
};

}  // namespace climate::esm
