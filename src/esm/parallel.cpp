#include "esm/parallel.hpp"

#include <mutex>

#include "msg/communicator.hpp"

namespace climate::esm {
namespace {

constexpr int kTagHaloUp = 10;    // sending my top boundary row northwards
constexpr int kTagHaloDown = 11;  // sending my bottom boundary row southwards
constexpr int kTagGather = 20;

/// Band row range for a rank.
void band_range(std::size_t nlat, int ranks, int rank, std::size_t* begin, std::size_t* end) {
  const std::size_t base = nlat / static_cast<std::size_t>(ranks);
  const std::size_t extra = nlat % static_cast<std::size_t>(ranks);
  std::size_t b = 0;
  for (int r = 0; r < rank; ++r) b += base + (static_cast<std::size_t>(r) < extra ? 1 : 0);
  *begin = b;
  *end = b + base + (static_cast<std::size_t>(rank) < extra ? 1 : 0);
}

/// The per-day payload: every daily variable's band rows, concatenated in a
/// fixed order.
std::vector<float> pack_band(const DailyFields& day, std::size_t rb, std::size_t re,
                             std::size_t nlon) {
  std::vector<float> out;
  auto pack_field = [&](const Field& field) {
    for (std::size_t i = rb; i < re; ++i) {
      for (std::size_t j = 0; j < nlon; ++j) out.push_back(field.at(i, j));
    }
  };
  for (const auto* steps : {&day.psl, &day.ua850, &day.va850, &day.wspd, &day.vort850, &day.pr6h}) {
    for (const Field& field : *steps) pack_field(field);
  }
  for (const Field* field : {&day.tas, &day.tasmin, &day.tasmax, &day.pr, &day.sst, &day.sic,
                             &day.ts, &day.hfls, &day.hfss, &day.clt, &day.rh, &day.zg500,
                             &day.uas, &day.vas}) {
    pack_field(*field);
  }
  return out;
}

void unpack_band(DailyFields& day, std::size_t rb, std::size_t re, std::size_t nlon,
                 const std::vector<float>& data) {
  std::size_t pos = 0;
  auto unpack_field = [&](Field& field) {
    for (std::size_t i = rb; i < re; ++i) {
      for (std::size_t j = 0; j < nlon; ++j) field.at(i, j) = data[pos++];
    }
  };
  for (auto* steps : {&day.psl, &day.ua850, &day.va850, &day.wspd, &day.vort850, &day.pr6h}) {
    for (Field& field : *steps) unpack_field(field);
  }
  for (Field* field : {&day.tas, &day.tasmin, &day.tasmax, &day.pr, &day.sst, &day.sic, &day.ts,
                       &day.hfls, &day.hfss, &day.clt, &day.rh, &day.zg500, &day.uas, &day.vas}) {
    unpack_field(*field);
  }
}

}  // namespace

ParallelEsmDriver::ParallelEsmDriver(const EsmConfig& config, const ForcingTable& forcing,
                                     int ranks)
    : config_(config), forcing_(forcing), ranks_(ranks < 1 ? 1 : ranks) {}

void ParallelEsmDriver::run(int days, const std::function<void(const DailyFields&)>& on_day) {
  std::mutex result_mutex;
  EventLog captured_events;
  CouplerDiagnostics captured_coupler{};

  msg::World::run(ranks_, [&](msg::Communicator& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    std::size_t rb = 0, re = 0;
    band_range(config_.nlat, size, rank, &rb, &re);
    EsmModel model(config_, forcing_, rb, re);
    const std::size_t nlon = config_.nlon;

    for (int day = 0; day < days; ++day) {
      // Halo exchange: boundary anomaly rows to the neighbouring bands.
      if (rank + 1 < size) comm.send(rank + 1, kTagHaloUp, model.export_anomaly_row(re - 1));
      if (rank > 0) comm.send(rank - 1, kTagHaloDown, model.export_anomaly_row(rb));
      if (rank > 0) model.import_anomaly_row(rb - 1, comm.recv<float>(rank - 1, kTagHaloUp));
      if (rank + 1 < size) model.import_anomaly_row(re, comm.recv<float>(rank + 1, kTagHaloDown));

      DailyFields band_day = model.run_day();

      // Gather the day's output on rank 0.
      std::vector<float> payload = pack_band(band_day, rb, re, nlon);
      if (rank != 0) {
        comm.send(0, kTagGather, payload);
      } else {
        DailyFields full = std::move(band_day);
        for (int r = 1; r < size; ++r) {
          std::size_t other_rb = 0, other_re = 0;
          band_range(config_.nlat, size, r, &other_rb, &other_re);
          const std::vector<float> other = comm.recv<float>(r, kTagGather);
          unpack_band(full, other_rb, other_re, nlon, other);
        }
        on_day(full);
      }
      comm.barrier();
    }

    if (rank == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      captured_events = model.events();
    }
    // Coupler integrals are per-band: sum them across ranks.
    std::vector<double> integrals = {
        model.coupler().heat_sent_atm,       model.coupler().heat_received_ocean,
        model.coupler().momentum_sent_atm,   model.coupler().momentum_received_ocean,
        model.coupler().freshwater_sent_atm, model.coupler().freshwater_received_ocean};
    comm.allreduce(integrals, msg::ReduceOp::kSum);
    if (rank == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      captured_coupler.exchanges = model.coupler().exchanges;
      captured_coupler.heat_sent_atm = integrals[0];
      captured_coupler.heat_received_ocean = integrals[1];
      captured_coupler.momentum_sent_atm = integrals[2];
      captured_coupler.momentum_received_ocean = integrals[3];
      captured_coupler.freshwater_sent_atm = integrals[4];
      captured_coupler.freshwater_received_ocean = integrals[5];
    }
  });

  events_ = std::move(captured_events);
  coupler_ = captured_coupler;
}

}  // namespace climate::esm
