// Analytic baseline climate of the reduced-physics model: latitude- and
// season-dependent temperatures, sea-surface temperatures, pressure belts
// and background winds. These are the deterministic "historical averages"
// the heat/cold-wave definitions compare against (paper section 5.3), so
// both the model and the extremes module share them.
#pragma once

#include <cstddef>

namespace climate::esm {

/// Day-of-year of peak summer warmth in the northern hemisphere.
inline constexpr int kNorthSummerPeakDay = 196;

/// Mean near-surface air temperature [degC] by latitude (no season).
double mean_temperature_c(double lat_deg);

/// Seasonal amplitude [degC] by latitude (larger toward the poles, stronger
/// over the NH to mimic continentality).
double seasonal_amplitude_c(double lat_deg);

/// Seasonal cycle value in [-1, 1] for a latitude and day of year (peaks in
/// local summer).
double seasonal_phase(double lat_deg, int day_of_year, int days_per_year);

/// Baseline near-surface temperature [degC] for latitude and day of year.
double baseline_temperature_c(double lat_deg, int day_of_year, int days_per_year);

/// Diurnal deviation [degC] for a six-hourly step index (0..steps-1), with
/// the warm peak in the early-afternoon step.
double diurnal_cycle_c(int step_of_day, int steps_per_day);

/// Baseline sea-surface temperature [degC] by latitude and season.
double baseline_sst_c(double lat_deg, int day_of_year, int days_per_year);

/// Baseline sea-level pressure [hPa]: subtropical highs, subpolar lows.
double baseline_psl_hpa(double lat_deg);

/// Background zonal wind [m/s]: easterly trades, midlatitude westerlies.
double background_u_ms(double lat_deg);

/// Background meridional wind [m/s] (weak Hadley return flow).
double background_v_ms(double lat_deg);

/// Baseline convective precipitation rate [mm/day]: ITCZ + storm tracks.
double baseline_precip_mmday(double lat_deg, int day_of_year, int days_per_year);

}  // namespace climate::esm
