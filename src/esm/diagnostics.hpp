// Online diagnostics (paper section 3: "in some cases, a part of the
// analysis is already performed online during model simulations with the
// goal of pre-computing some relevant statistics or simple indicators useful
// for validating the results (e.g., diagnostics)").
//
// The recorder accumulates one row of global indicators per simulated day,
// computed from the fields the model just produced — no extra model state —
// and can persist the series as a CDF-lite file for later inspection.
#pragma once

#include <string>
#include <vector>

#include "common/grid.hpp"
#include "common/status.hpp"
#include "esm/model.hpp"

namespace climate::esm {

/// One day's global indicators.
struct DailyDiagnostics {
  int day_of_run = 0;
  double global_mean_tas_c = 0.0;    ///< Area-weighted near-surface mean.
  double global_mean_pr_mmday = 0.0; ///< Area-weighted precipitation.
  double min_psl_hpa = 0.0;          ///< Deepest low anywhere (TC indicator).
  double max_wspd_ms = 0.0;          ///< Strongest wind anywhere.
  double ice_area_fraction = 0.0;    ///< Area-weighted sea-ice cover.
  double max_tas_anomaly_c = 0.0;    ///< Hottest spot vs the day's global mean.
};

/// Accumulates per-day diagnostics rows during a run.
class DiagnosticsRecorder {
 public:
  /// Computes and appends the row for one day's output.
  const DailyDiagnostics& record(const DailyFields& day, const common::LatLonGrid& grid);

  const std::vector<DailyDiagnostics>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Persists all rows as a CDF-lite file (one variable per indicator over
  /// the "day" dimension).
  common::Status save(const std::string& path) const;

  /// Loads a previously saved diagnostics series.
  static common::Result<std::vector<DailyDiagnostics>> load(const std::string& path);

 private:
  std::vector<DailyDiagnostics> rows_;
};

}  // namespace climate::esm
