// Greenhouse-gas forcing. Matching section 4.2.3 ("greenhouse gases
// concentrations ... provided year by year through I/O"), concentrations are
// materialized as a small CDF-lite file which the model reads back at the
// start of every simulated year.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "esm/config.hpp"

namespace climate::esm {

using common::Result;
using common::Status;

/// Yearly CO2-equivalent concentrations [ppm].
class ForcingTable {
 public:
  ForcingTable() = default;

  /// Builds a table for `years` consecutive years from `start_year` under a
  /// scenario (piecewise growth rates approximating the published pathways).
  static ForcingTable from_scenario(Scenario scenario, int start_year, int years);

  /// Concentration for a calendar year (clamped to the table range).
  double co2_ppm(int year) const;

  /// Radiative warming offset for a year [degC] relative to pre-industrial
  /// 280 ppm, using sensitivity degC-per-doubling.
  double warming_c(int year, double sensitivity_c) const;

  int start_year() const { return start_year_; }
  std::size_t years() const { return co2_.size(); }

  /// Persists as a CDF-lite file (variable "co2_ppm" over dimension "year").
  Status save(const std::string& path) const;

  /// Loads a table previously written by save().
  static Result<ForcingTable> load(const std::string& path);

 private:
  int start_year_ = 0;
  std::vector<double> co2_;
};

}  // namespace climate::esm
