#include "esm/forcing.hpp"

#include <algorithm>
#include <cmath>

#include "ncio/ncfile.hpp"

namespace climate::esm {

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kHistorical: return "historical";
    case Scenario::kSsp245: return "ssp245";
    case Scenario::kSsp585: return "ssp585";
  }
  return "?";
}

ForcingTable ForcingTable::from_scenario(Scenario scenario, int start_year, int years) {
  ForcingTable table;
  table.start_year_ = start_year;
  table.co2_.reserve(static_cast<std::size_t>(years));
  // Anchored at ~410 ppm in 2015; growth per year by scenario.
  auto growth = [&](int year) {
    switch (scenario) {
      case Scenario::kHistorical: return 1.7;           // late-20th-century rate
      case Scenario::kSsp245: return year < 2050 ? 2.1 : 0.9;
      case Scenario::kSsp585: return year < 2050 ? 2.9 : 4.6;
    }
    return 2.0;
  };
  double co2 = 410.0 + 1.9 * (start_year - 2015);
  for (int y = 0; y < years; ++y) {
    table.co2_.push_back(co2);
    co2 += growth(start_year + y);
  }
  return table;
}

double ForcingTable::co2_ppm(int year) const {
  if (co2_.empty()) return 410.0;
  const long idx = std::clamp<long>(year - start_year_, 0, static_cast<long>(co2_.size()) - 1);
  return co2_[static_cast<std::size_t>(idx)];
}

double ForcingTable::warming_c(int year, double sensitivity_c) const {
  return sensitivity_c * std::log2(co2_ppm(year) / 280.0);
}

Status ForcingTable::save(const std::string& path) const {
  auto writer = ncio::FileWriter::create(path);
  if (!writer.ok()) return writer.status();
  auto dim = writer->def_dim("year", std::max<std::size_t>(1, co2_.size()));
  if (!dim.ok()) return dim.status();
  auto var = writer->def_var("co2_ppm", ncio::DType::kFloat64, {"year"});
  if (!var.ok()) return var.status();
  CLIMATE_RETURN_IF_ERROR(
      writer->put_attr("", "start_year", static_cast<std::int64_t>(start_year_)));
  CLIMATE_RETURN_IF_ERROR(writer->end_def());
  std::vector<double> values = co2_;
  if (values.empty()) values.push_back(410.0);
  CLIMATE_RETURN_IF_ERROR(writer->put_var("co2_ppm", values.data(), values.size()));
  return writer->close();
}

Result<ForcingTable> ForcingTable::load(const std::string& path) {
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();
  auto start = reader->attr("", "start_year");
  if (!start.ok()) return start.status();
  auto values = reader->read_doubles("co2_ppm");
  if (!values.ok()) return values.status();
  ForcingTable table;
  table.start_year_ = static_cast<int>(std::get<std::int64_t>(*start));
  table.co2_ = std::move(*values);
  return table;
}

}  // namespace climate::esm
