// Daily output writer/reader: one CDF-lite file per simulated day with the
// ~20 variables of section 5.2 (six-hourly instantaneous fields over a
// (lat, lon, time) layout — time innermost so the datacube's implicit array
// dimension maps onto it directly — plus daily statistics over (lat, lon)).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "esm/model.hpp"

namespace climate::esm {

using common::Result;
using common::Status;

/// Canonical name of a daily file: <dir>/cm3_y<year>_d<ddd>.nc.
std::string daily_filename(const std::string& dir, int year, int day_of_year);

/// Parses year/day back out of a daily filename; returns false if the name
/// does not match the canonical pattern.
bool parse_daily_filename(const std::string& path, int* year, int* day_of_year);

/// Writes one day of model output. Returns the number of bytes written.
Result<std::uint64_t> write_daily_file(const std::string& path, const DailyFields& day,
                                       const LatLonGrid& grid);

/// Names of all variables a daily file contains.
std::vector<std::string> daily_variable_names();

/// Reads a 2D (lat, lon) variable back as a Field.
Result<common::Field> read_daily_field(const std::string& path, const std::string& variable);

/// Reads a 3D (lat, lon, time) variable back as one Field per time step.
Result<std::vector<common::Field>> read_daily_steps(const std::string& path,
                                                    const std::string& variable);

}  // namespace climate::esm
