// CMCC-CM3-lite: the coupled atmosphere-ocean model driving the case-study
// workflow (paper section 4.2.3, substituted per DESIGN.md).
//
// Components:
//  - Atmosphere: baseline climatology + seasonal/diurnal cycles, a prognostic
//    AR(1) temperature-anomaly field with zonal advection and lateral
//    diffusion, GHG-forced warming, blocking-high heat/cold events, and the
//    cyclone imprints (pressure, wind, warm core, precipitation).
//  - Ocean: slab ocean receiving the atmosphere's heat flux through the
//    coupler, relaxing to its own climatology; diagnostic sea-ice cover.
//  - Coupler: mediates the exchanges each coupling interval ("every few
//    minutes the heat, momentum and mass fluxes are sent from the atmosphere
//    to the ocean and the SST, sea ice cover and surface velocities are sent
//    back") and records conservation diagnostics.
//
// Determinism and decomposability: all stochastic terms are counter-mode
// hash functions of (seed, time, cell), so a domain-decomposed run over the
// msg/ layer reproduces the serial fields bit-for-bit. The only neighbour
// dependency is the anomaly advection/diffusion stencil, exposed through the
// halo-row API used by ParallelEsmDriver.
#pragma once

#include <memory>
#include <vector>

#include "common/grid.hpp"
#include "esm/config.hpp"
#include "esm/cyclones.hpp"
#include "esm/events.hpp"
#include "esm/forcing.hpp"

namespace climate::esm {

using common::Field;
using common::LatLonGrid;

/// One simulated day of model output (the contents of one daily NetCDF-like
/// file: 6-hourly instantaneous fields plus daily statistics, ~20 variables).
struct DailyFields {
  int year = 0;
  int day_of_year = 0;  ///< 0-based.
  int day_of_run = 0;   ///< 0-based across the whole simulation.
  double co2_ppm = 0.0;

  // Six-hourly instantaneous fields, one per step of the day.
  std::vector<Field> psl;      ///< Sea-level pressure [hPa].
  std::vector<Field> ua850;    ///< Zonal wind at 850 hPa [m/s].
  std::vector<Field> va850;    ///< Meridional wind [m/s].
  std::vector<Field> wspd;     ///< Wind speed [m/s].
  std::vector<Field> vort850;  ///< Relative vorticity [1e-5 1/s].
  std::vector<Field> pr6h;     ///< Precipitation rate [mm/day].

  // Daily statistics.
  Field tas;     ///< Mean near-surface temperature [degC].
  Field tasmin;  ///< Daily minimum [degC].
  Field tasmax;  ///< Daily maximum [degC].
  Field pr;      ///< Mean precipitation [mm/day].
  Field sst;     ///< Sea-surface temperature [degC].
  Field sic;     ///< Sea-ice fraction [0..1].
  Field ts;      ///< Surface (skin) temperature [degC].
  Field hfls;    ///< Latent heat flux [W/m2].
  Field hfss;    ///< Sensible heat flux [W/m2].
  Field clt;     ///< Cloud cover fraction [0..1].
  Field rh;      ///< Relative humidity [0..1].
  Field zg500;   ///< 500 hPa geopotential height [m].
  Field uas;     ///< Near-surface zonal wind [m/s].
  Field vas;     ///< Near-surface meridional wind [m/s].
};

/// Conservation bookkeeping of the coupler: what the atmosphere sent must
/// equal what the ocean received.
struct CouplerDiagnostics {
  std::uint64_t exchanges = 0;
  double heat_sent_atm = 0.0;      ///< Area-weighted heat flux integral.
  double heat_received_ocean = 0.0;
  double momentum_sent_atm = 0.0;
  double momentum_received_ocean = 0.0;
  double freshwater_sent_atm = 0.0;
  double freshwater_received_ocean = 0.0;
};

/// The coupled model. Operates on the full grid or, for the decomposed
/// driver, on a band of latitude rows [row_begin, row_end).
class EsmModel {
 public:
  /// Full-grid model.
  EsmModel(const EsmConfig& config, const ForcingTable& forcing);

  /// Band model for domain decomposition (rows [row_begin, row_end)).
  EsmModel(const EsmConfig& config, const ForcingTable& forcing, std::size_t row_begin,
           std::size_t row_end);

  /// Advances one six-hourly step (all components + coupling).
  void step();

  /// Runs a full day (steps_per_day steps) and returns its output. Only rows
  /// [row_begin, row_end) of the fields are populated in band mode.
  DailyFields run_day();

  /// Day index of the next day to simulate (0-based, whole run).
  int current_day() const { return step_count_ / config_.steps_per_day; }
  int current_year() const { return config_.start_year + current_day() / config_.days_per_year; }

  const EsmConfig& config() const { return config_; }
  const LatLonGrid& grid() const { return grid_; }
  /// Ground truth of every injected event so far (thermal events + the
  /// cyclone tracks accumulated by the cyclone component).
  const EventLog& events() const {
    log_.cyclones = cyclones_.truth();
    return log_;
  }
  const CouplerDiagnostics& coupler() const { return coupler_; }

  // --- halo API used by the parallel driver (anomaly field rows) ---
  std::vector<float> export_anomaly_row(std::size_t row) const;
  void import_anomaly_row(std::size_t row, const std::vector<float>& values);
  std::size_t row_begin() const { return row_begin_; }
  std::size_t row_end() const { return row_end_; }

 private:
  void spawn_thermal_events(int day);
  double thermal_anomaly(double lat, double lon, int day) const;
  /// Spatially coherent noise, pure function of (tag, time, cell).
  double coherent_noise(std::uint64_t tag, int t, std::size_t i, std::size_t j) const;
  /// Instantaneous wind at a grid point (pointwise-computable, incl. TCs).
  void wind_at(std::size_t i, std::size_t j, int step, double* u, double* v) const;
  void update_anomaly(int day);
  void begin_day(int day);

  EsmConfig config_;
  ForcingTable forcing_;
  LatLonGrid grid_;
  std::size_t row_begin_ = 0;
  std::size_t row_end_ = 0;

  Field t_anom_;  ///< Prognostic temperature anomaly [degC].
  Field sst_;     ///< Prognostic slab-ocean temperature [degC].

  CycloneModel cyclones_;
  std::vector<ThermalEvent> thermal_events_;
  mutable EventLog log_;  // cyclones refreshed lazily in events()
  CouplerDiagnostics coupler_;

  int step_count_ = 0;
  DailyFields today_;
  bool day_open_ = false;
};

}  // namespace climate::esm
