#include "esm/climatology.hpp"

#include <cmath>

#include "common/grid.hpp"

namespace climate::esm {

using common::deg_to_rad;
using common::kPi;

double mean_temperature_c(double lat_deg) {
  const double s = std::sin(deg_to_rad(lat_deg));
  return 28.0 - 50.0 * s * s;  // ~28 degC at the equator, ~-22 degC at poles
}

double seasonal_amplitude_c(double lat_deg) {
  const double a = std::fabs(lat_deg) / 90.0;
  const double hemisphere_boost = lat_deg > 0 ? 1.25 : 1.0;  // NH continentality
  return 16.0 * a * hemisphere_boost;
}

double seasonal_phase(double lat_deg, int day_of_year, int days_per_year) {
  const double peak = lat_deg >= 0 ? kNorthSummerPeakDay
                                   : kNorthSummerPeakDay - days_per_year / 2.0;
  return std::cos(2.0 * kPi * (day_of_year - peak) / static_cast<double>(days_per_year));
}

double baseline_temperature_c(double lat_deg, int day_of_year, int days_per_year) {
  return mean_temperature_c(lat_deg) +
         seasonal_amplitude_c(lat_deg) * seasonal_phase(lat_deg, day_of_year, days_per_year);
}

double diurnal_cycle_c(int step_of_day, int steps_per_day) {
  // Peak at ~14h local (step index steps/2 for 4 six-hourly steps).
  const double phase = 2.0 * kPi * (static_cast<double>(step_of_day) + 0.5) /
                           static_cast<double>(steps_per_day) -
                       kPi * 0.75;
  return 4.0 * std::cos(phase);
}

double baseline_sst_c(double lat_deg, int day_of_year, int days_per_year) {
  const double s = std::sin(deg_to_rad(lat_deg));
  const double mean = 29.0 - 32.0 * s * s;
  const double seasonal = 3.5 * (std::fabs(lat_deg) / 90.0) *
                          seasonal_phase(lat_deg, day_of_year, days_per_year);
  const double sst = mean + seasonal;
  return sst < -1.8 ? -1.8 : sst;  // sea water freezing point
}

double baseline_psl_hpa(double lat_deg) {
  const double rad = deg_to_rad(lat_deg);
  // Subtropical highs near +-30, subpolar lows near +-60.
  return 1013.0 + 7.0 * std::cos(3.0 * rad) * std::cos(rad);
}

double background_u_ms(double lat_deg) {
  const double rad = deg_to_rad(lat_deg);
  // Easterlies in the tropics, westerlies in midlatitudes.
  return -6.0 * std::cos(3.0 * rad) + 4.0 * std::sin(rad) * std::sin(rad);
}

double background_v_ms(double lat_deg) {
  const double rad = deg_to_rad(lat_deg);
  return 1.2 * std::sin(2.0 * rad) * std::cos(rad);
}

double baseline_precip_mmday(double lat_deg, int day_of_year, int days_per_year) {
  // ITCZ: sharp tropical peak wandering seasonally across the equator.
  const double itcz_lat = 8.0 * seasonal_phase(10.0, day_of_year, days_per_year);
  const double d_itcz = (lat_deg - itcz_lat) / 8.0;
  const double itcz = 9.0 * std::exp(-d_itcz * d_itcz);
  // Midlatitude storm tracks near +-45.
  const double d_north = (lat_deg - 45.0) / 14.0;
  const double d_south = (lat_deg + 45.0) / 14.0;
  const double tracks = 3.5 * (std::exp(-d_north * d_north) + std::exp(-d_south * d_south));
  return 0.4 + itcz + tracks;
}

}  // namespace climate::esm
