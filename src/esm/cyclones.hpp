// Tropical-cyclone process model: genesis over warm tropical oceans,
// beta-drift + steering motion with recurvature, intensity life cycle, and
// the field imprints (pressure depression, cyclonic winds, warm core, heavy
// precipitation) that the detection pipelines of section 5.4 look for.
//
// Every spawned cyclone is recorded in the ground-truth log with its full
// six-hourly track, enabling exact skill scoring of the ML and deterministic
// detectors.
#pragma once

#include <vector>

#include "esm/config.hpp"
#include "esm/events.hpp"

namespace climate::esm {

/// A currently active cyclone.
struct ActiveCyclone {
  int id = 0;
  double lat = 0.0;
  double lon = 0.0;
  double intensity = 0.0;     ///< 0..1 life-cycle intensity factor.
  int age_steps = 0;
  int lifetime_steps = 0;
  std::uint64_t spawn_key = 0;  ///< Randomness key for per-cyclone noise.

  /// Peak central pressure depression at this intensity [hPa].
  double depression_hpa() const { return 55.0 * intensity; }
  /// Peak tangential wind at this intensity [m/s].
  double max_wind_ms() const { return 17.0 + 38.0 * intensity; }
  /// Central pressure [hPa].
  double central_psl_hpa() const { return 1008.0 - depression_hpa(); }
};

/// Deterministic cyclone generator and field imprinter.
class CycloneModel {
 public:
  explicit CycloneModel(const EsmConfig& config);

  /// Advances genesis/motion/decay to global step `step` (call once per
  /// step, in order). Appends to the truth log.
  void step(int step);

  const std::vector<ActiveCyclone>& active() const { return active_; }
  const std::vector<CycloneTruth>& truth() const { return truth_; }

  /// Seasonal genesis weight in [0,1] for a hemisphere and day of year.
  double season_weight(bool northern, int day_of_year) const;

  // --- field imprints at a point (sum over active cyclones) ---
  double psl_anomaly_hpa(double lat, double lon) const;
  void wind_anomaly_ms(double lat, double lon, double* du, double* dv) const;
  double warm_core_c(double lat, double lon) const;
  double precip_mmday(double lat, double lon) const;

 private:
  void spawn(int step);
  void advance(ActiveCyclone& tc, int step) const;

  EsmConfig config_;
  std::vector<ActiveCyclone> active_;
  std::vector<CycloneTruth> truth_;
  int next_id_ = 1;
};

/// Angular distance helper used by the imprints: degrees separation between
/// two points with longitude wrap and latitude compression.
double angular_distance_deg(double lat1, double lon1, double lat2, double lon2);

}  // namespace climate::esm
