#include "esm/ensemble.hpp"

#include <cmath>

namespace climate::esm {

EnsembleDriver::EnsembleDriver(const EsmConfig& config, const ForcingTable& forcing, int members)
    : config_(config), forcing_(forcing), members_(members < 1 ? 1 : members) {}

std::uint64_t EnsembleDriver::member_seed(int member) const {
  if (member == 0) return config_.seed;
  // Decorrelate members deterministically from the base seed.
  return hash_mix(config_.seed, 0xE45E3B1E, static_cast<std::uint64_t>(member), 0);
}

std::vector<EnsembleDay> EnsembleDriver::run(
    int days, const std::function<void(int member, const DailyFields&)>& on_member_day) {
  const common::LatLonGrid grid(config_.nlat, config_.nlon);
  // Welford accumulators per day per cell.
  std::vector<common::Field> mean(static_cast<std::size_t>(days), common::Field(grid));
  std::vector<common::Field> m2(static_cast<std::size_t>(days), common::Field(grid));

  for (int member = 0; member < members_; ++member) {
    EsmConfig member_config = config_;
    member_config.seed = member_seed(member);
    EsmModel model(member_config, forcing_);
    for (int day = 0; day < days; ++day) {
      const DailyFields fields = model.run_day();
      if (on_member_day) on_member_day(member, fields);
      common::Field& mu = mean[static_cast<std::size_t>(day)];
      common::Field& acc = m2[static_cast<std::size_t>(day)];
      const double n = static_cast<double>(member + 1);
      for (std::size_t c = 0; c < grid.size(); ++c) {
        const double x = fields.tas[c];
        const double delta = x - mu[c];
        mu[c] += static_cast<float>(delta / n);
        acc[c] += static_cast<float>(delta * (x - mu[c]));
      }
    }
  }

  std::vector<EnsembleDay> out;
  out.reserve(static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    EnsembleDay e;
    e.day_of_run = day;
    e.mean = mean[static_cast<std::size_t>(day)];
    e.spread = common::Field(grid);
    for (std::size_t c = 0; c < grid.size(); ++c) {
      e.spread[c] = members_ > 1
                        ? std::sqrt(std::max(0.0f, m2[static_cast<std::size_t>(day)][c] /
                                                       static_cast<float>(members_)))
                        : 0.0f;
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace climate::esm
