#include "esm/diagnostics.hpp"

#include <algorithm>

#include "ncio/ncfile.hpp"

namespace climate::esm {

const DailyDiagnostics& DiagnosticsRecorder::record(const DailyFields& day,
                                                    const common::LatLonGrid& grid) {
  DailyDiagnostics row;
  row.day_of_run = day.day_of_run;
  double min_psl = 1e30;
  double max_wspd = 0.0;
  double max_tas = -1e30;
  for (std::size_t i = 0; i < grid.nlat(); ++i) {
    const double w = grid.area_weight(i);
    for (std::size_t j = 0; j < grid.nlon(); ++j) {
      row.global_mean_tas_c += w * day.tas.at(i, j);
      row.global_mean_pr_mmday += w * day.pr.at(i, j);
      row.ice_area_fraction += w * day.sic.at(i, j);
      max_tas = std::max(max_tas, static_cast<double>(day.tas.at(i, j)));
      for (const auto& psl : day.psl) min_psl = std::min(min_psl, static_cast<double>(psl.at(i, j)));
      for (const auto& wspd : day.wspd) {
        max_wspd = std::max(max_wspd, static_cast<double>(wspd.at(i, j)));
      }
    }
  }
  row.min_psl_hpa = min_psl;
  row.max_wspd_ms = max_wspd;
  row.max_tas_anomaly_c = max_tas - row.global_mean_tas_c;
  rows_.push_back(row);
  return rows_.back();
}

common::Status DiagnosticsRecorder::save(const std::string& path) const {
  auto writer = ncio::FileWriter::create(path);
  if (!writer.ok()) return writer.status();
  const std::size_t n = std::max<std::size_t>(1, rows_.size());
  auto dim = writer->def_dim("day", n);
  if (!dim.ok()) return dim.status();
  static const char* kVars[] = {"global_mean_tas", "global_mean_pr", "min_psl",
                                "max_wspd",        "ice_area",       "max_tas_anomaly"};
  for (const char* name : kVars) {
    auto var = writer->def_var(name, ncio::DType::kFloat64, {"day"});
    if (!var.ok()) return var.status();
  }
  CLIMATE_RETURN_IF_ERROR(
      writer->put_attr("", "rows", static_cast<std::int64_t>(rows_.size())));
  CLIMATE_RETURN_IF_ERROR(writer->end_def());

  std::vector<double> column(n, 0.0);
  auto put = [&](const char* name, auto getter) -> common::Status {
    for (std::size_t i = 0; i < rows_.size(); ++i) column[i] = getter(rows_[i]);
    return writer->put_var(name, column.data(), column.size());
  };
  CLIMATE_RETURN_IF_ERROR(put("global_mean_tas", [](const DailyDiagnostics& r) { return r.global_mean_tas_c; }));
  CLIMATE_RETURN_IF_ERROR(put("global_mean_pr", [](const DailyDiagnostics& r) { return r.global_mean_pr_mmday; }));
  CLIMATE_RETURN_IF_ERROR(put("min_psl", [](const DailyDiagnostics& r) { return r.min_psl_hpa; }));
  CLIMATE_RETURN_IF_ERROR(put("max_wspd", [](const DailyDiagnostics& r) { return r.max_wspd_ms; }));
  CLIMATE_RETURN_IF_ERROR(put("ice_area", [](const DailyDiagnostics& r) { return r.ice_area_fraction; }));
  CLIMATE_RETURN_IF_ERROR(put("max_tas_anomaly", [](const DailyDiagnostics& r) { return r.max_tas_anomaly_c; }));
  return writer->close();
}

common::Result<std::vector<DailyDiagnostics>> DiagnosticsRecorder::load(const std::string& path) {
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();
  auto count_attr = reader->attr("", "rows");
  if (!count_attr.ok()) return count_attr.status();
  const auto count = static_cast<std::size_t>(std::get<std::int64_t>(*count_attr));
  auto tas = reader->read_doubles("global_mean_tas");
  auto pr = reader->read_doubles("global_mean_pr");
  auto psl = reader->read_doubles("min_psl");
  auto wspd = reader->read_doubles("max_wspd");
  auto ice = reader->read_doubles("ice_area");
  auto anom = reader->read_doubles("max_tas_anomaly");
  if (!tas.ok() || !pr.ok() || !psl.ok() || !wspd.ok() || !ice.ok() || !anom.ok()) {
    return common::Status::DataLoss("diagnostics file missing variables");
  }
  std::vector<DailyDiagnostics> rows(count);
  for (std::size_t i = 0; i < count; ++i) {
    rows[i].day_of_run = static_cast<int>(i);
    rows[i].global_mean_tas_c = (*tas)[i];
    rows[i].global_mean_pr_mmday = (*pr)[i];
    rows[i].min_psl_hpa = (*psl)[i];
    rows[i].max_wspd_ms = (*wspd)[i];
    rows[i].ice_area_fraction = (*ice)[i];
    rows[i].max_tas_anomaly_c = (*anom)[i];
  }
  return rows;
}

}  // namespace climate::esm
