#include "esm/events.hpp"

#include <cmath>

namespace climate::esm {

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  // SplitMix64 over a combination of the four words.
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull ^ b * 0xBF58476D1CE4E5B9ull ^
                    c * 0x94D049BB133111EBull ^ d * 0xD6E8FEB86659FD93ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

double hash_uniform(std::uint64_t seed, std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(hash_mix(seed, tag, a, b) >> 11) * 0x1.0p-53;
}

double hash_normal(std::uint64_t seed, std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  // Box-Muller from two decorrelated uniforms.
  double u1 = hash_uniform(seed, tag ^ 0x5555555555555555ull, a, b);
  const double u2 = hash_uniform(seed, tag ^ 0xAAAAAAAAAAAAAAAAull, a, b);
  if (u1 <= 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

int hash_poisson(double mean, std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                 std::uint64_t b) {
  if (mean <= 0.0) return 0;
  double u = hash_uniform(seed, tag, a, b);
  double p = std::exp(-mean);
  double cumulative = p;
  int k = 0;
  while (u > cumulative && k < 64) {
    ++k;
    p *= mean / static_cast<double>(k);
    cumulative += p;
  }
  return k;
}

}  // namespace climate::esm
