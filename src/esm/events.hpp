// Synthetic extreme-event processes of the reduced-physics model, plus the
// ground-truth log used to validate the detectors (the paper validates its
// ML TC localization against a deterministic tracking scheme; we addition-
// ally have exact injected truth because the simulator is ours).
//
// Event spawning is driven by hash-based (counter-mode) randomness keyed on
// (seed, day), so the same configuration produces the same events regardless
// of the domain decomposition or thread schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace climate::esm {

/// A blocking-high (heat wave) or cold-spell anomaly blob.
struct ThermalEvent {
  bool warm = true;          ///< true: heat wave, false: cold wave.
  double lat = 0.0;          ///< Blob centre.
  double lon = 0.0;
  double amplitude_c = 0.0;  ///< Peak anomaly (positive for warm events).
  double radius_deg = 0.0;   ///< Gaussian e-folding radius.
  int start_day = 0;         ///< Day-of-run the event begins.
  int duration_days = 0;

  bool active(int day) const { return day >= start_day && day < start_day + duration_days; }
};

/// One six-hourly sample of a tropical cyclone's life.
struct CycloneSample {
  int step = 0;              ///< Step-of-run (day * steps_per_day + step).
  double lat = 0.0;          ///< Centre ("eye") position.
  double lon = 0.0;
  double central_psl_hpa = 0.0;
  double max_wind_ms = 0.0;
};

/// A full simulated TC with its track.
struct CycloneTruth {
  int id = 0;
  int genesis_step = 0;
  std::vector<CycloneSample> track;
};

/// Ground truth of everything injected during a run.
struct EventLog {
  std::vector<ThermalEvent> thermal_events;
  std::vector<CycloneTruth> cyclones;

  std::size_t heat_wave_count() const {
    std::size_t n = 0;
    for (const ThermalEvent& e : thermal_events) n += e.warm ? 1 : 0;
    return n;
  }
  std::size_t cold_wave_count() const { return thermal_events.size() - heat_wave_count(); }
};

/// Counter-mode hash random helpers: uniform/normal values fully determined
/// by the key tuple.
std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d);
double hash_uniform(std::uint64_t seed, std::uint64_t tag, std::uint64_t a, std::uint64_t b);
double hash_normal(std::uint64_t seed, std::uint64_t tag, std::uint64_t a, std::uint64_t b);
/// Poisson draw with small mean (inversion), keyed like hash_uniform.
int hash_poisson(double mean, std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                 std::uint64_t b);

}  // namespace climate::esm
