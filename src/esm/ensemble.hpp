// Initial-condition ensembles (paper section 3: execution time scales with
// "the number of simulation runs in the ensemble (group of runs of the same
// ESM with different initial conditions)").
//
// An ensemble runs N members of the same configuration whose weather noise
// is decorrelated by per-member seed perturbation (the counter-mode-hash
// equivalent of perturbed initial conditions), and accumulates the ensemble
// mean and spread of selected daily fields — the quantities downstream
// attribution studies consume.
#pragma once

#include <functional>
#include <vector>

#include "common/grid.hpp"
#include "esm/model.hpp"

namespace climate::esm {

/// Per-day ensemble statistics of one variable.
struct EnsembleDay {
  int day_of_run = 0;
  common::Field mean;    ///< Ensemble mean.
  common::Field spread;  ///< Ensemble standard deviation (population).
};

/// Runs `members` perturbed copies of the configuration for `days` days and
/// accumulates ensemble statistics of the daily-mean temperature.
class EnsembleDriver {
 public:
  EnsembleDriver(const EsmConfig& config, const ForcingTable& forcing, int members);

  /// Simulates all members. `on_member_day`, when set, observes every
  /// member's raw output (member index, day fields). Returns per-day
  /// ensemble statistics of tas.
  std::vector<EnsembleDay> run(
      int days,
      const std::function<void(int member, const DailyFields&)>& on_member_day = {});

  int members() const { return members_; }

  /// The perturbed seed of a member (member 0 keeps the base seed).
  std::uint64_t member_seed(int member) const;

 private:
  EsmConfig config_;
  ForcingTable forcing_;
  int members_;
};

}  // namespace climate::esm
