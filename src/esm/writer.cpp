#include "esm/writer.hpp"

#include <cstdio>
#include <cstring>

#include "common/strings.hpp"
#include "ncio/ncfile.hpp"
#include "obs/obs.hpp"

namespace climate::esm {
namespace {

/// Flattens per-step fields into (lat, lon, time) order.
std::vector<float> interleave_steps(const std::vector<Field>& steps) {
  if (steps.empty()) return {};
  const std::size_t nlat = steps[0].nlat();
  const std::size_t nlon = steps[0].nlon();
  const std::size_t nstep = steps.size();
  std::vector<float> out(nlat * nlon * nstep);
  for (std::size_t i = 0; i < nlat; ++i) {
    for (std::size_t j = 0; j < nlon; ++j) {
      float* cell = out.data() + (i * nlon + j) * nstep;
      for (std::size_t s = 0; s < nstep; ++s) cell[s] = steps[s].at(i, j);
    }
  }
  return out;
}

}  // namespace

std::string daily_filename(const std::string& dir, int year, int day_of_year) {
  return common::format("%s/cm3_y%04d_d%03d.nc", dir.c_str(), year, day_of_year);
}

bool parse_daily_filename(const std::string& path, int* year, int* day_of_year) {
  const std::size_t slash = path.find_last_of('/');
  const std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  int y = 0, d = 0;
  if (std::sscanf(name.c_str(), "cm3_y%d_d%d.nc", &y, &d) != 2) return false;
  if (year) *year = y;
  if (day_of_year) *day_of_year = d;
  return true;
}

std::vector<std::string> daily_variable_names() {
  return {"psl",  "ua850", "va850", "wspd", "vort850", "pr6h", "tas",  "tasmin",
          "tasmax", "pr",   "sst",   "sic",  "ts",      "hfls", "hfss", "clt",
          "rh",   "zg500", "uas",   "vas"};
}

Result<std::uint64_t> write_daily_file(const std::string& path, const DailyFields& day,
                                       const LatLonGrid& grid) {
  OBS_SPAN("esm", "writer_flush");
  OBS_SCOPED_LATENCY("esm.writer_flush_ns");
  auto writer = ncio::FileWriter::create(path);
  if (!writer.ok()) return writer.status();

  const std::size_t nstep = day.psl.size();
  auto check = [](auto result) -> Status {
    return result.ok() ? Status::Ok() : result.status();
  };
  CLIMATE_RETURN_IF_ERROR(check(writer->def_dim("lat", grid.nlat())));
  CLIMATE_RETURN_IF_ERROR(check(writer->def_dim("lon", grid.nlon())));
  CLIMATE_RETURN_IF_ERROR(check(writer->def_dim("time", nstep)));
  CLIMATE_RETURN_IF_ERROR(check(writer->def_var("lat", ncio::DType::kFloat64, {"lat"})));
  CLIMATE_RETURN_IF_ERROR(check(writer->def_var("lon", ncio::DType::kFloat64, {"lon"})));
  CLIMATE_RETURN_IF_ERROR(check(writer->def_var("time", ncio::DType::kFloat64, {"time"})));

  const std::vector<std::string> step_dims = {"lat", "lon", "time"};
  const std::vector<std::string> daily_dims = {"lat", "lon"};
  for (const char* name : {"psl", "ua850", "va850", "wspd", "vort850", "pr6h"}) {
    CLIMATE_RETURN_IF_ERROR(check(writer->def_var(name, ncio::DType::kFloat32, step_dims)));
  }
  for (const char* name : {"tas", "tasmin", "tasmax", "pr", "sst", "sic", "ts", "hfls", "hfss",
                           "clt", "rh", "zg500", "uas", "vas"}) {
    CLIMATE_RETURN_IF_ERROR(check(writer->def_var(name, ncio::DType::kFloat32, daily_dims)));
  }
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("", "year", static_cast<std::int64_t>(day.year)));
  CLIMATE_RETURN_IF_ERROR(
      writer->put_attr("", "day_of_year", static_cast<std::int64_t>(day.day_of_year)));
  CLIMATE_RETURN_IF_ERROR(
      writer->put_attr("", "day_of_run", static_cast<std::int64_t>(day.day_of_run)));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("", "co2_ppm", day.co2_ppm));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("", "model", std::string("CMCC-CM3-lite")));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("tasmax", "units", std::string("degC")));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("psl", "units", std::string("hPa")));
  CLIMATE_RETURN_IF_ERROR(writer->end_def());

  CLIMATE_RETURN_IF_ERROR(writer->put_var("lat", grid.lats().data(), grid.lats().size()));
  CLIMATE_RETURN_IF_ERROR(writer->put_var("lon", grid.lons().data(), grid.lons().size()));
  std::vector<double> times(nstep);
  for (std::size_t s = 0; s < nstep; ++s) times[s] = 6.0 * static_cast<double>(s);
  CLIMATE_RETURN_IF_ERROR(writer->put_var("time", times.data(), times.size()));

  auto put_steps = [&](const char* name, const std::vector<Field>& steps) -> Status {
    const std::vector<float> data = interleave_steps(steps);
    return writer->put_var(name, data.data(), data.size());
  };
  CLIMATE_RETURN_IF_ERROR(put_steps("psl", day.psl));
  CLIMATE_RETURN_IF_ERROR(put_steps("ua850", day.ua850));
  CLIMATE_RETURN_IF_ERROR(put_steps("va850", day.va850));
  CLIMATE_RETURN_IF_ERROR(put_steps("wspd", day.wspd));
  CLIMATE_RETURN_IF_ERROR(put_steps("vort850", day.vort850));
  CLIMATE_RETURN_IF_ERROR(put_steps("pr6h", day.pr6h));

  auto put_daily = [&](const char* name, const Field& field) -> Status {
    return writer->put_var(name, field.data().data(), field.size());
  };
  CLIMATE_RETURN_IF_ERROR(put_daily("tas", day.tas));
  CLIMATE_RETURN_IF_ERROR(put_daily("tasmin", day.tasmin));
  CLIMATE_RETURN_IF_ERROR(put_daily("tasmax", day.tasmax));
  CLIMATE_RETURN_IF_ERROR(put_daily("pr", day.pr));
  CLIMATE_RETURN_IF_ERROR(put_daily("sst", day.sst));
  CLIMATE_RETURN_IF_ERROR(put_daily("sic", day.sic));
  CLIMATE_RETURN_IF_ERROR(put_daily("ts", day.ts));
  CLIMATE_RETURN_IF_ERROR(put_daily("hfls", day.hfls));
  CLIMATE_RETURN_IF_ERROR(put_daily("hfss", day.hfss));
  CLIMATE_RETURN_IF_ERROR(put_daily("clt", day.clt));
  CLIMATE_RETURN_IF_ERROR(put_daily("rh", day.rh));
  CLIMATE_RETURN_IF_ERROR(put_daily("zg500", day.zg500));
  CLIMATE_RETURN_IF_ERROR(put_daily("uas", day.uas));
  CLIMATE_RETURN_IF_ERROR(put_daily("vas", day.vas));

  const std::uint64_t bytes = writer->total_bytes();
  CLIMATE_RETURN_IF_ERROR(writer->close());
  OBS_COUNTER_ADD("esm.bytes_written", bytes);
  return bytes;
}

Result<common::Field> read_daily_field(const std::string& path, const std::string& variable) {
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();
  auto shape = reader->var_shape(variable);
  if (!shape.ok()) return shape.status();
  if (shape->size() != 2) return Status::InvalidArgument(variable + " is not a 2D field");
  auto data = reader->read_floats(variable);
  if (!data.ok()) return data.status();
  common::Field field((*shape)[0], (*shape)[1]);
  std::memcpy(field.data().data(), data->data(), data->size() * sizeof(float));
  return field;
}

Result<std::vector<common::Field>> read_daily_steps(const std::string& path,
                                                    const std::string& variable) {
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();
  auto shape = reader->var_shape(variable);
  if (!shape.ok()) return shape.status();
  if (shape->size() != 3) return Status::InvalidArgument(variable + " is not a 3D field");
  auto data = reader->read_floats(variable);
  if (!data.ok()) return data.status();
  const std::size_t nlat = (*shape)[0];
  const std::size_t nlon = (*shape)[1];
  const std::size_t nstep = (*shape)[2];
  std::vector<common::Field> steps(nstep, common::Field(nlat, nlon));
  for (std::size_t i = 0; i < nlat; ++i) {
    for (std::size_t j = 0; j < nlon; ++j) {
      const float* cell = data->data() + (i * nlon + j) * nstep;
      for (std::size_t s = 0; s < nstep; ++s) steps[s].at(i, j) = cell[s];
    }
  }
  return steps;
}

}  // namespace climate::esm
