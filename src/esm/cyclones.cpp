#include "esm/cyclones.hpp"

#include <algorithm>
#include <cmath>

#include "common/grid.hpp"
#include "esm/climatology.hpp"

namespace climate::esm {

using common::deg_to_rad;

double angular_distance_deg(double lat1, double lon1, double lat2, double lon2) {
  double dlon = std::fabs(lon1 - lon2);
  if (dlon > 180.0) dlon = 360.0 - dlon;
  const double mean_lat = 0.5 * (lat1 + lat2);
  const double dx = dlon * std::cos(deg_to_rad(mean_lat));
  const double dy = lat1 - lat2;
  return std::sqrt(dx * dx + dy * dy);
}

CycloneModel::CycloneModel(const EsmConfig& config) : config_(config) {}

double CycloneModel::season_weight(bool northern, int day_of_year) const {
  // NH season peaks ~day 250 (September), SH ~day 50 (February).
  const double peak = northern ? 250.0 : 50.0;
  const double phase = 2.0 * common::kPi * (day_of_year - peak) /
                       static_cast<double>(config_.days_per_year);
  return std::max(0.0, 0.5 + 0.5 * std::cos(phase));
}

void CycloneModel::spawn(int step) {
  const int day = step / config_.steps_per_day;
  const int doy = day % config_.days_per_year;
  for (int hemisphere = 0; hemisphere < 2; ++hemisphere) {
    const bool northern = hemisphere == 0;
    const double weight = season_weight(northern, doy);
    const double mean = config_.tc_spawn_per_day / config_.steps_per_day * weight *
                        (northern ? 0.6 : 0.4);
    const int count =
        hash_poisson(mean, config_.seed, 0xC1C10 + static_cast<std::uint64_t>(hemisphere),
                     static_cast<std::uint64_t>(step), 0);
    for (int k = 0; k < count; ++k) {
      const std::uint64_t key = hash_mix(config_.seed, 0x7C7C,
                                         static_cast<std::uint64_t>(step),
                                         static_cast<std::uint64_t>(hemisphere * 100 + k));
      ActiveCyclone tc;
      tc.spawn_key = key;
      const double u1 = hash_uniform(key, 1, 0, 0);
      const double u2 = hash_uniform(key, 2, 0, 0);
      const double u3 = hash_uniform(key, 3, 0, 0);
      tc.lat = (northern ? 1.0 : -1.0) * (8.0 + 12.0 * u1);
      tc.lon = 360.0 * u2;
      // Genesis requires warm water (26.5 degC threshold of the classic
      // genesis criteria); baseline SST is analytic so this is deterministic.
      // Checked before an id is assigned so truth_[id-1] stays aligned.
      if (baseline_sst_c(tc.lat, doy, config_.days_per_year) < 26.5) continue;
      tc.id = next_id_++;
      tc.lifetime_steps = static_cast<int>((4.0 + 10.0 * u3) * config_.steps_per_day);
      tc.intensity = 0.15;
      truth_.push_back(CycloneTruth{tc.id, step, {}});
      active_.push_back(tc);
    }
  }
}

void CycloneModel::advance(ActiveCyclone& tc, int step) const {
  const double frac = static_cast<double>(tc.age_steps) / std::max(1, tc.lifetime_steps);
  // Intensity life cycle: ramp up to peak at ~40% of life, decay after 75%.
  if (frac < 0.4) {
    tc.intensity = 0.15 + 0.85 * (frac / 0.4);
  } else if (frac < 0.75) {
    tc.intensity = 1.0;
  } else {
    tc.intensity = std::max(0.0, 1.0 - (frac - 0.75) / 0.25);
  }
  // SST modulation: weaken over cool water.
  const int doy = (step / config_.steps_per_day) % config_.days_per_year;
  const double sst = baseline_sst_c(tc.lat, doy, config_.days_per_year);
  if (sst < 26.0) tc.intensity *= std::max(0.0, 1.0 - (26.0 - sst) * 0.15);

  // Motion: beta drift (westward + poleward) plus steering by the background
  // flow, with recurvature to eastward motion outside the tropics.
  const double sign = tc.lat >= 0 ? 1.0 : -1.0;
  const double steering_u = 0.30 * background_u_ms(tc.lat);
  const double beta_u = std::fabs(tc.lat) < 22.0 ? -1.6 : 1.2;
  const double noise_u = 0.35 * hash_normal(tc.spawn_key, 11, static_cast<std::uint64_t>(step), 0);
  const double noise_v = 0.25 * hash_normal(tc.spawn_key, 12, static_cast<std::uint64_t>(step), 0);
  const double dlon = (beta_u + steering_u + noise_u) * 0.55;  // deg per 6h
  const double dlat = sign * (0.45 + 0.15 * frac) + noise_v;
  tc.lon += dlon / std::max(0.2, std::cos(deg_to_rad(tc.lat)));
  tc.lat += dlat;
  if (tc.lon < 0) tc.lon += 360.0;
  if (tc.lon >= 360.0) tc.lon -= 360.0;
  ++tc.age_steps;
}

void CycloneModel::step(int step) {
  spawn(step);
  for (ActiveCyclone& tc : active_) {
    advance(tc, step);
    if (tc.intensity > 0.2 && std::fabs(tc.lat) < 55.0) {
      CycloneTruth& record = truth_[static_cast<std::size_t>(tc.id - 1)];
      record.track.push_back(
          CycloneSample{step, tc.lat, tc.lon, tc.central_psl_hpa(), tc.max_wind_ms()});
    }
  }
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [](const ActiveCyclone& tc) {
                                 return tc.age_steps >= tc.lifetime_steps ||
                                        tc.intensity <= 0.0 || std::fabs(tc.lat) > 55.0;
                               }),
                active_.end());
}

double CycloneModel::psl_anomaly_hpa(double lat, double lon) const {
  double anomaly = 0.0;
  for (const ActiveCyclone& tc : active_) {
    const double r = angular_distance_deg(lat, lon, tc.lat, tc.lon);
    if (r > 15.0) continue;
    const double scale = r / 4.0;
    anomaly -= tc.depression_hpa() * std::exp(-scale * scale);
  }
  return anomaly;
}

void CycloneModel::wind_anomaly_ms(double lat, double lon, double* du, double* dv) const {
  for (const ActiveCyclone& tc : active_) {
    const double r = angular_distance_deg(lat, lon, tc.lat, tc.lon);
    if (r > 15.0 || r < 1e-6) continue;
    // Rankine-like tangential profile peaking at rm.
    const double rm = 1.6;
    const double profile = (r / rm) * std::exp(1.0 - r / rm);
    const double speed = tc.max_wind_ms() * std::min(1.0, profile);
    // Tangential direction: counterclockwise in NH, clockwise in SH.
    double dlon = lon - tc.lon;
    if (dlon > 180.0) dlon -= 360.0;
    if (dlon < -180.0) dlon += 360.0;
    const double dx = dlon * std::cos(deg_to_rad(0.5 * (lat + tc.lat)));
    const double dy = lat - tc.lat;
    const double norm = std::sqrt(dx * dx + dy * dy);
    if (norm < 1e-9) continue;
    const double sign = tc.lat >= 0 ? 1.0 : -1.0;
    *du += sign * speed * (-dy / norm);
    *dv += sign * speed * (dx / norm);
  }
}

double CycloneModel::warm_core_c(double lat, double lon) const {
  double anomaly = 0.0;
  for (const ActiveCyclone& tc : active_) {
    const double r = angular_distance_deg(lat, lon, tc.lat, tc.lon);
    if (r > 10.0) continue;
    const double scale = r / 2.2;
    anomaly += 3.0 * tc.intensity * std::exp(-scale * scale);
  }
  return anomaly;
}

double CycloneModel::precip_mmday(double lat, double lon) const {
  double rate = 0.0;
  for (const ActiveCyclone& tc : active_) {
    const double r = angular_distance_deg(lat, lon, tc.lat, tc.lon);
    if (r > 12.0) continue;
    const double scale = r / 3.0;
    rate += 70.0 * tc.intensity * std::exp(-scale * scale);
  }
  return rate;
}

}  // namespace climate::esm
