#include "msg/communicator.hpp"

#include <algorithm>
#include <thread>

namespace climate::msg {

int Communicator::size() const { return world_->nranks_; }

void Communicator::send_bytes(int dest, int tag, const void* data, std::size_t size) {
  if (dest < 0 || dest >= world_->nranks_) throw std::out_of_range("send: bad destination rank");
  std::vector<std::uint8_t> payload(size);
  if (size) std::memcpy(payload.data(), data, size);
  world_->deliver(dest, rank_, tag, std::move(payload));
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  if (source < 0 || source >= world_->nranks_) throw std::out_of_range("recv: bad source rank");
  return world_->take(rank_, source, tag);
}

void Communicator::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mutex_);
  const std::uint64_t generation = world_->barrier_generation_;
  if (++world_->barrier_waiting_ == world_->nranks_) {
    world_->barrier_waiting_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
    return;
  }
  world_->barrier_cv_.wait(lock, [&] { return world_->barrier_generation_ != generation; });
}

void Communicator::broadcast(std::vector<double>& data, int root) {
  constexpr int kTag = -101;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kTag, data);
    }
  } else {
    data = recv<double>(root, kTag);
  }
}

void Communicator::allreduce(std::vector<double>& data, ReduceOp op) {
  constexpr int kTag = -102;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      std::vector<double> other = recv<double>(r, kTag);
      if (other.size() != data.size()) throw std::runtime_error("allreduce: size mismatch");
      for (std::size_t i = 0; i < data.size(); ++i) {
        switch (op) {
          case ReduceOp::kSum: data[i] += other[i]; break;
          case ReduceOp::kMin: data[i] = std::min(data[i], other[i]); break;
          case ReduceOp::kMax: data[i] = std::max(data[i], other[i]); break;
        }
      }
    }
  } else {
    send(0, kTag, data);
  }
  broadcast(data, 0);
}

double Communicator::allreduce(double value, ReduceOp op) {
  std::vector<double> one{value};
  allreduce(one, op);
  return one[0];
}

std::vector<double> Communicator::gather(const std::vector<double>& data, int root) {
  constexpr int kTag = -103;
  if (rank_ == root) {
    std::vector<double> out;
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        out.insert(out.end(), data.begin(), data.end());
      } else {
        std::vector<double> part = recv<double>(r, kTag);
        out.insert(out.end(), part.begin(), part.end());
      }
    }
    return out;
  }
  send(root, kTag, data);
  return {};
}

World::World(int nranks) : nranks_(nranks) {
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::deliver(int dest, int source, int tag, std::vector<std::uint8_t> payload) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{source, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<std::uint8_t> World::take(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto it = box.queues.find(key);
  std::vector<std::uint8_t> payload = std::move(it->second.front());
  it->second.erase(it->second.begin());
  return payload;
}

void World::run(int nranks, const std::function<void(Communicator&)>& body) {
  if (nranks < 1) throw std::invalid_argument("World::run: nranks must be >= 1");
  World world(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace climate::msg
