// In-process message-passing layer modeled on MPI (see the LLNL MPI tutorial
// idioms): a World of N ranks, point-to-point tagged send/recv, and the
// collectives the ESM decomposition needs (barrier, broadcast, allreduce,
// gather). Ranks run as threads of one process; messages are copied between
// per-rank mailboxes, which preserves the distributed-memory programming
// model (no shared mutable state between ranks except via messages).
//
// This is the substrate on which the CMCC-CM3-lite simulator runs its
// latitude-band domain decomposition and halo exchanges, standing in for the
// MPI+OpenMP execution of the real model (paper section 3).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace climate::msg {

/// Reduction operators for allreduce/reduce.
enum class ReduceOp { kSum, kMin, kMax };

class World;

/// Per-rank communication endpoint. Each rank thread owns exactly one
/// Communicator; all members are callable only from that thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send of raw bytes to `dest`. Buffered: completes as soon
  /// as the bytes are enqueued in the destination mailbox.
  void send_bytes(int dest, int tag, const void* data, std::size_t size);

  /// Blocking tagged receive from `source`. Returns the message payload.
  std::vector<std::uint8_t> recv_bytes(int source, int tag);

  /// Typed send/recv of a vector of trivially copyable elements.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes = recv_bytes(source, tag);
    if (bytes.size() % sizeof(T) != 0) throw std::runtime_error("recv: size mismatch");
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Typed send/recv of a single trivially copyable value.
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }

  template <typename T>
  T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes = recv_bytes(source, tag);
    if (bytes.size() != sizeof(T)) throw std::runtime_error("recv_value: size mismatch");
    T out;
    std::memcpy(&out, bytes.data(), sizeof(T));
    return out;
  }

  /// Synchronizes all ranks (generation-counted barrier).
  void barrier();

  /// Broadcasts `data` from `root` to all ranks (in place on non-roots).
  void broadcast(std::vector<double>& data, int root);

  /// Element-wise allreduce over equally sized vectors on every rank.
  void allreduce(std::vector<double>& data, ReduceOp op);

  /// Scalar allreduce convenience.
  double allreduce(double value, ReduceOp op);

  /// Gathers each rank's vector on `root` (concatenated in rank order);
  /// returns an empty vector on non-root ranks.
  std::vector<double> gather(const std::vector<double>& data, int root);

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// Owns the mailboxes and collective state for a group of ranks and runs a
/// rank function on each of N threads (an in-process mpirun).
class World {
 public:
  /// Runs `body(comm)` on `nranks` threads, one rank each, and joins them.
  /// Exceptions thrown by any rank propagate to the caller (first one wins).
  static void run(int nranks, const std::function<void(Communicator&)>& body);

 private:
  friend class Communicator;

  explicit World(int nranks);

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // Keyed by (source, tag); FIFO per key.
    std::map<std::pair<int, int>, std::vector<std::vector<std::uint8_t>>> queues;
  };

  void deliver(int dest, int source, int tag, std::vector<std::uint8_t> payload);
  std::vector<std::uint8_t> take(int rank, int source, int tag);

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier state.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace climate::msg
