// The climate extreme-events end-to-end workflow — the paper's case study
// (sections 5 and 6, Figures 2 and 3), implemented against the task runtime.
//
// One run wires together, in a single task graph:
//   - the CMCC-CM3-lite simulation producing one NetCDF-like file per day
//     ("esm_simulation", one task per simulated year, chained);
//   - a streaming stage that watches the output directory and fires a
//     "year_ready" task the moment a full year of files exists (the
//     PyCOMPSs streaming interface of section 5.2);
//   - the heat/cold-wave datacube pipelines of section 5.3 / Listing 1
//     ("load_tmax"/"load_tmin" -> "heat_duration"/"cold_duration" ->
//     three index tasks per wave kind), executed through the Ophidia-like
//     framework with the baseline cubes loaded once and kept in memory;
//   - the TC pipeline of section 5.4: "tc_preprocess" + "tc_inference"
//     chunk tasks (pre-trained CNN) and a per-year "tc_georeference"
//     aggregation, validated against "tc_deterministic_tracking";
//   - "validate_store" and "render_year_map" per year plus a "final_maps"
//     task over the whole run (section 5.1 steps 5-6).
//
// In streaming mode analysis tasks overlap the continuing simulation —
// the integration benefit the paper argues for; staged mode (simulate
// everything, then analyse) is kept as the baseline for experiment E2.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "datacube/server.hpp"
#include "esm/config.hpp"
#include "extremes/heatwaves.hpp"
#include "extremes/skill.hpp"
#include "extremes/tc_tracker.hpp"
#include "ml/tc_pipeline.hpp"
#include "obs/prof/profile.hpp"
#include "taskrt/runtime.hpp"

namespace climate::core {

using common::Json;
using common::Result;
using common::Status;

/// Configuration of one workflow run.
struct WorkflowConfig {
  esm::EsmConfig esm;              ///< Model configuration (grid, days/year, seed).
  int years = 1;                   ///< Projection span to simulate.
  std::string output_dir;          ///< Daily files + results land here.
  std::size_t workers = 4;         ///< Task-runtime worker nodes.
  std::size_t io_servers = 2;      ///< Datacube I/O servers.
  bool streaming = true;           ///< Overlap analysis with simulation.
  bool run_ml_tc = true;           ///< Run the CNN localization pipeline.
  bool run_deterministic_tc = true;///< Run the deterministic tracker.
  std::string tc_weights_path;     ///< Pre-trained CNN weights (empty: skip ML).
  int tc_chunk_days = 73;          ///< Days per TC preprocess/inference task.
  double tc_threshold = 0.5;       ///< CNN presence threshold.
  std::size_t tc_patch = 16;       ///< CNN patch size.
  std::string checkpoint_dir;      ///< Task-level checkpointing (empty: off).
  double extra_task_cost_ms = 0.0; ///< Synthetic per-analysis-task compute.

  /// Heterogeneous deployment (the paper's future work, section 7): the
  /// cluster gets dedicated node classes — "hpc" nodes for the simulation,
  /// "data" nodes for analytics, a "gpu" node for CNN inference — and task
  /// families carry matching constraints. With false (default), all workers
  /// are identical and any task runs anywhere.
  bool heterogeneous = false;
  std::size_t hpc_nodes = 2;   ///< Used when heterogeneous.
  std::size_t data_nodes = 2;
  std::size_t gpu_nodes = 1;

  /// Simulated per-task container start-up cost (Singularity-style
  /// execution; 0 = bare-metal, the paper's current testbed).
  double container_startup_ms = 0.0;

  /// Record per-day online diagnostics during the simulation and write one
  /// diagnostics file per year (section 3's in-simulation indicators).
  bool online_diagnostics = false;

  /// Task-runtime verifier (directionality checks + graph lint). The default
  /// follows the CLIMATE_VERIFY environment variable; findings land in
  /// WorkflowResults::verify_report without changing execution.
  taskrt::VerifyMode verify = taskrt::VerifyMode::kAuto;

  /// Chaos plan shared by every layer of the run: the same injector is armed
  /// on the task runtime (task errors, node crashes/slowdowns), the datacube
  /// server (fragment-operation faults) and the DLS (transfer faults). Null
  /// (default) runs fault-free; see common/fault.hpp and the README's chaos
  /// quick-start. Construction also honours CLIMATE_FAULTS when this is null
  /// (see common::fault::Injector::from_env).
  std::shared_ptr<common::fault::Injector> faults;

  /// Failure policy applied to the analysis task families for chaos runs:
  /// with retries > 0, task-body faults are retried (FailurePolicy::kRetry)
  /// up to this many times instead of aborting the workflow. When a fault
  /// injector is armed (here or via CLIMATE_FAULTS) and this is 0, a default
  /// budget of 3 is used.
  int task_retries = 0;

  /// Straggler mitigation: speculative backup copies for tasks running far
  /// beyond their function's trailing mean (see RuntimeOptions::speculation).
  bool speculation = false;
};

/// Per-year outputs.
struct YearResults {
  int year = 0;
  extremes::WaveIndices heat;
  extremes::WaveIndices cold;
  std::vector<extremes::TcTrack> tracks;            ///< Deterministic tracker.
  std::vector<extremes::DetectionFix> ml_fixes;     ///< CNN detections (per step).
  extremes::SkillScores ml_skill;                   ///< CNN vs injected truth.
  extremes::SkillScores tracker_skill;              ///< Tracker vs injected truth.
  std::vector<std::string> exported_files;          ///< Index NetCDF files.
  std::string map_file;                             ///< Year HWN map (PGM).
};

/// Whole-run outputs.
struct WorkflowResults {
  std::vector<YearResults> years;
  taskrt::Trace trace;                    ///< Task graph + timings (Figure 3).
  taskrt::RuntimeStats runtime_stats;
  datacube::ServerStats datacube_stats;
  esm::EventLog truth;                    ///< Injected ground truth.
  double makespan_ms = 0.0;
  std::uint64_t bytes_written = 0;        ///< Daily-file volume (section 5.2).
  std::string final_map_file;
  Json summary;                           ///< validate_store aggregation.
  taskrt::verify::Report verify_report;   ///< Verifier findings (empty when off).
  taskrt::RecoveryReport recovery;        ///< Faults seen + recovery work done.

  /// Attribution profile of the executed task graph (critical path, per-task
  /// wait/transfer/exec breakdown, node utilization). Recomputed from `trace`
  /// on each call; run() also writes run_report.{txt,json} to output_dir.
  obs::prof::Analysis profile(const obs::prof::AnalyzeOptions& options = {}) const {
    return obs::prof::analyze(trace, options);
  }
};

/// Pre-trains the TC localizer "on historical data": runs a one-year
/// historical simulation with an independent seed, builds labeled patches
/// from the injected truth, trains the CNN and writes the weights file.
/// Returns the final training loss.
Result<float> pretrain_tc_localizer(const esm::EsmConfig& base_config,
                                    const std::string& weights_path, std::size_t patch = 16,
                                    int epochs = 14, int train_days = 120);

/// The case-study workflow.
class ExtremeEventsWorkflow {
 public:
  explicit ExtremeEventsWorkflow(WorkflowConfig config);

  /// Executes the whole end-to-end workflow and gathers every result.
  Result<WorkflowResults> run();

  const WorkflowConfig& config() const { return config_; }

 private:
  WorkflowConfig config_;
};

/// The TOSCA topology text describing this workflow's deployment (used by
/// the HPCWaaS example and tests; mirrors Figure 2's architecture).
std::string case_study_topology_yaml();

}  // namespace climate::core
