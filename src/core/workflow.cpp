#include "core/workflow.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "common/image.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "datacube/client.hpp"
#include "esm/diagnostics.hpp"
#include "esm/model.hpp"
#include "esm/writer.hpp"
#include "ncio/ncfile.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "taskrt/stream.hpp"

namespace climate::core {

namespace fs = std::filesystem;
using taskrt::DataHandle;
using taskrt::In;
using taskrt::InOut;
using taskrt::Out;
using taskrt::TaskContext;
using taskrt::TaskOptions;

namespace {

constexpr const char* kLogTag = "workflow";

/// Patches of one six-hourly step, ready for inference.
struct StepPatches {
  int step = 0;
  std::size_t grid_nlat = 0;  ///< Inference-grid size (after regridding).
  std::size_t grid_nlon = 0;
  std::vector<ml::TcPatch> patches;
};

// ---- checkpoint codecs -----------------------------------------------------

void append_bytes(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

template <typename T>
void append_pod(std::string& out, const T& v) {
  append_bytes(out, &v, sizeof(T));
}

template <typename T>
T read_pod(const std::string& in, std::size_t* pos) {
  T v{};
  std::memcpy(&v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

/// Codec for common::Field outputs.
taskrt::OutputCodec field_codec() {
  taskrt::OutputCodec codec;
  codec.serialize = [](const std::any& value) {
    const auto& field = taskrt::any_ref<common::Field>(value);
    std::string out;
    append_pod(out, static_cast<std::uint64_t>(field.nlat()));
    append_pod(out, static_cast<std::uint64_t>(field.nlon()));
    append_bytes(out, field.data().data(), field.data().size() * sizeof(float));
    return out;
  };
  codec.deserialize = [](const std::string& in) -> std::any {
    std::size_t pos = 0;
    const auto nlat = read_pod<std::uint64_t>(in, &pos);
    const auto nlon = read_pod<std::uint64_t>(in, &pos);
    common::Field field(nlat, nlon);
    std::memcpy(field.data().data(), in.data() + pos, nlat * nlon * sizeof(float));
    return field;
  };
  return codec;
}

/// Codec for datacube PIDs: serializes the cube's contents and re-creates
/// the cube server-side on restore, returning a fresh valid PID.
taskrt::OutputCodec cube_codec(datacube::Server* server) {
  taskrt::OutputCodec codec;
  codec.serialize = [server](const std::any& value) {
    const auto& pid = taskrt::any_ref<std::string>(value);
    auto cube = server->get(pid);
    std::string out;
    if (!cube.ok()) return out;
    const datacube::CubeData& data = **cube;
    auto append_string = [&](const std::string& s) {
      append_pod(out, static_cast<std::uint64_t>(s.size()));
      out += s;
    };
    auto append_dim = [&](const datacube::DimInfo& dim) {
      append_string(dim.name);
      append_pod(out, static_cast<std::uint64_t>(dim.size));
      append_pod(out, static_cast<std::uint64_t>(dim.coords.size()));
      append_bytes(out, dim.coords.data(), dim.coords.size() * sizeof(double));
    };
    append_string(data.measure);
    append_pod(out, static_cast<std::uint64_t>(data.explicit_dims.size()));
    for (const auto& dim : data.explicit_dims) append_dim(dim);
    append_dim(data.implicit_dim);
    const std::vector<float> dense = data.to_dense();
    append_pod(out, static_cast<std::uint64_t>(dense.size()));
    append_bytes(out, dense.data(), dense.size() * sizeof(float));
    return out;
  };
  codec.deserialize = [server](const std::string& in) -> std::any {
    std::size_t pos = 0;
    auto read_string = [&] {
      const auto n = read_pod<std::uint64_t>(in, &pos);
      std::string s = in.substr(pos, n);
      pos += n;
      return s;
    };
    auto read_dim = [&] {
      datacube::DimInfo dim;
      dim.name = read_string();
      dim.size = read_pod<std::uint64_t>(in, &pos);
      const auto ncoords = read_pod<std::uint64_t>(in, &pos);
      dim.coords.resize(ncoords);
      if (ncoords != 0) {  // empty vector data() may be null; memcpy forbids it
        std::memcpy(dim.coords.data(), in.data() + pos, ncoords * sizeof(double));
      }
      pos += ncoords * sizeof(double);
      return dim;
    };
    const std::string measure = read_string();
    const auto ndims = read_pod<std::uint64_t>(in, &pos);
    std::vector<datacube::DimInfo> dims;
    for (std::uint64_t d = 0; d < ndims; ++d) dims.push_back(read_dim());
    datacube::DimInfo implicit = read_dim();
    const auto nvalues = read_pod<std::uint64_t>(in, &pos);
    std::vector<float> dense(nvalues);
    std::memcpy(dense.data(), in.data() + pos, nvalues * sizeof(float));
    auto pid = server->create_cube(measure, std::move(dims), std::move(implicit), dense,
                                   "restored from checkpoint");
    return pid.ok() ? std::any(*pid) : std::any(std::string());
  };
  return codec;
}

/// Reads a year of a daily 2D variable into dense (lat, lon | day) layout.
std::vector<float> load_year_rows(const std::vector<std::string>& files,
                                  const std::string& variable, std::size_t cells,
                                  std::atomic<std::uint64_t>* files_read) {
  std::vector<float> rows(cells * files.size());
  for (std::size_t d = 0; d < files.size(); ++d) {
    auto field = esm::read_daily_field(files[d], variable);
    if (!field.ok()) {
      throw std::runtime_error("load failed for " + files[d] + ": " + field.status().to_string());
    }
    if (files_read) files_read->fetch_add(1);
    for (std::size_t c = 0; c < cells; ++c) {
      rows[c * files.size() + d] = (*field)[c];
    }
  }
  return rows;
}

/// Builds the (lat, lon) explicit dims + day implicit dim for year cubes.
void year_cube_dims(const common::LatLonGrid& grid, std::size_t days,
                    std::vector<datacube::DimInfo>* explicit_dims,
                    datacube::DimInfo* implicit_dim) {
  explicit_dims->clear();
  explicit_dims->push_back({"lat", grid.nlat(), grid.lats()});
  explicit_dims->push_back({"lon", grid.nlon(), grid.lons()});
  implicit_dim->name = "day";
  implicit_dim->size = days;
  implicit_dim->coords.clear();
}

}  // namespace

std::string case_study_topology_yaml() {
  return R"(name: climate-extremes-case-study
description: End-to-end climate extremes workflow (ESM + HPDA + ML)
topology_template:
  inputs:
    years:
      type: integer
      default: 1
    scenario:
      type: string
      default: ssp585
  node_templates:
    zeus_cluster:
      type: eflows.nodes.Compute
      properties:
        cluster: zeus
        arch: x86_64
        mpi: openmpi4
    esm_environment:
      type: eflows.nodes.Software
      properties:
        base: ubuntu22.04
        packages: cmcc-cm3, esmf, netcdf, openmpi
      requirements:
        - host: zeus_cluster
    analytics_environment:
      type: eflows.nodes.Software
      properties:
        base: ubuntu22.04
        packages: pyophidia, ophidia-server, ophidia-io
      requirements:
        - host: zeus_cluster
    ml_environment:
      type: eflows.nodes.Software
      properties:
        base: ubuntu22.04
        packages: tensorflow, keras, numpy
      requirements:
        - host: zeus_cluster
    forcing_stage_in:
      type: eflows.nodes.DataPipeline
      properties:
        pipeline: forcing_stage_in
      requirements:
        - host: zeus_cluster
    extreme_events_workflow:
      type: eflows.nodes.PyCOMPSsWorkflow
      properties:
        entry: extreme_events
      requirements:
        - host: zeus_cluster
        - depends: esm_environment
        - depends: analytics_environment
        - depends: ml_environment
        - depends: forcing_stage_in
)";
}

Result<float> pretrain_tc_localizer(const esm::EsmConfig& base_config,
                                    const std::string& weights_path, std::size_t patch,
                                    int epochs, int train_days) {
  // "Historical data": an independent run under the historical scenario with
  // a different seed than any projection run.
  esm::EsmConfig config = base_config;
  config.scenario = esm::Scenario::kHistorical;
  config.seed = base_config.seed ^ 0x8157081C;
  config.start_year = 1995;

  esm::ForcingTable forcing =
      esm::ForcingTable::from_scenario(config.scenario, config.start_year, 2);
  esm::EsmModel model(config, forcing);
  const common::LatLonGrid& grid = model.grid();

  std::vector<ml::TcPatch> training_set;
  for (int day = 0; day < train_days; ++day) {
    esm::DailyFields fields = model.run_day();
    for (int s = 0; s < config.steps_per_day; ++s) {
      const int step = day * config.steps_per_day + s;
      std::vector<ml::TcPatch> patches = ml::make_patches(
          fields.psl[static_cast<std::size_t>(s)], fields.wspd[static_cast<std::size_t>(s)],
          fields.vort850[static_cast<std::size_t>(s)], fields.tas, patch);
      // Ground-truth centres at this step, in grid coordinates.
      std::vector<std::pair<double, double>> centers;
      for (const esm::CycloneTruth& truth : model.events().cyclones) {
        for (const esm::CycloneSample& sample : truth.track) {
          if (sample.step == step) {
            const double row = (sample.lat + 90.0) / 180.0 * static_cast<double>(grid.nlat()) - 0.5;
            const double col = sample.lon / 360.0 * static_cast<double>(grid.nlon()) - 0.5;
            centers.emplace_back(row, col);
          }
        }
      }
      ml::label_patches(patches, patch, centers);
      // Keep all positives and a subsample of negatives for class balance.
      std::size_t keep_negative = 0;
      for (ml::TcPatch& p : patches) {
        if (p.has_tc || (keep_negative++ % 7 == 0)) training_set.push_back(std::move(p));
      }
    }
  }

  std::size_t positives = 0;
  for (const ml::TcPatch& p : training_set) positives += p.has_tc ? 1 : 0;
  LOG_INFO(kLogTag) << "TC pretraining set: " << training_set.size() << " patches, " << positives
                    << " positive";
  if (positives == 0) {
    return Status::FailedPrecondition("pretraining produced no positive patches");
  }

  ml::TcLocalizer localizer(patch, config.seed);
  float loss = 0.0f;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    loss = localizer.train_epoch(training_set);
  }
  CLIMATE_RETURN_IF_ERROR(localizer.save(weights_path));
  return loss;
}

ExtremeEventsWorkflow::ExtremeEventsWorkflow(WorkflowConfig config) : config_(std::move(config)) {}

Result<WorkflowResults> ExtremeEventsWorkflow::run() {
  OBS_SPAN("core", "extreme_events_workflow");
  OBS_SCOPED_LATENCY("core.workflow_ns");
  const WorkflowConfig& cfg = config_;
  if (cfg.output_dir.empty()) return Status::InvalidArgument("output_dir is required");
  const std::string daily_dir = cfg.output_dir + "/daily";
  const std::string indices_dir = cfg.output_dir + "/indices";
  const std::string maps_dir = cfg.output_dir + "/maps";
  std::error_code ec;
  fs::create_directories(daily_dir, ec);
  fs::create_directories(indices_dir, ec);
  fs::create_directories(maps_dir, ec);

  const common::LatLonGrid grid(cfg.esm.nlat, cfg.esm.nlon);
  const int days = cfg.esm.days_per_year;
  const std::size_t cells = grid.size();

  // Shared services — declared before the Runtime so worker tasks can never
  // outlive them.
  datacube::Server dc_server(cfg.io_servers);
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> files_read{0};

  // One chaos plan for every layer: the config's injector, or CLIMATE_FAULTS
  // from the environment when the config leaves it null.
  std::shared_ptr<common::fault::Injector> faults = cfg.faults;
  if (!faults) faults = common::fault::Injector::from_env();
  if (faults) dc_server.set_fault_injector(faults);

  // Pre-trained CNN (section 5.4): loaded once, shared read-only by the
  // inference tasks.
  std::shared_ptr<ml::TcLocalizer> localizer;
  bool ml_enabled = cfg.run_ml_tc && !cfg.tc_weights_path.empty();
  if (ml_enabled) {
    localizer = std::make_shared<ml::TcLocalizer>(cfg.tc_patch, cfg.esm.seed);
    const Status st = localizer->load(cfg.tc_weights_path);
    if (!st.ok()) {
      LOG_WARN(kLogTag) << "cannot load TC weights (" << st.to_string()
                        << "); disabling the ML pipeline";
      ml_enabled = false;
      localizer.reset();
    }
  }

  // Inference grid: the paper regrids before tiling; half resolution keeps
  // patches meaningful while bounding memory.
  const std::size_t infer_nlat = (grid.nlat() / (2 * cfg.tc_patch)) * cfg.tc_patch;
  const std::size_t infer_nlon = (grid.nlon() / (2 * cfg.tc_patch)) * cfg.tc_patch;

  taskrt::RuntimeOptions rt_options;
  rt_options.workers = cfg.workers;
  rt_options.checkpoint_dir = cfg.checkpoint_dir;
  rt_options.container_startup_ms = cfg.container_startup_ms;
  rt_options.verify = cfg.verify;
  rt_options.faults = faults;
  rt_options.speculation = cfg.speculation;
  if (cfg.heterogeneous) {
    // Future-work deployment: dedicated node classes per requirement kind
    // ("large HPC systems for the ESM simulation, data-oriented ... systems
    // for Big Data processing and GPU-partitions for the ML-based models").
    auto add_nodes = [&](std::size_t count, const char* prefix,
                         std::set<std::string> tags) {
      for (std::size_t i = 0; i < count; ++i) {
        taskrt::NodeSpec spec;
        spec.name = std::string(prefix) + std::to_string(i);
        spec.cores = 1;
        spec.tags = tags;
        rt_options.nodes.push_back(std::move(spec));
      }
    };
    add_nodes(std::max<std::size_t>(1, cfg.hpc_nodes), "hpc", {"hpc"});
    add_nodes(std::max<std::size_t>(1, cfg.data_nodes), "data", {"data"});
    add_nodes(std::max<std::size_t>(1, cfg.gpu_nodes), "gpu", {"gpu", "data"});
  }
  taskrt::Runtime rt(rt_options);

  const auto wall_start = std::chrono::steady_clock::now();

  // Chaos-run failure policy: with task_retries set, injected (or genuine)
  // task-body faults retry instead of aborting the workflow. An injector
  // armed without an explicit budget (the CLIMATE_FAULTS quick-start) gets a
  // default budget — a chaos demo that aborts on the first fault shows
  // nothing.
  const int task_retries = cfg.task_retries > 0 ? cfg.task_retries : (faults ? 3 : 0);
  auto resilient = [&](TaskOptions options) {
    if (task_retries > 0) {
      options.on_failure = taskrt::FailurePolicy::kRetry;
      options.max_retries = task_retries;
    }
    return options;
  };
  // Marks a task family whose outputs land on reliable storage (daily files
  // on disk, cubes inside the datacube service): a node crash never loses
  // them, so recovery skips these tasks entirely.
  auto durable = [](TaskOptions options) {
    options.durable_outputs = true;
    return options;
  };
  auto task_options = [&](const std::string& key, taskrt::OutputCodec codec) {
    TaskOptions options;
    if (!cfg.checkpoint_dir.empty()) {
      options.checkpoint_key = key;
      options.codec = std::move(codec);
    }
    return resilient(std::move(options));
  };
  // Attaches the node-class constraint of a task family (heterogeneous mode).
  auto constrain = [&](TaskOptions options, const char* tag) {
    if (cfg.heterogeneous) options.constraints.insert(tag);
    return resilient(std::move(options));
  };
  const double extra_ms = cfg.extra_task_cost_ms;
  auto burn = [extra_ms](const TaskContext& ctx) {
    if (extra_ms > 0) {
      ctx.simulate_compute(std::chrono::nanoseconds(static_cast<std::int64_t>(extra_ms * 1e6)));
    }
  };

  // ---- step 1-2: forcing through I/O, baselines into the datacube --------
  DataHandle forcing_h = rt.create_data();
  {
    const std::string forcing_path = cfg.output_dir + "/forcing.nc";
    const esm::EsmConfig esm_cfg = cfg.esm;
    const int years = cfg.years;
    rt.submit("load_forcing", resilient(TaskOptions{}), {Out(forcing_h)},
              [forcing_path, esm_cfg, years](TaskContext& ctx) {
      // Write then read back: concentrations are "provided year by year
      // through I/O" (section 4.2.3).
      esm::ForcingTable table =
          esm::ForcingTable::from_scenario(esm_cfg.scenario, esm_cfg.start_year, years + 1);
      Status st = table.save(forcing_path);
      if (!st.ok()) throw std::runtime_error(st.to_string());
      auto loaded = esm::ForcingTable::load(forcing_path);
      if (!loaded.ok()) throw std::runtime_error(loaded.status().to_string());
      ctx.set_out(0, std::any(*loaded), 64);
    });
  }

  DataHandle baseline_max_h = rt.create_data();
  DataHandle baseline_min_h = rt.create_data();
  {
    const esm::EsmConfig esm_cfg = cfg.esm;
    auto submit_baseline = [&](const char* name, DataHandle handle, bool warm) {
      rt.submit(name, durable(task_options(std::string(name), cube_codec(&dc_server))),
                {Out(handle)}, [&dc_server, esm_cfg, warm, name](TaskContext& ctx) {
                  const common::LatLonGrid g(esm_cfg.nlat, esm_cfg.nlon);
                  // 20-year reference period climatology (analytic — the
                  // model's noise-free expectation, zero GHG offset).
                  extremes::Baseline baseline = extremes::Baseline::analytic(
                      g, esm_cfg.days_per_year, esm_cfg.steps_per_day, 0.0);
                  std::vector<datacube::DimInfo> dims;
                  datacube::DimInfo implicit;
                  year_cube_dims(g, static_cast<std::size_t>(esm_cfg.days_per_year), &dims,
                                 &implicit);
                  auto pid = dc_server.create_cube(
                      warm ? "baseline_tasmax" : "baseline_tasmin", dims, implicit,
                      warm ? baseline.tasmax_rows_by_day() : baseline.tasmin_rows_by_day(),
                      std::string("baseline climatology: ") + name);
                  if (!pid.ok()) throw std::runtime_error(pid.status().to_string());
                  ctx.set_out(0, std::any(*pid), 64);
                });
    };
    submit_baseline("load_baseline_heat", baseline_max_h, true);
    submit_baseline("load_baseline_cold", baseline_min_h, false);
  }

  // ---- step 3: the ESM simulation, one chained task per year --------------
  DataHandle model_h = rt.create_data(std::any(std::shared_ptr<esm::EsmModel>()));
  const std::string diagnostics_dir = cfg.output_dir + "/diagnostics";
  if (cfg.online_diagnostics) fs::create_directories(diagnostics_dir, ec);
  for (int year = 0; year < cfg.years; ++year) {
    const esm::EsmConfig esm_cfg = cfg.esm;
    const std::string dir = daily_dir;
    const bool diagnostics = cfg.online_diagnostics;
    const std::string diag_dir = diagnostics_dir;
    rt.submit("esm_simulation", constrain(durable(TaskOptions{}), "hpc"),
              {In(forcing_h), InOut(model_h)},
              [esm_cfg, dir, year, diagnostics, diag_dir, &bytes_written](TaskContext& ctx) {
                const auto& forcing = ctx.in_as<esm::ForcingTable>(0);
                auto model = ctx.in_as<std::shared_ptr<esm::EsmModel>>(1);
                if (!model) model = std::make_shared<esm::EsmModel>(esm_cfg, forcing);
                const common::LatLonGrid& g = model->grid();
                esm::DiagnosticsRecorder recorder;
                int calendar_year = 0;
                for (int day = 0; day < esm_cfg.days_per_year; ++day) {
                  esm::DailyFields daily = model->run_day();
                  calendar_year = daily.year;
                  // Online diagnostics are computed while the fields are
                  // still in memory, before the write (section 3).
                  if (diagnostics) recorder.record(daily, g);
                  const std::string path = esm::daily_filename(dir, daily.year, daily.day_of_year);
                  const std::string tmp = path + ".part";
                  auto bytes = esm::write_daily_file(tmp, daily, g);
                  if (!bytes.ok()) throw std::runtime_error(bytes.status().to_string());
                  std::error_code rename_ec;
                  fs::rename(tmp, path, rename_ec);
                  if (rename_ec) throw std::runtime_error("rename failed: " + rename_ec.message());
                  bytes_written.fetch_add(*bytes);
                }
                if (diagnostics) {
                  const Status st = recorder.save(diag_dir + "/diagnostics_" +
                                                  std::to_string(calendar_year) + ".nc");
                  if (!st.ok()) throw std::runtime_error(st.to_string());
                }
                ctx.set_out(1, std::any(model), 1 << 20);
                (void)year;
              });
  }

  // ---- per-year analysis sub-workflow -------------------------------------
  struct YearHandles {
    int year_index = 0;
    DataHandle heat_max, heat_count, heat_freq;
    DataHandle cold_max, cold_count, cold_freq;
    DataHandle tracks;
    DataHandle ml_fixes;
    DataHandle validation;
    DataHandle year_map;
  };
  std::vector<YearHandles> year_handles;

  auto submit_year_analysis = [&](int year_index) {
    const int calendar_year = cfg.esm.start_year + year_index;
    std::vector<std::string> files;
    for (int d = 0; d < days; ++d) files.push_back(esm::daily_filename(daily_dir, calendar_year, d));

    YearHandles handles;
    handles.year_index = year_index;
    const std::string ytag = std::to_string(calendar_year);

    // #4: the streaming year-detection task.
    DataHandle files_raw = rt.create_data(std::any(files), files.size() * 64);
    DataHandle files_h = rt.create_data();
    rt.submit("year_ready", resilient(TaskOptions{}), {In(files_raw), Out(files_h)},
              [](TaskContext& ctx) { ctx.set_out(1, ctx.in(0)); });

    // #5/#6: load the year's tasmax/tasmin into cubes.
    DataHandle tmax_h = rt.create_data();
    DataHandle tmin_h = rt.create_data();
    auto submit_load = [&](const char* name, DataHandle out_h, const char* variable) {
      rt.submit(name,
                constrain(durable(task_options(std::string(name) + "@" + ytag,
                                                cube_codec(&dc_server))),
                          "data"),
                {In(files_h), Out(out_h)},
                [&dc_server, &files_read, variable, cells, grid, days, burn,
                 ytag](TaskContext& ctx) {
                  burn(ctx);
                  const auto& file_list = ctx.in_as<std::vector<std::string>>(0);
                  std::vector<float> rows = load_year_rows(file_list, variable, cells, &files_read);
                  std::vector<datacube::DimInfo> dims;
                  datacube::DimInfo implicit;
                  year_cube_dims(grid, static_cast<std::size_t>(days), &dims, &implicit);
                  auto pid = dc_server.create_cube(variable, dims, implicit, rows,
                                                   std::string(variable) + " year " + ytag);
                  if (!pid.ok()) throw std::runtime_error(pid.status().to_string());
                  ctx.set_out(1, std::any(*pid), rows.size() * sizeof(float));
                });
    };
    submit_load("load_tmax", tmax_h, "tasmax");
    submit_load("load_tmin", tmin_h, "tasmin");

    // #7/#8: duration cubes (exceedance mask -> run lengths), Listing 1's
    // upstream "duration" input. Inputs are deleted afterwards; the baseline
    // stays in memory for every year (section 5.3's read-reduction point).
    DataHandle heat_dur_h = rt.create_data();
    DataHandle cold_dur_h = rt.create_data();
    auto submit_duration = [&](const char* name, DataHandle temp_h, DataHandle baseline_h,
                               DataHandle out_h, bool warm) {
      rt.submit(name,
                constrain(durable(task_options(std::string(name) + "@" + ytag,
                                                cube_codec(&dc_server))),
                          "data"),
                {In(temp_h), In(baseline_h), Out(out_h)},
                [&dc_server, warm, burn](TaskContext& ctx) {
                  burn(ctx);
                  datacube::Client client(dc_server, "workflow");
                  auto temp = client.open(ctx.in_as<std::string>(0));
                  if (!temp.ok()) throw std::runtime_error(temp.status().to_string());
                  auto baseline = client.open(ctx.in_as<std::string>(1));
                  if (!baseline.ok()) throw std::runtime_error(baseline.status().to_string());
                  auto diff = warm ? temp->intercube(*baseline, "sub", "temp - baseline")
                                   : baseline->intercube(*temp, "sub", "baseline - temp");
                  if (!diff.ok()) throw std::runtime_error(diff.status().to_string());
                  auto mask = diff->apply(
                      common::format("oph_predicate(measure, '>=%g', 1, 0)",
                                     extremes::kWaveThresholdC),
                      "wave-day mask");
                  if (!mask.ok()) throw std::runtime_error(mask.status().to_string());
                  auto duration = mask->apply(
                      common::format("wave_duration(measure, %d)", extremes::kMinWaveDays),
                      "duration cube");
                  if (!duration.ok()) throw std::runtime_error(duration.status().to_string());
                  (void)diff->del();
                  (void)mask->del();
                  (void)temp->del();  // input year cube no longer needed
                  ctx.set_out(2, std::any(duration->pid()), 64);
                });
    };
    submit_duration("heat_duration", tmax_h, baseline_max_h, heat_dur_h, true);
    submit_duration("cold_duration", tmin_h, baseline_min_h, cold_dur_h, false);

    // #9-#14: the six index tasks (Listing 1 shapes).
    handles.heat_max = rt.create_data();
    handles.heat_count = rt.create_data();
    handles.heat_freq = rt.create_data();
    handles.cold_max = rt.create_data();
    handles.cold_count = rt.create_data();
    handles.cold_freq = rt.create_data();
    enum class IndexKind { kMax, kNumber, kFrequency };
    auto submit_index = [&](const char* name, DataHandle duration_h, DataHandle out_h,
                            IndexKind kind, const std::string& filename) {
      rt.submit(
          name,
          constrain(durable(task_options(std::string(name) + "@" + ytag, field_codec())),
                    "data"),
          {In(duration_h), Out(out_h)},
          [&dc_server, kind, filename, indices_dir, grid, days, burn](TaskContext& ctx) {
            burn(ctx);
            datacube::Client client(dc_server, "workflow");
            auto duration = client.open(ctx.in_as<std::string>(0));
            if (!duration.ok()) throw std::runtime_error(duration.status().to_string());
            datacube::Cube index;
            switch (kind) {
              case IndexKind::kMax: {
                // Listing 1 IndexDurationMax.
                auto cube = duration->reduce("max", 0, "Max Duration cube");
                if (!cube.ok()) throw std::runtime_error(cube.status().to_string());
                index = *cube;
                break;
              }
              case IndexKind::kNumber: {
                // Listing 1 IndexDurationNumber.
                auto mask = duration->apply(
                    "oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
                if (!mask.ok()) throw std::runtime_error(mask.status().to_string());
                auto cube = mask->reduce("sum", 0, "Number of durations cube");
                if (!cube.ok()) throw std::runtime_error(cube.status().to_string());
                (void)mask->del();
                index = *cube;
                break;
              }
              case IndexKind::kFrequency: {
                auto total = duration->reduce("sum", 0, "Total wave days cube");
                if (!total.ok()) throw std::runtime_error(total.status().to_string());
                auto cube = total->apply(common::format("measure / %d", days),
                                         "Wave frequency cube");
                if (!cube.ok()) throw std::runtime_error(cube.status().to_string());
                (void)total->del();
                index = *cube;
                break;
              }
            }
            // Step 5: validated output stored on disk as NetCDF.
            Status st = index.exportnc2(indices_dir, filename);
            if (!st.ok()) throw std::runtime_error(st.to_string());
            auto field = extremes::index_cube_to_field(index, grid);
            if (!field.ok()) throw std::runtime_error(field.status().to_string());
            (void)index.del();
            ctx.set_out(1, std::any(*field), field->size() * sizeof(float));
          });
    };
    submit_index("heat_index_max", heat_dur_h, handles.heat_max, IndexKind::kMax,
                 "heat_wave_duration_" + ytag);
    submit_index("heat_index_number", heat_dur_h, handles.heat_count, IndexKind::kNumber,
                 "heat_wave_number_" + ytag);
    submit_index("heat_index_frequency", heat_dur_h, handles.heat_freq, IndexKind::kFrequency,
                 "heat_wave_frequency_" + ytag);
    submit_index("cold_index_max", cold_dur_h, handles.cold_max, IndexKind::kMax,
                 "cold_wave_duration_" + ytag);
    submit_index("cold_index_number", cold_dur_h, handles.cold_count, IndexKind::kNumber,
                 "cold_wave_number_" + ytag);
    submit_index("cold_index_frequency", cold_dur_h, handles.cold_freq, IndexKind::kFrequency,
                 "cold_wave_frequency_" + ytag);

    // #15/#16: the ML TC pipeline, chunked across the year.
    std::vector<DataHandle> chunk_fixes;
    if (ml_enabled) {
      const int chunk_days = std::max(1, std::min(cfg.tc_chunk_days, days));
      const int steps_per_day = cfg.esm.steps_per_day;
      const std::size_t patch = cfg.tc_patch;
      for (int begin = 0; begin < days; begin += chunk_days) {
        const int end = std::min(days, begin + chunk_days);
        DataHandle patches_h = rt.create_data();
        rt.submit("tc_preprocess", constrain(TaskOptions{}, "data"), {In(files_h), Out(patches_h)},
                  [begin, end, steps_per_day, patch, infer_nlat, infer_nlon, &files_read,
                   burn](TaskContext& ctx) {
                    burn(ctx);
                    const auto& file_list = ctx.in_as<std::vector<std::string>>(0);
                    auto chunk = std::make_shared<std::vector<StepPatches>>();
                    for (int d = begin; d < end; ++d) {
                      const std::string& path = file_list[static_cast<std::size_t>(d)];
                      auto psl = esm::read_daily_steps(path, "psl");
                      auto wspd = esm::read_daily_steps(path, "wspd");
                      auto vort = esm::read_daily_steps(path, "vort850");
                      auto tas = esm::read_daily_field(path, "tas");
                      if (!psl.ok() || !wspd.ok() || !vort.ok() || !tas.ok()) {
                        throw std::runtime_error("tc_preprocess read failed for " + path);
                      }
                      files_read.fetch_add(1);
                      // Regrid to the inference grid (paper step i).
                      const common::Field tas_rg =
                          common::regrid_bilinear(*tas, infer_nlat, infer_nlon);
                      for (int s = 0; s < steps_per_day; ++s) {
                        StepPatches sp;
                        sp.step = d * steps_per_day + s;
                        sp.grid_nlat = infer_nlat;
                        sp.grid_nlon = infer_nlon;
                        const auto su = static_cast<std::size_t>(s);
                        sp.patches = ml::make_patches(
                            common::regrid_bilinear((*psl)[su], infer_nlat, infer_nlon),
                            common::regrid_bilinear((*wspd)[su], infer_nlat, infer_nlon),
                            common::regrid_bilinear((*vort)[su], infer_nlat, infer_nlon), tas_rg,
                            patch);
                        chunk->push_back(std::move(sp));
                      }
                    }
                    const std::size_t bytes =
                        chunk->empty() ? 64
                                       : chunk->size() * chunk->front().patches.size() *
                                             patch * patch * ml::kTcChannels * sizeof(float);
                    ctx.set_out(1, std::any(chunk), bytes);
                  });

        DataHandle fixes_h = rt.create_data();
        const double threshold = cfg.tc_threshold;
        rt.submit("tc_inference", constrain(TaskOptions{}, "gpu"), {In(patches_h), Out(fixes_h)},
                  [localizer, threshold, patch, burn](TaskContext& ctx) {
                    burn(ctx);
                    const auto& chunk =
                        ctx.in_as<std::shared_ptr<std::vector<StepPatches>>>(0);
                    std::vector<extremes::DetectionFix> fixes;
                    for (const StepPatches& sp : *chunk) {
                      const auto outputs = localizer->infer(sp.patches);
                      for (std::size_t i = 0; i < sp.patches.size(); ++i) {
                        if (outputs[i].presence < threshold) continue;
                        // Geo-referencing (paper step iii).
                        const double row =
                            static_cast<double>(sp.patches[i].row0) +
                            static_cast<double>(outputs[i].row_frac) * static_cast<double>(patch);
                        const double col =
                            static_cast<double>(sp.patches[i].col0) +
                            static_cast<double>(outputs[i].col_frac) * static_cast<double>(patch);
                        const double lat =
                            -90.0 + (row + 0.5) * 180.0 / static_cast<double>(sp.grid_nlat);
                        const double lon = (col + 0.5) * 360.0 / static_cast<double>(sp.grid_nlon);
                        fixes.push_back({sp.step, lat, lon});
                      }
                    }
                    ctx.set_out(1, std::any(fixes), fixes.size() * sizeof(extremes::DetectionFix));
                  });
        chunk_fixes.push_back(fixes_h);
      }
    }

    // #17: per-year geo-referenced aggregation of the ML detections.
    handles.ml_fixes = rt.create_data();
    {
      std::vector<taskrt::Param> params;
      for (DataHandle h : chunk_fixes) params.push_back(In(h));
      params.push_back(Out(handles.ml_fixes));
      const std::size_t nchunks = chunk_fixes.size();
      rt.submit("tc_georeference", constrain(TaskOptions{}, "data"), params,
                [nchunks](TaskContext& ctx) {
        std::vector<extremes::DetectionFix> all;
        for (std::size_t c = 0; c < nchunks; ++c) {
          const auto& fixes = ctx.in_as<std::vector<extremes::DetectionFix>>(c);
          all.insert(all.end(), fixes.begin(), fixes.end());
        }
        ctx.set_out(nchunks, std::any(all), all.size() * sizeof(extremes::DetectionFix));
      });
    }

    // Deterministic TC tracking (validation path of section 5.4).
    handles.tracks = rt.create_data();
    if (cfg.run_deterministic_tc) {
      const int steps_per_day = cfg.esm.steps_per_day;
      rt.submit("tc_deterministic_tracking", constrain(TaskOptions{}, "data"),
                {In(files_h), Out(handles.tracks)},
                [grid, steps_per_day, &files_read, burn](TaskContext& ctx) {
                  burn(ctx);
                  const auto& file_list = ctx.in_as<std::vector<std::string>>(0);
                  extremes::TrackerCriteria criteria;
                  std::vector<std::vector<extremes::TcCandidate>> per_step;
                  for (std::size_t d = 0; d < file_list.size(); ++d) {
                    auto psl = esm::read_daily_steps(file_list[d], "psl");
                    auto wspd = esm::read_daily_steps(file_list[d], "wspd");
                    auto vort = esm::read_daily_steps(file_list[d], "vort850");
                    if (!psl.ok() || !wspd.ok() || !vort.ok()) {
                      throw std::runtime_error("tracker read failed for " + file_list[d]);
                    }
                    files_read.fetch_add(1);
                    int day_of_run = 0;
                    auto reader = ncio::FileReader::open(file_list[d]);
                    if (reader.ok()) {
                      auto attr = reader->attr("", "day_of_run");
                      if (attr.ok()) day_of_run = static_cast<int>(std::get<std::int64_t>(*attr));
                    }
                    for (std::size_t s = 0; s < psl->size(); ++s) {
                      const int step = day_of_run * steps_per_day + static_cast<int>(s);
                      per_step.push_back(extremes::detect_candidates((*psl)[s], (*wspd)[s],
                                                                     (*vort)[s], grid, step,
                                                                     criteria));
                    }
                  }
                  std::vector<extremes::TcTrack> tracks =
                      extremes::link_tracks(per_step, steps_per_day, criteria);
                  ctx.set_out(1, std::any(tracks), tracks.size() * 256);
                });
    } else {
      rt.submit("tc_deterministic_tracking", resilient(TaskOptions{}), {Out(handles.tracks)},
                [](TaskContext& ctx) {
                  ctx.set_out(0, std::any(std::vector<extremes::TcTrack>{}));
                });
    }

    // Step 5: validation + storage summary for the year (also frees the
    // duration cubes once every index task consumed them).
    handles.validation = rt.create_data();
    rt.submit("validate_store", constrain(durable(TaskOptions{}), "data"),
              {In(handles.heat_max), In(handles.heat_count), In(handles.heat_freq),
               In(handles.cold_max), In(handles.cold_count), In(handles.cold_freq),
               In(handles.ml_fixes), In(handles.tracks), In(heat_dur_h), In(cold_dur_h),
               Out(handles.validation)},
              [&dc_server, calendar_year, days](TaskContext& ctx) {
                const auto& heat_max = ctx.in_as<common::Field>(0);
                const auto& heat_count = ctx.in_as<common::Field>(1);
                const auto& heat_freq = ctx.in_as<common::Field>(2);
                const auto& cold_max = ctx.in_as<common::Field>(3);
                const auto& cold_count = ctx.in_as<common::Field>(4);
                const auto& cold_freq = ctx.in_as<common::Field>(5);
                const auto& fixes = ctx.in_as<std::vector<extremes::DetectionFix>>(6);
                const auto& tracks = ctx.in_as<std::vector<extremes::TcTrack>>(7);
                (void)dc_server.delete_cube(ctx.in_as<std::string>(8));
                (void)dc_server.delete_cube(ctx.in_as<std::string>(9));

                // Cross-validation: how many ML fixes lie near a
                // deterministic track fix of the same step?
                std::size_t agreeing = 0;
                for (const extremes::DetectionFix& fix : fixes) {
                  for (const extremes::TcTrack& track : tracks) {
                    bool matched = false;
                    for (const extremes::TcCandidate& c : track.fixes) {
                      if (c.step == fix.step &&
                          common::great_circle_km(c.lat, c.lon, fix.lat, fix.lon) < 500.0) {
                        ++agreeing;
                        matched = true;
                        break;
                      }
                    }
                    if (matched) break;
                  }
                }
                Json summary = Json::object();
                summary["year"] = calendar_year;
                summary["days"] = days;
                summary["heat_wave_mean_count"] = heat_count.mean();
                summary["heat_wave_max_duration"] = heat_max.max();
                summary["heat_wave_mean_frequency"] = heat_freq.mean();
                summary["cold_wave_mean_count"] = cold_count.mean();
                summary["cold_wave_max_duration"] = cold_max.max();
                summary["cold_wave_mean_frequency"] = cold_freq.mean();
                summary["ml_fixes"] = fixes.size();
                summary["deterministic_tracks"] = tracks.size();
                summary["ml_fixes_confirmed_by_tracker"] = agreeing;
                ctx.set_out(10, std::any(summary), 256);
              });

    // Step 6 (intermediate): the year's Heat Wave Number map (Figure 4).
    handles.year_map = rt.create_data();
    {
      const std::string map_path =
          maps_dir + "/heat_wave_number_" + ytag + ".pgm";
      rt.submit("render_year_map", constrain(durable(TaskOptions{}), "data"),
                {In(handles.heat_count), Out(handles.year_map)},
                [map_path](TaskContext& ctx) {
                  const auto& count = ctx.in_as<common::Field>(0);
                  const Status st = common::write_pgm(map_path, count, 0.0f, count.max());
                  if (!st.ok()) throw std::runtime_error(st.to_string());
                  ctx.set_out(1, std::any(map_path), map_path.size());
                });
    }

    year_handles.push_back(handles);
  };

  // ---- drive the run -------------------------------------------------------
  if (cfg.streaming) {
    // Streaming interface (section 5.2): watch the output directory and fire
    // each year's analysis the moment its last daily file lands.
    taskrt::DataStream year_stream;
    std::mutex count_mutex;
    std::map<int, int> files_per_year;
    const int days_per_year = days;
    const int start_year = cfg.esm.start_year;
    taskrt::DirectoryWatcher watcher(
        daily_dir, ".nc",
        [&](const std::string& path) {
          int year = 0, doy = 0;
          if (!esm::parse_daily_filename(path, &year, &doy)) return;
          std::lock_guard<std::mutex> lock(count_mutex);
          if (++files_per_year[year] == days_per_year) {
            year_stream.publish(std::any(year - start_year));
          }
        },
        std::chrono::milliseconds(5));

    for (int received = 0; received < cfg.years; ++received) {
      std::optional<std::any> event = year_stream.next();
      if (!event) break;
      const int year_index = taskrt::any_as<int>(*event);
      LOG_INFO(kLogTag) << "year " << (cfg.esm.start_year + year_index)
                        << " complete; launching analysis";
      submit_year_analysis(year_index);
    }
    rt.wait_all();
    watcher.stop();
  } else {
    // Staged baseline: simulate everything, then analyse.
    (void)rt.sync(model_h);
    for (int year = 0; year < cfg.years; ++year) submit_year_analysis(year);
    rt.wait_all();
  }

  // ---- step 6 (final): multi-year mean map --------------------------------
  WorkflowResults results;
  {
    common::Field mean_count(grid);
    for (const YearHandles& handles : year_handles) {
      const auto count = rt.sync_as<common::Field>(handles.heat_count);
      for (std::size_t c = 0; c < mean_count.size(); ++c) mean_count[c] += count[c];
    }
    if (!year_handles.empty()) {
      for (std::size_t c = 0; c < mean_count.size(); ++c) {
        mean_count[c] /= static_cast<float>(year_handles.size());
      }
    }
    DataHandle mean_h = rt.create_data(std::any(mean_count), mean_count.size() * sizeof(float));
    DataHandle final_map_h = rt.create_data();
    const std::string final_path = maps_dir + "/heat_wave_number_mean.pgm";
    rt.submit("final_maps", resilient(durable(TaskOptions{})), {In(mean_h), Out(final_map_h)},
              [final_path](TaskContext& ctx) {
      const auto& mean = ctx.in_as<common::Field>(0);
      const Status st = common::write_pgm(final_path, mean, 0.0f, std::max(1.0f, mean.max()));
      if (!st.ok()) throw std::runtime_error(st.to_string());
      ctx.set_out(1, std::any(final_path), final_path.size());
    });
    results.final_map_file = rt.sync_as<std::string>(final_map_h);
  }

  results.makespan_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // ---- gather results ------------------------------------------------------
  const auto model = rt.sync_as<std::shared_ptr<esm::EsmModel>>(model_h);
  if (model) results.truth = model->events();

  Json all_years = Json::array();
  for (const YearHandles& handles : year_handles) {
    YearResults year;
    year.year = cfg.esm.start_year + handles.year_index;
    year.heat.duration_max = rt.sync_as<common::Field>(handles.heat_max);
    year.heat.count = rt.sync_as<common::Field>(handles.heat_count);
    year.heat.frequency = rt.sync_as<common::Field>(handles.heat_freq);
    year.cold.duration_max = rt.sync_as<common::Field>(handles.cold_max);
    year.cold.count = rt.sync_as<common::Field>(handles.cold_count);
    year.cold.frequency = rt.sync_as<common::Field>(handles.cold_freq);
    year.tracks = rt.sync_as<std::vector<extremes::TcTrack>>(handles.tracks);
    year.ml_fixes = rt.sync_as<std::vector<extremes::DetectionFix>>(handles.ml_fixes);
    year.map_file = rt.sync_as<std::string>(handles.year_map);
    const Json validation = rt.sync_as<Json>(handles.validation);
    all_years.push_back(validation);

    // Skill vs the injected ground truth.
    year.ml_skill = extremes::score_detections(year.ml_fixes, results.truth.cyclones);
    std::vector<extremes::DetectionFix> track_fixes;
    for (const extremes::TcTrack& track : year.tracks) {
      for (const extremes::TcCandidate& c : track.fixes) {
        track_fixes.push_back({c.step, c.lat, c.lon});
      }
    }
    year.tracker_skill = extremes::score_detections(track_fixes, results.truth.cyclones);
    for (const char* prefix : {"heat_wave_duration_", "heat_wave_number_", "heat_wave_frequency_",
                               "cold_wave_duration_", "cold_wave_number_", "cold_wave_frequency_"}) {
      year.exported_files.push_back(indices_dir + "/" + prefix + std::to_string(year.year) + ".nc");
    }
    results.years.push_back(std::move(year));
  }
  results.summary = Json::object();
  results.summary["years"] = std::move(all_years);
  results.summary["bytes_written"] = static_cast<double>(bytes_written.load());
  results.summary["files_read"] = static_cast<double>(files_read.load());

  rt.wait_all();  // re-lint: final_maps and the result syncs happened since
  results.trace = rt.trace();
  results.runtime_stats = rt.stats();
  results.datacube_stats = dc_server.stats();
  results.bytes_written = bytes_written.load();
  results.verify_report = rt.verify_report();
  results.recovery = rt.recovery();
  if (results.recovery.any()) {
    const taskrt::RecoveryReport& rec = results.recovery;
    Json recovery = Json::object();
    recovery["faults_injected"] = static_cast<double>(rec.faults_injected);
    recovery["node_failures"] = static_cast<double>(rec.node_failures);
    recovery["tasks_rescheduled"] = static_cast<double>(rec.tasks_rescheduled);
    recovery["tasks_replayed"] = static_cast<double>(rec.tasks_replayed);
    recovery["checkpoint_restores"] = static_cast<double>(rec.checkpoint_restores);
    recovery["data_versions_lost"] = static_cast<double>(rec.data_versions_lost);
    recovery["data_versions_rematerialized"] =
        static_cast<double>(rec.data_versions_rematerialized);
    recovery["deadline_failures"] = static_cast<double>(rec.deadline_failures);
    recovery["speculative_backups"] = static_cast<double>(rec.speculative_backups);
    recovery["speculative_wins"] = static_cast<double>(rec.speculative_wins);
    recovery["recovery_exec_ms"] = static_cast<double>(rec.recovery_exec_ns) / 1e6;
    results.summary["recovery"] = std::move(recovery);
    LOG_INFO(kLogTag) << "chaos run: " << rec.faults_injected << " faults injected, "
                      << rec.node_failures << " node failures, " << rec.tasks_replayed
                      << " tasks replayed, " << rec.tasks_rescheduled << " rescheduled";
  }
  if (rt.verify_enabled()) {
    results.summary["verify_errors"] = results.verify_report.count(taskrt::verify::Severity::kError);
    results.summary["verify_warnings"] =
        results.verify_report.count(taskrt::verify::Severity::kWarning);
    results.summary["verify_notes"] = results.verify_report.count(taskrt::verify::Severity::kNote);
  }

  // Flight-recorder run report: critical-path attribution over the executed
  // graph, written next to the other run artifacts.
  const obs::prof::Analysis profile = results.profile();
  obs::write_text_file(cfg.output_dir + "/run_report.txt", profile.text_report());
  obs::write_text_file(cfg.output_dir + "/run_report.json", profile.json_report().dump_pretty());
  results.summary["critical_path_ms"] = static_cast<double>(profile.critical_path_ns) / 1e6;
  results.summary["critical_path_tasks"] = profile.critical_path.size();
  if (!profile.functions.empty() && profile.functions.front().critical_ns > 0) {
    const obs::prof::FunctionStat& top = profile.functions.front();
    results.summary["critical_path_top_function"] = top.name;
    results.summary["critical_path_top_share"] = top.critical_share;
    LOG_INFO(kLogTag) << "critical path: " << profile.critical_path.size() << " tasks, "
                      << static_cast<double>(profile.critical_path_ns) / 1e6 << " ms; " << top.name
                      << " holds " << 100.0 * top.critical_share << "% of it";
  }
  return results;
}

}  // namespace climate::core
