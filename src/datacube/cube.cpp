#include "datacube/cube.hpp"

#include <algorithm>
#include <cstring>

namespace climate::datacube {

std::vector<std::size_t> CubeData::row_multi_index(std::size_t row) const {
  std::vector<std::size_t> idx(explicit_dims.size(), 0);
  for (std::size_t d = explicit_dims.size(); d-- > 0;) {
    idx[d] = row % explicit_dims[d].size;
    row /= explicit_dims[d].size;
  }
  return idx;
}

Status CubeData::validate() const {
  const std::size_t rows = row_count();
  const std::size_t alen = array_length();
  if (alen == 0) return Status::InvalidArgument("cube has zero array length");
  std::size_t covered = 0;
  for (const Fragment& frag : fragments) {
    if (frag.row_start != covered) {
      return Status::Internal("fragment rows are not contiguous at row " +
                              std::to_string(frag.row_start));
    }
    if (frag.values.size() != frag.row_count * alen) {
      return Status::Internal("fragment buffer size mismatch at row " +
                              std::to_string(frag.row_start));
    }
    covered += frag.row_count;
  }
  if (covered != rows) {
    return Status::Internal("fragments cover " + std::to_string(covered) + " of " +
                            std::to_string(rows) + " rows");
  }
  return Status::Ok();
}

std::vector<float> CubeData::to_dense() const {
  std::vector<float> dense(element_count());
  const std::size_t alen = array_length();
  for (const Fragment& frag : fragments) {
    std::memcpy(dense.data() + frag.row_start * alen, frag.values.data(),
                frag.values.size() * sizeof(float));
  }
  return dense;
}

std::vector<Fragment> make_fragments(std::size_t rows, std::size_t array_len,
                                     std::size_t nfragments, std::size_t nservers) {
  nfragments = std::max<std::size_t>(1, std::min(nfragments, std::max<std::size_t>(rows, 1)));
  nservers = std::max<std::size_t>(1, nservers);
  std::vector<Fragment> fragments;
  fragments.reserve(nfragments);
  const std::size_t base = rows / nfragments;
  const std::size_t extra = rows % nfragments;
  std::size_t start = 0;
  for (std::size_t f = 0; f < nfragments; ++f) {
    Fragment frag;
    frag.row_start = start;
    frag.row_count = base + (f < extra ? 1 : 0);
    frag.server = static_cast<int>(f % nservers);
    frag.values.assign(frag.row_count * array_len, 0.0f);
    start += frag.row_count;
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

CubeData cube_from_dense(std::string measure, std::vector<DimInfo> explicit_dims,
                         DimInfo implicit_dim, const std::vector<float>& dense,
                         std::size_t nfragments, std::size_t nservers) {
  CubeData cube;
  cube.measure = std::move(measure);
  cube.explicit_dims = std::move(explicit_dims);
  cube.implicit_dim = std::move(implicit_dim);
  const std::size_t alen = cube.array_length();
  cube.fragments = make_fragments(cube.row_count(), alen, nfragments, nservers);
  for (Fragment& frag : cube.fragments) {
    std::memcpy(frag.values.data(), dense.data() + frag.row_start * alen,
                frag.values.size() * sizeof(float));
  }
  return cube;
}

}  // namespace climate::datacube
