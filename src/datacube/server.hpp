// The datacube framework server — this repository's Ophidia equivalent
// (paper section 4.2.2).
//
// Architecture, mirroring the original: a front-end (this Server class,
// which the client-side bindings talk to) dispatches data-processing
// operators to a pool of I/O servers that hold the cube fragments in memory
// and process them in parallel. Cubes are immutable: every operator
// registers a new cube in the catalog and returns its PID; intermediate
// results therefore stay in memory between operators (the paper's "Ophidia
// can store the datasets in memory between different operators' execution"),
// and the number of I/O servers can be scaled up dynamically (experiment E4).
//
// The serving path is built for concurrent multi-session traffic:
//  - the catalog is sharded with per-shard locks (datacube/catalog.hpp), so
//    sessions contend only on PID-hash collisions;
//  - an admission layer (datacube/admission.hpp) bounds in-flight operators
//    and serves queued sessions round-robin, rejecting with UNAVAILABLE
//    instead of blocking unboundedly when a session's queue is full;
//  - stats are striped atomics: updates never take a lock, snapshots are
//    torn-free per field and exact at quiescence;
//  - operator kernels are pure functions in datacube/engine.hpp, executed
//    on the shared I/O-server pool, which is swap-safe (held via shared_ptr
//    for the duration of every fragment run) so set_io_servers can resize
//    the pool mid-flight.
//
// Disk I/O happens only in importnc/exportnc and is counted in the stats,
// which is what the in-memory-reuse experiment (E3) measures.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/striped.hpp"
#include "common/thread_pool.hpp"
#include "datacube/admission.hpp"
#include "datacube/catalog.hpp"
#include "datacube/cube.hpp"
#include "datacube/engine.hpp"

namespace climate::datacube {

/// Aggregate framework counters (reads are disk operations; everything else
/// happens in memory). A stats() snapshot is torn-free per field, monotone
/// between calls, and exact once no operators are in flight.
struct ServerStats {
  std::uint64_t operators_executed = 0;
  std::uint64_t disk_reads = 0;          ///< Variable reads from CDF-lite files.
  std::uint64_t disk_bytes_read = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t disk_bytes_written = 0;
  std::uint64_t elements_processed = 0;  ///< Cube elements touched by operators.
  std::uint64_t cubes_created = 0;
  std::uint64_t cubes_deleted = 0;
};

/// Cube metadata snapshot returned by cubeschema().
struct CubeSchema {
  std::string pid;
  std::string measure;
  std::string description;
  std::vector<DimInfo> explicit_dims;
  DimInfo implicit_dim;
  std::size_t fragment_count = 0;
  std::size_t element_count = 0;
  std::size_t byte_size = 0;
};

/// Options for importnc.
struct ImportOptions {
  /// Number of fragments; 0 picks one per I/O server.
  std::size_t nfragments = 0;
  /// Variable holding the implicit (array) dimension; empty = the variable's
  /// last dimension.
  std::string implicit_dim;
};

/// The framework front-end + I/O server pool.
class Server {
 public:
  /// Starts the framework with `io_servers` in-memory I/O servers.
  explicit Server(std::size_t io_servers = 2);

  /// Scales the I/O server pool (paper: "the number of Ophidia computing
  /// components can be scaled up, also dynamically"). Existing cubes keep
  /// their fragmentation; processing parallelism changes immediately.
  /// In-flight operators finish on the pool they started on.
  void set_io_servers(std::size_t count);
  std::size_t io_servers() const;

  // ----- sessions & admission ---------------------------------------------

  /// Binds the calling thread to a named session for admission fairness.
  /// Operators issued while the scope is alive queue under that session;
  /// unscoped calls run as session "default". Nested scopes override.
  class SessionScope {
   public:
    explicit SessionScope(std::string session);
    ~SessionScope();
    SessionScope(const SessionScope&) = delete;
    SessionScope& operator=(const SessionScope&) = delete;

   private:
    std::string previous_;
  };

  /// The calling thread's session name ("default" if unscoped).
  static const std::string& current_session();

  /// Reconfigures the operator admission bounds.
  void set_admission(AdmissionOptions options) { admission_.set_options(options); }
  AdmissionOptions admission_options() const { return admission_.options(); }
  AdmissionController::Snapshot admission_snapshot() const { return admission_.snapshot(); }

  /// Simulated storage round-trip paid per fragment access, modelling the
  /// distributed deployment's I/O-server latency (0 = in-memory only).
  /// Bench E8 uses this for the latency-bound serving regime.
  void set_fragment_latency_ns(std::uint64_t ns) {
    fragment_latency_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Arms chaos injection on the operator path: kFragmentError rules fail
  /// operators with UNAVAILABLE (transient — the client retry layer absorbs
  /// them), kFragmentDelay rules add a latency spike. Decision keys are the
  /// server-wide operator ordinal; targets match operator names. Null
  /// disarms.
  void set_fault_injector(std::shared_ptr<common::fault::Injector> faults) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    faults_ = std::move(faults);
  }

  // ----- data ingestion / egress ------------------------------------------

  /// Loads a variable from a CDF-lite file into a new cube.
  Result<std::string> importnc(const std::string& path, const std::string& variable,
                               const ImportOptions& options = {});

  /// Creates a cube from an in-memory dense buffer (the fast path used when
  /// data is already resident, e.g. handed over by the workflow runtime).
  Result<std::string> create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                                  DimInfo implicit_dim, const std::vector<float>& dense,
                                  std::string description = "");

  /// Writes a cube to a CDF-lite file (dimensions, coordinates, measure).
  Status exportnc(const std::string& pid, const std::string& path);

  // ----- operators (each returns the PID of a new cube) -------------------

  /// Reduces the implicit dimension. group_size 0 collapses the whole array
  /// to one value; g > 0 aggregates every g consecutive elements (Ophidia's
  /// reduce2 flavour, e.g. daily -> monthly).
  Result<std::string> reduce(const std::string& pid, ReduceOp op, std::size_t group_size = 0,
                             const std::string& description = "");

  /// Applies an array expression per row (Ophidia apply + array primitives).
  Result<std::string> apply(const std::string& pid, const std::string& expression,
                            const std::string& description = "");

  /// Element-wise binary operator between two shape-identical cubes.
  Result<std::string> intercube(const std::string& pid_a, const std::string& pid_b, InterOp op,
                                const std::string& description = "");

  /// Subsets a dimension by inclusive index range [start, end].
  Result<std::string> subset(const std::string& pid, const std::string& dim_name,
                             std::size_t start, std::size_t end,
                             const std::string& description = "");

  /// Concatenates two cubes along the first explicit dimension (schemas must
  /// otherwise match).
  Result<std::string> merge(const std::string& pid_a, const std::string& pid_b,
                            const std::string& description = "");

  /// Concatenates two cubes along the implicit (array) dimension — how a
  /// year cube is assembled from shorter segments (Ophidia's mergecubes2
  /// flavour). Explicit dimensions must match.
  Result<std::string> concat_implicit(const std::string& pid_a, const std::string& pid_b,
                                      const std::string& description = "");

  /// Collapses one explicit dimension with a reduction (spatial
  /// aggregation, e.g. the zonal/global means of post-processing). The
  /// resulting cube keeps the remaining explicit dims and the implicit dim.
  Result<std::string> aggregate(const std::string& pid, const std::string& dim_name, ReduceOp op,
                                const std::string& description = "");

  // ----- catalog ----------------------------------------------------------

  /// Removes a cube from the catalog, freeing its memory.
  Status delete_cube(const std::string& pid);

  /// Schema/metadata snapshot of a cube.
  Result<CubeSchema> cubeschema(const std::string& pid) const;

  /// Immutable cube contents (shared; survives catalog deletion).
  Result<std::shared_ptr<const CubeData>> get(const std::string& pid) const;

  /// Dense row-major copy of a cube's values.
  Result<std::vector<float>> fetch_dense(const std::string& pid) const;

  /// All catalogued PIDs, in creation order.
  std::vector<std::string> list_cubes() const;

  /// Key/value metadata attached to cubes.
  Status set_metadata(const std::string& pid, const std::string& key, const std::string& value);
  Result<std::map<std::string, std::string>> metadata(const std::string& pid) const;

  ServerStats stats() const;

  /// Total bytes of all catalogued cubes (in-memory footprint).
  std::size_t resident_bytes() const;

  /// Contended catalog shard-lock acquisitions (see CubeCatalog).
  std::uint64_t catalog_contention() const { return catalog_.lock_contention(); }

  // ----- textual operator dispatch ----------------------------------------

  /// Executes one operator from a JSON request, the wire-level submission
  /// format of the framework (what the client bindings send in the
  /// original's client/server split):
  ///
  ///   {"operator": "reduce", "cube": "<pid>", "operation": "max"}
  ///   {"operator": "apply", "cube": "<pid>", "query": "predicate(x,'>0',1,0)"}
  ///   {"operator": "intercube", "cube": a, "cube2": b, "operation": "sub"}
  ///   {"operator": "subset", "cube": pid, "dim": "t", "start": 0, "end": 9}
  ///   {"operator": "importnc", "path": ..., "measure": ...}
  ///   {"operator": "exportnc", "cube": pid, "path": ...}
  ///   {"operator": "delete", "cube": pid} / {"operator": "cubeschema", ...}
  ///   {"operator": "aggregate", "cube": pid, "dim": ..., "operation": ...}
  ///   {"operator": "mergecubes", ...} / {"operator": "concat", ...}
  ///   {"operator": "list"}
  ///
  /// Responses carry {"status": "OK", "cube": "<new pid>"} (or the operator's
  /// own payload); failures return the error Status.
  Result<common::Json> execute(const common::Json& request);

 private:
  /// Lock-free striped counterpart of ServerStats.
  struct StripedStats {
    common::StripedCounter operators_executed;
    common::StripedCounter disk_reads;
    common::StripedCounter disk_bytes_read;
    common::StripedCounter disk_writes;
    common::StripedCounter disk_bytes_written;
    common::StripedCounter elements_processed;
    common::StripedCounter cubes_created;
    common::StripedCounter cubes_deleted;
  };

  std::string register_cube(CubeData cube);
  Result<std::shared_ptr<const CubeData>> lookup(const std::string& pid) const;
  /// Shared entry gate of every operator: chaos injection (fragment-op error
  /// or latency spike) followed by admission. The returned ticket must stay
  /// alive for the operator's duration.
  Result<AdmissionController::Ticket> admit_op(const char* op);
  /// Runs `fn(fragment_index)` across the I/O-server pool; the pool is held
  /// via shared_ptr so a concurrent set_io_servers cannot destroy it
  /// mid-run.
  void run_fragments(std::size_t count, const std::function<void(std::size_t)>& fn);
  /// The engine-facing binding of run_fragments.
  engine::ParallelRunner fragment_runner();

  CubeCatalog catalog_;
  StripedStats stats_;
  AdmissionController admission_;
  std::atomic<std::uint64_t> fragment_latency_ns_{0};
  std::shared_ptr<common::fault::Injector> faults_;  // guarded by pool_mutex_
  std::atomic<std::int64_t> op_ordinal_{0};          // fault decision key

  mutable std::mutex pool_mutex_;  // guards pool swaps only
  std::shared_ptr<common::ThreadPool> pool_;
  std::size_t io_servers_ = 0;
};

}  // namespace climate::datacube
