// Datacube storage model, mirroring the Ophidia array-based storage design
// (paper section 4.2.2): a cube has explicit dimensions (forming the "rows")
// and one implicit array dimension stored inline per row (typically time).
// Rows are partitioned into fragments, and fragments are distributed across
// the I/O servers of the framework, which process them in parallel and keep
// them in memory between operators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::datacube {

using common::Result;
using common::Status;

/// One dimension: name, size and coordinate values (e.g. latitudes).
struct DimInfo {
  std::string name;
  std::size_t size = 0;
  std::vector<double> coords;  ///< Optional; empty means 0..size-1.

  /// Coordinate of index i (falls back to the index itself).
  double coord(std::size_t i) const {
    return i < coords.size() ? coords[i] : static_cast<double>(i);
  }
};

/// A contiguous block of rows owned by one I/O server.
struct Fragment {
  std::size_t row_start = 0;
  std::size_t row_count = 0;
  int server = 0;              ///< Owning I/O server index.
  std::vector<float> values;   ///< row_count * array_length floats.
};

/// In-memory datacube: explicit dims x implicit array dimension.
struct CubeData {
  std::string measure;                 ///< Variable name (e.g. "tmax").
  std::vector<DimInfo> explicit_dims;  ///< Row dimensions, outermost first.
  DimInfo implicit_dim;                ///< The per-row array dimension.
  std::vector<Fragment> fragments;     ///< Disjoint row partition, ordered.
  std::string description;             ///< Free-text provenance note.

  /// Number of rows (product of explicit dimension sizes).
  std::size_t row_count() const {
    std::size_t rows = 1;
    for (const DimInfo& d : explicit_dims) rows *= d.size;
    return rows;
  }

  /// Elements per row.
  std::size_t array_length() const { return implicit_dim.size; }

  /// Total elements in the cube.
  std::size_t element_count() const { return row_count() * array_length(); }

  /// Approximate in-memory size in bytes.
  std::size_t byte_size() const { return element_count() * sizeof(float); }

  /// Multi-index of a flat row over the explicit dims (outermost first).
  std::vector<std::size_t> row_multi_index(std::size_t row) const;

  /// Validates internal consistency (fragments cover all rows exactly once,
  /// value buffers have the right size).
  Status validate() const;

  /// Gathers all fragment values into one dense row-major buffer.
  std::vector<float> to_dense() const;
};

/// Splits `rows` rows into `nfragments` contiguous fragments assigned
/// round-robin to `nservers` I/O servers; value buffers are sized and
/// zero-filled.
std::vector<Fragment> make_fragments(std::size_t rows, std::size_t array_len,
                                     std::size_t nfragments, std::size_t nservers);

/// Builds a cube from a dense row-major buffer.
CubeData cube_from_dense(std::string measure, std::vector<DimInfo> explicit_dims,
                         DimInfo implicit_dim, const std::vector<float>& dense,
                         std::size_t nfragments, std::size_t nservers);

}  // namespace climate::datacube
