// Operator admission control for the datacube front-end.
//
// The server executes operators synchronously in the calling session's
// thread; with many concurrent sessions the fragment-parallel kernels all
// land on one shared I/O-server pool. Admission bounds how many operators
// may be in flight at once so the pool is time-shared at operator
// granularity instead of thrashing, and serves waiting sessions round-robin
// so a flooding session cannot starve an interactive one.
//
// Backpressure is explicit: each session may hold at most
// max_queued_per_session waiting operators; beyond that admit() rejects
// with UNAVAILABLE (a Result, never an unbounded block) and the client
// decides whether to retry.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::datacube {

using common::Result;
using common::Status;

struct AdmissionOptions {
  /// Operators allowed to execute concurrently (0 = 1).
  std::size_t max_inflight = 8;
  /// Waiting operators allowed per session before admit() rejects.
  std::size_t max_queued_per_session = 32;
};

/// Bounded, session-fair operator admission. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight permit; releasing it grants the next queued session.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Ticket() { release(); }

    bool valid() const { return controller_ != nullptr; }
    void release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller) : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Admits one operator for `session`: immediately when a slot is free and
  /// nobody is queued, otherwise waits in the session's FIFO queue (served
  /// round-robin across sessions). Rejects with UNAVAILABLE when the
  /// session's queue is full.
  Result<Ticket> admit(const std::string& session);

  /// Reconfigures the bounds; raising max_inflight grants queued waiters.
  void set_options(AdmissionOptions options);
  AdmissionOptions options() const;

  struct Snapshot {
    std::size_t inflight = 0;       ///< Tickets currently held.
    std::size_t queued = 0;         ///< Waiters across all sessions.
    std::uint64_t admitted = 0;     ///< Total tickets granted.
    std::uint64_t rejected = 0;     ///< admit() calls bounced on a full queue.
  };
  Snapshot snapshot() const;

 private:
  struct Waiter {
    bool granted = false;
  };
  struct SessionQueue {
    std::deque<std::shared_ptr<Waiter>> waiters;
  };

  void release_slot();
  /// Grants queued waiters while slots are free; caller holds mutex_.
  /// Returns true if any waiter was granted (caller must notify).
  bool grant_waiters_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  AdmissionOptions options_;
  std::map<std::string, SessionQueue> sessions_;
  std::vector<std::string> round_robin_;  ///< Sessions with waiters, service order.
  std::size_t rr_next_ = 0;
  std::size_t inflight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace climate::datacube
