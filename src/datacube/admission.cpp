#include "datacube/admission.hpp"

#include <algorithm>
#include <chrono>

#include "obs/obs.hpp"

namespace climate::datacube {
namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options) : options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
}

void AdmissionController::Ticket::release() {
  if (controller_ == nullptr) return;
  controller_->release_slot();
  controller_ = nullptr;
}

Result<AdmissionController::Ticket> AdmissionController::admit(const std::string& session) {
  const std::int64_t t0 = now_ns();
  std::shared_ptr<Waiter> waiter;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (inflight_ < options_.max_inflight && queued_ == 0) {
      ++inflight_;
      ++admitted_;
      OBS_GAUGE_SET("datacube.inflight_ops", static_cast<std::int64_t>(inflight_));
      OBS_HISTOGRAM_OBSERVE("datacube.admission_wait_ns", 0.0);
      return Ticket(this);
    }
    SessionQueue& queue = sessions_[session];
    if (queue.waiters.size() >= options_.max_queued_per_session) {
      ++rejected_;
      OBS_COUNTER_ADD("datacube.rejected", 1);
      return Status::Unavailable("admission queue full for session '" + session + "' (" +
                                 std::to_string(queue.waiters.size()) + " waiting, " +
                                 std::to_string(inflight_) + " in flight)");
    }
    waiter = std::make_shared<Waiter>();
    queue.waiters.push_back(waiter);
    if (queue.waiters.size() == 1) round_robin_.push_back(session);
    ++queued_;
    cv_.wait(lock, [&] { return waiter->granted; });
  }
  OBS_HISTOGRAM_OBSERVE("datacube.admission_wait_ns", static_cast<double>(now_ns() - t0));
  return Ticket(this);
}

bool AdmissionController::grant_waiters_locked() {
  bool granted_any = false;
  while (inflight_ < options_.max_inflight && queued_ > 0) {
    // Round-robin across sessions with waiters; each grant takes the oldest
    // operator of the session whose turn it is.
    if (rr_next_ >= round_robin_.size()) rr_next_ = 0;
    const std::size_t index = rr_next_;
    SessionQueue& queue = sessions_[round_robin_[index]];
    std::shared_ptr<Waiter> waiter = queue.waiters.front();
    queue.waiters.pop_front();
    if (queue.waiters.empty()) {
      sessions_.erase(round_robin_[index]);
      round_robin_.erase(round_robin_.begin() + static_cast<std::ptrdiff_t>(index));
      // rr_next_ now points at the session that shifted into this slot.
    } else {
      rr_next_ = index + 1;
    }
    waiter->granted = true;
    ++inflight_;
    ++admitted_;
    --queued_;
    granted_any = true;
  }
  OBS_GAUGE_SET("datacube.inflight_ops", static_cast<std::int64_t>(inflight_));
  return granted_any;
}

void AdmissionController::release_slot() {
  bool granted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ > 0) --inflight_;
    granted = grant_waiters_locked();
  }
  if (granted) cv_.notify_all();
}

void AdmissionController::set_options(AdmissionOptions options) {
  if (options.max_inflight == 0) options.max_inflight = 1;
  bool granted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
    granted = grant_waiters_locked();
  }
  if (granted) cv_.notify_all();
}

AdmissionOptions AdmissionController::options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_;
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.inflight = inflight_;
  snap.queued = queued_;
  snap.admitted = admitted_;
  snap.rejected = rejected_;
  return snap;
}

}  // namespace climate::datacube
