#include "datacube/expression.hpp"

#include <cctype>
#include <cmath>
#include <functional>
#include <map>

namespace climate::datacube {
namespace detail {

// Value during evaluation: either a scalar or an array.
struct Value {
  bool is_array = false;
  float scalar = 0.0f;
  std::vector<float> array;

  std::size_t length() const { return is_array ? array.size() : 1; }
  float at(std::size_t i) const { return is_array ? array[i] : scalar; }
};

struct Node {
  virtual ~Node() = default;
  virtual Value eval(const std::vector<float>& measure) const = 0;
};

using NodePtr = std::shared_ptr<const Node>;

struct NumberNode : Node {
  explicit NumberNode(float v) : value(v) {}
  float value;
  Value eval(const std::vector<float>&) const override { return {false, value, {}}; }
};

struct MeasureNode : Node {
  Value eval(const std::vector<float>& measure) const override {
    Value v;
    v.is_array = true;
    v.array = measure;
    return v;
  }
};

struct BinaryNode : Node {
  BinaryNode(char op, NodePtr l, NodePtr r) : op(op), lhs(std::move(l)), rhs(std::move(r)) {}
  char op;  // + - * / < > L(<=) G(>=) E(==) N(!=)
  NodePtr lhs, rhs;

  static float apply(char op, float a, float b) {
    switch (op) {
      case '+': return a + b;
      case '-': return a - b;
      case '*': return a * b;
      case '/': return b == 0.0f ? 0.0f : a / b;
      case '<': return a < b ? 1.0f : 0.0f;
      case '>': return a > b ? 1.0f : 0.0f;
      case 'L': return a <= b ? 1.0f : 0.0f;
      case 'G': return a >= b ? 1.0f : 0.0f;
      case 'E': return a == b ? 1.0f : 0.0f;
      case 'N': return a != b ? 1.0f : 0.0f;
    }
    return 0.0f;
  }

  Value eval(const std::vector<float>& measure) const override {
    const Value a = lhs->eval(measure);
    const Value b = rhs->eval(measure);
    Value out;
    if (!a.is_array && !b.is_array) {
      out.scalar = apply(op, a.scalar, b.scalar);
      return out;
    }
    const std::size_t n = std::max(a.length(), b.length());
    out.is_array = true;
    out.array.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.array[i] = apply(op, a.at(a.is_array ? i : 0), b.at(b.is_array ? i : 0));
    }
    return out;
  }
};

struct NegNode : Node {
  explicit NegNode(NodePtr c) : child(std::move(c)) {}
  NodePtr child;
  Value eval(const std::vector<float>& measure) const override {
    Value v = child->eval(measure);
    if (v.is_array) {
      for (float& x : v.array) x = -x;
    } else {
      v.scalar = -v.scalar;
    }
    return v;
  }
};

struct UnaryFnNode : Node {
  UnaryFnNode(float (*fn)(float), NodePtr c) : fn(fn), child(std::move(c)) {}
  float (*fn)(float);
  NodePtr child;
  Value eval(const std::vector<float>& measure) const override {
    Value v = child->eval(measure);
    if (v.is_array) {
      for (float& x : v.array) x = fn(x);
    } else {
      v.scalar = fn(v.scalar);
    }
    return v;
  }
};

struct BinaryFnNode : Node {
  BinaryFnNode(float (*fn)(float, float), NodePtr a, NodePtr b)
      : fn(fn), lhs(std::move(a)), rhs(std::move(b)) {}
  float (*fn)(float, float);
  NodePtr lhs, rhs;
  Value eval(const std::vector<float>& measure) const override {
    const Value a = lhs->eval(measure);
    const Value b = rhs->eval(measure);
    Value out;
    if (!a.is_array && !b.is_array) {
      out.scalar = fn(a.scalar, b.scalar);
      return out;
    }
    const std::size_t n = std::max(a.length(), b.length());
    out.is_array = true;
    out.array.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.array[i] = fn(a.at(a.is_array ? i : 0), b.at(b.is_array ? i : 0));
    }
    return out;
  }
};

// predicate(a, 'cond', then, else): cond is an operator + literal, applied
// elementwise to a; result takes then/else (both may be arrays or scalars).
struct PredicateNode : Node {
  NodePtr input;
  char cmp = '>';   // same encoding as BinaryNode
  float threshold = 0.0f;
  NodePtr then_value;
  NodePtr else_value;

  Value eval(const std::vector<float>& measure) const override {
    const Value a = input->eval(measure);
    const Value t = then_value->eval(measure);
    const Value e = else_value->eval(measure);
    const std::size_t n = std::max({a.length(), t.length(), e.length()});
    Value out;
    out.is_array = a.is_array || t.is_array || e.is_array;
    if (!out.is_array) {
      out.scalar = BinaryNode::apply(cmp, a.scalar, threshold) != 0.0f ? t.scalar : e.scalar;
      return out;
    }
    out.array.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool hit = BinaryNode::apply(cmp, a.at(a.is_array ? i : 0), threshold) != 0.0f;
      const Value& src = hit ? t : e;
      out.array[i] = src.at(src.is_array ? i : 0);
    }
    return out;
  }
};

struct WaveDurationNode : Node {
  NodePtr input;
  int min_len = 1;
  Value eval(const std::vector<float>& measure) const override {
    const Value a = input->eval(measure);
    Value out;
    out.is_array = true;
    out.array = wave_duration(a.is_array ? a.array : std::vector<float>{a.scalar}, min_len);
    return out;
  }
};

struct ScanNode : Node {
  enum class Kind { kRunningMax, kRunningSum };
  Kind kind;
  NodePtr input;
  Value eval(const std::vector<float>& measure) const override {
    Value v = input->eval(measure);
    if (!v.is_array) return v;
    float acc = 0.0f;
    bool first = true;
    for (float& x : v.array) {
      if (kind == Kind::kRunningSum) {
        acc = first ? x : acc + x;
      } else {
        acc = first ? x : std::max(acc, x);
      }
      first = false;
      x = acc;
    }
    return v;
  }
};

struct ShiftNode : Node {
  NodePtr input;
  int offset = 0;
  Value eval(const std::vector<float>& measure) const override {
    Value v = input->eval(measure);
    if (!v.is_array || offset == 0) return v;
    const std::size_t n = v.array.size();
    std::vector<float> shifted(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
      const long src = static_cast<long>(i) - offset;
      if (src >= 0 && src < static_cast<long>(n)) shifted[i] = v.array[static_cast<std::size_t>(src)];
    }
    v.array = std::move(shifted);
    return v;
  }
};

// ---------------------------------------------------------------- tokenizer

enum class TokKind { kNumber, kIdent, kString, kOp, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  float number = 0.0f;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || (c == '.' && pos_ + 1 < text_.size())) {
        std::size_t end = 0;
        const float v = std::stof(text_.substr(pos_), &end);
        tokens.push_back({TokKind::kNumber, text_.substr(pos_, end), v});
        pos_ += end;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) || text_[end] == '_')) {
          ++end;
        }
        tokens.push_back({TokKind::kIdent, text_.substr(pos_, end - pos_), 0.0f});
        pos_ = end;
        continue;
      }
      if (c == '\'' || c == '"') {
        const char quote = c;
        std::size_t end = text_.find(quote, pos_ + 1);
        if (end == std::string::npos) return Status::InvalidArgument("unterminated string literal");
        tokens.push_back({TokKind::kString, text_.substr(pos_ + 1, end - pos_ - 1), 0.0f});
        pos_ = end + 1;
        continue;
      }
      // Multi-char comparison operators.
      static const char* kTwoChar[] = {"<=", ">=", "==", "!="};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (text_.compare(pos_, 2, op) == 0) {
          tokens.push_back({TokKind::kOp, op, 0.0f});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      if (std::string("+-*/(),<>").find(c) != std::string::npos) {
        tokens.push_back({TokKind::kOp, std::string(1, c), 0.0f});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back({TokKind::kEnd, "", 0.0f});
    return tokens;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------ parser

class ExprParser {
 public:
  explicit ExprParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<NodePtr> run() {
    Result<NodePtr> node = parse_comparison();
    if (!node.ok()) return node;
    if (peek().kind != TokKind::kEnd) return Status::InvalidArgument("trailing tokens in expression");
    return node;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }

  bool accept_op(const std::string& op) {
    if (peek().kind == TokKind::kOp && peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<NodePtr> parse_comparison() {
    Result<NodePtr> left = parse_additive();
    if (!left.ok()) return left;
    NodePtr node = *left;
    while (peek().kind == TokKind::kOp &&
           (peek().text == "<" || peek().text == ">" || peek().text == "<=" ||
            peek().text == ">=" || peek().text == "==" || peek().text == "!=")) {
      const std::string op = take().text;
      Result<NodePtr> right = parse_additive();
      if (!right.ok()) return right;
      char code = op[0];
      if (op == "<=") code = 'L';
      else if (op == ">=") code = 'G';
      else if (op == "==") code = 'E';
      else if (op == "!=") code = 'N';
      node = std::make_shared<BinaryNode>(code, node, *right);
    }
    return node;
  }

  Result<NodePtr> parse_additive() {
    Result<NodePtr> left = parse_multiplicative();
    if (!left.ok()) return left;
    NodePtr node = *left;
    while (peek().kind == TokKind::kOp && (peek().text == "+" || peek().text == "-")) {
      const char op = take().text[0];
      Result<NodePtr> right = parse_multiplicative();
      if (!right.ok()) return right;
      node = std::make_shared<BinaryNode>(op, node, *right);
    }
    return node;
  }

  Result<NodePtr> parse_multiplicative() {
    Result<NodePtr> left = parse_unary();
    if (!left.ok()) return left;
    NodePtr node = *left;
    while (peek().kind == TokKind::kOp && (peek().text == "*" || peek().text == "/")) {
      const char op = take().text[0];
      Result<NodePtr> right = parse_unary();
      if (!right.ok()) return right;
      node = std::make_shared<BinaryNode>(op, node, *right);
    }
    return node;
  }

  Result<NodePtr> parse_unary() {
    if (accept_op("-")) {
      Result<NodePtr> child = parse_unary();
      if (!child.ok()) return child;
      return NodePtr(std::make_shared<NegNode>(*child));
    }
    if (accept_op("+")) return parse_unary();
    return parse_primary();
  }

  Result<NodePtr> parse_args(std::vector<NodePtr>& args, std::vector<std::string>& strings) {
    if (!accept_op("(")) return Status::InvalidArgument("expected '(' after function name");
    if (accept_op(")")) return NodePtr(nullptr);
    while (true) {
      if (peek().kind == TokKind::kString) {
        strings.push_back(take().text);
        args.push_back(nullptr);  // placeholder keeps positions aligned
      } else {
        Result<NodePtr> arg = parse_comparison();
        if (!arg.ok()) return arg;
        args.push_back(*arg);
        strings.emplace_back();
      }
      if (accept_op(",")) continue;
      if (accept_op(")")) return NodePtr(nullptr);
      return Status::InvalidArgument("expected ',' or ')' in argument list");
    }
  }

  Result<NodePtr> parse_primary() {
    const Token token = take();
    if (token.kind == TokKind::kNumber) return NodePtr(std::make_shared<NumberNode>(token.number));
    if (token.kind == TokKind::kOp && token.text == "(") {
      Result<NodePtr> inner = parse_comparison();
      if (!inner.ok()) return inner;
      if (!accept_op(")")) return Status::InvalidArgument("expected ')'");
      return inner;
    }
    if (token.kind != TokKind::kIdent) {
      return Status::InvalidArgument("unexpected token '" + token.text + "'");
    }
    std::string name = token.text;
    // Normalize the Ophidia primitive prefix: oph_predicate == predicate.
    if (name.rfind("oph_", 0) == 0) name = name.substr(4);

    if (name == "measure" || name == "x") return NodePtr(std::make_shared<MeasureNode>());

    // Function call.
    std::vector<NodePtr> args;
    std::vector<std::string> strings;
    Result<NodePtr> status = parse_args(args, strings);
    if (!status.ok()) return status.status();

    auto need = [&](std::size_t n) -> Status {
      if (args.size() != n) {
        return Status::InvalidArgument(name + " expects " + std::to_string(n) + " arguments");
      }
      return Status::Ok();
    };

    static const std::map<std::string, float (*)(float)> kUnary = {
        {"abs", [](float v) { return std::fabs(v); }},
        {"sqrt", [](float v) { return std::sqrt(std::max(0.0f, v)); }},
        {"exp", [](float v) { return std::exp(v); }},
        {"log", [](float v) { return v <= 0.0f ? 0.0f : std::log(v); }},
    };
    static const std::map<std::string, float (*)(float, float)> kBinary = {
        {"min", [](float a, float b) { return std::min(a, b); }},
        {"max", [](float a, float b) { return std::max(a, b); }},
        {"pow", [](float a, float b) { return std::pow(a, b); }},
    };

    if (auto it = kUnary.find(name); it != kUnary.end()) {
      CLIMATE_RETURN_IF_ERROR(need(1));
      if (!args[0]) return Status::InvalidArgument(name + ": argument must be an expression");
      return NodePtr(std::make_shared<UnaryFnNode>(it->second, args[0]));
    }
    if (auto it = kBinary.find(name); it != kBinary.end()) {
      CLIMATE_RETURN_IF_ERROR(need(2));
      if (!args[0] || !args[1]) return Status::InvalidArgument(name + ": arguments must be expressions");
      return NodePtr(std::make_shared<BinaryFnNode>(it->second, args[0], args[1]));
    }
    if (name == "predicate") {
      // predicate(a, 'cond', then, else); Ophidia's longer 7-argument form
      // oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0') is also
      // accepted: string type/variable arguments are skipped.
      std::vector<std::size_t> expr_positions;
      std::vector<std::size_t> string_positions;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i]) expr_positions.push_back(i);
        else string_positions.push_back(i);
      }
      auto node = std::make_shared<PredicateNode>();
      // Condition: the first string that parses as an operator+number.
      bool have_cond = false;
      std::vector<std::string> value_strings;
      for (std::size_t pos : string_positions) {
        const std::string& s = strings[pos];
        if (!have_cond && !s.empty() && (s[0] == '>' || s[0] == '<' || s[0] == '=' || s[0] == '!')) {
          std::string op = s.substr(0, (s.size() > 1 && (s[1] == '=')) ? 2 : 1);
          char code = op[0];
          if (op == "<=") code = 'L';
          else if (op == ">=") code = 'G';
          else if (op == "==") code = 'E';
          else if (op == "!=") code = 'N';
          node->cmp = code;
          node->threshold = std::stof(s.substr(op.size()));
          have_cond = true;
        } else if (!s.empty() && (std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-')) {
          value_strings.push_back(s);
        }
        // Strings like 'OPH_INT' or 'x' are type/variable markers: ignored.
      }
      if (!have_cond) return Status::InvalidArgument("predicate: missing condition string");
      std::vector<NodePtr> exprs;
      for (std::size_t pos : expr_positions) exprs.push_back(args[pos]);
      // First expression is the input unless only then/else were numeric.
      std::size_t cursor = 0;
      node->input = cursor < exprs.size() ? exprs[cursor++] : std::make_shared<MeasureNode>();
      auto value_or = [&](std::size_t string_idx) -> NodePtr {
        if (cursor < exprs.size()) return exprs[cursor++];
        if (string_idx < value_strings.size()) {
          return std::make_shared<NumberNode>(std::stof(value_strings[string_idx]));
        }
        return std::make_shared<NumberNode>(0.0f);
      };
      node->then_value = value_or(0);
      node->else_value = value_or(1);
      return NodePtr(node);
    }
    if (name == "wave_duration") {
      CLIMATE_RETURN_IF_ERROR(need(2));
      if (!args[0] || !args[1]) return Status::InvalidArgument("wave_duration: bad arguments");
      auto node = std::make_shared<WaveDurationNode>();
      node->input = args[0];
      node->min_len = static_cast<int>(args[1]->eval({}).scalar);
      return NodePtr(node);
    }
    if (name == "running_max" || name == "running_sum") {
      CLIMATE_RETURN_IF_ERROR(need(1));
      if (!args[0]) return Status::InvalidArgument(name + ": bad argument");
      auto node = std::make_shared<ScanNode>();
      node->kind = name == "running_max" ? ScanNode::Kind::kRunningMax : ScanNode::Kind::kRunningSum;
      node->input = args[0];
      return NodePtr(node);
    }
    if (name == "shift") {
      CLIMATE_RETURN_IF_ERROR(need(2));
      if (!args[0] || !args[1]) return Status::InvalidArgument("shift: bad arguments");
      auto node = std::make_shared<ShiftNode>();
      node->input = args[0];
      node->offset = static_cast<int>(args[1]->eval({}).scalar);
      return NodePtr(node);
    }
    return Status::InvalidArgument("unknown function '" + name + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace detail

Result<Expression> Expression::parse(const std::string& text) {
  detail::Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens.ok()) return tokens.status();
  detail::ExprParser parser(std::move(*tokens));
  auto root = parser.run();
  if (!root.ok()) return root.status();
  Expression expr;
  expr.text_ = text;
  expr.root_ = *root;
  return expr;
}

std::vector<float> Expression::eval(const std::vector<float>& measure) const {
  if (!root_) return {};
  detail::Value v = root_->eval(measure);
  if (v.is_array) return std::move(v.array);
  return {v.scalar};
}

std::vector<float> wave_duration(const std::vector<float>& binary, int min_len) {
  std::vector<float> out(binary.size(), 0.0f);
  int run = 0;
  for (std::size_t i = 0; i < binary.size(); ++i) {
    if (binary[i] > 0.5f) {
      ++run;
    } else {
      if (run >= min_len && i > 0) out[i - 1] = static_cast<float>(run);
      run = 0;
    }
  }
  if (run >= min_len && !binary.empty()) out[binary.size() - 1] = static_cast<float>(run);
  return out;
}

}  // namespace climate::datacube
