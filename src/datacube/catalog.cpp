#include "datacube/catalog.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace climate::datacube {

std::size_t CubeCatalog::shard_index(const std::string& pid) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a
  for (const char c : pid) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash) & (kShards - 1);
}

std::unique_lock<std::mutex> CubeCatalog::lock_shard(const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contended.fetch_add(1, std::memory_order_relaxed);
    contention_.increment();
    OBS_COUNTER_ADD("datacube.catalog.shard_contention", 1);
    lock.lock();
  }
  return lock;
}

std::string CubeCatalog::insert(CubeData cube) {
  const std::uint64_t seq = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string pid = "oph://local/datacube/" + std::to_string(seq);
  Shard& shard = shards_[shard_index(pid)];
  Entry entry;
  entry.cube = std::make_shared<const CubeData>(std::move(cube));
  entry.seq = seq;
  auto lock = lock_shard(shard);
  shard.entries.emplace(pid, std::move(entry));
  return pid;
}

Result<std::shared_ptr<const CubeData>> CubeCatalog::find(const std::string& pid) const {
  const Shard& shard = shards_[shard_index(pid)];
  auto lock = lock_shard(shard);
  auto it = shard.entries.find(pid);
  if (it == shard.entries.end()) {
    OBS_COUNTER_ADD("datacube.catalog_misses", 1);
    return Status::NotFound("no datacube '" + pid + "'");
  }
  OBS_COUNTER_ADD("datacube.catalog_hits", 1);
  return it->second.cube;
}

Status CubeCatalog::erase(const std::string& pid) {
  Shard& shard = shards_[shard_index(pid)];
  auto lock = lock_shard(shard);
  if (shard.entries.erase(pid) == 0) return Status::NotFound("no datacube '" + pid + "'");
  return Status::Ok();
}

std::vector<std::string> CubeCatalog::list() const {
  std::vector<std::pair<std::uint64_t, std::string>> ordered;
  for (const Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    for (const auto& [pid, entry] : shard.entries) ordered.emplace_back(entry.seq, pid);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::string> pids;
  pids.reserve(ordered.size());
  for (auto& [seq, pid] : ordered) pids.push_back(std::move(pid));
  return pids;
}

Status CubeCatalog::set_metadata(const std::string& pid, const std::string& key,
                                 const std::string& value) {
  Shard& shard = shards_[shard_index(pid)];
  auto lock = lock_shard(shard);
  auto it = shard.entries.find(pid);
  if (it == shard.entries.end()) return Status::NotFound("no datacube '" + pid + "'");
  it->second.metadata[key] = value;
  return Status::Ok();
}

Result<std::map<std::string, std::string>> CubeCatalog::metadata(const std::string& pid) const {
  const Shard& shard = shards_[shard_index(pid)];
  auto lock = lock_shard(shard);
  auto it = shard.entries.find(pid);
  if (it == shard.entries.end()) return Status::NotFound("no datacube '" + pid + "'");
  return it->second.metadata;
}

std::size_t CubeCatalog::size() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    count += shard.entries.size();
  }
  return count;
}

std::size_t CubeCatalog::resident_bytes() const {
  std::size_t bytes = 0;
  for (const Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    for (const auto& [pid, entry] : shard.entries) bytes += entry.cube->byte_size();
  }
  return bytes;
}

std::array<std::uint64_t, CubeCatalog::kShards> CubeCatalog::contention_by_shard() const {
  std::array<std::uint64_t, kShards> counts{};
  for (std::size_t s = 0; s < kShards; ++s) {
    counts[s] = shards_[s].contended.load(std::memory_order_relaxed);
  }
  return counts;
}

}  // namespace climate::datacube
