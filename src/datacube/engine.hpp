// The datacube operator engine: the operator vocabulary (reduce/intercube
// enums and their parsers) and the pure fragment kernels behind every
// server operator. Kernels are free functions from immutable input cubes to
// a new CubeData — no catalog, no stats, no locks — so they can run from
// any session concurrently; fragment-parallel ones take a ParallelRunner
// that the server binds to its I/O-server pool. The serving concerns
// (catalog, admission, stats) live in server.{hpp,cpp}.
#pragma once

#include <functional>
#include <string>

#include "datacube/cube.hpp"

namespace climate::datacube {

/// Reduction operators over the implicit (array) dimension.
enum class ReduceOp { kMax, kMin, kSum, kAvg, kStd, kCount };

/// Parses "max"/"min"/"sum"/"avg"/"std"/"count".
Result<ReduceOp> parse_reduce_op(const std::string& name);

/// Element-wise binary cube operators.
enum class InterOp { kAdd, kSub, kMul, kDiv, kMask };

/// Parses "add"/"sub"/"mul"/"div"/"mask".
Result<InterOp> parse_inter_op(const std::string& name);

namespace engine {

/// Runs fn(i) for i in [0, count); the server binds this to its pool.
using ParallelRunner =
    std::function<void(std::size_t count, const std::function<void(std::size_t)>& fn)>;

/// Reduces the implicit dimension; group_size 0 collapses the whole array.
Result<CubeData> reduce(const CubeData& src, ReduceOp op, std::size_t group_size,
                        const std::string& description, const ParallelRunner& run);

/// Applies an array expression per row.
Result<CubeData> apply(const CubeData& src, const std::string& expression,
                       const std::string& description, const ParallelRunner& run);

/// Element-wise binary operator between two shape-identical cubes.
Result<CubeData> intercube(const CubeData& a, const CubeData& b, InterOp op,
                           const std::string& description, const ParallelRunner& run);

/// Subsets a dimension by inclusive index range [start, end].
Result<CubeData> subset(const CubeData& src, const std::string& dim_name, std::size_t start,
                        std::size_t end, const std::string& description, std::size_t nservers);

/// Concatenates two cubes along the first explicit dimension.
Result<CubeData> merge(const CubeData& a, const CubeData& b, const std::string& description,
                       std::size_t nservers);

/// Concatenates two cubes along the implicit (array) dimension.
Result<CubeData> concat_implicit(const CubeData& a, const CubeData& b,
                                 const std::string& description, std::size_t nservers);

/// Collapses one explicit dimension with a reduction.
Result<CubeData> aggregate(const CubeData& src, const std::string& dim_name, ReduceOp op,
                           const std::string& description, std::size_t nservers);

}  // namespace engine
}  // namespace climate::datacube
