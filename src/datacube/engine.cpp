#include "datacube/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "datacube/expression.hpp"

namespace climate::datacube {

Result<ReduceOp> parse_reduce_op(const std::string& name) {
  if (name == "max") return ReduceOp::kMax;
  if (name == "min") return ReduceOp::kMin;
  if (name == "sum") return ReduceOp::kSum;
  if (name == "avg" || name == "mean") return ReduceOp::kAvg;
  if (name == "std") return ReduceOp::kStd;
  if (name == "count") return ReduceOp::kCount;
  return Status::InvalidArgument("unknown reduce operation '" + name + "'");
}

Result<InterOp> parse_inter_op(const std::string& name) {
  if (name == "add") return InterOp::kAdd;
  if (name == "sub") return InterOp::kSub;
  if (name == "mul") return InterOp::kMul;
  if (name == "div") return InterOp::kDiv;
  if (name == "mask") return InterOp::kMask;
  return Status::InvalidArgument("unknown intercube operation '" + name + "'");
}

namespace engine {

Result<CubeData> reduce(const CubeData& src, ReduceOp op, std::size_t group_size,
                        const std::string& description, const ParallelRunner& run) {
  const std::size_t alen = src.array_length();
  if (group_size == 0) group_size = alen;
  const std::size_t out_len = (alen + group_size - 1) / group_size;

  CubeData out;
  out.measure = src.measure;
  out.description = description.empty() ? "reduce" : description;
  out.explicit_dims = src.explicit_dims;
  out.implicit_dim = DimInfo{src.implicit_dim.name, out_len, {}};
  if (out_len == alen) out.implicit_dim.coords = src.implicit_dim.coords;
  out.fragments.resize(src.fragments.size());

  const std::size_t gs = group_size;
  run(src.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = src.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.assign(in_frag.row_count * out_len, 0.0f);
    for (std::size_t r = 0; r < in_frag.row_count; ++r) {
      const float* row = in_frag.values.data() + r * alen;
      float* dst = out_frag.values.data() + r * out_len;
      for (std::size_t g = 0; g < out_len; ++g) {
        const std::size_t begin = g * gs;
        const std::size_t end = std::min(alen, begin + gs);
        const std::size_t n = end - begin;
        switch (op) {
          case ReduceOp::kMax: {
            float m = row[begin];
            for (std::size_t i = begin + 1; i < end; ++i) m = std::max(m, row[i]);
            dst[g] = m;
            break;
          }
          case ReduceOp::kMin: {
            float m = row[begin];
            for (std::size_t i = begin + 1; i < end; ++i) m = std::min(m, row[i]);
            dst[g] = m;
            break;
          }
          case ReduceOp::kSum: {
            double s = 0;
            for (std::size_t i = begin; i < end; ++i) s += row[i];
            dst[g] = static_cast<float>(s);
            break;
          }
          case ReduceOp::kAvg: {
            double s = 0;
            for (std::size_t i = begin; i < end; ++i) s += row[i];
            dst[g] = static_cast<float>(s / static_cast<double>(n));
            break;
          }
          case ReduceOp::kStd: {
            double s = 0, s2 = 0;
            for (std::size_t i = begin; i < end; ++i) {
              s += row[i];
              s2 += static_cast<double>(row[i]) * row[i];
            }
            const double mean = s / static_cast<double>(n);
            const double var = std::max(0.0, s2 / static_cast<double>(n) - mean * mean);
            dst[g] = static_cast<float>(std::sqrt(var));
            break;
          }
          case ReduceOp::kCount: {
            dst[g] = static_cast<float>(n);
            break;
          }
        }
      }
    }
  });
  return out;
}

Result<CubeData> apply(const CubeData& src, const std::string& expression,
                       const std::string& description, const ParallelRunner& run) {
  auto expr = Expression::parse(expression);
  if (!expr.ok()) return expr.status();

  const std::size_t alen = src.array_length();
  // Determine output length on a probe row.
  std::vector<float> probe(alen, 0.0f);
  const std::size_t out_len = expr->eval(probe).size();
  if (out_len == 0) return Status::InvalidArgument("expression produces empty output");

  CubeData out;
  out.measure = src.measure;
  out.description = description.empty() ? "apply(" + expression + ")" : description;
  out.explicit_dims = src.explicit_dims;
  out.implicit_dim = DimInfo{src.implicit_dim.name, out_len, {}};
  if (out_len == alen) out.implicit_dim.coords = src.implicit_dim.coords;
  out.fragments.resize(src.fragments.size());

  std::atomic<bool> length_error{false};
  run(src.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = src.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.assign(in_frag.row_count * out_len, 0.0f);
    std::vector<float> row(alen);
    for (std::size_t r = 0; r < in_frag.row_count; ++r) {
      std::memcpy(row.data(), in_frag.values.data() + r * alen, alen * sizeof(float));
      std::vector<float> result = expr->eval(row);
      if (result.size() == 1 && out_len > 1) result.assign(out_len, result[0]);
      if (result.size() != out_len) {
        length_error.store(true);
        return;
      }
      std::memcpy(out_frag.values.data() + r * out_len, result.data(), out_len * sizeof(float));
    }
  });
  if (length_error.load()) {
    return Status::Internal("expression produced rows of differing lengths");
  }
  return out;
}

Result<CubeData> intercube(const CubeData& a, const CubeData& b, InterOp op,
                           const std::string& description, const ParallelRunner& run) {
  if (a.row_count() != b.row_count() || a.array_length() != b.array_length()) {
    return Status::InvalidArgument("intercube: shape mismatch (" + std::to_string(a.row_count()) +
                                   "x" + std::to_string(a.array_length()) + " vs " +
                                   std::to_string(b.row_count()) + "x" +
                                   std::to_string(b.array_length()) + ")");
  }

  // b may be fragmented differently: use a dense view of it.
  const std::vector<float> b_dense = b.to_dense();
  const std::size_t alen = a.array_length();

  CubeData out;
  out.measure = a.measure;
  out.description = description.empty() ? "intercube" : description;
  out.explicit_dims = a.explicit_dims;
  out.implicit_dim = a.implicit_dim;
  out.fragments.resize(a.fragments.size());

  run(a.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = a.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.resize(in_frag.values.size());
    const float* bv = b_dense.data() + in_frag.row_start * alen;
    for (std::size_t i = 0; i < in_frag.values.size(); ++i) {
      const float x = in_frag.values[i];
      const float y = bv[i];
      switch (op) {
        case InterOp::kAdd: out_frag.values[i] = x + y; break;
        case InterOp::kSub: out_frag.values[i] = x - y; break;
        case InterOp::kMul: out_frag.values[i] = x * y; break;
        case InterOp::kDiv: out_frag.values[i] = y == 0.0f ? 0.0f : x / y; break;
        case InterOp::kMask: out_frag.values[i] = y > 0.0f ? x : 0.0f; break;
      }
    }
  });
  return out;
}

Result<CubeData> subset(const CubeData& src, const std::string& dim_name, std::size_t start,
                        std::size_t end, const std::string& description, std::size_t nservers) {
  if (end < start) return Status::InvalidArgument("subset: end < start");

  const std::vector<float> dense = src.to_dense();
  const std::size_t alen = src.array_length();

  auto slice_coords = [&](const DimInfo& dim) {
    DimInfo out{dim.name, end - start + 1, {}};
    if (!dim.coords.empty()) {
      out.coords.assign(dim.coords.begin() + static_cast<long>(start),
                        dim.coords.begin() + static_cast<long>(end) + 1);
    }
    return out;
  };

  if (src.implicit_dim.name == dim_name) {
    if (end >= alen) return Status::OutOfRange("subset: index past implicit dimension");
    const std::size_t new_len = end - start + 1;
    std::vector<float> out_dense(src.row_count() * new_len);
    for (std::size_t r = 0; r < src.row_count(); ++r) {
      std::memcpy(out_dense.data() + r * new_len, dense.data() + r * alen + start,
                  new_len * sizeof(float));
    }
    CubeData out = cube_from_dense(src.measure, src.explicit_dims, slice_coords(src.implicit_dim),
                                   out_dense, nservers, nservers);
    out.description = description.empty() ? "subset(" + dim_name + ")" : description;
    return out;
  }

  // Explicit dimension subset: select rows whose index on dim_name lies in
  // [start, end].
  std::size_t dim_index = src.explicit_dims.size();
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (src.explicit_dims[d].name == dim_name) dim_index = d;
  }
  if (dim_index == src.explicit_dims.size()) {
    return Status::NotFound("subset: no dimension '" + dim_name + "'");
  }
  if (end >= src.explicit_dims[dim_index].size) {
    return Status::OutOfRange("subset: index past dimension '" + dim_name + "'");
  }

  std::vector<DimInfo> out_dims = src.explicit_dims;
  out_dims[dim_index] = slice_coords(src.explicit_dims[dim_index]);

  std::size_t out_rows = 1;
  for (const DimInfo& d : out_dims) out_rows *= d.size;
  std::vector<float> out_dense(out_rows * alen);

  // Row-major walk over the output index space, mapping back to source rows.
  std::vector<std::size_t> src_strides(src.explicit_dims.size(), 1);
  for (std::size_t d = src.explicit_dims.size(); d-- > 1;) {
    src_strides[d - 1] = src_strides[d] * src.explicit_dims[d].size;
  }
  std::vector<std::size_t> idx(out_dims.size(), 0);
  for (std::size_t out_row = 0; out_row < out_rows; ++out_row) {
    std::size_t src_row = 0;
    for (std::size_t d = 0; d < out_dims.size(); ++d) {
      const std::size_t src_idx = d == dim_index ? idx[d] + start : idx[d];
      src_row += src_idx * src_strides[d];
    }
    std::memcpy(out_dense.data() + out_row * alen, dense.data() + src_row * alen,
                alen * sizeof(float));
    for (std::size_t d = out_dims.size(); d-- > 0;) {
      if (++idx[d] < out_dims[d].size) break;
      idx[d] = 0;
    }
  }
  CubeData out = cube_from_dense(src.measure, std::move(out_dims), src.implicit_dim, out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "subset(" + dim_name + ")" : description;
  return out;
}

Result<CubeData> merge(const CubeData& a, const CubeData& b, const std::string& description,
                       std::size_t nservers) {
  if (a.explicit_dims.empty() || b.explicit_dims.empty()) {
    return Status::InvalidArgument("merge: cubes need an explicit dimension");
  }
  if (a.explicit_dims.size() != b.explicit_dims.size() || a.array_length() != b.array_length()) {
    return Status::InvalidArgument("merge: schema mismatch");
  }
  for (std::size_t d = 1; d < a.explicit_dims.size(); ++d) {
    if (a.explicit_dims[d].size != b.explicit_dims[d].size) {
      return Status::InvalidArgument("merge: inner dimension size mismatch");
    }
  }

  std::vector<DimInfo> out_dims = a.explicit_dims;
  out_dims[0].size += b.explicit_dims[0].size;
  out_dims[0].coords.clear();
  if (!a.explicit_dims[0].coords.empty() && !b.explicit_dims[0].coords.empty()) {
    out_dims[0].coords = a.explicit_dims[0].coords;
    out_dims[0].coords.insert(out_dims[0].coords.end(), b.explicit_dims[0].coords.begin(),
                              b.explicit_dims[0].coords.end());
  }
  std::vector<float> dense = a.to_dense();
  const std::vector<float> b_dense = b.to_dense();
  dense.insert(dense.end(), b_dense.begin(), b_dense.end());

  CubeData out =
      cube_from_dense(a.measure, std::move(out_dims), a.implicit_dim, dense, nservers, nservers);
  out.description = description.empty() ? "merge" : description;
  return out;
}

Result<CubeData> concat_implicit(const CubeData& a, const CubeData& b,
                                 const std::string& description, std::size_t nservers) {
  if (a.row_count() != b.row_count() || a.explicit_dims.size() != b.explicit_dims.size()) {
    return Status::InvalidArgument("concat_implicit: explicit dimension mismatch");
  }
  for (std::size_t d = 0; d < a.explicit_dims.size(); ++d) {
    if (a.explicit_dims[d].size != b.explicit_dims[d].size) {
      return Status::InvalidArgument("concat_implicit: explicit dimension size mismatch");
    }
  }
  const std::size_t alen_a = a.array_length();
  const std::size_t alen_b = b.array_length();
  const std::vector<float> dense_a = a.to_dense();
  const std::vector<float> dense_b = b.to_dense();
  const std::size_t rows = a.row_count();
  std::vector<float> out_dense(rows * (alen_a + alen_b));
  for (std::size_t r = 0; r < rows; ++r) {
    std::memcpy(out_dense.data() + r * (alen_a + alen_b), dense_a.data() + r * alen_a,
                alen_a * sizeof(float));
    std::memcpy(out_dense.data() + r * (alen_a + alen_b) + alen_a, dense_b.data() + r * alen_b,
                alen_b * sizeof(float));
  }
  DimInfo implicit = a.implicit_dim;
  implicit.size = alen_a + alen_b;
  if (!a.implicit_dim.coords.empty() && !b.implicit_dim.coords.empty()) {
    implicit.coords = a.implicit_dim.coords;
    implicit.coords.insert(implicit.coords.end(), b.implicit_dim.coords.begin(),
                           b.implicit_dim.coords.end());
  } else {
    implicit.coords.clear();
  }
  CubeData out = cube_from_dense(a.measure, a.explicit_dims, std::move(implicit), out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "concat_implicit" : description;
  return out;
}

Result<CubeData> aggregate(const CubeData& src, const std::string& dim_name, ReduceOp op,
                           const std::string& description, std::size_t nservers) {
  std::size_t dim_index = src.explicit_dims.size();
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (src.explicit_dims[d].name == dim_name) dim_index = d;
  }
  if (dim_index == src.explicit_dims.size()) {
    return Status::NotFound("aggregate: no explicit dimension '" + dim_name + "'");
  }

  const std::size_t alen = src.array_length();
  const std::vector<float> dense = src.to_dense();

  // Output dims: the collapsed one removed.
  std::vector<DimInfo> out_dims;
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (d != dim_index) out_dims.push_back(src.explicit_dims[d]);
  }
  std::size_t out_rows = 1;
  for (const DimInfo& d : out_dims) out_rows *= d.size;
  const std::size_t collapse_n = src.explicit_dims[dim_index].size;

  // Strides of the source row index space.
  std::vector<std::size_t> strides(src.explicit_dims.size(), 1);
  for (std::size_t d = src.explicit_dims.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * src.explicit_dims[d].size;
  }

  // Accumulators per output row per array position.
  std::vector<double> sum(out_rows * alen, 0.0);
  std::vector<double> sum_sq(op == ReduceOp::kStd ? out_rows * alen : 0, 0.0);
  std::vector<float> extreme(out_rows * alen,
                             op == ReduceOp::kMax ? -std::numeric_limits<float>::infinity()
                                                  : std::numeric_limits<float>::infinity());

  std::vector<std::size_t> idx(src.explicit_dims.size(), 0);
  const std::size_t src_rows = src.row_count();
  for (std::size_t row = 0; row < src_rows; ++row) {
    // Output row index: strip dim_index from the multi-index.
    std::size_t out_row = 0;
    for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
      if (d == dim_index) continue;
      out_row = out_row * src.explicit_dims[d].size + idx[d];
    }
    const float* src_values = dense.data() + row * alen;
    for (std::size_t k = 0; k < alen; ++k) {
      const std::size_t o = out_row * alen + k;
      const float v = src_values[k];
      sum[o] += v;
      if (op == ReduceOp::kStd) sum_sq[o] += static_cast<double>(v) * v;
      if (op == ReduceOp::kMax) extreme[o] = std::max(extreme[o], v);
      if (op == ReduceOp::kMin) extreme[o] = std::min(extreme[o], v);
    }
    for (std::size_t d = src.explicit_dims.size(); d-- > 0;) {
      if (++idx[d] < src.explicit_dims[d].size) break;
      idx[d] = 0;
    }
  }

  std::vector<float> out_dense(out_rows * alen);
  for (std::size_t o = 0; o < out_dense.size(); ++o) {
    switch (op) {
      case ReduceOp::kSum: out_dense[o] = static_cast<float>(sum[o]); break;
      case ReduceOp::kAvg: out_dense[o] = static_cast<float>(sum[o] / collapse_n); break;
      case ReduceOp::kMax:
      case ReduceOp::kMin: out_dense[o] = extreme[o]; break;
      case ReduceOp::kCount: out_dense[o] = static_cast<float>(collapse_n); break;
      case ReduceOp::kStd: {
        const double mean = sum[o] / collapse_n;
        const double var = std::max(0.0, sum_sq[o] / collapse_n - mean * mean);
        out_dense[o] = static_cast<float>(std::sqrt(var));
        break;
      }
    }
  }
  if (out_dims.empty()) out_dims.push_back({"scalar", 1, {}});
  CubeData out = cube_from_dense(src.measure, std::move(out_dims), src.implicit_dim, out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "aggregate(" + dim_name + ")" : description;
  return out;
}

}  // namespace engine
}  // namespace climate::datacube
