#include "datacube/client.hpp"

#include "obs/obs.hpp"

namespace climate::datacube {

namespace {

/// Wraps a server-produced PID into a bound Cube, capturing the schema
/// snapshot for the handle. The snapshot lookup is best-effort: the cube was
/// just registered, so a miss only happens if another session deleted it in
/// the meantime, and then the handle still carries the PID.
Result<Cube> wrap(Server* server, const std::string& session,
                  const std::shared_ptr<ClientRetryState>& retry, Result<std::string> pid) {
  if (!pid.ok()) return pid.status();
  CubeHandle handle;
  handle.pid = std::move(*pid);
  auto schema = server->cubeschema(handle.pid);
  if (schema.ok()) handle.schema = std::move(*schema);
  return Cube(server, std::move(handle), session, retry);
}

/// Runs one server operation under the shared retry discipline: the circuit
/// breaker fails fast when the service looks down, transient failures
/// (UNAVAILABLE admission rejections, injected fragment faults) are retried
/// with decorrelated-jitter backoff, and outcomes feed the breaker.
template <typename Fn>
auto with_retry(const std::shared_ptr<ClientRetryState>& retry, Fn&& fn) -> decltype(fn()) {
  if (!retry) return fn();  // deprecated raw-PID cubes: bare single attempt
  retry->calls.fetch_add(1, std::memory_order_relaxed);
  if (!retry->breaker.allow()) {
    retry->breaker_rejections.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_ADD("datacube.client.breaker_rejections", 1);
    return common::Status::Unavailable("datacube client circuit breaker open (failing fast)");
  }
  common::RetryStats stats;
  auto outcome = common::retry_call(fn, retry->options, common::transient_status, &stats);
  if (stats.attempts > 1) {
    retry->retries.fetch_add(static_cast<std::uint64_t>(stats.attempts - 1),
                             std::memory_order_relaxed);
    OBS_COUNTER_ADD("datacube.client.retries", stats.attempts - 1);
  }
  if (stats.exhausted) retry->exhausted.fetch_add(1, std::memory_order_relaxed);
  retry->breaker.record(common::status_of(outcome));
  return outcome;
}

}  // namespace

Result<Cube> Cube::reduce(const std::string& op, std::size_t group,
                          const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("reduce on invalid cube");
  auto parsed = parse_reduce_op(op);
  if (!parsed.ok()) return parsed.status();
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->reduce(pid(), *parsed, group, description);
              }));
}

Result<Cube> Cube::apply(const std::string& expression, const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("apply on invalid cube");
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->apply(pid(), expression, description);
              }));
}

Result<Cube> Cube::intercube(const Cube& other, const std::string& op,
                             const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("intercube on invalid cube");
  auto parsed = parse_inter_op(op);
  if (!parsed.ok()) return parsed.status();
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->intercube(pid(), other.pid(), *parsed, description);
              }));
}

Result<Cube> Cube::subset(const std::string& dim, std::size_t start, std::size_t end,
                          const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("subset on invalid cube");
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->subset(pid(), dim, start, end, description);
              }));
}

Result<Cube> Cube::merge(const Cube& other, const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("merge on invalid cube");
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->merge(pid(), other.pid(), description);
              }));
}

Result<Cube> Cube::concat(const Cube& other, const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("concat on invalid cube");
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->concat_implicit(pid(), other.pid(), description);
              }));
}

Result<Cube> Cube::aggregate(const std::string& dim, const std::string& op,
                             const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("aggregate on invalid cube");
  auto parsed = parse_reduce_op(op);
  if (!parsed.ok()) return parsed.status();
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->aggregate(pid(), dim, *parsed, description);
              }));
}

Status Cube::exportnc2(const std::string& output_path, const std::string& output_name) const {
  if (!valid()) return Status::FailedPrecondition("exportnc2 on invalid cube");
  std::string path = output_path;
  if (!path.empty() && path.back() != '/') path += '/';
  path += output_name;
  if (path.size() < 3 || path.substr(path.size() - 3) != ".nc") path += ".nc";
  Server::SessionScope scope(session_);
  return with_retry(retry_, [&] { return server_->exportnc(pid(), path); });
}

Result<CubeSchema> Cube::schema() const {
  if (!valid()) return Status::FailedPrecondition("schema on invalid cube");
  return server_->cubeschema(pid());
}

Result<std::vector<float>> Cube::values() const {
  if (!valid()) return Status::FailedPrecondition("values on invalid cube");
  return server_->fetch_dense(pid());
}

Status Cube::del() const {
  if (!valid()) return Status::FailedPrecondition("delete on invalid cube");
  return server_->delete_cube(pid());
}

Result<Cube> Client::importnc(const std::string& path, const std::string& variable,
                              const ImportOptions& options) {
  Server::SessionScope scope(session_);
  return wrap(server_, session_, retry_, with_retry(retry_, [&] {
                return server_->importnc(path, variable, options);
              }));
}

Result<Cube> Client::create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                                 DimInfo implicit_dim, const std::vector<float>& dense,
                                 std::string description) {
  Server::SessionScope scope(session_);
  return wrap(server_, session_,
              retry_, server_->create_cube(std::move(measure), std::move(explicit_dims),
                                           std::move(implicit_dim), dense, std::move(description)));
}

Result<Cube> Client::open(const std::string& pid) const {
  auto schema = server_->cubeschema(pid);
  if (!schema.ok()) return schema.status();
  CubeHandle handle;
  handle.pid = pid;
  handle.schema = std::move(*schema);
  return Cube(server_, std::move(handle), session_, retry_);
}

Result<std::vector<CubeHandle>> Client::cubes() const {
  std::vector<CubeHandle> handles;
  for (const std::string& pid : server_->list_cubes()) {
    auto schema = server_->cubeschema(pid);
    if (!schema.ok()) continue;  // deleted concurrently between list and read
    CubeHandle handle;
    handle.pid = pid;
    handle.schema = std::move(*schema);
    handles.push_back(std::move(handle));
  }
  return handles;
}

}  // namespace climate::datacube
