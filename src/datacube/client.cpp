#include "datacube/client.hpp"

namespace climate::datacube {

namespace {
Result<Cube> wrap(Server* server, Result<std::string> pid) {
  if (!pid.ok()) return pid.status();
  return Cube(server, *pid);
}

Cube make_cube(Server* server, std::string pid) { return Cube(server, std::move(pid)); }
}  // namespace

Result<Cube> Cube::reduce(const std::string& op, std::size_t group,
                          const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("reduce on invalid cube");
  auto parsed = parse_reduce_op(op);
  if (!parsed.ok()) return parsed.status();
  return wrap(server_, server_->reduce(pid_, *parsed, group, description));
}

Result<Cube> Cube::apply(const std::string& expression, const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("apply on invalid cube");
  return wrap(server_, server_->apply(pid_, expression, description));
}

Result<Cube> Cube::intercube(const Cube& other, const std::string& op,
                             const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("intercube on invalid cube");
  auto parsed = parse_inter_op(op);
  if (!parsed.ok()) return parsed.status();
  return wrap(server_, server_->intercube(pid_, other.pid_, *parsed, description));
}

Result<Cube> Cube::subset(const std::string& dim, std::size_t start, std::size_t end,
                          const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("subset on invalid cube");
  return wrap(server_, server_->subset(pid_, dim, start, end, description));
}

Result<Cube> Cube::merge(const Cube& other, const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("merge on invalid cube");
  return wrap(server_, server_->merge(pid_, other.pid_, description));
}

Result<Cube> Cube::concat(const Cube& other, const std::string& description) const {
  if (!valid() || !other.valid()) return Status::FailedPrecondition("concat on invalid cube");
  return wrap(server_, server_->concat_implicit(pid_, other.pid_, description));
}

Result<Cube> Cube::aggregate(const std::string& dim, const std::string& op,
                             const std::string& description) const {
  if (!valid()) return Status::FailedPrecondition("aggregate on invalid cube");
  auto parsed = parse_reduce_op(op);
  if (!parsed.ok()) return parsed.status();
  return wrap(server_, server_->aggregate(pid_, dim, *parsed, description));
}

Status Cube::exportnc2(const std::string& output_path, const std::string& output_name) const {
  if (!valid()) return Status::FailedPrecondition("exportnc2 on invalid cube");
  std::string path = output_path;
  if (!path.empty() && path.back() != '/') path += '/';
  path += output_name;
  if (path.size() < 3 || path.substr(path.size() - 3) != ".nc") path += ".nc";
  return server_->exportnc(pid_, path);
}

Result<CubeSchema> Cube::schema() const {
  if (!valid()) return Status::FailedPrecondition("schema on invalid cube");
  return server_->cubeschema(pid_);
}

Result<std::vector<float>> Cube::values() const {
  if (!valid()) return Status::FailedPrecondition("values on invalid cube");
  return server_->fetch_dense(pid_);
}

Status Cube::del() const {
  if (!valid()) return Status::FailedPrecondition("delete on invalid cube");
  return server_->delete_cube(pid_);
}

Result<Cube> Client::importnc(const std::string& path, const std::string& variable,
                              const ImportOptions& options) {
  auto pid = server_->importnc(path, variable, options);
  if (!pid.ok()) return pid.status();
  return make_cube(server_, std::move(*pid));
}

Result<Cube> Client::create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                                 DimInfo implicit_dim, const std::vector<float>& dense,
                                 std::string description) {
  auto pid = server_->create_cube(std::move(measure), std::move(explicit_dims),
                                  std::move(implicit_dim), dense, std::move(description));
  if (!pid.ok()) return pid.status();
  return make_cube(server_, std::move(*pid));
}

}  // namespace climate::datacube
